# Empty compiler generated dependencies file for distribution_advisor.
# This may be replaced when dependencies are built.
