# Empty dependencies file for hints_and_unions.
# This may be replaced when dependencies are built.
