file(REMOVE_RECURSE
  "CMakeFiles/hints_and_unions.dir/hints_and_unions.cpp.o"
  "CMakeFiles/hints_and_unions.dir/hints_and_unions.cpp.o.d"
  "hints_and_unions"
  "hints_and_unions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hints_and_unions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
