# Empty dependencies file for tpch_q20.
# This may be replaced when dependencies are built.
