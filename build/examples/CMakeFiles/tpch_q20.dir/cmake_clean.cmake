file(REMOVE_RECURSE
  "CMakeFiles/tpch_q20.dir/tpch_q20.cpp.o"
  "CMakeFiles/tpch_q20.dir/tpch_q20.cpp.o.d"
  "tpch_q20"
  "tpch_q20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_q20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
