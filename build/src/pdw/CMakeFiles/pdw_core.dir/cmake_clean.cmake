file(REMOVE_RECURSE
  "CMakeFiles/pdw_core.dir/baseline.cc.o"
  "CMakeFiles/pdw_core.dir/baseline.cc.o.d"
  "CMakeFiles/pdw_core.dir/compiler.cc.o"
  "CMakeFiles/pdw_core.dir/compiler.cc.o.d"
  "CMakeFiles/pdw_core.dir/cost_model.cc.o"
  "CMakeFiles/pdw_core.dir/cost_model.cc.o.d"
  "CMakeFiles/pdw_core.dir/dsql.cc.o"
  "CMakeFiles/pdw_core.dir/dsql.cc.o.d"
  "CMakeFiles/pdw_core.dir/interesting_props.cc.o"
  "CMakeFiles/pdw_core.dir/interesting_props.cc.o.d"
  "CMakeFiles/pdw_core.dir/pdw_optimizer.cc.o"
  "CMakeFiles/pdw_core.dir/pdw_optimizer.cc.o.d"
  "CMakeFiles/pdw_core.dir/sql_gen.cc.o"
  "CMakeFiles/pdw_core.dir/sql_gen.cc.o.d"
  "CMakeFiles/pdw_core.dir/top_down.cc.o"
  "CMakeFiles/pdw_core.dir/top_down.cc.o.d"
  "libpdw_core.a"
  "libpdw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
