# Empty compiler generated dependencies file for pdw_core.
# This may be replaced when dependencies are built.
