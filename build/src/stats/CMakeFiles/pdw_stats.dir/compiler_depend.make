# Empty compiler generated dependencies file for pdw_stats.
# This may be replaced when dependencies are built.
