file(REMOVE_RECURSE
  "libpdw_stats.a"
)
