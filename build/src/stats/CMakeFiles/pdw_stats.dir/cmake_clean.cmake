file(REMOVE_RECURSE
  "CMakeFiles/pdw_stats.dir/column_stats.cc.o"
  "CMakeFiles/pdw_stats.dir/column_stats.cc.o.d"
  "CMakeFiles/pdw_stats.dir/histogram.cc.o"
  "CMakeFiles/pdw_stats.dir/histogram.cc.o.d"
  "libpdw_stats.a"
  "libpdw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
