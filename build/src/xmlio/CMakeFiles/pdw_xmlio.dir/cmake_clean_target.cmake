file(REMOVE_RECURSE
  "libpdw_xmlio.a"
)
