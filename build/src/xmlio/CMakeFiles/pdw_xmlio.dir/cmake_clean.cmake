file(REMOVE_RECURSE
  "CMakeFiles/pdw_xmlio.dir/memo_xml.cc.o"
  "CMakeFiles/pdw_xmlio.dir/memo_xml.cc.o.d"
  "libpdw_xmlio.a"
  "libpdw_xmlio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_xmlio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
