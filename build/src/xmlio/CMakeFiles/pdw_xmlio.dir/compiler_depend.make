# Empty compiler generated dependencies file for pdw_xmlio.
# This may be replaced when dependencies are built.
