file(REMOVE_RECURSE
  "libpdw_algebra.a"
)
