file(REMOVE_RECURSE
  "CMakeFiles/pdw_algebra.dir/binder.cc.o"
  "CMakeFiles/pdw_algebra.dir/binder.cc.o.d"
  "CMakeFiles/pdw_algebra.dir/equivalence.cc.o"
  "CMakeFiles/pdw_algebra.dir/equivalence.cc.o.d"
  "CMakeFiles/pdw_algebra.dir/logical_op.cc.o"
  "CMakeFiles/pdw_algebra.dir/logical_op.cc.o.d"
  "CMakeFiles/pdw_algebra.dir/normalizer.cc.o"
  "CMakeFiles/pdw_algebra.dir/normalizer.cc.o.d"
  "CMakeFiles/pdw_algebra.dir/scalar_eval.cc.o"
  "CMakeFiles/pdw_algebra.dir/scalar_eval.cc.o.d"
  "CMakeFiles/pdw_algebra.dir/scalar_expr.cc.o"
  "CMakeFiles/pdw_algebra.dir/scalar_expr.cc.o.d"
  "libpdw_algebra.a"
  "libpdw_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
