# Empty compiler generated dependencies file for pdw_algebra.
# This may be replaced when dependencies are built.
