
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/binder.cc" "src/algebra/CMakeFiles/pdw_algebra.dir/binder.cc.o" "gcc" "src/algebra/CMakeFiles/pdw_algebra.dir/binder.cc.o.d"
  "/root/repo/src/algebra/equivalence.cc" "src/algebra/CMakeFiles/pdw_algebra.dir/equivalence.cc.o" "gcc" "src/algebra/CMakeFiles/pdw_algebra.dir/equivalence.cc.o.d"
  "/root/repo/src/algebra/logical_op.cc" "src/algebra/CMakeFiles/pdw_algebra.dir/logical_op.cc.o" "gcc" "src/algebra/CMakeFiles/pdw_algebra.dir/logical_op.cc.o.d"
  "/root/repo/src/algebra/normalizer.cc" "src/algebra/CMakeFiles/pdw_algebra.dir/normalizer.cc.o" "gcc" "src/algebra/CMakeFiles/pdw_algebra.dir/normalizer.cc.o.d"
  "/root/repo/src/algebra/scalar_eval.cc" "src/algebra/CMakeFiles/pdw_algebra.dir/scalar_eval.cc.o" "gcc" "src/algebra/CMakeFiles/pdw_algebra.dir/scalar_eval.cc.o.d"
  "/root/repo/src/algebra/scalar_expr.cc" "src/algebra/CMakeFiles/pdw_algebra.dir/scalar_expr.cc.o" "gcc" "src/algebra/CMakeFiles/pdw_algebra.dir/scalar_expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pdw_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pdw_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pdw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
