file(REMOVE_RECURSE
  "CMakeFiles/pdw_plan.dir/distribution.cc.o"
  "CMakeFiles/pdw_plan.dir/distribution.cc.o.d"
  "CMakeFiles/pdw_plan.dir/plan_node.cc.o"
  "CMakeFiles/pdw_plan.dir/plan_node.cc.o.d"
  "libpdw_plan.a"
  "libpdw_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
