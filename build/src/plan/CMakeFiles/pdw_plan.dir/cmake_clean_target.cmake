file(REMOVE_RECURSE
  "libpdw_plan.a"
)
