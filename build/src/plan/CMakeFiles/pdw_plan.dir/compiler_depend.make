# Empty compiler generated dependencies file for pdw_plan.
# This may be replaced when dependencies are built.
