file(REMOVE_RECURSE
  "libpdw_catalog.a"
)
