file(REMOVE_RECURSE
  "CMakeFiles/pdw_catalog.dir/catalog.cc.o"
  "CMakeFiles/pdw_catalog.dir/catalog.cc.o.d"
  "libpdw_catalog.a"
  "libpdw_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
