# Empty dependencies file for pdw_catalog.
# This may be replaced when dependencies are built.
