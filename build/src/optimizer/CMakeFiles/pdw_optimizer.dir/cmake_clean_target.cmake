file(REMOVE_RECURSE
  "libpdw_optimizer.a"
)
