# Empty dependencies file for pdw_optimizer.
# This may be replaced when dependencies are built.
