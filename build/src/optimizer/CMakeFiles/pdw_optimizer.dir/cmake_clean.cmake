file(REMOVE_RECURSE
  "CMakeFiles/pdw_optimizer.dir/cardinality.cc.o"
  "CMakeFiles/pdw_optimizer.dir/cardinality.cc.o.d"
  "CMakeFiles/pdw_optimizer.dir/memo.cc.o"
  "CMakeFiles/pdw_optimizer.dir/memo.cc.o.d"
  "CMakeFiles/pdw_optimizer.dir/serial_optimizer.cc.o"
  "CMakeFiles/pdw_optimizer.dir/serial_optimizer.cc.o.d"
  "CMakeFiles/pdw_optimizer.dir/stats_context.cc.o"
  "CMakeFiles/pdw_optimizer.dir/stats_context.cc.o.d"
  "libpdw_optimizer.a"
  "libpdw_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
