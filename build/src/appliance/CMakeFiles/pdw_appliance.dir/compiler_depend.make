# Empty compiler generated dependencies file for pdw_appliance.
# This may be replaced when dependencies are built.
