file(REMOVE_RECURSE
  "CMakeFiles/pdw_appliance.dir/appliance.cc.o"
  "CMakeFiles/pdw_appliance.dir/appliance.cc.o.d"
  "libpdw_appliance.a"
  "libpdw_appliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_appliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
