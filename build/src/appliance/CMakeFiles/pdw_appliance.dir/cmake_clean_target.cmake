file(REMOVE_RECURSE
  "libpdw_appliance.a"
)
