# CMake generated Testfile for 
# Source directory: /root/repo/src/appliance
# Build directory: /root/repo/build/src/appliance
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
