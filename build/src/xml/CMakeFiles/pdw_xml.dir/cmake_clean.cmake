file(REMOVE_RECURSE
  "CMakeFiles/pdw_xml.dir/xml.cc.o"
  "CMakeFiles/pdw_xml.dir/xml.cc.o.d"
  "libpdw_xml.a"
  "libpdw_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
