# Empty dependencies file for pdw_xml.
# This may be replaced when dependencies are built.
