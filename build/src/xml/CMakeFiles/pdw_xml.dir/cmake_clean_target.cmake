file(REMOVE_RECURSE
  "libpdw_xml.a"
)
