file(REMOVE_RECURSE
  "CMakeFiles/pdw_sql.dir/ast.cc.o"
  "CMakeFiles/pdw_sql.dir/ast.cc.o.d"
  "CMakeFiles/pdw_sql.dir/lexer.cc.o"
  "CMakeFiles/pdw_sql.dir/lexer.cc.o.d"
  "CMakeFiles/pdw_sql.dir/parser.cc.o"
  "CMakeFiles/pdw_sql.dir/parser.cc.o.d"
  "libpdw_sql.a"
  "libpdw_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
