# Empty dependencies file for pdw_sql.
# This may be replaced when dependencies are built.
