file(REMOVE_RECURSE
  "libpdw_sql.a"
)
