file(REMOVE_RECURSE
  "libpdw_common.a"
)
