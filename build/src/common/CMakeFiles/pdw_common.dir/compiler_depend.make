# Empty compiler generated dependencies file for pdw_common.
# This may be replaced when dependencies are built.
