file(REMOVE_RECURSE
  "CMakeFiles/pdw_common.dir/datum.cc.o"
  "CMakeFiles/pdw_common.dir/datum.cc.o.d"
  "CMakeFiles/pdw_common.dir/row.cc.o"
  "CMakeFiles/pdw_common.dir/row.cc.o.d"
  "CMakeFiles/pdw_common.dir/schema.cc.o"
  "CMakeFiles/pdw_common.dir/schema.cc.o.d"
  "CMakeFiles/pdw_common.dir/status.cc.o"
  "CMakeFiles/pdw_common.dir/status.cc.o.d"
  "CMakeFiles/pdw_common.dir/string_util.cc.o"
  "CMakeFiles/pdw_common.dir/string_util.cc.o.d"
  "CMakeFiles/pdw_common.dir/types.cc.o"
  "CMakeFiles/pdw_common.dir/types.cc.o.d"
  "libpdw_common.a"
  "libpdw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
