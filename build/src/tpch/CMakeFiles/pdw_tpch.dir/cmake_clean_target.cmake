file(REMOVE_RECURSE
  "libpdw_tpch.a"
)
