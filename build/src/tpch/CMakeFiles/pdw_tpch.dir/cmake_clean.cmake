file(REMOVE_RECURSE
  "CMakeFiles/pdw_tpch.dir/tpch.cc.o"
  "CMakeFiles/pdw_tpch.dir/tpch.cc.o.d"
  "libpdw_tpch.a"
  "libpdw_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
