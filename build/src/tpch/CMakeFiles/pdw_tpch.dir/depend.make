# Empty dependencies file for pdw_tpch.
# This may be replaced when dependencies are built.
