file(REMOVE_RECURSE
  "CMakeFiles/pdw_dms.dir/dms_service.cc.o"
  "CMakeFiles/pdw_dms.dir/dms_service.cc.o.d"
  "libpdw_dms.a"
  "libpdw_dms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_dms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
