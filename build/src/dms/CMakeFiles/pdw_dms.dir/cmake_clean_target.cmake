file(REMOVE_RECURSE
  "libpdw_dms.a"
)
