# Empty dependencies file for pdw_dms.
# This may be replaced when dependencies are built.
