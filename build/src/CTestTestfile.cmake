# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("stats")
subdirs("catalog")
subdirs("sql")
subdirs("algebra")
subdirs("optimizer")
subdirs("xmlio")
subdirs("plan")
subdirs("pdw")
subdirs("engine")
subdirs("dms")
subdirs("appliance")
subdirs("tpch")
