# Empty compiler generated dependencies file for pdw_engine.
# This may be replaced when dependencies are built.
