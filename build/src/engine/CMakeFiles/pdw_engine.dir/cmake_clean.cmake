file(REMOVE_RECURSE
  "CMakeFiles/pdw_engine.dir/executor.cc.o"
  "CMakeFiles/pdw_engine.dir/executor.cc.o.d"
  "CMakeFiles/pdw_engine.dir/local_engine.cc.o"
  "CMakeFiles/pdw_engine.dir/local_engine.cc.o.d"
  "libpdw_engine.a"
  "libpdw_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
