# Empty dependencies file for pdw_engine.
# This may be replaced when dependencies are built.
