
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/pdw_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/pdw_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/local_engine.cc" "src/engine/CMakeFiles/pdw_engine.dir/local_engine.cc.o" "gcc" "src/engine/CMakeFiles/pdw_engine.dir/local_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/pdw_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/pdw_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/pdw_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pdw_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pdw_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pdw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
