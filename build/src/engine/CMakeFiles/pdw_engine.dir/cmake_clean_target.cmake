file(REMOVE_RECURSE
  "libpdw_engine.a"
)
