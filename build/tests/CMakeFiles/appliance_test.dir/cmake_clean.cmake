file(REMOVE_RECURSE
  "CMakeFiles/appliance_test.dir/appliance_test.cc.o"
  "CMakeFiles/appliance_test.dir/appliance_test.cc.o.d"
  "appliance_test"
  "appliance_test.pdb"
  "appliance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appliance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
