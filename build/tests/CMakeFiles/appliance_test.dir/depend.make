# Empty dependencies file for appliance_test.
# This may be replaced when dependencies are built.
