# Empty compiler generated dependencies file for xmlio_test.
# This may be replaced when dependencies are built.
