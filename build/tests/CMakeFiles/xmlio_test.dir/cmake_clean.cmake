file(REMOVE_RECURSE
  "CMakeFiles/xmlio_test.dir/xmlio_test.cc.o"
  "CMakeFiles/xmlio_test.dir/xmlio_test.cc.o.d"
  "xmlio_test"
  "xmlio_test.pdb"
  "xmlio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
