file(REMOVE_RECURSE
  "CMakeFiles/sql_gen_test.dir/sql_gen_test.cc.o"
  "CMakeFiles/sql_gen_test.dir/sql_gen_test.cc.o.d"
  "sql_gen_test"
  "sql_gen_test.pdb"
  "sql_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
