# Empty dependencies file for sql_gen_test.
# This may be replaced when dependencies are built.
