file(REMOVE_RECURSE
  "CMakeFiles/dms_test.dir/dms_test.cc.o"
  "CMakeFiles/dms_test.dir/dms_test.cc.o.d"
  "dms_test"
  "dms_test.pdb"
  "dms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
