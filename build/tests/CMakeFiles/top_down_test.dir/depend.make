# Empty dependencies file for top_down_test.
# This may be replaced when dependencies are built.
