# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/xmlio_test[1]_include.cmake")
include("/root/repo/build/tests/pdw_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/dms_test[1]_include.cmake")
include("/root/repo/build/tests/appliance_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/random_query_test[1]_include.cmake")
include("/root/repo/build/tests/union_test[1]_include.cmake")
include("/root/repo/build/tests/hints_test[1]_include.cmake")
include("/root/repo/build/tests/top_down_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sql_gen_test[1]_include.cmake")
