# Empty compiler generated dependencies file for bench_fig6_dsql_gen.
# This may be replaced when dependencies are built.
