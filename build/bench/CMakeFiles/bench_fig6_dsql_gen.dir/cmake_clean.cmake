file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dsql_gen.dir/bench_fig6_dsql_gen.cc.o"
  "CMakeFiles/bench_fig6_dsql_gen.dir/bench_fig6_dsql_gen.cc.o.d"
  "bench_fig6_dsql_gen"
  "bench_fig6_dsql_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dsql_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
