file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_suite.dir/bench_tpch_suite.cc.o"
  "CMakeFiles/bench_tpch_suite.dir/bench_tpch_suite.cc.o.d"
  "bench_tpch_suite"
  "bench_tpch_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
