# Empty dependencies file for bench_fig3_memo.
# This may be replaced when dependencies are built.
