file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_memo.dir/bench_fig3_memo.cc.o"
  "CMakeFiles/bench_fig3_memo.dir/bench_fig3_memo.cc.o.d"
  "bench_fig3_memo"
  "bench_fig3_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
