file(REMOVE_RECURSE
  "CMakeFiles/bench_top_down.dir/bench_top_down.cc.o"
  "CMakeFiles/bench_top_down.dir/bench_top_down.cc.o.d"
  "bench_top_down"
  "bench_top_down.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_top_down.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
