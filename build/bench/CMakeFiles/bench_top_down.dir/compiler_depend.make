# Empty compiler generated dependencies file for bench_top_down.
# This may be replaced when dependencies are built.
