file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_q20.dir/bench_fig7_q20.cc.o"
  "CMakeFiles/bench_fig7_q20.dir/bench_fig7_q20.cc.o.d"
  "bench_fig7_q20"
  "bench_fig7_q20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_q20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
