
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_q20.cc" "bench/CMakeFiles/bench_fig7_q20.dir/bench_fig7_q20.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_q20.dir/bench_fig7_q20.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tpch/CMakeFiles/pdw_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/pdw/CMakeFiles/pdw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/appliance/CMakeFiles/pdw_appliance.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pdw_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dms/CMakeFiles/pdw_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlio/CMakeFiles/pdw_xmlio.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/pdw_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/pdw_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/pdw_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/pdw_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pdw_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pdw_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pdw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
