# Empty compiler generated dependencies file for bench_fig7_q20.
# This may be replaced when dependencies are built.
