# Empty dependencies file for bench_cost_model_ablation.
# This may be replaced when dependencies are built.
