file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_model_ablation.dir/bench_cost_model_ablation.cc.o"
  "CMakeFiles/bench_cost_model_ablation.dir/bench_cost_model_ablation.cc.o.d"
  "bench_cost_model_ablation"
  "bench_cost_model_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_model_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
