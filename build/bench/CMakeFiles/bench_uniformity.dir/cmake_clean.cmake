file(REMOVE_RECURSE
  "CMakeFiles/bench_uniformity.dir/bench_uniformity.cc.o"
  "CMakeFiles/bench_uniformity.dir/bench_uniformity.cc.o.d"
  "bench_uniformity"
  "bench_uniformity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uniformity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
