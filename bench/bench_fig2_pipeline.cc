// Reproduces the Figure 2 data flow as a timing profile: for each TPC-H
// query, the wall time of every pipeline stage — (1) PDW parse, (2) "SQL
// Server" compilation (bind + normalize + memo exploration), (3) XML
// export, (4a) PDW memo parse, (4b) bottom-up parallel optimization, and
// DSQL generation. Shows where compilation time goes and that the XML
// interface overhead is tolerable.

#include <cstdio>

#include "bench/bench_util.h"
#include "optimizer/serial_optimizer.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "sql/parser.h"
#include "xmlio/memo_xml.h"

namespace pdw {
namespace {

void Run() {
  bench::Header("FIG2: query optimization pipeline stage timings");
  auto appliance = bench::MakeTpchAppliance(8, 0.1);
  const Catalog& shell = appliance->shell();

  std::printf("\n%-5s | %9s %9s %9s %9s %9s %9s | %9s | %7s %7s\n", "query",
              "parse ms", "compile", "xml out", "xml in", "pdw opt",
              "dsql gen", "total", "groups", "xml KB");

  for (const auto& q : tpch::Queries()) {
    constexpr int kReps = 5;
    double t_parse = 0, t_compile = 0, t_export = 0, t_import = 0,
           t_pdw = 0, t_dsql = 0;
    int groups = 0;
    size_t xml_bytes = 0;
    bool failed = false;
    for (int rep = 0; rep < kReps && !failed; ++rep) {
      std::unique_ptr<sql::SelectStatement> stmt;
      t_parse += bench::TimeMs([&]() {
        auto r = sql::ParseSelect(q.sql);
        if (r.ok()) stmt = std::move(r).ValueOrDie();
      });
      if (!stmt) { failed = true; break; }

      CompilationResult comp;
      t_compile += bench::TimeMs([&]() {
        auto r = CompileSelect(shell, *stmt);
        if (r.ok()) comp = std::move(r).ValueOrDie();
      });
      if (!comp.memo) { failed = true; break; }
      groups = comp.memo->num_groups();

      std::string xml_text;
      t_export += bench::TimeMs(
          [&]() { xml_text = MemoToXml(*comp.memo, *comp.stats); });
      xml_bytes = xml_text.size();

      ImportedMemo imported;
      t_import += bench::TimeMs([&]() {
        auto r = MemoFromXml(xml_text, shell);
        if (r.ok()) imported = std::move(r).ValueOrDie();
      });
      if (!imported.memo) { failed = true; break; }

      PdwPlanResult plan;
      t_pdw += bench::TimeMs([&]() {
        PdwOptimizer opt(imported.memo.get(), shell.topology());
        auto r = opt.Optimize();
        if (r.ok()) plan = std::move(r).ValueOrDie();
      });
      if (!plan.plan) { failed = true; break; }

      t_dsql += bench::TimeMs([&]() {
        auto r = GenerateDsql(*plan.plan, comp.output_names);
        (void)r;
      });
    }
    if (failed) {
      std::printf("%-5s | compile failed\n", q.name.c_str());
      continue;
    }
    double inv = 1.0 / kReps;
    double total = (t_parse + t_compile + t_export + t_import + t_pdw +
                    t_dsql) * inv;
    std::printf(
        "%-5s | %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f | %9.3f | %7d %7.1f\n",
        q.name.c_str(), t_parse * inv, t_compile * inv, t_export * inv,
        t_import * inv, t_pdw * inv, t_dsql * inv, total, groups,
        static_cast<double>(xml_bytes) / 1024.0);
  }
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
