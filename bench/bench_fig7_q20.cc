// Reproduces Figure 7: the full parallel plan for TPC-H Q20. The paper's
// plan has four DSQL steps: (0) early reduction of lineitem against part,
// (1) shuffle on l_partkey with a local/global group-by split, (2) the
// partsupp semi-joins with a shuffle on ps_suppkey (again local/global),
// (3) the Return step joining supplier/nation with a merge sort on s_name.
// This bench prints our generated plan and DSQL steps, verifies the key
// structural features, and executes the plan against the reference.

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"

namespace pdw {
namespace {

int CountAggPhase(const PlanNode& n, AggPhase phase) {
  int c = (n.kind == PhysOpKind::kHashAggregate && n.agg_phase == phase) ? 1 : 0;
  for (const auto& ch : n.children) c += CountAggPhase(*ch, phase);
  return c;
}

bool ShufflesOn(const DsqlPlan& plan, const std::string& column) {
  for (const auto& s : plan.steps) {
    if (s.kind != DsqlStepKind::kDms || s.move_kind != DmsOpKind::kShuffle) {
      continue;
    }
    for (int ord : s.hash_column_ordinals) {
      if (s.dest_schema.column(ord).name == column) return true;
    }
  }
  return false;
}

void Run() {
  bench::Header("FIG7: TPC-H Q20 parallel plan and DSQL generation");
  auto appliance = bench::MakeTpchAppliance(8, 0.2);
  Session session = appliance->Connect();
  const tpch::TpchQuery* q20 = tpch::FindQuery("Q20");

  auto comp = CompilePdwQuery(appliance->shell(), q20->sql);
  if (!comp.ok()) {
    std::printf("compile failed: %s\n", comp.status().ToString().c_str());
    return;
  }
  std::printf("\nparallel plan (modeled DMS cost %.6f):\n%s",
              comp->parallel.cost, PlanTreeToString(*comp->parallel.plan).c_str());

  auto dsql = GenerateDsql(*comp->parallel.plan, comp->output_names);
  if (!dsql.ok()) {
    std::printf("dsql failed: %s\n", dsql.status().ToString().c_str());
    return;
  }
  std::printf("\n%s", dsql->ToString().c_str());

  std::printf("\nstructural comparison with the paper's Fig. 7 plan:\n");
  std::printf("  DSQL steps:                 %zu (paper: 4)\n",
              dsql->steps.size());
  std::printf("  local/global agg splits:    local=%d global=%d (paper: 2 "
              "LocalGB/GlobalGB pairs)\n",
              CountAggPhase(*comp->parallel.plan, AggPhase::kLocal),
              CountAggPhase(*comp->parallel.plan, AggPhase::kGlobal));
  std::printf("  shuffle on l_partkey:       %s (paper: yes, step 1)\n",
              ShufflesOn(*dsql, "l_partkey") ? "yes" : "no");
  std::printf("  shuffle on ps_suppkey:      %s (paper: yes, step 2)\n",
              ShufflesOn(*dsql, "ps_suppkey") ? "yes" : "no");
  std::printf("  merge-sorted Return:        %s (paper: ORDER BY s_name)\n",
              !dsql->steps.back().merge_sort.empty() ? "yes" : "no");

  // Execute both ways.
  auto dist = session.Run(q20->sql);
  auto ref = appliance->ExecuteReference(q20->sql);
  if (dist.ok() && ref.ok()) {
    std::printf("\nexecution: distributed=%zu rows, reference=%zu rows, "
                "match=%s, bytes moved=%.0f, wall=%.3fs\n",
                dist->rows.size(), ref->rows.size(),
                RowSetsEqual(dist->rows, ref->rows) ? "YES" : "NO",
                dist->dms_metrics.network.bytes +
                    dist->dms_metrics.bulkcopy.bytes,
                dist->measured_seconds);
    for (size_t i = 0; i < dist->rows.size() && i < 5; ++i) {
      std::printf("  %s\n", RowToString(dist->rows[i]).c_str());
    }
  } else if (!dist.ok()) {
    std::printf("distributed execution failed: %s\n",
                dist.status().ToString().c_str());
  }
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
