#ifndef PDW_BENCH_BENCH_UTIL_H_
#define PDW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "appliance/appliance.h"
#include "obs/query_profile.h"
#include "tpch/tpch.h"

namespace pdw::bench {

inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times one callable in milliseconds.
template <typename F>
double TimeMs(F&& f) {
  double t0 = NowSeconds();
  f();
  return (NowSeconds() - t0) * 1e3;
}

/// Builds a loaded TPC-H appliance.
inline std::unique_ptr<Appliance> MakeTpchAppliance(int nodes = 8,
                                                    double scale = 0.1,
                                                    double skew = 0) {
  auto appliance = std::make_unique<Appliance>(Topology{nodes});
  Status s = tpch::CreateTpchTables(appliance.get());
  if (!s.ok()) {
    std::fprintf(stderr, "create tables: %s\n", s.ToString().c_str());
    std::abort();
  }
  tpch::TpchConfig cfg;
  cfg.scale = scale;
  cfg.skew = skew;
  s = tpch::LoadTpch(appliance.get(), cfg);
  if (!s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    std::abort();
  }
  return appliance;
}

inline void Header(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

/// Collects per-query QueryProfiles and dumps them as one JSON document.
/// Enabled by `--json[=path]` on the command line or the PDW_PROFILE_JSON
/// environment variable (value = output path); `--json` alone or an empty
/// env value writes to stdout. Disabled sinks ignore Add().
class ProfileJsonSink {
 public:
  ProfileJsonSink(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        enabled_ = true;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        enabled_ = true;
        path_ = argv[i] + 7;
      }
    }
    if (const char* env = std::getenv("PDW_PROFILE_JSON")) {
      enabled_ = true;
      if (path_.empty()) path_ = env;
    }
  }

  bool enabled() const { return enabled_; }

  void Add(const std::string& name, const obs::QueryProfile& profile) {
    if (enabled_) profiles_.emplace_back(name, profile.ToJson());
  }

  /// Writes `{"profiles":[{"name":...,"profile":{...}},...]}` and reports
  /// where it went. Safe to call on a disabled sink (no-op).
  void Flush() {
    if (!enabled_ || flushed_) return;
    flushed_ = true;
    std::string out = "{\"profiles\":[";
    for (size_t i = 0; i < profiles_.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"name\":\"" + profiles_[i].first +
             "\",\"profile\":" + profiles_[i].second + "}";
    }
    out += "]}\n";
    if (path_.empty()) {
      std::fputs(out.c_str(), stdout);
      return;
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for profile JSON\n", path_.c_str());
      return;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %zu query profiles to %s\n", profiles_.size(),
                path_.c_str());
  }

  ~ProfileJsonSink() { Flush(); }

 private:
  bool enabled_ = false;
  bool flushed_ = false;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> profiles_;
};

}  // namespace pdw::bench

#endif  // PDW_BENCH_BENCH_UTIL_H_
