#ifndef PDW_BENCH_BENCH_UTIL_H_
#define PDW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "appliance/appliance.h"
#include "tpch/tpch.h"

namespace pdw::bench {

inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times one callable in milliseconds.
template <typename F>
double TimeMs(F&& f) {
  double t0 = NowSeconds();
  f();
  return (NowSeconds() - t0) * 1e3;
}

/// Builds a loaded TPC-H appliance.
inline std::unique_ptr<Appliance> MakeTpchAppliance(int nodes = 8,
                                                    double scale = 0.1,
                                                    double skew = 0) {
  auto appliance = std::make_unique<Appliance>(Topology{nodes});
  Status s = tpch::CreateTpchTables(appliance.get());
  if (!s.ok()) {
    std::fprintf(stderr, "create tables: %s\n", s.ToString().c_str());
    std::abort();
  }
  tpch::TpchConfig cfg;
  cfg.scale = scale;
  cfg.skew = skew;
  s = tpch::LoadTpch(appliance.get(), cfg);
  if (!s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    std::abort();
  }
  return appliance;
}

inline void Header(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace pdw::bench

#endif  // PDW_BENCH_BENCH_UTIL_H_
