// DMS wire-codec throughput: the legacy materialized row path vs the
// streaming columnar pipeline, across shuffle and broadcast moves and
// 1/4/8-node topologies. Reports wall seconds and component bytes per
// configuration plus the columnar speedup; --json emits a machine-readable
// document for regression tracking.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "dms/dms_service.h"
#include "dms/wire_format.h"

namespace pdw {
namespace {

RowVector SyntheticRows(int count, int salt) {
  RowVector rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    int v = i * 7 + salt;
    rows.push_back(Row{Datum::Int(v), Datum::Double(v * 1.5),
                       Datum::Varchar("payload-" + std::to_string(v % 89)),
                       Datum::Date(9000 + v % 700)});
  }
  return rows;
}

struct RunResult {
  double wall_seconds = 0;
  double network_bytes = 0;
  double total_bytes = 0;  // reader + network + writer + bulkcopy
  double rows_moved = 0;
  DmsRunMetrics metrics;  // full per-component breakdown (--detail)
};

RunResult MeasureOnce(DmsService& dms, int nodes, DmsOpKind kind,
                      DmsCodec codec, int rows_per_node) {
  std::vector<RowVector> slots(static_cast<size_t>(nodes + 1));
  for (int n = 0; n < nodes; ++n) {
    slots[static_cast<size_t>(n)] = SyntheticRows(rows_per_node, n * 1000);
  }
  DmsRunMetrics m;
  DmsExecOptions opts;
  opts.codec = codec;
  // Fan per-node work out over the pool only when the host actually has
  // cores for it: on a 1–2 core machine the extra threads just interleave
  // on the same core and the context-switch churn distorts both codecs.
  ThreadPool* pool =
      std::thread::hardware_concurrency() > 2 ? &ThreadPool::Global() : nullptr;
  auto out = dms.Execute(kind, std::move(slots), {0}, &m, pool, opts);
  if (!out.ok()) {
    std::fprintf(stderr, "DMS failed: %s\n", out.status().ToString().c_str());
    std::abort();
  }
  RunResult r;
  r.wall_seconds = m.wall_seconds;
  r.network_bytes = m.network.bytes;
  r.total_bytes =
      m.reader.bytes + m.network.bytes + m.writer.bytes + m.bulkcopy.bytes;
  r.rows_moved = m.rows_moved;
  r.metrics = m;
  return r;
}

/// Measures both codecs as interleaved pairs: each repeat runs row then
/// columnar back to back, so background load on the (often shared) machine
/// hits both sides of the comparison, not whichever codec's block it
/// happened to overlap. Best-of-N per codec; rep -1 is an unmeasured
/// warmup for first-touch page faults and allocator arena growth.
void RunPair(int nodes, DmsOpKind kind, int rows_per_node, int repeats,
             RunResult* row_best, RunResult* col_best) {
  DmsService dms(nodes);
  for (int rep = -1; rep < repeats; ++rep) {
    RunResult row = MeasureOnce(dms, nodes, kind, DmsCodec::kRow,
                                rows_per_node);
    RunResult col = MeasureOnce(dms, nodes, kind, DmsCodec::kColumnar,
                                rows_per_node);
    if (rep < 0) continue;
    if (rep == 0 || row.wall_seconds < row_best->wall_seconds) *row_best = row;
    if (rep == 0 || col.wall_seconds < col_best->wall_seconds) *col_best = col;
  }
}

void Run(bool json, bool detail) {
  const int kRowsPerNode = 40000;
  const int kRepeats = 5;
  const int kTopologies[] = {1, 4, 8};
  const DmsOpKind kKinds[] = {DmsOpKind::kShuffle, DmsOpKind::kBroadcastMove};

  if (!json) {
    bench::Header("DMS throughput: row codec vs streaming columnar pipeline");
    std::printf("%d rows/node, best of %d runs\n\n", kRowsPerNode, kRepeats);
    std::printf("%-10s %-6s | %12s %14s | %12s %14s | %8s %8s\n", "move",
                "nodes", "row wall s", "row net MB", "col wall s", "col net MB",
                "speedup", "bytes x");
  } else {
    std::printf("{\n  \"rows_per_node\": %d,\n  \"configs\": [\n",
                kRowsPerNode);
  }

  bool first = true;
  double worst_speedup = 1e9;
  for (DmsOpKind kind : kKinds) {
    for (int nodes : kTopologies) {
      RunResult row;
      RunResult col;
      RunPair(nodes, kind, kRowsPerNode, kRepeats, &row, &col);
      double speedup = col.wall_seconds > 0
                           ? row.wall_seconds / col.wall_seconds
                           : 0;
      double bytes_ratio =
          col.total_bytes > 0 ? row.total_bytes / col.total_bytes : 0;
      // The tracked metric is the better of the two reductions: the
      // pipeline may win on wall time (pipelining + vectorized pack) or on
      // bytes moved (tag-free wire format, broadcast packs once).
      double reduction = speedup > bytes_ratio ? speedup : bytes_ratio;
      if (nodes > 1 && reduction < worst_speedup) worst_speedup = reduction;
      if (json) {
        std::printf("%s    {\"move\": \"%s\", \"nodes\": %d, "
                    "\"row_wall_seconds\": %.6f, \"row_network_bytes\": %.0f, "
                    "\"row_total_bytes\": %.0f, "
                    "\"columnar_wall_seconds\": %.6f, "
                    "\"columnar_network_bytes\": %.0f, "
                    "\"columnar_total_bytes\": %.0f, "
                    "\"rows_moved\": %.0f, "
                    "\"wall_speedup\": %.3f, \"bytes_ratio\": %.3f}",
                    first ? "" : ",\n", DmsOpKindToString(kind), nodes,
                    row.wall_seconds, row.network_bytes, row.total_bytes,
                    col.wall_seconds, col.network_bytes, col.total_bytes,
                    col.rows_moved, speedup, bytes_ratio);
        first = false;
      } else {
        std::printf("%-10s %-6d | %12.4f %14.2f | %12.4f %14.2f | %7.2fx %7.2fx\n",
                    DmsOpKindToString(kind), nodes, row.wall_seconds,
                    row.network_bytes / 1e6, col.wall_seconds,
                    col.network_bytes / 1e6, speedup, bytes_ratio);
        if (detail) {
          auto line = [](const char* label, const DmsRunMetrics& m) {
            std::printf("    %-4s reader %.4fs  network %.4fs  writer %.4fs"
                        "  bulkcopy %.4fs\n",
                        label, m.reader.seconds, m.network.seconds,
                        m.writer.seconds, m.bulkcopy.seconds);
          };
          line("row", row.metrics);
          line("col", col.metrics);
        }
      }
    }
  }
  if (json) {
    std::printf("\n  ],\n  \"min_multinode_reduction\": %.3f\n}\n",
                worst_speedup);
  } else {
    std::printf("\nmin multi-node reduction (wall or bytes, whichever is "
                "better): %.2fx\n",
                worst_speedup);
  }
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) {
  bool json = false;
  bool detail = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--detail") == 0) detail = true;
  }
  pdw::Run(json, detail);
  return 0;
}
