// Compile-time scaling of the parallel optimizer (PR: multi-threaded memo
// enumeration with beam fallback). Two result tables:
//
//  SCALE — full-DP join enumeration on star/chain/clique stress queries,
//  compile time vs PDW_OPT_THREADS and the speedup over the serial run.
//  The memo is byte-identical at every thread count (asserted here too),
//  so the speedup is free: same plan, less wall clock.
//
//  BEAM — graduated degradation on 10–25-relation queries with stock
//  knobs: beam compile time, and where full DP is still feasible, the
//  plan-cost regression of the beam plan (target: within 10%).
//
// `--json[=path]` dumps both tables as one JSON document; the committed
// baseline lives at bench/BENCH_optimizer.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "optimizer/join_stress.h"
#include "optimizer/serial_optimizer.h"

namespace pdw {
namespace {

constexpr int kReps = 3;
const int kThreadCounts[] = {1, 2, 4, 8};

MemoOptions FullDpOptions(int threads) {
  MemoOptions opts;
  opts.max_dp_relations = 18;
  opts.expr_budget = 20'000'000;
  opts.opt_threads = threads;
  return opts;
}

double BestCompileMs(const JoinStressQuery& q, const MemoOptions& opts,
                     std::string* memo_text = nullptr, double* cost = nullptr,
                     bool* beam_used = nullptr) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Result<CompilationResult> r(Status::Internal("not compiled"));
    double ms = bench::TimeMs([&] { r = CompileQuery(q.catalog, q.sql, opts); });
    if (!r.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", r.status().ToString().c_str());
      std::abort();
    }
    best = std::min(best, ms);
    if (rep == 0) {
      if (memo_text != nullptr) *memo_text = r->memo->ToString();
      if (beam_used != nullptr) *beam_used = r->memo->beam_used();
      if (cost != nullptr) {
        auto plan = ExtractBestSerialPlan(r->memo.get(), opts.opt_threads);
        *cost = plan.ok() ? SerialWinnerCost(r->memo.get(), r->memo->root())
                          : -1;
      }
    }
  }
  return best;
}

struct ScaleRow {
  JoinStressShape shape;
  int relations;
  double ms_by_threads[4];
};

struct BeamRow {
  JoinStressShape shape;
  int relations;
  double beam_ms = 0;
  double beam_cost = -1;
  double full_ms = -1;   ///< -1: full DP infeasible at this size.
  double full_cost = -1;
  bool beam_used = false;
};

void Run(bool json_enabled, const std::string& json_path) {
  bench::Header("OPT-SCALE: parallel memo enumeration, full DP");
  std::printf("%-8s %4s | %10s %10s %10s %10s | %8s\n", "shape", "rels",
              "1 thr ms", "2 thr ms", "4 thr ms", "8 thr ms", "speedup");

  const ScaleRow scale_cases[] = {
      {JoinStressShape::kChain, 18, {}},
      {JoinStressShape::kStar, 15, {}},
      {JoinStressShape::kClique, 12, {}},
  };
  std::vector<ScaleRow> scale;
  for (ScaleRow row : scale_cases) {
    JoinStressQuery q =
        MakeJoinStressQuery({row.shape, row.relations, /*seed=*/42});
    std::string serial_memo;
    for (size_t t = 0; t < 4; ++t) {
      std::string memo_text;
      row.ms_by_threads[t] =
          BestCompileMs(q, FullDpOptions(kThreadCounts[t]), &memo_text);
      if (t == 0) {
        serial_memo = std::move(memo_text);
      } else if (memo_text != serial_memo) {
        std::fprintf(stderr, "memo diverged at %d threads!\n", kThreadCounts[t]);
        std::abort();
      }
    }
    double speedup = row.ms_by_threads[0] / row.ms_by_threads[3];
    std::printf("%-8s %4d | %10.2f %10.2f %10.2f %10.2f | %7.2fx\n",
                JoinStressShapeName(row.shape), row.relations,
                row.ms_by_threads[0], row.ms_by_threads[1],
                row.ms_by_threads[2], row.ms_by_threads[3], speedup);
    scale.push_back(row);
  }

  bench::Header("OPT-BEAM: graduated fallback, stock knobs (beam width 64)");
  std::printf("%-8s %4s | %10s %12s | %10s %12s | %s\n", "shape", "rels",
              "beam ms", "beam cost", "full ms", "full cost", "regression");

  // Full DP is kept as a reference only while tractable: a clique's
  // expression count grows ~3^n (12 relations ≈ 0.5M exprs), a star's
  // ~n*2^n (15 ≈ 0.5M); beyond that only the beam row is measured.
  const BeamRow beam_cases[] = {
      {JoinStressShape::kChain, 15},  {JoinStressShape::kChain, 25},
      {JoinStressShape::kStar, 10},   {JoinStressShape::kStar, 15},
      {JoinStressShape::kStar, 20},   {JoinStressShape::kStar, 25},
      {JoinStressShape::kClique, 10}, {JoinStressShape::kClique, 15},
      {JoinStressShape::kClique, 20}, {JoinStressShape::kClique, 25},
  };
  auto full_dp_feasible = [](const BeamRow& row) {
    switch (row.shape) {
      case JoinStressShape::kChain:
        return true;
      case JoinStressShape::kStar:
        return row.relations <= 15;
      case JoinStressShape::kClique:
        return row.relations <= 12;
    }
    return false;
  };

  std::vector<BeamRow> beam;
  for (BeamRow row : beam_cases) {
    JoinStressQuery q =
        MakeJoinStressQuery({row.shape, row.relations, /*seed=*/42});
    MemoOptions stock;  // max_dp_relations 9 => every case takes the beam
    stock.opt_threads = 8;
    row.beam_ms = BestCompileMs(q, stock, nullptr, &row.beam_cost,
                                &row.beam_used);
    if (full_dp_feasible(row)) {
      row.full_ms = BestCompileMs(q, FullDpOptions(8), nullptr, &row.full_cost);
    }
    if (row.full_ms >= 0) {
      std::printf("%-8s %4d | %10.2f %12.4g | %10.2f %12.4g | %+.1f%%%s\n",
                  JoinStressShapeName(row.shape), row.relations, row.beam_ms,
                  row.beam_cost, row.full_ms, row.full_cost,
                  (row.beam_cost / row.full_cost - 1) * 100,
                  row.beam_used ? "" : "  [no beam]");
    } else {
      std::printf("%-8s %4d | %10.2f %12.4g | %10s %12s | full DP infeasible\n",
                  JoinStressShapeName(row.shape), row.relations, row.beam_ms,
                  row.beam_cost, "-", "-");
    }
    beam.push_back(row);
  }

  if (!json_enabled) return;
  std::string out = "{\"bench\":\"optimizer_scaling\",\"threads\":[1,2,4,8]";
  out += ",\"full_dp\":[";
  for (size_t i = 0; i < scale.size(); ++i) {
    const ScaleRow& r = scale[i];
    if (i > 0) out += ",";
    out += StringFormat(
        "{\"shape\":\"%s\",\"relations\":%d,\"compile_ms\":[%.3f,%.3f,%.3f,"
        "%.3f],\"speedup_8t\":%.3f}",
        JoinStressShapeName(r.shape), r.relations, r.ms_by_threads[0],
        r.ms_by_threads[1], r.ms_by_threads[2], r.ms_by_threads[3],
        r.ms_by_threads[0] / r.ms_by_threads[3]);
  }
  out += "],\"beam\":[";
  for (size_t i = 0; i < beam.size(); ++i) {
    const BeamRow& r = beam[i];
    if (i > 0) out += ",";
    out += StringFormat(
        "{\"shape\":\"%s\",\"relations\":%d,\"beam_ms\":%.3f,"
        "\"beam_used\":%s,\"beam_cost\":%.6g",
        JoinStressShapeName(r.shape), r.relations, r.beam_ms,
        r.beam_used ? "true" : "false", r.beam_cost);
    if (r.full_ms >= 0) {
      out += StringFormat(",\"full_ms\":%.3f,\"full_cost\":%.6g,"
                          "\"cost_regression\":%.6f",
                          r.full_ms, r.full_cost,
                          r.beam_cost / r.full_cost - 1);
    }
    out += "}";
  }
  out += "]}\n";
  if (json_path.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote scaling results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) {
  bool json = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      path = argv[i] + 7;
    }
  }
  pdw::Run(json, path);
  return 0;
}
