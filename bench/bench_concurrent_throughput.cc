// Multi-session throughput of the unified Run API: N client threads each
// fire a stream of TPC-H-shaped queries at one appliance, with the plan
// cache off and on. Reports queries/sec per configuration plus the cache's
// hit statistics — the control-node compile pipeline is the shared serial
// resource the cache removes, so the cached configurations should scale
// visibly better.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace pdw {
namespace {

const char* kWorkload[] = {
    "SELECT c_custkey, c_name FROM customer WHERE c_acctbal > 5000",
    "SELECT o_custkey, COUNT(*) AS c, SUM(o_totalprice) AS s FROM orders "
    "GROUP BY o_custkey",
    "SELECT c_name, o_totalprice FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_totalprice > 200000",
    "SELECT COUNT(*) AS c FROM lineitem, orders WHERE l_orderkey = o_orderkey",
    "SELECT l_returnflag, AVG(l_quantity) AS aq FROM lineitem "
    "GROUP BY l_returnflag",
};

struct Config {
  int threads;
  bool use_cache;
};

double RunConfig(Appliance* appliance, const Config& cfg, int reps_per_thread,
                 std::atomic<int>* errors) {
  std::vector<std::thread> threads;
  double t0 = bench::NowSeconds();
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      // One session per client thread, carrying the cache choice as its
      // session default instead of per-call options.
      QueryOptions defaults;
      defaults.compile.use_plan_cache = cfg.use_cache;
      Session session = appliance->Connect(defaults);
      for (int rep = 0; rep < reps_per_thread; ++rep) {
        size_t qi = static_cast<size_t>(t + rep) % std::size(kWorkload);
        auto r = session.Run(kWorkload[qi]);
        if (!r.ok()) errors->fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  return bench::NowSeconds() - t0;
}

void Run(bench::ProfileJsonSink* sink) {
  bench::Header("CONCURRENT-THROUGHPUT: N sessions x Run(), cache off/on");
  auto appliance = bench::MakeTpchAppliance(8, 0.05);

  // Per-thread rep count keeps total work constant across configurations.
  constexpr int kTotalQueries = 48;
  std::printf("\n%-8s %-6s | %8s %10s | %8s %8s %8s\n", "threads", "cache",
              "total s", "queries/s", "hits", "misses", "inval");

  for (bool use_cache : {false, true}) {
    appliance->plan_cache().Clear();
    for (int threads : {1, 4, 16}) {
      // Fresh cache per thread-count row so hit counts are comparable.
      appliance->plan_cache().Clear();
      PlanCache::Stats before = appliance->plan_cache().stats();
      std::atomic<int> errors{0};
      Config cfg{threads, use_cache};
      double seconds =
          RunConfig(appliance.get(), cfg, kTotalQueries / threads, &errors);
      if (errors.load() > 0) {
        std::printf("%d errors in threads=%d cache=%d\n", errors.load(),
                    threads, use_cache);
        continue;
      }
      PlanCache::Stats after = appliance->plan_cache().stats();
      std::printf("%-8d %-6s | %8.3f %10.1f | %8llu %8llu %8llu\n", threads,
                  use_cache ? "on" : "off", seconds,
                  seconds > 0 ? kTotalQueries / seconds : 0,
                  static_cast<unsigned long long>(after.hits - before.hits),
                  static_cast<unsigned long long>(after.misses - before.misses),
                  static_cast<unsigned long long>(after.invalidations -
                                                  before.invalidations));
    }
  }

  // One profiled run for the JSON sink, cache warm.
  if (sink->enabled()) {
    QueryOptions opts;
    opts.compile.use_plan_cache = true;
    opts.observe.collect_operator_actuals = true;
    auto r = appliance->Connect().Run(kWorkload[0], opts);
    if (r.ok()) sink->Add("throughput/warm-cache", r->profile);
  }
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) {
  pdw::bench::ProfileJsonSink sink(argc, argv);
  pdw::Run(&sink);
  sink.Flush();
  return 0;
}
