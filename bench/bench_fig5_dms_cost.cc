// Reproduces Figure 5 / §3.3.3: the DMS operator cost structure and the λ
// calibration. Part 1 calibrates the per-byte λ constants against the DMS
// simulator's component implementations. Part 2 runs each of the 7 DMS
// operations end-to-end and compares measured component times against the
// model's predictions (shape check: which component dominates, how costs
// scale with rows and nodes).

#include <cstdio>

#include "bench/bench_util.h"
#include "dms/dms_service.h"
#include "pdw/cost_model.h"

namespace pdw {
namespace {

RowVector SyntheticRows(int count) {
  RowVector rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    rows.push_back(Row{Datum::Int(i), Datum::Double(i * 1.5),
                       Datum::Varchar("payload-" + std::to_string(i % 89)),
                       Datum::Date(9000 + i % 700)});
  }
  return rows;
}

void Run() {
  bench::Header("FIG5: DMS operator cost components and calibration");

  // --- Part 1: λ calibration (§3.3.3 "cost calibration") ---
  DmsCostParameters lambdas = CalibrateCostModel(50000);
  std::printf("\ncalibrated per-byte constants (seconds/byte):\n");
  std::printf("  lambda_reader_direct = %.3e\n", lambdas.lambda_reader_direct);
  std::printf("  lambda_reader_hash   = %.3e  (hash overhead: %.2fx)\n",
              lambdas.lambda_reader_hash,
              lambdas.lambda_reader_hash / lambdas.lambda_reader_direct);
  std::printf("  lambda_network       = %.3e\n", lambdas.lambda_network);
  std::printf("  lambda_writer        = %.3e\n", lambdas.lambda_writer);
  std::printf("  lambda_bulkcopy      = %.3e  (dominant, as in the paper)\n",
              lambdas.lambda_bulkcopy);

  // --- Part 2: measured vs modeled per operation ---
  const int kNodes = 8;
  DmsService dms(kNodes);
  DmsCostModel model(lambdas, kNodes);
  const int kRows = 40000;

  std::printf("\n%-22s | %10s %10s %10s %10s | %10s %10s\n", "operation",
              "reader s", "network s", "writer s", "blkcpy s", "meas wall",
              "model");
  struct Case {
    DmsOpKind kind;
    bool replicated_source;
    bool single_source;
  };
  for (const Case& c : {Case{DmsOpKind::kShuffle, false, false},
                        Case{DmsOpKind::kPartitionMove, false, false},
                        Case{DmsOpKind::kBroadcastMove, false, false},
                        Case{DmsOpKind::kTrimMove, true, false},
                        Case{DmsOpKind::kControlNodeMove, false, true},
                        Case{DmsOpKind::kReplicatedBroadcast, false, true},
                        Case{DmsOpKind::kRemoteCopyToSingle, false, false}}) {
    std::vector<RowVector> slots(static_cast<size_t>(kNodes + 1));
    double width = 0;
    if (c.replicated_source) {
      RowVector replica = SyntheticRows(kRows);
      width = static_cast<double>(RowWidth(replica[0]));
      for (int n = 0; n < kNodes; ++n) slots[static_cast<size_t>(n)] = replica;
    } else if (c.single_source) {
      int slot = c.kind == DmsOpKind::kControlNodeMove ? kNodes : 0;
      slots[static_cast<size_t>(slot)] = SyntheticRows(kRows);
      width = static_cast<double>(RowWidth(slots[static_cast<size_t>(slot)][0]));
    } else {
      for (int n = 0; n < kNodes; ++n) {
        slots[static_cast<size_t>(n)] = SyntheticRows(kRows / kNodes);
      }
      width = static_cast<double>(RowWidth(slots[0][0]));
    }
    DmsRunMetrics m;
    std::vector<int> hash_cols = {0};
    auto out = dms.Execute(c.kind, std::move(slots), hash_cols, &m);
    if (!out.ok()) {
      std::printf("%-22s FAILED: %s\n", DmsOpKindToString(c.kind),
                  out.status().ToString().c_str());
      continue;
    }
    double modeled = model.Cost(c.kind, kRows, width);
    std::printf("%-22s | %10.4f %10.4f %10.4f %10.4f | %10.4f %10.4f\n",
                DmsOpKindToString(c.kind), m.reader.seconds,
                m.network.seconds, m.writer.seconds, m.bulkcopy.seconds,
                m.wall_seconds, modeled);
  }

  // --- Part 3: model scaling in rows (linearity) and nodes ---
  std::printf("\nmodeled shuffle cost vs rows (width=32, nodes=8):\n");
  for (double rows : {1e4, 1e5, 1e6, 1e7}) {
    std::printf("  rows=%8.0f  cost=%.5f\n", rows,
                model.Cost(DmsOpKind::kShuffle, rows, 32));
  }
  std::printf("\nmodeled cost vs nodes (1e6 rows, width=32):\n");
  std::printf("  %-8s %12s %12s %12s\n", "nodes", "shuffle", "broadcast",
              "gather");
  for (int n : {2, 4, 8, 16, 32}) {
    DmsCostModel m(lambdas, n);
    std::printf("  %-8d %12.5f %12.5f %12.5f\n", n,
                m.Cost(DmsOpKind::kShuffle, 1e6, 32),
                m.Cost(DmsOpKind::kBroadcastMove, 1e6, 32),
                m.Cost(DmsOpKind::kPartitionMove, 1e6, 32));
  }
  std::printf(
      "\nbroadcast/shuffle crossover: broadcast wins when the broadcast "
      "side is ~N times smaller.\n");
  DmsCostModel m8(lambdas, 8);
  for (double small_rows : {1e4, 5e4, 1e5, 1.25e5, 2e5}) {
    double broadcast = m8.Cost(DmsOpKind::kBroadcastMove, small_rows, 32);
    double shuffle_both = m8.Cost(DmsOpKind::kShuffle, 1e6, 32) +
                          m8.Cost(DmsOpKind::kShuffle, small_rows, 32);
    std::printf("  small side=%8.0f rows: broadcast=%.5f vs shuffle both="
                "%.5f -> %s\n",
                small_rows, broadcast, shuffle_both,
                broadcast < shuffle_both ? "BROADCAST" : "SHUFFLE");
  }
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
