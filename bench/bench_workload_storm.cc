// Workload-storm bench: 16 client sessions fire a mixed TPC-H-shaped
// workload (with repeats) at one appliance and we compare three
// configurations — no workload management, bounded admission (WLM), and
// WLM plus the result cache — on p50/p99 latency and total throughput.
// A second phase deliberately overloads a tiny admission gate and counts
// how many requests fast-fail with kOverloaded instead of piling up.
//
//   $ ./build/bench/bench_workload_storm [--json[=path]]
//
// --json emits a machine-readable summary of every configuration.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault.h"

namespace pdw {
namespace {

constexpr int kThreads = 16;
constexpr int kRepsPerThread = 12;

// Mixed shapes: scans, aggregations, distributed joins. Sixteen threads
// over six statements guarantees heavy repetition — the result cache's
// target profile (dashboards, monitoring panels re-issuing identical SQL).
const char* kWorkload[] = {
    "SELECT c_custkey, c_name FROM customer WHERE c_acctbal > 5000",
    "SELECT o_custkey, COUNT(*) AS c, SUM(o_totalprice) AS s FROM orders "
    "GROUP BY o_custkey",
    "SELECT c_name, o_totalprice FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_totalprice > 200000",
    "SELECT COUNT(*) AS c FROM lineitem, orders WHERE l_orderkey = o_orderkey",
    "SELECT l_returnflag, AVG(l_quantity) AS aq FROM lineitem "
    "GROUP BY l_returnflag",
    "SELECT n_name, COUNT(*) AS c FROM supplier, nation "
    "WHERE s_nationkey = n_nationkey GROUP BY n_name",
};

// Overlapping-subquery mix: distinct statements (no result-cache hit is
// possible) whose plans nevertheless contain fingerprint-equal DSQL steps —
// the same customer⋈orders and supplier⋈nation shuffles under different
// final ORDER BYs, plus a self-UNION whose two arms always rendezvous.
// This is sub-plan sharing's target profile, as the repeated-identical-SQL
// mix above is the result cache's.
const char* kOverlapWorkload[] = {
    "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
    "WHERE c_custkey = o_custkey GROUP BY c_nationkey",
    "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
    "WHERE c_custkey = o_custkey GROUP BY c_nationkey ORDER BY c_nationkey",
    "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
    "WHERE c_custkey = o_custkey GROUP BY c_nationkey ORDER BY cnt, "
    "c_nationkey",
    "SELECT n_name, COUNT(*) AS c FROM supplier, nation "
    "WHERE s_nationkey = n_nationkey GROUP BY n_name",
    "SELECT n_name, COUNT(*) AS c FROM supplier, nation "
    "WHERE s_nationkey = n_nationkey GROUP BY n_name ORDER BY c, n_name",
    "SELECT c_nationkey FROM customer, orders WHERE c_custkey = o_custkey "
    "AND c_nationkey > 5 UNION ALL "
    "SELECT c_nationkey FROM customer, orders WHERE c_custkey = o_custkey "
    "AND c_nationkey > 5",
};

struct StormResult {
  std::string name;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  int ok = 0;
  int overloaded = 0;
  int errors = 0;
  uint64_t result_cache_hits = 0;  ///< LRU hits + coalesced followers.
  uint64_t shared_follows = 0;     ///< Steps adopted from another query.
  double shared_saved_mb = 0;      ///< Network MB those adoptions skipped.
  double moved_mb = 0;             ///< Network MB actually moved.
};

double Quantile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ms->size()));
  if (idx >= sorted_ms->size()) idx = sorted_ms->size() - 1;
  return (*sorted_ms)[idx];
}

struct StormConfig {
  bool use_result_cache = false;
  bool share_steps = false;
  const char* const* workload = kWorkload;
  size_t workload_size = std::size(kWorkload);
};

StormResult RunStorm(Appliance* appliance, const std::string& name,
                     const StormConfig& cfg) {
  appliance->result_cache().Clear();
  ResultCache::Stats cache_before = appliance->result_cache().stats();
  SharedStepRegistry::Stats share_before = appliance->shared_steps().stats();
  StormResult out;
  out.name = name;
  std::mutex mu;
  std::vector<double> latencies_ms;
  double moved_bytes = 0;
  std::atomic<int> ok{0}, overloaded{0}, errors{0};
  std::vector<std::thread> threads;
  double t0 = bench::NowSeconds();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session = appliance->Connect(
          QueryOptions()
              .WithResultCache(cfg.use_result_cache)
              .WithSharedSteps(cfg.share_steps));
      std::vector<double> local_ms;
      local_ms.reserve(kRepsPerThread);
      double local_moved = 0;
      for (int rep = 0; rep < kRepsPerThread; ++rep) {
        size_t qi = static_cast<size_t>(t * 7 + rep) % cfg.workload_size;
        double q0 = bench::NowSeconds();
        auto r = session.Run(cfg.workload[qi]);
        local_ms.push_back((bench::NowSeconds() - q0) * 1e3);
        if (r.ok()) {
          ok.fetch_add(1);
          local_moved += r->dms_metrics.network.bytes;
        } else if (r.status().code() == StatusCode::kOverloaded) {
          overloaded.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      moved_bytes += local_moved;
    });
  }
  for (auto& th : threads) th.join();
  out.seconds = bench::NowSeconds() - t0;
  out.ok = ok.load();
  out.overloaded = overloaded.load();
  out.errors = errors.load();
  out.p50_ms = Quantile(&latencies_ms, 0.50);
  out.p99_ms = Quantile(&latencies_ms, 0.99);
  out.qps = out.seconds > 0 ? out.ok / out.seconds : 0;
  ResultCache::Stats cache_after = appliance->result_cache().stats();
  out.result_cache_hits = (cache_after.hits - cache_before.hits) +
                          (cache_after.coalesced - cache_before.coalesced);
  SharedStepRegistry::Stats share_after = appliance->shared_steps().stats();
  out.shared_follows = share_after.follows - share_before.follows;
  out.shared_saved_mb =
      (share_after.saved_bytes - share_before.saved_bytes) / 1e6;
  out.moved_mb = moved_bytes / 1e6;
  return out;
}

void PrintRow(const StormResult& r) {
  std::printf("%-26s | %8.3f %8.1f | %8.2f %8.2f | %4d %6d %4d | %6llu | "
              "%7llu %8.2f %8.2f\n",
              r.name.c_str(), r.seconds, r.qps, r.p50_ms, r.p99_ms, r.ok,
              r.overloaded, r.errors,
              static_cast<unsigned long long>(r.result_cache_hits),
              static_cast<unsigned long long>(r.shared_follows),
              r.shared_saved_mb, r.moved_mb);
}

std::string JsonRow(const StormResult& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\":\"%s\",\"seconds\":%.4f,\"qps\":%.2f,\"p50_ms\":%.3f,"
      "\"p99_ms\":%.3f,\"ok\":%d,\"overloaded\":%d,\"errors\":%d,"
      "\"result_cache_hits\":%llu,\"shared_follows\":%llu,"
      "\"shared_saved_mb\":%.3f,\"moved_mb\":%.3f}",
      r.name.c_str(), r.seconds, r.qps, r.p50_ms, r.p99_ms, r.ok,
      r.overloaded, r.errors,
      static_cast<unsigned long long>(r.result_cache_hits),
      static_cast<unsigned long long>(r.shared_follows), r.shared_saved_mb,
      r.moved_mb);
  return buf;
}

int Main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      json_path = argv[i] + 7;
    }
  }

  bench::Header("WORKLOAD-STORM: 16 sessions x mixed TPC-H, WLM + result "
                "cache vs baseline");
  auto appliance = bench::MakeTpchAppliance(4, 0.05);

  // Warm the plan cache once per distinct statement so every configuration
  // pays the same compile cost and the comparison isolates execution.
  {
    Session warmup = appliance->Connect();
    for (const char* sql : kWorkload) {
      auto r = warmup.Run(sql);
      if (!r.ok()) {
        std::fprintf(stderr, "warmup: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    for (const char* sql : kOverlapWorkload) {
      auto r = warmup.Run(sql);
      if (!r.ok()) {
        std::fprintf(stderr, "warmup: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
  }

  std::printf("\n%-26s | %8s %8s | %8s %8s | %4s %6s %4s | %6s | %7s %8s "
              "%8s\n",
              "config", "total s", "qps", "p50 ms", "p99 ms", "ok", "overld",
              "err", "rchits", "follows", "saved MB", "moved MB");

  std::vector<StormResult> results;

  // The original three configurations pin sharing *off* so their numbers
  // stay comparable with earlier runs of this bench; the shared-subquery
  // phase below measures sharing against its own share-off control.
  // 1. Baseline: admission disabled, no result cache — every session runs
  //    unthrottled, all repeats re-execute.
  {
    WorkloadManagerConfig off;
    off.enabled = false;
    appliance->workload().SetConfig(off);
    results.push_back(RunStorm(appliance.get(), "baseline (no wlm)", {}));
    PrintRow(results.back());
  }

  // 2. Bounded admission: 16 sessions drain through a small-class gate
  //    sized to the machine instead of all running at once.
  WorkloadManagerConfig wlm;
  wlm.small = {/*concurrency_slots=*/6, /*queue_depth=*/64,
               /*max_parallel_nodes=*/0};
  wlm.medium = {/*concurrency_slots=*/4, /*queue_depth=*/32,
                /*max_parallel_nodes=*/0};
  wlm.large = {/*concurrency_slots=*/2, /*queue_depth=*/16,
               /*max_parallel_nodes=*/0};
  {
    appliance->workload().SetConfig(wlm);
    results.push_back(RunStorm(appliance.get(), "wlm", {}));
    PrintRow(results.back());
  }

  // 3. WLM + result cache: repeats (and identical in-flight queries) are
  //    served without executing at all.
  {
    appliance->workload().SetConfig(wlm);
    StormConfig cached_cfg;
    cached_cfg.use_result_cache = true;
    results.push_back(
        RunStorm(appliance.get(), "wlm + result cache", cached_cfg));
    PrintRow(results.back());
  }

  const StormResult& baseline = results[0];
  const StormResult& cached = results.back();
  std::printf("\nwlm + result cache vs baseline: p99 %.2fx, throughput "
              "%.2fx\n",
              cached.p99_ms > 0 ? baseline.p99_ms / cached.p99_ms : 0,
              baseline.qps > 0 ? cached.qps / baseline.qps : 0);

  // --- sub-plan sharing: overlapping (non-identical) subqueries ---
  // The result cache cannot help here — every statement is distinct — but
  // their plans contain fingerprint-equal DSQL steps, so with sharing on,
  // concurrent executions coalesce the common shuffles.
  bench::Header("SHARED SUBPLANS: 16 sessions x overlapping subqueries, "
                "PDW_WLM_SHARE on vs off");
  std::printf("\n%-26s | %8s %8s | %8s %8s | %4s %6s %4s | %6s | %7s %8s "
              "%8s\n",
              "config", "total s", "qps", "p50 ms", "p99 ms", "ok", "overld",
              "err", "rchits", "follows", "saved MB", "moved MB");
  {
    appliance->workload().SetConfig(wlm);
    StormConfig isolated_cfg;
    isolated_cfg.workload = kOverlapWorkload;
    isolated_cfg.workload_size = std::size(kOverlapWorkload);
    results.push_back(
        RunStorm(appliance.get(), "overlap, share off", isolated_cfg));
    PrintRow(results.back());

    StormConfig share_cfg = isolated_cfg;
    share_cfg.share_steps = true;
    results.push_back(
        RunStorm(appliance.get(), "overlap, share on", share_cfg));
    PrintRow(results.back());

    const StormResult& iso = results[results.size() - 2];
    const StormResult& shr = results.back();
    std::printf("\nshare on vs off: follows=%llu, network moved %.2f -> "
                "%.2f MB (saved %.2f MB), p99 %.2fx\n",
                static_cast<unsigned long long>(shr.shared_follows),
                iso.moved_mb, shr.moved_mb, shr.shared_saved_mb,
                shr.p99_ms > 0 ? iso.p99_ms / shr.p99_ms : 0);
  }

  // --- overload: a deliberately tiny gate must fast-fail, not pile up ---
  bench::Header("OVERLOAD: slots=1 queue=2, 16 slow sessions -> kOverloaded "
                "fast-fail");
  StormResult storm;
  {
    WorkloadManagerConfig tiny;
    tiny.small = {/*concurrency_slots=*/1, /*queue_depth=*/2,
                  /*max_parallel_nodes=*/0};
    appliance->workload().SetConfig(tiny);
    appliance->result_cache().Clear();
    std::atomic<int> ok{0}, overloaded{0}, errors{0};
    std::mutex mu;
    std::vector<double> reject_ms;
    std::vector<std::thread> threads;
    double t0 = bench::NowSeconds();
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        Session session = appliance->Connect();
        // Each query arms a one-shot 20ms dispatch delay so the storm
        // overlaps and the gate genuinely saturates.
        fault::FaultSchedule slow;
        slow.push_back(fault::FaultSpec{"appliance.step.dispatch", 0, 1,
                                        fault::FaultKind::kDelay, 0.02});
        double q0 = bench::NowSeconds();
        auto r = session.Run(kWorkload[3], QueryOptions().WithFaults(slow));
        double ms = (bench::NowSeconds() - q0) * 1e3;
        if (r.ok()) {
          ok.fetch_add(1);
        } else if (r.status().code() == StatusCode::kOverloaded) {
          overloaded.fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          reject_ms.push_back(ms);
        } else {
          errors.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    storm.name = "overload (slots=1 queue=2)";
    storm.seconds = bench::NowSeconds() - t0;
    storm.ok = ok.load();
    storm.overloaded = overloaded.load();
    storm.errors = errors.load();
    storm.p99_ms = Quantile(&reject_ms, 0.99);
    std::printf("\ncompleted %d, fast-failed %d (p99 rejection latency "
                "%.2f ms), other errors %d, total %.3f s\n",
                storm.ok, storm.overloaded, storm.p99_ms, storm.errors,
                storm.seconds);
    results.push_back(storm);
  }

  if (json) {
    std::string out = "{\"threads\":" + std::to_string(kThreads) +
                      ",\"reps_per_thread\":" +
                      std::to_string(kRepsPerThread) + ",\"configs\":[";
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonRow(results[i]);
    }
    out += "]}\n";
    if (json_path.empty()) {
      std::fputs(out.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(out.c_str(), f);
      std::fclose(f);
      std::printf("wrote storm summary to %s\n", json_path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) { return pdw::Main(argc, argv); }
