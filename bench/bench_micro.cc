// Component microbenchmarks (google-benchmark): throughput of the
// individual stages that the end-to-end numbers aggregate — lexing,
// parsing, binding+normalizing, memo construction, parallel optimization,
// SQL generation, DMS row packing, and executor operators.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/fault.h"
#include "dms/dms_service.h"
#include "engine/executor.h"
#include "engine/local_engine.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace pdw {
namespace {

const char* kJoinQuery =
    "SELECT c_name, SUM(o_totalprice) AS total FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_orderdate >= DATE '1995-01-01' "
    "GROUP BY c_name ORDER BY total DESC LIMIT 10";

Appliance* SharedAppliance() {
  static Appliance* appliance = [] {
    auto* a = new Appliance(Topology{8});
    (void)tpch::CreateTpchTables(a);
    tpch::TpchConfig cfg;
    cfg.scale = 0.1;
    (void)tpch::LoadTpch(a, cfg);
    return a;
  }();
  return appliance;
}

void BM_Lexer(benchmark::State& state) {
  for (auto _ : state) {
    auto tokens = sql::Tokenize(kJoinQuery);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lexer);

void BM_Parser(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::ParseSelect(kJoinQuery);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_Parser);

void BM_CompileSerial(benchmark::State& state) {
  Appliance* a = SharedAppliance();
  for (auto _ : state) {
    auto comp = CompileQuery(a->shell(), kJoinQuery);
    benchmark::DoNotOptimize(comp);
  }
}
BENCHMARK(BM_CompileSerial);

void BM_FullPdwCompilation(benchmark::State& state) {
  Appliance* a = SharedAppliance();
  PdwCompilerOptions opts;
  opts.build_baseline = false;
  for (auto _ : state) {
    auto comp = CompilePdwQuery(a->shell(), kJoinQuery, opts);
    benchmark::DoNotOptimize(comp);
  }
}
BENCHMARK(BM_FullPdwCompilation);

void BM_ParallelOptimizeOnly(benchmark::State& state) {
  Appliance* a = SharedAppliance();
  auto comp = CompilePdwQuery(a->shell(), kJoinQuery);
  for (auto _ : state) {
    PdwOptimizer opt(comp->imported.memo.get(), a->shell().topology());
    auto plan = opt.Optimize();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParallelOptimizeOnly);

void BM_DsqlGeneration(benchmark::State& state) {
  Appliance* a = SharedAppliance();
  auto comp = CompilePdwQuery(a->shell(), kJoinQuery);
  for (auto _ : state) {
    auto dsql = GenerateDsql(*comp->parallel.plan, comp->output_names);
    benchmark::DoNotOptimize(dsql);
  }
}
BENCHMARK(BM_DsqlGeneration);

void BM_DmsPackUnpack(benchmark::State& state) {
  Row row = {Datum::Int(42), Datum::Double(3.5),
             Datum::Varchar("some payload text"), Datum::Date(9131)};
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    auto packed = PackRow(row, &buf);
    benchmark::DoNotOptimize(packed);
    size_t offset = 0;
    auto out = UnpackRow(buf, &offset);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 40);
}
BENCHMARK(BM_DmsPackUnpack);

/// Status-returning wrapper so the macro's early-return path is compiled
/// exactly as it is at real injection sites.
Status TouchFaultPoint() {
  PDW_FAULT_POINT("dms.pack");
  return Status::OK();
}

// The disarmed overhead of one injection-point traversal — the acceptance
// bar for sprinkling PDW_FAULT_POINT on per-batch DMS paths. Expected: a
// relaxed atomic load + never-taken branch, low single-digit nanoseconds.
void BM_FaultPointDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    Status s = TouchFaultPoint();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_FaultPointDisarmed);

void BM_DmsShuffle(benchmark::State& state) {
  DmsService dms(8);
  RowVector rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back({Datum::Int(i), Datum::Varchar("row-payload")});
  }
  for (auto _ : state) {
    std::vector<RowVector> slots(9);
    for (int n = 0; n < 8; ++n) slots[static_cast<size_t>(n)] = rows;
    auto out = dms.Execute(DmsOpKind::kShuffle, std::move(slots), {0});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8000);
}
BENCHMARK(BM_DmsShuffle);

void BM_ExecutorHashJoin(benchmark::State& state) {
  LocalEngine engine;
  (void)engine.ExecuteSql("CREATE TABLE l (a INT, v INT)");
  (void)engine.ExecuteSql("CREATE TABLE r (b INT, w INT)");
  for (int batch = 0; batch < 20; ++batch) {
    std::string values = "INSERT INTO l VALUES ";
    std::string values_r = "INSERT INTO r VALUES ";
    for (int i = 0; i < 100; ++i) {
      int k = batch * 100 + i;
      if (i > 0) {
        values += ", ";
        values_r += ", ";
      }
      values += "(" + std::to_string(k % 500) + ", " + std::to_string(k) + ")";
      values_r += "(" + std::to_string(k % 500) + ", " + std::to_string(k) + ")";
    }
    (void)engine.ExecuteSql(values);
    (void)engine.ExecuteSql(values_r);
  }
  for (auto _ : state) {
    auto rows = engine.ExecuteSql(
        "SELECT l.v, r.w FROM l, r WHERE l.a = r.b AND l.v < 1000");
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_ExecutorHashJoin);

void BM_DistributedQueryEndToEnd(benchmark::State& state) {
  Appliance* a = SharedAppliance();
  Session session = a->Connect();
  for (auto _ : state) {
    auto result = session.Run(kJoinQuery);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DistributedQueryEndToEnd);

}  // namespace
}  // namespace pdw

BENCHMARK_MAIN();
