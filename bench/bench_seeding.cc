// CLAIM-SEED (§3.1): for very large search spaces the serial optimizer
// times out, and the initial plans "seeded" into the MEMO dominate the
// space considered; PDW therefore seeds distribution-aware (collocated)
// join orders. This bench compiles join queries under a tiny exploration
// budget with seeding on and off and compares the parallel plan costs —
// with a full budget as the reference point.

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"

namespace pdw {
namespace {

struct SeedCase {
  const char* name;
  const char* sql;
};

/// A shell database where every table is large, so the cheap
/// broadcast-a-small-table rescue is unavailable and the seeded join order
/// really matters: big1(a,c) and big2(a) are collocated on a; big3(c) is
/// distributed on c.
Catalog MakeBigShell(int nodes) {
  Catalog shell(Topology{nodes});
  // The a-columns are near-unique (key-key join, no fan-out); the
  // c-columns have low NDV, so joining through c first explodes the
  // intermediate. Every table is too big to broadcast casually.
  auto add = [&](const char* name, std::vector<ColumnDef> cols,
                 const char* dist_col, double rows) {
    TableDef def;
    def.name = name;
    def.schema = Schema(std::move(cols));
    def.distribution = DistributionSpec::HashOn(dist_col);
    def.stats.row_count = rows;
    for (int i = 0; i < def.schema.num_columns(); ++i) {
      const std::string& cname = def.schema.column(i).name;
      ColumnStats cs;
      cs.row_count = rows;
      cs.distinct_count = cname[0] == 'a' ? rows
                          : cname[0] == 'c' ? 1e5
                                            : rows / 2;
      cs.avg_width = 8;
      def.stats.columns[cname] = cs;
    }
    Status s = shell.CreateTable(std::move(def));
    (void)s;
  };
  add("big3", {{"c3", TypeId::kInt, false}, {"v3", TypeId::kInt, false}},
      "c3", 1e6);
  add("big1",
      {{"a1", TypeId::kInt, false}, {"c1", TypeId::kInt, false},
       {"v1", TypeId::kInt, false}},
      "a1", 1e6);
  add("big2", {{"a2", TypeId::kInt, false}, {"v2", TypeId::kInt, false}},
      "a2", 1e6);
  return shell;
}

void Run() {
  bench::Header("CLAIM-SEED: exploration timeout + distribution-aware seeding");
  auto appliance = bench::MakeTpchAppliance(8, 0.2);

  const SeedCase cases[] = {
      {"col3",
       "SELECT c_name, l_quantity FROM customer, orders, lineitem "
       "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"},
      {"star5",
       "SELECT c_name, p_name FROM customer, orders, lineitem, part, "
       "supplier WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
       "AND l_partkey = p_partkey AND l_suppkey = s_suppkey"},
      {"snow6",
       "SELECT n_name, SUM(l_extendedprice) AS rev FROM customer, orders, "
       "lineitem, supplier, nation, region WHERE c_custkey = o_custkey AND "
       "l_orderkey = o_orderkey AND l_suppkey = s_suppkey AND c_nationkey = "
       "s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = "
       "r_regionkey GROUP BY n_name"},
  };

  std::printf("\n%-7s | %-12s | %10s | %10s | %8s | %s\n", "query", "mode",
              "memo exprs", "pdw cost", "vs full", "budget hit");
  for (const SeedCase& c : cases) {
    double full_cost = 0;
    for (int mode = 0; mode < 3; ++mode) {
      PdwCompilerOptions opts;
      opts.build_baseline = false;
      const char* label;
      if (mode == 0) {
        label = "full budget";
      } else if (mode == 1) {
        label = "tiny+seed";
        opts.memo.expr_budget = 8;  // force the timeout path
        opts.memo.seed_distribution_aware = true;
      } else {
        label = "tiny-seed";
        opts.memo.expr_budget = 8;
        opts.memo.seed_distribution_aware = false;
      }
      auto comp = CompilePdwQuery(appliance->shell(), c.sql, opts);
      if (!comp.ok()) {
        std::printf("%-7s | %-12s | compile failed: %s\n", c.name, label,
                    comp.status().ToString().c_str());
        continue;
      }
      if (mode == 0) full_cost = comp->parallel.cost;
      std::printf("%-7s | %-12s | %10zu | %10.6f | %7.2fx | %s\n", c.name,
                  label, comp->serial.memo->num_exprs(), comp->parallel.cost,
                  full_cost > 0 ? comp->parallel.cost / full_cost : 1.0,
                  comp->serial.memo->budget_exhausted() ? "yes" : "no");
    }
  }
  // The decisive case: three equally large tables where only one pair is
  // collocated. The broadcast rescue is too expensive, so the seed decides
  // everything when the budget is exhausted.
  std::printf("\nall-large 3-way join (no cheap broadcast rescue):\n");
  Catalog big_shell = MakeBigShell(8);
  const char* big_sql =
      "SELECT v1, v2, v3 FROM big3, big1, big2 "
      "WHERE big1.c1 = big3.c3 AND big1.a1 = big2.a2";
  double full_cost = 0;
  for (int mode = 0; mode < 3; ++mode) {
    PdwCompilerOptions opts;
    opts.build_baseline = false;
    const char* label;
    if (mode == 0) {
      label = "full budget";
    } else if (mode == 1) {
      label = "tiny+seed";
      opts.memo.expr_budget = 1;
      opts.memo.seed_distribution_aware = true;
    } else {
      label = "tiny-seed";
      opts.memo.expr_budget = 1;
      opts.memo.seed_distribution_aware = false;
    }
    auto comp = CompilePdwQuery(big_shell, big_sql, opts);
    if (!comp.ok()) {
      std::printf("%-7s | %-12s | compile failed: %s\n", "big3", label,
                  comp.status().ToString().c_str());
      continue;
    }
    if (mode == 0) full_cost = comp->parallel.cost;
    std::printf("%-7s | %-12s | %10zu | %10.6f | %7.2fx | %s\n", "big3",
                label, comp->serial.memo->num_exprs(), comp->parallel.cost,
                full_cost > 0 ? comp->parallel.cost / full_cost : 1.0,
                comp->serial.memo->budget_exhausted() ? "yes" : "no");
  }

  std::printf(
      "\ninterpretation: under a timeout, the distribution-aware seed keeps "
      "the collocated join order in the space, so the parallel plan stays "
      "near the full-budget optimum; the size-only seed can lose it.\n");
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
