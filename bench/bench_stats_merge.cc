// STATS-MERGE (§2.2): the shell database's global statistics are merged
// from per-node local statistics. This bench loads TPC-H across varying
// node counts and skews, merges local stats the way the appliance does,
// and reports the estimation error of merged-vs-true global statistics
// (row counts exact, NDV exact on distribution columns, bounded estimates
// elsewhere) plus the downstream effect on selectivity estimates.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace pdw {
namespace {

void Run() {
  bench::Header("STATS-MERGE: per-node local stats -> merged global stats");

  for (double skew : {0.0, 3.0}) {
    for (int nodes : {2, 8}) {
      auto appliance = bench::MakeTpchAppliance(nodes, 0.2, skew);
      std::printf("\nnodes=%d skew=%.0f\n", nodes, skew);
      std::printf("  %-10s %-14s | %12s %12s %8s\n", "table", "column",
                  "true ndv", "merged ndv", "error");
      struct Probe {
        const char* table;
        const char* column;
      };
      for (const Probe& p : {Probe{"orders", "o_orderkey"},
                             Probe{"orders", "o_custkey"},
                             Probe{"lineitem", "l_partkey"},
                             Probe{"lineitem", "l_returnflag"},
                             Probe{"customer", "c_nationkey"}}) {
        auto ref = appliance->ExecuteReference(
            std::string("SELECT COUNT(DISTINCT ") + p.column + ") AS d FROM " +
            p.table);
        if (!ref.ok()) continue;
        double true_ndv =
            static_cast<double>(ref->rows[0][0].int_value());
        auto table = appliance->shell().GetTable(p.table);
        const ColumnStats* cs = (*table)->GetColumnStats(p.column);
        double merged = cs != nullptr ? cs->distinct_count : -1;
        std::printf("  %-10s %-14s | %12.0f %12.0f %7.1f%%\n", p.table,
                    p.column, true_ndv, merged,
                    true_ndv > 0 ? 100.0 * std::fabs(merged - true_ndv) /
                                       true_ndv
                                 : 0.0);
      }

      // Downstream: selectivity of a date range from the merged histogram.
      auto table = appliance->shell().GetTable("lineitem");
      const ColumnStats* ship = (*table)->GetColumnStats("l_shipdate");
      auto ref = appliance->ExecuteReference(
          "SELECT COUNT(*) AS c FROM lineitem WHERE "
          "l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE "
          "'1995-01-01'");
      auto total = appliance->ExecuteReference(
          "SELECT COUNT(*) AS c FROM lineitem");
      if (ship != nullptr && ref.ok() && total.ok()) {
        double true_sel =
            static_cast<double>(ref->rows[0][0].int_value()) /
            static_cast<double>(total->rows[0][0].int_value());
        double est_sel = ship->RangeSelectivity(
            Datum::Date(*ParseDate("1994-01-01")), true,
            Datum::Date(*ParseDate("1995-01-01")), false);
        std::printf("  shipdate-in-1994 selectivity: true=%.4f merged "
                    "histogram=%.4f\n",
                    true_sel, est_sel);
      }
    }
  }
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
