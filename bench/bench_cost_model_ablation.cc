// CLAIM-DMSDOM (§3.3): "data movement processing times tend to dominate
// overall execution times, thus optimizing for data movements is expected
// to produce good quality plans". This ablation compares the paper's
// DMS-only cost model against an extended model that also charges
// relational operator work: for each TPC-H query, the plan each model
// picks, their modeled costs, and the bytes actually moved when executing
// both. If the DMS-only model is a good proxy, the two models should pick
// plans of near-identical measured quality.

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"

namespace pdw {
namespace {

void Run() {
  bench::Header("CLAIM-DMSDOM: DMS-only vs extended (relational) cost model");
  auto appliance = bench::MakeTpchAppliance(8, 0.2);

  PdwCompilerOptions dms_only;
  dms_only.build_baseline = false;
  PdwCompilerOptions extended;
  extended.build_baseline = false;
  extended.pdw.relational_costs = true;

  std::printf("\n%-5s | %6s %6s | %12s %12s | %8s %8s | %s\n", "query",
              "steps", "steps", "bytes moved", "bytes moved", "wall s",
              "wall s", "same plan shape?");
  std::printf("%-5s | %6s %6s | %12s %12s | %8s %8s |\n", "", "dms",
              "ext", "dms", "ext", "dms", "ext");

  double dms_total = 0, ext_total = 0;
  for (const auto& q : tpch::Queries()) {
    auto a = CompilePdwQuery(appliance->shell(), q.sql, dms_only);
    auto b = CompilePdwQuery(appliance->shell(), q.sql, extended);
    if (!a.ok() || !b.ok()) {
      std::printf("%-5s compile failed\n", q.name.c_str());
      continue;
    }
    auto run_a = appliance->ExecutePlan(*a->parallel.plan, a->output_names);
    auto run_b = appliance->ExecutePlan(*b->parallel.plan, b->output_names);
    if (!run_a.ok() || !run_b.ok()) {
      std::printf("%-5s execution failed\n", q.name.c_str());
      continue;
    }
    double bytes_a = run_a->dms_metrics.network.bytes +
                     run_a->dms_metrics.bulkcopy.bytes;
    double bytes_b = run_b->dms_metrics.network.bytes +
                     run_b->dms_metrics.bulkcopy.bytes;
    dms_total += bytes_a;
    ext_total += bytes_b;
    bool same_shape = PlanTreeToString(*a->parallel.plan) ==
                      PlanTreeToString(*b->parallel.plan);
    std::printf("%-5s | %6zu %6zu | %12.0f %12.0f | %8.3f %8.3f | %s\n",
                q.name.c_str(), run_a->dsql.steps.size(),
                run_b->dsql.steps.size(), bytes_a, bytes_b,
                run_a->measured_seconds, run_b->measured_seconds,
                same_shape ? "yes" : "NO");
  }
  std::printf("\ntotal bytes: dms-only=%.0f extended=%.0f\n", dms_total,
              ext_total);
  std::printf(
      "interpretation: when totals are close, the paper's DMS-only model "
      "already captures the dominant cost — its §3.3 design argument.\n");
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
