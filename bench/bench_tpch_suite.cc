// Overall plan-quality table over the TPC-H subset: for every query, the
// number of DSQL steps, the modeled DMS cost of the PDW plan vs the
// parallelized-best-serial baseline, the measured bytes actually moved by
// both plans on the appliance simulator, wall times, and a correctness
// check against single-node reference execution.

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"

namespace pdw {
namespace {

void Run(bench::ProfileJsonSink* sink) {
  bench::Header("TPCH-SUITE: PDW optimizer vs parallelized-serial baseline");
  auto appliance = bench::MakeTpchAppliance(8, 0.2);
  Session session = appliance->Connect();

  std::printf("\n%-5s %5s | %11s %11s %7s | %11s %11s %7s | %8s %8s | %5s"
              " | %9s %9s %4s | %3s %11s %7s\n",
              "query", "steps", "pdw cost", "base cost", "ratio", "pdw bytes",
              "base bytes", "ratio", "pdw s", "base s", "match",
              "compile1", "compile2", "hit", "pa", "pa-off B", "ratio");

  double total_pdw_bytes = 0, total_base_bytes = 0;
  for (const auto& q : tpch::Queries()) {
    auto comp = CompilePdwQuery(appliance->shell(), q.sql);
    if (!comp.ok()) {
      std::printf("%-5s compile failed: %s\n", q.name.c_str(),
                  comp.status().ToString().c_str());
      continue;
    }
    auto pdw_run = appliance->ExecutePlan(*comp->parallel.plan,
                                          comp->output_names);
    auto base_run = appliance->ExecutePlan(*comp->baseline_plan,
                                           comp->output_names);
    auto ref = appliance->ExecuteReference(q.sql);
    if (!pdw_run.ok() || !base_run.ok() || !ref.ok()) {
      std::printf("%-5s execution failed (%s / %s / %s)\n", q.name.c_str(),
                  pdw_run.status().ToString().c_str(),
                  base_run.status().ToString().c_str(),
                  ref.status().ToString().c_str());
      continue;
    }
    // visible-column handling: compare against the distributed run that
    // goes through the full Run path (trimmed). With a JSON sink the run
    // also collects per-operator actuals for the profile dump. The plan
    // cache is on, so the first run compiles and inserts, the repeat is
    // served from cache with compile time ≈ the cache-lookup cost.
    QueryOptions opts;
    opts.observe.collect_operator_actuals = sink->enabled();
    opts.compile.use_plan_cache = true;
    auto dist = session.Run(q.sql, opts);
    bool match = dist.ok() && RowSetsEqual(dist->rows, ref->rows);
    if (dist.ok()) sink->Add(q.name, dist->profile);
    auto repeat = session.Run(q.sql, opts);
    double compile1 = dist.ok() ? dist->profile.compile_seconds : 0;
    double compile2 = repeat.ok() ? repeat->profile.compile_seconds : 0;
    bool hit = repeat.ok() && repeat->cache_hit;

    double pdw_bytes = pdw_run->dms_metrics.network.bytes +
                       pdw_run->dms_metrics.bulkcopy.bytes;
    double base_bytes = base_run->dms_metrics.network.bytes +
                        base_run->dms_metrics.bulkcopy.bytes;
    total_pdw_bytes += pdw_bytes;
    total_base_bytes += base_bytes;

    // DMS bytes with partial-aggregate pushdown forced off: how much of
    // the movement reduction the default (pushdown-enabled) plan owes to
    // the pre-aggregation enforcer on this query.
    PdwCompilerOptions no_preagg;
    no_preagg.pdw.enable_preagg = 0;
    auto no_pa_run = session.Run(q.sql, QueryOptions()
                                            .WithCompilerOptions(no_preagg)
                                            .WithPlanCache(false));
    double no_pa_bytes =
        no_pa_run.ok() ? no_pa_run->dms_metrics.network.bytes +
                             no_pa_run->dms_metrics.bulkcopy.bytes
                       : 0;
    double dist_bytes = dist.ok() ? dist->dms_metrics.network.bytes +
                                        dist->dms_metrics.bulkcopy.bytes
                                  : 0;

    std::printf(
        "%-5s %5zu | %11.6f %11.6f %6.2fx | %11.0f %11.0f %6.2fx | %8.3f "
        "%8.3f | %5s | %8.2fms %8.2fms %4s | %3s %11.0f %6.2fx\n",
        q.name.c_str(), pdw_run->dsql.steps.size(), comp->parallel.cost,
        comp->baseline_cost,
        comp->parallel.cost > 0 ? comp->baseline_cost / comp->parallel.cost
                                : 1.0,
        pdw_bytes, base_bytes, pdw_bytes > 0 ? base_bytes / pdw_bytes : 1.0,
        pdw_run->measured_seconds, base_run->measured_seconds,
        match ? "YES" : "NO", compile1 * 1e3, compile2 * 1e3,
        hit ? "YES" : "NO", comp->parallel.preagg_chosen ? "YES" : "no",
        no_pa_bytes, dist_bytes > 0 ? no_pa_bytes / dist_bytes : 1.0);
  }
  std::printf("\ntotal bytes moved: pdw=%.0f baseline=%.0f (%.2fx reduction)\n",
              total_pdw_bytes, total_base_bytes,
              total_pdw_bytes > 0 ? total_base_bytes / total_pdw_bytes : 1.0);
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) {
  pdw::bench::ProfileJsonSink sink(argc, argv);
  pdw::Run(&sink);
  sink.Flush();
  return 0;
}
