// §3.3.1 assumption check: the cost model assumes *uniform distribution of
// data across nodes*, costing only one node per side. This bench loads
// TPC-H with increasing foreign-key skew and compares, for a
// shuffle-dominated query, (a) the model's uniform per-node byte estimate
// against (b) the actual maximum per-node bytes ingested, showing how the
// single-node simplification degrades as uniformity erodes — and that plan
// *correctness* never depends on it.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"

namespace pdw {
namespace {

void Run() {
  bench::Header("UNIFORMITY (§3.3.1): cost model vs skewed data");
  const char* sql =
      "SELECT c_custkey, COUNT(*) AS orders_count "
      "FROM customer, orders WHERE c_custkey = o_custkey "
      "GROUP BY c_custkey";

  std::printf("\n%-6s | %12s %12s %8s | %14s %14s %8s | %7s\n", "skew",
              "rows moved", "bytes moved", "", "uniform/node", "max node est",
              "error", "correct");
  for (double skew : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    auto appliance = bench::MakeTpchAppliance(8, 0.2, skew);
    Session session = appliance->Connect();
    auto result = session.Run(sql);
    if (!result.ok()) {
      std::printf("%-6.1f | execution failed: %s\n", skew,
                  result.status().ToString().c_str());
      continue;
    }
    auto ref = appliance->ExecuteReference(sql);
    bool correct = ref.ok() && RowSetsEqual(result->rows, ref->rows);

    // The model charges per-node work as total/N (uniformity). Replay the
    // first DMS step's routing to measure the true hottest node, counting
    // the same bytes on both sides of the comparison.
    double total_bytes = 0;
    double max_node_bytes = 0;
    const DsqlStep* shuffle_step = nullptr;
    for (const auto& st : result->dsql.steps) {
      // Replayable = a shuffle whose source reads base tables only (temp
      // tables are dropped after execution).
      if (st.kind == DsqlStepKind::kDms &&
          st.move_kind == DmsOpKind::kShuffle &&
          st.sql.find("[tempdb]") == std::string::npos) {
        shuffle_step = &st;
        break;
      }
    }
    if (shuffle_step != nullptr) {
      const DsqlStep& step = *shuffle_step;
      std::vector<double> per_node(
          static_cast<size_t>(appliance->num_compute_nodes()), 0.0);
      for (int n = 0; n < appliance->num_compute_nodes(); ++n) {
        auto rows = appliance->mutable_compute_node(n).ExecuteSql(step.sql);
        if (!rows.ok()) continue;
        for (const Row& r : rows->rows) {
          int target =
              appliance->dms().TargetNode(r, step.hash_column_ordinals);
          double w = static_cast<double>(RowWidth(r));
          per_node[static_cast<size_t>(target)] += w;
          total_bytes += w;
        }
      }
      max_node_bytes = *std::max_element(per_node.begin(), per_node.end());
    }
    if (shuffle_step == nullptr) {
      std::printf("%-6.1f | no replayable base-table shuffle in this plan; "
                  "correct=%s\n",
                  skew, correct ? "YES" : "NO");
      continue;
    }
    double uniform_per_node = total_bytes / appliance->num_compute_nodes();
    double err = uniform_per_node > 0
                     ? (max_node_bytes - uniform_per_node) / uniform_per_node
                     : 0;
    std::printf("%-6.1f | %12.0f %12.0f %8s | %14.0f %14.0f %7.0f%% | %7s\n",
                skew, result->dms_metrics.rows_moved, total_bytes, "",
                uniform_per_node, max_node_bytes, err * 100,
                correct ? "YES" : "NO");
  }
  std::printf(
      "\ninterpretation: with uniform keys the hottest node matches the\n"
      "model's per-node estimate; as skew grows the model underestimates\n"
      "the response-time-critical node — the price of the paper's\n"
      "uniformity assumption. Results remain correct regardless: the\n"
      "assumption is a costing simplification, not a correctness one.\n");
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
