// Row-engine vs batch-engine microkernels: the same SQL runs through both
// local execution engines over identical synthetic tables, timing filter,
// hash-join, hash-aggregate and expression-projection kernels. Prints a
// speedup table; `--json[=path]` additionally emits machine-readable
// results for tracking.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/local_engine.h"

namespace pdw {
namespace {

constexpr size_t kBigRows = 200000;
constexpr size_t kDimRows = 2000;
constexpr int kIters = 5;

/// big(a INT, b INT, g INT, v DOUBLE, s VARCHAR): ~5% NULLs, g has 128
/// distinct groups, b joins against dim.x.
void LoadTables(LocalEngine* engine) {
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
      std::abort();
    }
  };
  check(engine
            ->ExecuteSql("CREATE TABLE big (a INT, b INT, g INT, v DOUBLE, "
                         "s VARCHAR(16))")
            .status());
  check(engine->ExecuteSql("CREATE TABLE dim (x INT, y INT, w DOUBLE)")
            .status());

  std::mt19937 rng(42);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const char* words[] = {"alpha", "beta", "gamma", "delta"};
  RowVector big;
  big.reserve(kBigRows);
  for (size_t i = 0; i < kBigRows; ++i) {
    Row r;
    r.push_back(Datum::Int(static_cast<int64_t>(i)));
    r.push_back(pick(0, 19) == 0 ? Datum::Null()
                                 : Datum::Int(pick(0, static_cast<int>(kDimRows) * 2)));
    r.push_back(Datum::Int(pick(0, 127)));
    r.push_back(pick(0, 19) == 0 ? Datum::Null()
                                 : Datum::Double(pick(0, 10000) / 100.0));
    r.push_back(Datum::Varchar(words[pick(0, 3)]));
    big.push_back(std::move(r));
  }
  check(engine->InsertRows("big", std::move(big)));

  RowVector dim;
  dim.reserve(kDimRows);
  for (size_t i = 0; i < kDimRows; ++i) {
    Row r;
    r.push_back(Datum::Int(static_cast<int64_t>(i)));
    r.push_back(Datum::Int(pick(0, 9)));
    r.push_back(Datum::Double(pick(0, 1000) / 10.0));
    dim.push_back(std::move(r));
  }
  check(engine->InsertRows("dim", std::move(dim)));
}

struct Kernel {
  const char* name;
  const char* sql;
};

const Kernel kKernels[] = {
    {"filter",
     "SELECT a, b FROM big WHERE v > 25.0 AND g < 96 AND b IS NOT NULL"},
    {"project",
     "SELECT a * 2 + g AS e1, v * 1.1 AS e2, "
     "CASE WHEN v > 50 THEN 'hi' ELSE s END AS e3 FROM big"},
    {"hash_join", "SELECT a, y FROM big JOIN dim ON b = x WHERE w > 10.0"},
    {"hash_agg",
     "SELECT g, COUNT(*) AS c, SUM(v) AS sv, AVG(v) AS av, MIN(a) AS mn "
     "FROM big GROUP BY g"},
};

/// Best-of-kIters wall time of one SQL on one engine, in milliseconds.
double BestMs(LocalEngine* engine, const char* sql, const ExecOptions& opts,
              size_t* rows_out) {
  double best = 1e100;
  for (int i = 0; i < kIters; ++i) {
    double t0 = bench::NowSeconds();
    auto r = engine->ExecuteSql(sql, nullptr, opts);
    double ms = (bench::NowSeconds() - t0) * 1e3;
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n%s\n", sql, r.status().ToString().c_str());
      std::abort();
    }
    *rows_out = r->rows.size();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) {
  using namespace pdw;
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      json_path = argv[i] + 7;
    }
  }

  LocalEngine engine;
  LoadTables(&engine);

  ExecOptions row_opts;
  row_opts.engine = EngineKind::kRow;
  ExecOptions batch_opts;
  batch_opts.engine = EngineKind::kBatch;

  bench::Header("executor kernels: row engine vs batch engine");
  std::printf("%zu-row fact table, %zu-row dimension, best of %d runs\n\n",
              kBigRows, kDimRows, kIters);
  std::printf("%-12s %12s %12s %10s %10s\n", "kernel", "row (ms)",
              "batch (ms)", "speedup", "rows");

  std::string json_out = "{\"kernels\":[";
  bool first = true;
  for (const Kernel& k : kKernels) {
    size_t rows = 0;
    double row_ms = BestMs(&engine, k.sql, row_opts, &rows);
    double batch_ms = BestMs(&engine, k.sql, batch_opts, &rows);
    double speedup = row_ms / batch_ms;
    std::printf("%-12s %12.2f %12.2f %9.2fx %10zu\n", k.name, row_ms,
                batch_ms, speedup, rows);
    if (!first) json_out += ",";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"row_ms\":%.3f,\"batch_ms\":%.3f,"
                  "\"speedup\":%.3f,\"rows\":%zu}",
                  k.name, row_ms, batch_ms, speedup, rows);
    json_out += buf;
  }
  json_out += "]}\n";

  if (json) {
    if (json_path.empty()) {
      std::fputs(json_out.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json_out.c_str(), f);
      std::fclose(f);
      std::printf("\nwrote kernel results to %s\n", json_path.c_str());
    }
  }
  return 0;
}
