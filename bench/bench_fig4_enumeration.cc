// Reproduces the behaviour of Figure 4's bottom-up enumeration, focusing
// on step 06.ii's cost-based pruning: per group, only the best option
// overall and the best per interesting property survive, bounding the
// option table by (#interesting properties + 1) (+2 for the always-kept
// Replicated/Control targets in this implementation). The bench sweeps
// join chain and star queries of growing size with pruning on and off and
// reports optimization time, options considered/kept, and verifies the
// bound and that pruning never loses the optimal plan.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "pdw/compiler.h"

namespace pdw {
namespace {

/// N-way chain: t1 -> t2 -> ... joined on neighbouring keys, built over the
/// TPC-H tables by self-aliasing orders/lineitem pairs.
std::string ChainQuery(int tables) {
  // Self-join chain over customer. Each alias contributes a projected
  // column so redundant-join elimination cannot collapse the chain.
  std::string sql = "SELECT c1.c_acctbal";
  for (int i = 2; i <= tables; ++i) {
    sql += " + c" + std::to_string(i) + ".c_acctbal";
  }
  sql += " AS total FROM customer c1";
  for (int i = 2; i <= tables; ++i) {
    sql += ", customer c" + std::to_string(i);
  }
  sql += " WHERE ";
  for (int i = 2; i <= tables; ++i) {
    if (i > 2) sql += " AND ";
    sql += "c" + std::to_string(i - 1) + ".c_custkey = c" +
           std::to_string(i) + ".c_custkey";
  }
  return sql;
}

std::string StarQuery(int arms) {
  // lineitem at the center, joined to orders/part/supplier plus extra
  // customer/nation arms through orders. Every table contributes a column
  // so none is eliminated as redundant.
  std::string sql =
      "SELECT l_quantity, o_totalprice, p_retailprice, s_acctbal";
  std::string from = " FROM lineitem, orders, part, supplier";
  std::string where =
      " WHERE l_orderkey = o_orderkey AND l_partkey = p_partkey "
      "AND l_suppkey = s_suppkey";
  if (arms >= 5) {
    sql += ", c_acctbal";
    from += ", customer";
    where += " AND o_custkey = c_custkey";
  }
  if (arms >= 6) {
    sql += ", n_name";
    from += ", nation";
    where += " AND c_nationkey = n_nationkey";
  }
  return sql + from + where;
}

void RunCase(const Catalog& shell, const std::string& label,
             const std::string& sql) {
  for (bool prune : {true, false}) {
    PdwCompilerOptions opts;
    opts.pdw.prune = prune;
    // Without pruning the option tables grow multiplicatively with join
    // depth; cap them so the ablation terminates (the cap itself is part
    // of the measurement: hitting it means the space exploded).
    opts.pdw.max_options_per_group = 512;
    opts.build_baseline = false;
    double cost = 0;
    size_t considered = 0, kept = 0, groups = 0;
    double ms = bench::TimeMs([&]() {
      auto comp = CompilePdwQuery(shell, sql, opts);
      if (!comp.ok()) {
        std::printf("  compile failed: %s\n", comp.status().ToString().c_str());
        return;
      }
      cost = comp->parallel.cost;
      considered = comp->parallel.options_considered;
      kept = comp->parallel.options_kept;
      groups = comp->parallel.groups_optimized;
    });
    std::printf("%-12s pruning=%-3s | %8.2f ms | groups=%4zu considered=%8zu "
                "kept=%7zu | best cost=%.6f\n",
                label.c_str(), prune ? "on" : "off", ms, groups, considered,
                kept, cost);
  }
}

void Run() {
  bench::Header(
      "FIG4: bottom-up enumeration with interesting-property pruning");
  auto appliance = bench::MakeTpchAppliance(8, 0.05);
  const Catalog& shell = appliance->shell();

  std::printf("\nself-join chains (worst case for option growth):\n");
  for (int n : {2, 3, 4, 5, 6}) {
    RunCase(shell, "chain-" + std::to_string(n), ChainQuery(n));
  }
  std::printf("\nTPC-H star joins:\n");
  for (int n : {4, 5, 6}) {
    RunCase(shell, "star-" + std::to_string(n), StarQuery(n));
  }

  // Verify the per-group bound and pruning losslessness on the star-5.
  std::printf("\nper-group bound check (star-5): ");
  auto comp = CompilePdwQuery(shell, StarQuery(5));
  if (comp.ok()) {
    PdwOptimizer opt(comp->imported.memo.get(), shell.topology());
    auto plan = opt.Optimize();
    size_t max_options = 0, max_interesting = 0;
    bool bound_holds = true;
    for (int g = 0; g < comp->imported.memo->num_groups(); ++g) {
      size_t interesting = 0;
      auto it = opt.interesting().interesting.find(g);
      if (it != opt.interesting().interesting.end()) {
        interesting = it->second.size();
      }
      size_t options = opt.group_options(g).size();
      max_options = std::max(max_options, options);
      max_interesting = std::max(max_interesting, interesting);
      if (options > interesting + 3) bound_holds = false;
    }
    std::printf("max options per group=%zu, max interesting=%zu, bound "
                "(interesting+3) holds=%s\n",
                max_options, max_interesting, bound_holds ? "YES" : "NO");
  }
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
