// Reproduces Figure 6: DSQL generation — translating a physical operator
// tree back to SQL text (the QRel role). Shows the generated statement for
// a shuffle-split plan, verifies the full round trip (generate -> re-parse
// -> re-bind -> execute gives identical rows), and measures generation
// throughput.

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "sql/parser.h"

namespace pdw {
namespace {

void Run() {
  bench::Header("FIG6: relational tree -> SQL text (DSQL generation)");
  auto appliance = bench::MakeTpchAppliance(8, 0.1);
  Session session = appliance->Connect();

  const char* sql =
      "SELECT c_custkey, COUNT(*) AS cnt, SUM(o_totalprice) AS total "
      "FROM customer, orders WHERE c_custkey = o_custkey "
      "AND o_orderdate >= DATE '1995-01-01' "
      "GROUP BY c_custkey ORDER BY total DESC LIMIT 5";

  auto comp = CompilePdwQuery(appliance->shell(), sql);
  if (!comp.ok()) {
    std::printf("compile failed: %s\n", comp.status().ToString().c_str());
    return;
  }
  std::printf("\n(a) physical operator tree:\n%s",
              PlanTreeToString(*comp->parallel.plan).c_str());
  auto dsql = GenerateDsql(*comp->parallel.plan, comp->output_names, "tpch",
                           comp->serial.visible_columns);
  if (!dsql.ok()) {
    std::printf("dsql failed: %s\n", dsql.status().ToString().c_str());
    return;
  }
  std::printf("\n(b-d) generated DSQL plan:\n%s", dsql->ToString().c_str());

  // Round trip: every generated statement re-parses.
  int reparsed = 0;
  for (const auto& step : dsql->steps) {
    if (sql::ParseSelect(step.sql).ok()) ++reparsed;
  }
  std::printf("re-parse check: %d/%zu statements parse\n", reparsed,
              dsql->steps.size());

  // Execution round trip: the generated SQL, executed per node by the
  // local engines, must reproduce the reference answer.
  auto dist = session.Run(sql);
  auto ref = appliance->ExecuteReference(sql);
  if (dist.ok() && ref.ok()) {
    std::printf("execution round trip: %zu rows, match=%s\n",
                dist->rows.size(),
                RowSetsEqual(dist->rows, ref->rows) ? "YES" : "NO");
  }

  // Throughput: SQL generation alone over the whole suite.
  std::printf("\ngeneration throughput over the TPC-H suite:\n");
  for (const auto& q : tpch::Queries()) {
    auto c = CompilePdwQuery(appliance->shell(), q.sql);
    if (!c.ok()) continue;
    constexpr int kReps = 20;
    size_t sql_bytes = 0;
    double ms = bench::TimeMs([&]() {
      for (int i = 0; i < kReps; ++i) {
        auto d = GenerateDsql(*c->parallel.plan, c->output_names);
        if (d.ok()) {
          sql_bytes = 0;
          for (const auto& s : d->steps) sql_bytes += s.sql.size();
        }
      }
    });
    std::printf("  %-5s %8.3f ms/gen, %6zu bytes of SQL, %zu steps\n",
                q.name.c_str(), ms / kReps, sql_bytes,
                c->parallel.plan ? static_cast<size_t>(
                    CountMoves(*c->parallel.plan)) + 1 : 0);
  }
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
