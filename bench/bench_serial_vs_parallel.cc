// Reproduces the §2.5 claim: parallelizing the best serial plan is not
// enough. For the Customer/Orders/Lineitem join (customer distributed on
// custkey; orders and lineitem on orderkey) the best serial plan joins the
// small tables first, while the best parallel plan exploits the
// orders-lineitem collocation. The bench sweeps node counts and scales and
// reports modeled DMS cost, actual bytes moved and wall time for both
// plans, plus the chosen join orders.

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"

namespace pdw {
namespace {

const char* kQuery =
    "SELECT c_name, l_quantity FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey";

// Same shape, with a selective lineitem filter: the collocated
// orders-lineitem join shrinks the stream before customer joins in, which
// is exactly where the distribution-aware order pays off most.
const char* kFilteredQuery =
    "SELECT c_name, l_quantity FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND l_quantity >= 49";

/// Renders the logical join grouping, e.g. "((customer*orders)*lineitem)".
std::string JoinGrouping(const PlanNode& n) {
  if (n.kind == PhysOpKind::kTableScan) return n.table_name;
  if (n.kind == PhysOpKind::kHashJoin ||
      n.kind == PhysOpKind::kNestedLoopJoin) {
    // Hash joins build on the right; show the logical pair regardless of
    // build side, sorted for readability.
    std::string l = JoinGrouping(*n.children[0]);
    std::string r = JoinGrouping(*n.children[1]);
    return "(" + l + "*" + r + ")";
  }
  std::string out;
  for (const auto& c : n.children) {
    std::string s = JoinGrouping(*c);
    if (!s.empty()) out = s;
  }
  return out;
}

void RunSweep(const char* label, const char* query,
              bench::ProfileJsonSink* sink) {
  std::printf("\n--- %s ---\n", label);
  std::printf(
      "%-6s %-6s | %-34s %-34s | %12s %12s %8s | %12s %12s %8s\n",
      "nodes", "scale", "serial join grouping", "PDW join grouping",
      "base cost", "pdw cost", "ratio", "base bytes", "pdw bytes", "ratio");

  for (int nodes : {2, 4, 8, 16}) {
    for (double scale : {0.05, 0.2}) {
      auto appliance = bench::MakeTpchAppliance(nodes, scale);
      Session session = appliance->Connect();
      auto comp = CompilePdwQuery(appliance->shell(), query);
      if (!comp.ok()) {
        std::printf("compile failed: %s\n", comp.status().ToString().c_str());
        continue;
      }
      std::string serial_order = JoinGrouping(*comp->serial_plan);
      std::string pdw_order = JoinGrouping(*comp->parallel.plan);

      auto base_run =
          appliance->ExecutePlan(*comp->baseline_plan, comp->output_names);
      auto pdw_run =
          appliance->ExecutePlan(*comp->parallel.plan, comp->output_names);
      if (!base_run.ok() || !pdw_run.ok()) {
        std::printf("execution failed\n");
        continue;
      }
      if (sink->enabled()) {
        // Full pipeline run with per-operator actuals for the JSON dump.
        QueryOptions analyze;
        analyze.observe.collect_operator_actuals = true;
        auto analyzed = session.Run(query, analyze);
        if (analyzed.ok()) {
          sink->Add(std::string(label) + "/nodes=" + std::to_string(nodes) +
                        "/scale=" + std::to_string(scale),
                    analyzed->profile);
        }
      }
      double base_bytes = base_run->dms_metrics.network.bytes +
                          base_run->dms_metrics.bulkcopy.bytes;
      double pdw_bytes = pdw_run->dms_metrics.network.bytes +
                         pdw_run->dms_metrics.bulkcopy.bytes;
      std::printf(
          "%-6d %-6.2f | %-34s %-34s | %12.5f %12.5f %7.2fx | %12.0f %12.0f "
          "%7.2fx\n",
          nodes, scale, serial_order.c_str(), pdw_order.c_str(),
          comp->baseline_cost, comp->parallel.cost,
          comp->parallel.cost > 0 ? comp->baseline_cost / comp->parallel.cost
                                  : 0.0,
          base_bytes, pdw_bytes,
          pdw_bytes > 0 ? base_bytes / pdw_bytes : 0.0);
    }
  }
}

// §2.4's "each step runs on all nodes simultaneously", measured: the same
// DSQL plan executed with the node-by-node serial loop (max_parallel_nodes
// = 1) vs fanned out on the shared worker pool. A modeled control→compute
// dispatch latency per per-node SQL shipment makes the appliance's RPC
// structure visible: the serial loop pays it once per node per step, the
// pool overlaps them.
void RunPoolSweep() {
  std::printf(
      "\n--- pooled vs serial step execution (dispatch latency 2ms) ---\n");
  std::printf("%-6s | %10s %10s %8s\n", "nodes", "serial s", "pooled s",
              "speedup");
  for (int nodes : {2, 4, 8, 16}) {
    auto appliance = bench::MakeTpchAppliance(nodes, 0.05);
    Session session = appliance->Connect();
    appliance->set_dispatch_latency_seconds(0.002);
    QueryOptions serial;
    serial.execute.max_parallel_nodes = 1;
    QueryOptions pooled;  // 0 = all nodes at once
    // Warm up once so first-touch costs don't skew either side.
    (void)session.Run(kQuery, pooled);
    double serial_s = 0, pooled_s = 0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
      auto s = session.Run(kQuery, serial);
      auto p = session.Run(kQuery, pooled);
      if (!s.ok() || !p.ok()) {
        std::printf("execution failed\n");
        return;
      }
      serial_s += s->measured_seconds;
      pooled_s += p->measured_seconds;
    }
    serial_s /= reps;
    pooled_s /= reps;
    std::printf("%-6d | %10.4f %10.4f %7.2fx\n", nodes, serial_s, pooled_s,
                pooled_s > 0 ? serial_s / pooled_s : 0.0);
  }
}

void Run(bench::ProfileJsonSink* sink) {
  bench::Header(
      "CLAIM-SERIAL (§2.5): best parallel plan != parallelized best "
      "serial plan");
  RunSweep("3-way join (paper's example)", kQuery, sink);
  RunSweep("3-way join with selective lineitem filter", kFilteredQuery, sink);
  RunPoolSweep();

  // Show the two plans once, for the report.
  auto appliance = bench::MakeTpchAppliance(8, 0.2);
  auto comp = CompilePdwQuery(appliance->shell(), kQuery);
  if (comp.ok()) {
    std::printf("\nbest serial plan (single-node optimal):\n%s",
                PlanTreeToString(*comp->serial_plan).c_str());
    std::printf("\nparallelized serial plan (baseline):\n%s",
                PlanTreeToString(*comp->baseline_plan).c_str());
    std::printf("\nPDW plan (search over the full space):\n%s",
                PlanTreeToString(*comp->parallel.plan).c_str());
  }
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) {
  pdw::bench::ProfileJsonSink sink(argc, argv);
  pdw::Run(&sink);
  sink.Flush();
  return 0;
}
