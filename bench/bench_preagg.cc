// Partial-aggregate pushdown benchmark: DMS bytes and wall time with the
// rewrite off vs on, swept across reduction factors — from high-reduction
// groups (hundreds of fact rows per partial group) down to the
// adversarial near-unique regime where the cost model must decline the
// pushed plan. `--json[=path]` writes the summary table as JSON (the
// checked-in bench/BENCH_preagg.json).
//
// The schema is a dim/fact pair built for the pushdown regime: `fact`
// (40000 rows) is distributed on a column unrelated to the join, so the
// join always forces movement, and carries one join-key column per NDV
// tier; `dim` (20000 rows) is too wide to broadcast for free. The plain
// optimizer therefore moves the whole fact side, and the pushed plan
// moves ~nodes x NDV partial rows instead.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "pdw/compiler.h"

namespace pdw {
namespace {

constexpr int kNodes = 8;
constexpr int kDimRows = 20000;
constexpr int kFactRows = 40000;

struct Config {
  const char* name;
  const char* key_col;  // fact join-key column of this NDV tier
  int ndv;
};

const Config kConfigs[] = {
    {"reduction_2000x", "f_k20", 20},
    {"reduction_200x", "f_k200", 200},
    {"reduction_20x", "f_k2000", 2000},
    {"near_unique", "f_knu", kDimRows},
};

struct Measurement {
  bool chosen = false;
  double bytes = 0;
  double wall_seconds = 0;
  double rows_in = 0;   // actual partial-aggregate input rows (on only)
  double rows_out = 0;  // rows the flagged DMS step actually moved
};

Measurement RunOnce(Appliance* appliance, Session* session,
                    const std::string& sql, int enable_preagg) {
  Measurement m;
  PdwCompilerOptions compiler;
  compiler.pdw.enable_preagg = enable_preagg;
  auto comp = CompilePdwQuery(appliance->shell(), sql, compiler);
  if (!comp.ok()) {
    std::fprintf(stderr, "compile: %s\n", comp.status().ToString().c_str());
    std::abort();
  }
  m.chosen = comp->parallel.preagg_chosen;

  QueryOptions options = QueryOptions()
                             .WithCompilerOptions(compiler)
                             .WithPlanCache(false)
                             .WithOperatorActuals();
  // Best of three: the simulator's thread-pool scheduling adds noise.
  for (int rep = 0; rep < 3; ++rep) {
    auto run = session->Run(sql, options);
    if (!run.ok()) {
      std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
      std::abort();
    }
    double wall = run->measured_seconds;
    if (rep == 0 || wall < m.wall_seconds) m.wall_seconds = wall;
    if (rep == 0) {
      m.bytes = run->dms_metrics.network.bytes +
                run->dms_metrics.bulkcopy.bytes;
      for (const auto& step : run->profile.steps) {
        if (!step.preagg) continue;
        m.rows_in += step.preagg_rows_in_actual;
        m.rows_out += step.rows_moved;
      }
    }
  }
  return m;
}

void Run(const std::string& json_path, bool json_enabled) {
  bench::Header("PREAGG: partial-aggregate pushdown, DMS bytes off vs on");
  auto appliance = std::make_unique<Appliance>(Topology{kNodes});
  {
    Status s = appliance->CreateTableSql(
        "CREATE TABLE dim (d_key INT NOT NULL, d_grp INT, "
        "d_name VARCHAR(16)) WITH (DISTRIBUTION = HASH(d_key))");
    if (s.ok()) {
      s = appliance->CreateTableSql(
          "CREATE TABLE fact (f_k20 INT, f_k200 INT, f_k2000 INT, "
          "f_knu INT, f_val DOUBLE, f_uniq INT) "
          "WITH (DISTRIBUTION = HASH(f_uniq))");
    }
    if (!s.ok()) {
      std::fprintf(stderr, "ddl: %s\n", s.ToString().c_str());
      std::abort();
    }
    RowVector dim;
    dim.reserve(kDimRows);
    for (int i = 0; i < kDimRows; ++i) {
      dim.push_back({Datum::Int(i), Datum::Int(i % 10),
                     Datum::Varchar("d" + std::to_string(i % 16))});
    }
    RowVector fact;
    fact.reserve(kFactRows);
    for (int i = 0; i < kFactRows; ++i) {
      fact.push_back({Datum::Int(i % 20), Datum::Int(i % 200),
                      Datum::Int(i % 2000), Datum::Int(i % kDimRows),
                      Datum::Double(i % 90), Datum::Int(i)});
    }
    if (!appliance->LoadRows("dim", dim).ok() ||
        !appliance->LoadRows("fact", fact).ok()) {
      std::fprintf(stderr, "load failed\n");
      std::abort();
    }
  }
  Session session = appliance->Connect();

  std::printf("\nfact=%d rows, dim=%d rows, %d nodes; partial keyed on "
              "{join key}, group by d_grp\n",
              kFactRows, kDimRows, kNodes);
  std::printf("\n%-15s %6s | %6s | %11s %11s %7s | %8s %8s %7s | %8s %8s "
              "%9s\n",
              "config", "ndv", "chosen", "bytes off", "bytes on", "ratio",
              "s off", "s on", "speedup", "rows in", "rows out", "reduction");

  std::string json = "{\"bench\":\"preagg\",\"nodes\":" +
                     std::to_string(kNodes) +
                     ",\"fact_rows\":" + std::to_string(kFactRows) +
                     ",\"dim_rows\":" + std::to_string(kDimRows) +
                     ",\"configs\":[";
  bool first = true;
  for (const Config& cfg : kConfigs) {
    std::string sql = std::string("SELECT d_grp, SUM(f_val) AS s, "
                                  "COUNT(f_val) AS c FROM fact, dim WHERE ") +
                      cfg.key_col + " = d_key GROUP BY d_grp";
    Measurement off = RunOnce(appliance.get(), &session, sql, 0);
    Measurement on = RunOnce(appliance.get(), &session, sql, 1);
    double byte_ratio = on.bytes > 0 ? off.bytes / on.bytes : 1.0;
    double speedup =
        on.wall_seconds > 0 ? off.wall_seconds / on.wall_seconds : 1.0;
    double reduction = on.rows_out > 0 ? on.rows_in / on.rows_out : 0.0;
    std::printf("%-15s %6d | %6s | %11.0f %11.0f %6.1fx | %8.4f %8.4f %6.2fx"
                " | %8.0f %8.0f %8.1fx\n",
                cfg.name, cfg.ndv, on.chosen ? "YES" : "no", off.bytes,
                on.bytes, byte_ratio, off.wall_seconds, on.wall_seconds,
                speedup, on.rows_in, on.rows_out, reduction);
    char rec[512];
    std::snprintf(
        rec, sizeof(rec),
        "%s{\"config\":\"%s\",\"ndv\":%d,\"chosen\":%s,"
        "\"bytes_off\":%.0f,\"bytes_on\":%.0f,\"byte_ratio\":%.2f,"
        "\"wall_off_s\":%.4f,\"wall_on_s\":%.4f,\"speedup\":%.2f,"
        "\"preagg_rows_in\":%.0f,\"preagg_rows_out\":%.0f,"
        "\"reduction\":%.1f}",
        first ? "" : ",", cfg.name, cfg.ndv, on.chosen ? "true" : "false",
        off.bytes, on.bytes, byte_ratio, off.wall_seconds, on.wall_seconds,
        speedup, on.rows_in, on.rows_out, reduction);
    json += rec;
    first = false;
  }
  json += "]}\n";

  if (json_enabled) {
    if (json_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("\nwrote summary JSON to %s\n", json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace pdw

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      path = argv[i] + 7;
    }
  }
  pdw::Run(path, json);
  return 0;
}
