// Reproduces Figure 3: the parallel query optimization flow for
//   SELECT * FROM CUSTOMER C, ORDERS O
//   WHERE C.C_CUSTKEY = O.O_CUSTKEY AND O.O_TOTALPRICE > 1000
// (a) input query, (b) logical tree, (c) serial memo + PDW augmentation
// with data-movement options, (d) best parallel plan, (e) DSQL plan.

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"

namespace pdw {
namespace {

const char* kFig3Query =
    "SELECT * FROM customer C, orders O "
    "WHERE C.c_custkey = O.o_custkey AND O.o_totalprice > 1000";

void Run() {
  bench::Header("FIG3: memo augmentation for Customer JOIN Orders");
  auto appliance = bench::MakeTpchAppliance(8, 0.1);
  Session session = appliance->Connect();

  std::printf("\n(a) input query:\n  %s\n", kFig3Query);

  auto comp = CompilePdwQuery(appliance->shell(), kFig3Query);
  if (!comp.ok()) {
    std::printf("compile failed: %s\n", comp.status().ToString().c_str());
    return;
  }

  std::printf("\n(b) normalized logical tree:\n%s",
              LogicalTreeToString(*comp->serial.normalized).c_str());

  std::printf("\n(c1) serial MEMO exported by the SQL Server stage:\n%s",
              comp->serial.memo->ToString().c_str());

  // Re-run the PDW optimizer to show the augmented per-group option
  // tables (the Move/Shuffle/Replicate groups of Fig. 3(c)).
  PdwOptimizer optimizer(comp->imported.memo.get(),
                         appliance->shell().topology());
  auto plan = optimizer.Optimize();
  if (!plan.ok()) {
    std::printf("optimize failed: %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("\n(c2) PDW augmentation: per-group distribution options "
              "(enforcers marked MOVE):\n");
  for (int g = 0; g < comp->imported.memo->num_groups(); ++g) {
    std::printf("  Group %d:\n", g);
    for (const auto& o : optimizer.group_options(g)) {
      if (o.is_enforcer) {
        std::printf("    %-18s cost=%.6f  [MOVE %s]\n",
                    o.prop.ToString().c_str(), o.cost,
                    DmsOpKindToString(o.move_kind));
      } else {
        std::printf("    %-18s cost=%.6f  [expr %d]\n",
                    o.prop.ToString().c_str(), o.cost, o.expr_index);
      }
    }
  }

  std::printf("\n(d) best parallel plan (cost %.6f):\n%s",
              plan->cost, PlanTreeToString(*plan->plan).c_str());

  auto dsql = GenerateDsql(*plan->plan, comp->output_names);
  if (dsql.ok()) {
    std::printf("\n(e) DSQL plan:\n%s", dsql->ToString().c_str());
  }

  // Sanity: execute distributed and reference.
  auto dist = session.Run(kFig3Query);
  auto ref = appliance->ExecuteReference(kFig3Query);
  if (dist.ok() && ref.ok()) {
    std::printf("\nexecution check: distributed=%zu rows, reference=%zu rows, "
                "match=%s\n",
                dist->rows.size(), ref->rows.size(),
                RowSetsEqual(dist->rows, ref->rows) ? "YES" : "NO");
  }
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
