// §3.2: "While our current implementation employs a bottom-up search
// strategy, a top-down enumeration technique is equally applicable to the
// PDW QO design." This bench runs both enumerators over the TPC-H suite
// and compares: optimal plan cost (must agree — the strategies search the
// same space under the same cost model), optimization time, and how much
// of the space each touches (bottom-up: options considered/kept across all
// groups; top-down: (group, property) states computed on demand).

#include <cstdio>

#include "bench/bench_util.h"
#include "pdw/compiler.h"
#include "pdw/top_down.h"

namespace pdw {
namespace {

void Run() {
  bench::Header("TOP-DOWN vs BOTTOM-UP enumeration (§3.2)");
  auto appliance = bench::MakeTpchAppliance(8, 0.1);

  std::printf("\n%-5s | %12s %12s %7s | %10s %10s | %10s %10s\n", "query",
              "bottom-up", "top-down", "agree", "bu ms", "td ms",
              "bu options", "td states");
  for (const auto& q : tpch::Queries()) {
    PdwCompilerOptions opts;
    opts.build_baseline = false;
    auto comp = CompilePdwQuery(appliance->shell(), q.sql, opts);
    if (!comp.ok()) {
      std::printf("%-5s compile failed\n", q.name.c_str());
      continue;
    }
    // Bottom-up (re-run standalone for a fair timing).
    double bu_cost = 0;
    size_t bu_options = 0;
    double bu_ms = bench::TimeMs([&]() {
      PdwOptimizer opt(comp->imported.memo.get(), appliance->shell().topology());
      auto r = opt.Optimize();
      if (r.ok()) {
        bu_cost = r->cost;
        bu_options = r->options_considered;
      }
    });
    // Top-down.
    double td_cost = 0;
    size_t td_states = 0;
    double td_ms = bench::TimeMs([&]() {
      TopDownPdwOptimizer opt(comp->imported.memo.get(),
                              appliance->shell().topology());
      auto r = opt.OptimalCost();
      if (r.ok()) {
        td_cost = *r;
        td_states = opt.stats().states_computed;
      }
    });
    bool agree = std::abs(bu_cost - td_cost) <= 1e-12 + bu_cost * 1e-9;
    std::printf("%-5s | %12.6f %12.6f %7s | %10.3f %10.3f | %10zu %10zu\n",
                q.name.c_str(), bu_cost, td_cost, agree ? "YES" : "NO",
                bu_ms, td_ms, bu_options, td_states);
  }
  std::printf(
      "\ninterpretation: identical winners from two independent search\n"
      "strategies over the same memo + cost model — the paper's claim that\n"
      "the design is search-strategy-agnostic. Bottom-up counts every\n"
      "(expr x child-option) combination considered; top-down counts the\n"
      "(group, property) states it actually computed.\n");
}

}  // namespace
}  // namespace pdw

int main() {
  pdw::Run();
  return 0;
}
