// monitor: a live, top-style view of a busy appliance, driven entirely by
// DMV queries — the same SQL an operator would run against the real PDW
// control node. A background workload fires TPC-H queries at the appliance
// while the main thread polls sys.dm_pdw_exec_requests / _steps /
// _metrics and redraws the screen.
//
//   $ ./build/examples/monitor [refreshes]     (default 40, ~100ms apart)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "appliance/appliance.h"
#include "tpch/tpch.h"

using namespace pdw;

namespace {

/// Runs a DMV query and prints its rows as a fixed-width table.
void PrintDmv(Session* session, const char* title, const std::string& sql) {
  auto r = session->Run(sql);
  if (!r.ok()) {
    std::printf("%s: %s\n", title, r.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", title);
  for (const std::string& name : r->column_names) {
    std::printf("  %-14.14s", name.c_str());
  }
  std::printf("\n");
  for (const Row& row : r->rows) {
    for (const Datum& d : row) {
      std::printf("  %-14.14s", d.ToString().c_str());
    }
    std::printf("\n");
  }
  if (r->rows.empty()) std::printf("  (none)\n");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int refreshes = argc > 1 ? std::atoi(argv[1]) : 40;

  // A 4-node appliance with a small TPC-H load as the workload substrate.
  Appliance appliance(Topology{4});
  if (!tpch::CreateTpchTables(&appliance).ok()) return 1;
  tpch::TpchConfig cfg;
  cfg.scale = 0.02;
  if (!tpch::LoadTpch(&appliance, cfg).ok()) return 1;
  // Stretch each DSQL step a little so the live view has something to see.
  appliance.set_dispatch_latency_seconds(0.002);

  // Background sessions: a mixed read workload, some of it cached.
  const char* workload[] = {
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 100000",
      "SELECT o_custkey, COUNT(*) AS c, SUM(o_totalprice) AS s "
      "FROM orders GROUP BY o_custkey",
      "SELECT COUNT(*) AS c FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey",
      "SELECT l_returnflag, AVG(l_quantity) AS aq FROM lineitem "
      "GROUP BY l_returnflag",
  };
  std::atomic<bool> stop{false};
  std::vector<std::thread> sessions;
  for (int t = 0; t < 3; ++t) {
    sessions.emplace_back([&, t] {
      QueryOptions options;
      options.compile.use_plan_cache = t % 2 == 0;
      Session session = appliance.Connect(options);
      for (int i = 0; !stop.load(); ++i) {
        auto r = session.Run(workload[(t + i) % 4]);
        if (!r.ok()) break;
      }
    });
  }

  // The operator's own session for DMV polling.
  Session monitor = appliance.Connect();
  for (int frame = 0; frame < refreshes; ++frame) {
    std::printf("\x1b[2J\x1b[H");  // clear screen, cursor home
    std::printf("pdw appliance monitor — frame %d/%d — all data via DMV "
                "queries\n\n", frame + 1, refreshes);
    PrintDmv(&monitor, "executing now (sys.dm_pdw_exec_requests)",
             "SELECT request_id, status, current_step, total_steps, "
             "retries, rows_moved FROM sys.dm_pdw_exec_requests "
             "WHERE status = 'executing' AND total_steps > 0");
    PrintDmv(&monitor, "running steps (sys.dm_pdw_exec_steps)",
             "SELECT request_id, step_index, kind, move_kind, rows_moved "
             "FROM sys.dm_pdw_exec_steps WHERE status = 'running'");
    PrintDmv(&monitor, "throughput (sys.dm_pdw_exec_requests)",
             "SELECT status, COUNT(*) AS requests, SUM(retries) AS retries "
             "FROM sys.dm_pdw_exec_requests WHERE total_steps > 0 "
             "GROUP BY status");
    PrintDmv(&monitor, "latency quantiles (sys.dm_pdw_metrics)",
             "SELECT metric_name, value, p50, p95, p99 "
             "FROM sys.dm_pdw_metrics WHERE metric_kind = 'histogram' AND "
             "p99 > 0");
    PrintDmv(&monitor, "plan cache (sys.dm_pdw_plan_cache)",
             "SELECT sql_text, hits, num_steps FROM sys.dm_pdw_plan_cache");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  stop.store(true);
  for (auto& t : sessions) t.join();
  std::printf("\nworkload drained; %zu requests retained in the registry\n",
              appliance.requests().finished_count());
  return 0;
}
