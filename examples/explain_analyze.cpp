// EXPLAIN ANALYZE end to end: run TPC-H Q20 on the appliance simulator and
// render every DSQL step with its modeled DMS cost vs measured wall time,
// estimated vs actual row counts (large misestimates flagged), per-component
// DMS bytes, and per-operator executor actuals — then dump the same profile
// as JSON and show the global metrics registry and a pipeline trace.
//
//   $ ./build/examples/explain_analyze

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/tpch.h"

using namespace pdw;

int main() {
  Appliance appliance(Topology{8});
  Session session = appliance.Connect();
  Status s = tpch::CreateTpchTables(&appliance);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }
  tpch::TpchConfig cfg;
  cfg.scale = 0.2;
  s = tpch::LoadTpch(&appliance, cfg);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }

  // Tracing is off by default (and nearly free); switch it on to capture
  // the span tree of the whole compile + execute pipeline.
  obs::Tracer::Global().Enable();
  obs::Tracer::Global().Clear();
  obs::MetricsRegistry::Global().Reset();

  const tpch::TpchQuery* q20 = tpch::FindQuery("Q20");
  QueryOptions opts;
  opts.observe.collect_operator_actuals = true;
  auto analyzed = session.Run(q20->sql, opts);
  if (!analyzed.ok()) {
    std::printf("failed: %s\n", analyzed.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", analyzed->explain_text.c_str());

  std::printf("\npipeline trace:\n%s",
              obs::Tracer::Global().ToText().c_str());
  obs::Tracer::Global().Disable();

  // The same information, machine-readable: ApplianceResult::profile.
  std::printf("\nQueryProfile JSON:\n%s\n",
              analyzed->profile.ToJson().c_str());

  std::printf("\nglobal metrics after the runs:\n%s",
              obs::MetricsRegistry::Global().Snapshot().ToText().c_str());
  return 0;
}
