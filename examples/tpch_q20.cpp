// The paper's §4 worked example: TPC-H Q20 compiled into a multi-step DSQL
// plan (Fig. 7) and executed on the appliance simulator, with the
// intermediate temp-table flow narrated step by step.
//
//   $ ./build/examples/tpch_q20

#include <cstdio>

#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "tpch/tpch.h"

using namespace pdw;

int main() {
  Appliance appliance(Topology{8});
  Session session = appliance.Connect();
  Status s = tpch::CreateTpchTables(&appliance);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }
  tpch::TpchConfig cfg;
  cfg.scale = 0.2;
  s = tpch::LoadTpch(&appliance, cfg);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }

  const tpch::TpchQuery* q20 = tpch::FindQuery("Q20");
  std::printf("TPC-H Q20 (%s):\n%s\n\n", q20->notes.c_str(), q20->sql.c_str());

  auto result = session.Run(q20->sql);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("parallel plan:\n%s\n", result->plan_text.c_str());
  std::printf("Q20 exercises, as the paper notes, sub-query removal, "
              "sub-query-into-join transformation and join transitivity "
              "closure; the plan shows the resulting semi-joins and the\n"
              "local/global aggregation splits around each shuffle.\n\n");

  for (size_t i = 0; i < result->dsql.steps.size(); ++i) {
    const DsqlStep& step = result->dsql.steps[i];
    if (step.kind == DsqlStepKind::kDms) {
      std::printf("DSQL step %zu — DMS %s into %s (est. %.0f rows, modeled "
                  "cost %.6f):\n  %s\n\n",
                  i, DmsOpKindToString(step.move_kind),
                  step.dest_table.c_str(), step.estimated_rows,
                  step.estimated_cost, step.sql.c_str());
    } else {
      std::printf("DSQL step %zu — Return to client%s:\n  %s\n\n", i,
                  step.merge_sort.empty() ? "" : " (merge-sorted)",
                  step.sql.c_str());
    }
  }

  auto ref = appliance.ExecuteReference(q20->sql);
  std::printf("result (%zu suppliers):\n", result->rows.size());
  for (const Row& r : result->rows) {
    std::printf("  %s\n", RowToString(r).c_str());
  }
  std::printf("\nmatches single-node reference: %s\n",
              ref.ok() && RowSetsEqual(result->rows, ref->rows) ? "YES" : "NO");
  std::printf("wall time %.3fs, DMS moved %.0f rows / %.0f bytes\n",
              result->measured_seconds, result->dms_metrics.rows_moved,
              result->dms_metrics.network.bytes +
                  result->dms_metrics.bulkcopy.bytes);
  return 0;
}
