// Demonstrates two §3.1 query-surface extensions: distributed-strategy
// hints (OPTION (FORCE_BROADCAST) / OPTION (FORCE_SHUFFLE)) and UNION ALL
// with the collocated-union optimization.
//
//   $ ./build/examples/hints_and_unions

#include <cstdio>

#include "pdw/compiler.h"
#include "tpch/tpch.h"

using namespace pdw;

int main() {
  Appliance appliance(Topology{8});
  Session session = appliance.Connect();
  Status s = tpch::CreateTpchTables(&appliance);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }
  tpch::TpchConfig cfg;
  cfg.scale = 0.1;
  s = tpch::LoadTpch(&appliance, cfg);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }

  // --- hints ---
  const char* base =
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 100000";
  std::printf("query:\n  %s\n", base);
  for (const char* suffix :
       {"", " OPTION (FORCE_BROADCAST)", " OPTION (FORCE_SHUFFLE)"}) {
    auto comp = CompilePdwQuery(appliance.shell(), std::string(base) + suffix);
    if (!comp.ok()) {
      std::printf("compile failed: %s\n", comp.status().ToString().c_str());
      continue;
    }
    std::printf("\n%s (cost %.6f):\n%s",
                *suffix ? suffix : "cost-based (no hint)",
                comp->parallel.cost,
                PlanTreeToString(*comp->parallel.plan).c_str());
  }

  // --- collocated union ---
  const char* union_sql =
      "SELECT o_orderkey AS k, o_totalprice AS v FROM orders "
      "WHERE o_totalprice > 400000 "
      "UNION ALL "
      "SELECT l_orderkey AS k, l_extendedprice AS v FROM lineitem "
      "WHERE l_quantity = 50";
  std::printf("\n\ncollocated UNION ALL (both operands hash-distributed):\n"
              "  %s\n", union_sql);
  auto result = session.Run(union_sql);
  if (!result.ok()) {
    std::printf("failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nplan:\n%s", result->plan_text.c_str());
  std::printf("DSQL steps: %zu (a single Return: no data moved)\n",
              result->dsql.steps.size());
  auto ref = appliance.ExecuteReference(union_sql);
  std::printf("%zu rows; matches reference: %s\n", result->rows.size(),
              ref.ok() && RowSetsEqual(result->rows, ref->rows) ? "YES" : "NO");
  return 0;
}
