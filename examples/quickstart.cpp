// Quickstart: build a 4-node PDW appliance, create distributed tables,
// load rows, and run a distributed query end to end — printing the
// parallel plan, the DSQL steps, and the result.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "appliance/appliance.h"

using namespace pdw;

int main() {
  // 1. An appliance: one control node + four compute nodes (Fig. 1).
  Appliance appliance(Topology{4});
  Session session = appliance.Connect();

  // 2. DDL with PDW distribution clauses (§2.1): orders hash-distributed,
  //    nation replicated on every compute node.
  Status s = appliance.CreateTableSql(
      "CREATE TABLE orders (o_orderkey INT NOT NULL, o_custkey INT, "
      "o_totalprice DECIMAL(15,2), o_nationkey INT) "
      "WITH (DISTRIBUTION = HASH(o_orderkey))");
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }
  s = appliance.CreateTableSql(
      "CREATE TABLE nation (n_nationkey INT NOT NULL, n_name VARCHAR(25)) "
      "WITH (DISTRIBUTION = REPLICATE)");
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }

  // 3. Load rows; the appliance hash-routes them and merges per-node
  //    statistics into the shell database (§2.2).
  RowVector orders;
  for (int i = 1; i <= 1000; ++i) {
    orders.push_back({Datum::Int(i), Datum::Int(1 + i % 100),
                      Datum::Double(100.0 + i), Datum::Int(i % 5)});
  }
  s = appliance.LoadRows("orders", orders);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }
  RowVector nations;
  const char* names[] = {"CANADA", "FRANCE", "JAPAN", "BRAZIL", "KENYA"};
  for (int i = 0; i < 5; ++i) {
    nations.push_back({Datum::Int(i), Datum::Varchar(names[i])});
  }
  s = appliance.LoadRows("nation", nations);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }

  // 4. Run a distributed aggregation query. The PDW optimizer compiles it
  //    through the full pipeline of Fig. 2: serial memo, XML export,
  //    bottom-up parallel optimization, DSQL generation.
  const char* sql =
      "SELECT n_name, COUNT(*) AS orders_count, SUM(o_totalprice) AS total "
      "FROM orders, nation WHERE o_nationkey = n_nationkey "
      "GROUP BY n_name ORDER BY total DESC";
  auto result = session.Run(sql);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("parallel plan:\n%s\n", result->plan_text.c_str());
  std::printf("DSQL plan:\n%s\n", result->dsql.ToString().c_str());

  std::printf("results:\n");
  for (size_t c = 0; c < result->column_names.size(); ++c) {
    std::printf("%s%s", c > 0 ? " | " : "  ", result->column_names[c].c_str());
  }
  std::printf("\n");
  for (const Row& row : result->rows) {
    std::printf("  %s\n", RowToString(row).c_str());
  }

  // 5. Validate against single-node reference execution.
  auto ref = appliance.ExecuteReference(sql);
  std::printf("\nmatches single-node reference: %s\n",
              ref.ok() && RowSetsEqual(result->rows, ref->rows) ? "YES" : "NO");
  std::printf("bytes moved by DMS: %.0f\n",
              result->dms_metrics.network.bytes +
                  result->dms_metrics.bulkcopy.bytes);
  return 0;
}
