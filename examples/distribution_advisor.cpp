// What-if distribution design: the cost-based optimizer doubles as a
// partitioning advisor (the direction of the paper's reference [10],
// Nehme & Bruno, "Automated partitioning design in parallel database
// systems"). For each candidate distribution of the orders table, compile
// a small workload against an alternative shell database and compare total
// modeled DMS cost — metadata-only, no data movement needed to evaluate a
// design.
//
//   $ ./build/examples/distribution_advisor

#include <cstdio>
#include <vector>

#include "pdw/compiler.h"
#include "tpch/tpch.h"

using namespace pdw;

int main() {
  // Build one loaded appliance only to obtain realistic merged statistics.
  Appliance appliance(Topology{8});
  Status s = tpch::CreateTpchTables(&appliance);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }
  tpch::TpchConfig cfg;
  cfg.scale = 0.2;
  s = tpch::LoadTpch(&appliance, cfg);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }

  const std::vector<std::string> workload = {
      // Orders-lineitem heavy:
      "SELECT o_orderkey, COUNT(*) AS c FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey GROUP BY o_orderkey",
      // Customer-orders heavy:
      "SELECT c_name, SUM(o_totalprice) AS total FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_name",
      // Aggregation by customer:
      "SELECT o_custkey, COUNT(*) AS c FROM orders GROUP BY o_custkey",
  };

  struct Design {
    const char* label;
    DistributionSpec spec;
  };
  const std::vector<Design> designs = {
      {"HASH(o_orderkey)  [paper default]",
       DistributionSpec::HashOn("o_orderkey")},
      {"HASH(o_custkey)", DistributionSpec::HashOn("o_custkey")},
      {"REPLICATE", DistributionSpec::Replicated()},
  };

  std::printf("what-if analysis: distribution of ORDERS vs workload DMS "
              "cost (8 nodes, shell-database only)\n\n");
  std::printf("%-36s", "design");
  for (size_t q = 0; q < workload.size(); ++q) {
    std::printf(" %10s", ("query" + std::to_string(q + 1)).c_str());
  }
  std::printf(" %10s\n", "TOTAL");

  for (const Design& d : designs) {
    // Copy the shell database and re-declare orders with the candidate
    // distribution — the essence of what-if: optimize against metadata.
    Catalog shell = appliance.shell().Clone();
    auto orders = shell.GetMutableTable("orders");
    if (!orders.ok()) continue;
    (*orders)->distribution = d.spec;

    double total = 0;
    std::printf("%-36s", d.label);
    for (const std::string& sql : workload) {
      PdwCompilerOptions opts;
      opts.build_baseline = false;
      auto comp = CompilePdwQuery(shell, sql, opts);
      if (!comp.ok()) {
        std::printf(" %10s", "ERR");
        continue;
      }
      std::printf(" %10.5f", comp->parallel.cost);
      total += comp->parallel.cost;
    }
    std::printf(" %10.5f\n", total);
  }

  std::printf(
      "\nreading: HASH(o_orderkey) wins orders-lineitem work, "
      "HASH(o_custkey) wins customer-centric work, REPLICATE trades load-"
      "time copies for zero query-time movement — the trade-off space the "
      "automated partitioning paper [10] searches.\n");
  return 0;
}
