// Walkthrough of the paper's Figure 3 example — the two-table join
//
//   SELECT * FROM Customer C, Orders O
//   WHERE C.c_custkey = O.o_custkey AND O.o_totalprice > 1000
//
// with customer hash-distributed on c_custkey and orders on o_orderkey
// (distribution-incompatible with the join). Shows the serial memo, the
// data-movement alternatives the PDW optimizer considers (shuffle either
// side, broadcast either side), the winning plan, and the executed DSQL.
//
//   $ ./build/examples/distributed_join

#include <cstdio>

#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "tpch/tpch.h"

using namespace pdw;

int main() {
  Appliance appliance(Topology{8});
  Session session = appliance.Connect();
  Status s = tpch::CreateTpchTables(&appliance);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }
  tpch::TpchConfig cfg;
  cfg.scale = 0.1;
  s = tpch::LoadTpch(&appliance, cfg);
  if (!s.ok()) { std::printf("%s\n", s.ToString().c_str()); return 1; }

  const char* sql =
      "SELECT c_custkey, o_orderdate FROM orders, customer "
      "WHERE o_custkey = c_custkey AND o_totalprice > 100";

  auto comp = CompilePdwQuery(appliance.shell(), sql);
  if (!comp.ok()) {
    std::printf("compile failed: %s\n", comp.status().ToString().c_str());
    return 1;
  }

  std::printf("serial search space (MEMO) from the shell-database "
              "compilation:\n%s\n", comp->serial.memo->ToString().c_str());

  // The alternatives the parallel optimizer weighed for the join group.
  PdwOptimizer optimizer(comp->imported.memo.get(),
                         appliance.shell().topology());
  auto plan = optimizer.Optimize();
  if (!plan.ok()) {
    std::printf("optimize failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("data-movement alternatives per memo group "
              "(the paper's groups 5/6 are the MOVE entries):\n");
  for (int g = 0; g < comp->imported.memo->num_groups(); ++g) {
    for (const auto& o : optimizer.group_options(g)) {
      if (!o.is_enforcer) continue;
      std::printf("  group %d: MOVE %-22s -> %-16s cumulative cost %.6f\n", g,
                  DmsOpKindToString(o.move_kind), o.prop.ToString().c_str(),
                  o.cost);
    }
  }

  std::printf("\nchosen parallel plan (cost %.6f):\n%s\n", plan->cost,
              PlanTreeToString(*plan->plan).c_str());

  auto result = session.Run(sql);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("DSQL execution (matches §2.4's two-step example):\n%s\n",
              result->dsql.ToString().c_str());

  auto ref = appliance.ExecuteReference(sql);
  std::printf("%zu rows; matches reference: %s\n", result->rows.size(),
              ref.ok() && RowSetsEqual(result->rows, ref->rows) ? "YES" : "NO");
  return 0;
}
