#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, then the
# concurrency tests again under ThreadSanitizer (-DPDW_SANITIZE=thread).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# The parallel execution engine, plan cache, and the pipelined DMS
# (bounded queues + push-with-help backpressure + concurrent sessions
# moving data through the same pool) are the racy surfaces; run their
# tests instrumented. TSAN_OPTIONS halts on the first report.
cmake -B build-tsan -S . -DPDW_SANITIZE=thread
cmake --build build-tsan -j --target concurrency_test dms_pipeline_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/concurrency_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/dms_pipeline_test

# DMV leg: the live-introspection suite under TSan — a session thread
# polls sys.dm_pdw_exec_requests / _steps while a storm of queries runs,
# exercising the request registry, the DMS progress feed, and virtual-table
# snapshot materialization against concurrent temp-table DDL.
cmake --build build-tsan -j --target dmv_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/dmv_test

# Workload leg: admission control (slot handoff, priority queue, overload
# fast-fail), result-cache coalescing (leader/follower wakeups), and
# cooperative cancellation racing queued and mid-DMS queries — all
# lock/condvar surfaces, so they run instrumented.
cmake --build build-tsan -j --target workload_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/workload_test

# Parallel-optimizer leg: multi-threaded memo enumeration and the
# level-ordered cost sweeps must stay byte-identical to serial under TSan
# (the determinism proof doubles as a race detector: any unsynchronized
# write to the shared memo shows up as a report or a diff).
cmake --build build-tsan -j --target optimizer_parallel_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/optimizer_parallel_test

# The vectorized batch engine owns raw selection-vector / hash-table
# indexing; run the whole suite through it under AddressSanitizer.
cmake -B build-asan -S . -DPDW_SANITIZE=address
cmake --build build-asan -j
(cd build-asan && PDW_ENGINE=batch ASAN_OPTIONS="halt_on_error=1" \
  ctest --output-on-failure -j)

# Pre-aggregation leg: the pushdown differential sweep (preagg on/off x
# row/batch engine x row/columnar DMS codec, all byte-compared against
# the single-node row oracle) under ASan. Partial-aggregate kernels
# index raw selection vectors and group tables, so both plan shapes of
# every sweep query run instrumented; the env-knob test inside also
# covers the PDW_OPT_PREAGG=0 kill switch.
cmake --build build-asan -j --target preagg_test
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/preagg_test

# Chaos leg: the seeded fault-injection differential suite under both
# sanitizers, at a fixed seed so a CI failure reproduces exactly.
# Override the seed (or widen the sweep) with PDW_CHAOS_SEED /
# PDW_CHAOS_RUNS; failures print the seed and fault schedule of the
# offending run in their SCOPED_TRACE.
: "${PDW_CHAOS_SEED:=20120520}"
cmake --build build-asan -j --target chaos_test
PDW_CHAOS_SEED="$PDW_CHAOS_SEED" ASAN_OPTIONS="halt_on_error=1" \
  ./build-asan/tests/chaos_test
cmake --build build-tsan -j --target chaos_test
PDW_CHAOS_SEED="$PDW_CHAOS_SEED" TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/chaos_test

# Shared-step leg: the sub-plan sharing differential suite (leader/follower
# rendezvous, faulted/cancelled leader release, refcounted temp lifetime,
# seeded multi-thread storm byte-compared against isolated execution) is
# wall-to-wall condvar + refcount surface; run it under both sanitizers.
cmake --build build-asan -j --target shared_step_test
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/shared_step_test
cmake --build build-tsan -j --target shared_step_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/shared_step_test

# Sharing-off differential leg: the whole random-query sweep must be
# byte-identical with PDW_WLM_SHARE=0 — proving result correctness never
# *depends* on the sharing tier being armed.
PDW_WLM_SHARE=0 ./build/tests/random_query_test
