#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include "algebra/scalar_eval.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace pdw {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ColumnOrdinalMap OrdinalsOf(const std::vector<ColumnBinding>& output) {
  ColumnOrdinalMap map;
  for (size_t i = 0; i < output.size(); ++i) {
    map[output[i].id] = static_cast<int>(i);
  }
  return map;
}

Result<RowVector> ExecuteScan(const PlanNode& node,
                              const TableProvider& tables) {
  PDW_ASSIGN_OR_RETURN(TableData data, tables.GetTableData(node.table_name));
  // Map each output binding to the stored column by name.
  std::vector<int> ordinals;
  for (const auto& b : node.output) {
    int pos = data.schema->FindColumn(b.name);
    if (pos < 0) {
      return Status::Internal("scan column '" + b.name +
                              "' missing from table '" + node.table_name +
                              "' (" + data.schema->ToString() + ")");
    }
    ordinals.push_back(pos);
  }
  RowVector out;
  out.reserve(data.rows->size());
  for (const Row& r : *data.rows) {
    Row projected;
    projected.reserve(ordinals.size());
    for (int o : ordinals) projected.push_back(r[static_cast<size_t>(o)]);
    out.push_back(std::move(projected));
  }
  return out;
}

Result<RowVector> ExecuteFilter(const PlanNode& node, RowVector input) {
  ColumnOrdinalMap ords = OrdinalsOf(node.output);
  RowVector out;
  for (Row& r : input) {
    bool keep = true;
    for (const auto& c : node.conjuncts) {
      PDW_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, r, ords));
      if (!ok) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(std::move(r));
  }
  return out;
}

Result<RowVector> ExecuteProject(const PlanNode& node, RowVector input,
                                 const std::vector<ColumnBinding>& child_cols) {
  ColumnOrdinalMap ords = OrdinalsOf(child_cols);
  RowVector out;
  out.reserve(input.size());
  for (const Row& r : input) {
    Row projected;
    projected.reserve(node.items.size());
    for (const auto& item : node.items) {
      PDW_ASSIGN_OR_RETURN(Datum v, EvalScalar(*item.expr, r, ords));
      projected.push_back(std::move(v));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

/// All join types. Hash join when equi keys exist, nested loops otherwise.
Result<RowVector> ExecuteJoin(const PlanNode& node, RowVector left,
                              RowVector right,
                              const std::vector<ColumnBinding>& left_cols,
                              const std::vector<ColumnBinding>& right_cols) {
  LogicalJoinType jt = node.join_type;
  bool emit_right = jt == LogicalJoinType::kInner ||
                    jt == LogicalJoinType::kCross ||
                    jt == LogicalJoinType::kLeftOuter;

  // Residual predicate evaluation happens over the concatenated row.
  std::vector<ColumnBinding> combined = left_cols;
  combined.insert(combined.end(), right_cols.begin(), right_cols.end());
  ColumnOrdinalMap combined_ords = OrdinalsOf(combined);
  ColumnOrdinalMap left_ords = OrdinalsOf(left_cols);
  ColumnOrdinalMap right_ords = OrdinalsOf(right_cols);

  auto pair_matches = [&](const Row& l, const Row& r) -> Result<bool> {
    Row both = l;
    both.insert(both.end(), r.begin(), r.end());
    for (const auto& c : node.conjuncts) {
      PDW_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, both, combined_ords));
      if (!ok) return false;
    }
    return true;
  };

  RowVector out;
  auto emit = [&](const Row& l, const Row* r) {
    Row row = l;
    if (emit_right) {
      if (r != nullptr) {
        row.insert(row.end(), r->begin(), r->end());
      } else {
        for (size_t i = 0; i < right_cols.size(); ++i) {
          row.push_back(Datum::Null());
        }
      }
    }
    out.push_back(std::move(row));
  };

  if (!node.equi_keys.empty()) {
    // Hash join: build on the right.
    std::vector<int> l_key_ords;
    std::vector<int> r_key_ords;
    for (const auto& [a, b] : node.equi_keys) {
      l_key_ords.push_back(left_ords.at(a));
      r_key_ords.push_back(right_ords.at(b));
    }
    std::unordered_multimap<size_t, const Row*> table;
    table.reserve(right.size());
    for (const Row& r : right) {
      // SQL equality never matches NULL keys.
      bool has_null = false;
      for (int o : r_key_ords) {
        if (r[static_cast<size_t>(o)].is_null()) has_null = true;
      }
      if (!has_null) table.emplace(HashRowColumns(r, r_key_ords), &r);
    }
    for (const Row& l : left) {
      bool has_null = false;
      for (int o : l_key_ords) {
        if (l[static_cast<size_t>(o)].is_null()) has_null = true;
      }
      bool matched = false;
      if (!has_null) {
        auto [lo, hi] = table.equal_range(HashRowColumns(l, l_key_ords));
        for (auto it = lo; it != hi; ++it) {
          PDW_ASSIGN_OR_RETURN(bool ok, pair_matches(l, *it->second));
          if (!ok) continue;
          matched = true;
          if (jt == LogicalJoinType::kSemi) break;
          if (jt == LogicalJoinType::kAnti) break;
          emit(l, it->second);
        }
      }
      switch (jt) {
        case LogicalJoinType::kSemi:
          if (matched) emit(l, nullptr);
          break;
        case LogicalJoinType::kAnti:
          if (!matched) emit(l, nullptr);
          break;
        case LogicalJoinType::kLeftOuter:
          if (!matched) emit(l, nullptr);
          break;
        default:
          break;
      }
    }
    return out;
  }

  // Nested loops (cross joins, non-equi conditions).
  for (const Row& l : left) {
    bool matched = false;
    for (const Row& r : right) {
      PDW_ASSIGN_OR_RETURN(bool ok, pair_matches(l, r));
      if (!ok) continue;
      matched = true;
      if (jt == LogicalJoinType::kSemi || jt == LogicalJoinType::kAnti) break;
      emit(l, &r);
    }
    switch (jt) {
      case LogicalJoinType::kSemi:
        if (matched) emit(l, nullptr);
        break;
      case LogicalJoinType::kAnti:
        if (!matched) emit(l, nullptr);
        break;
      case LogicalJoinType::kLeftOuter:
        if (!matched) emit(l, nullptr);
        break;
      default:
        break;
    }
  }
  return out;
}

/// Aggregate accumulator for one (group, aggregate) pair.
struct AggState {
  Datum value;          ///< SUM/MIN/MAX accumulator (NULL until first input).
  int64_t count = 0;    ///< COUNT / COUNT(*) accumulator.
  /// Values already folded into a DISTINCT aggregate, deduplicated by SQL
  /// value equality (DatumLess), not by rendered text: 2 and 2.0 are one
  /// distinct value even though their ToString() forms differ.
  std::set<Datum, DatumLess> distinct_seen;
};

Result<RowVector> ExecuteAggregate(const PlanNode& node, RowVector input,
                                   const std::vector<ColumnBinding>& child_cols) {
  ColumnOrdinalMap ords = OrdinalsOf(child_cols);
  std::vector<int> group_ords;
  for (ColumnId g : node.group_by) {
    auto it = ords.find(g);
    if (it == ords.end()) {
      return Status::Internal("group-by column missing from aggregate input");
    }
    group_ords.push_back(it->second);
  }

  struct GroupEntry {
    Row key_row;  ///< Full first row of the group (for group column values).
    std::vector<AggState> states;
  };
  std::unordered_map<size_t, std::vector<GroupEntry>> groups;
  std::vector<std::pair<size_t, int>> order;  // insertion order
  // Pre-size for the worst case (every row its own group) so rehashing
  // never interleaves with the accumulation loop.
  groups.reserve(input.size());
  order.reserve(input.size());

  for (const Row& r : input) {
    size_t h = group_ords.empty() ? 0 : HashRowColumns(r, group_ords);
    std::vector<GroupEntry>& bucket = groups[h];
    GroupEntry* entry = nullptr;
    int index = 0;
    for (auto& candidate : bucket) {
      bool same = true;
      for (int o : group_ords) {
        if (candidate.key_row[static_cast<size_t>(o)].Compare(
                r[static_cast<size_t>(o)]) != 0) {
          same = false;
          break;
        }
      }
      if (same) {
        entry = &candidate;
        break;
      }
      ++index;
    }
    if (entry == nullptr) {
      bucket.push_back(GroupEntry{r, std::vector<AggState>(node.aggregates.size())});
      entry = &bucket.back();
      order.emplace_back(h, index);
    }
    for (size_t a = 0; a < node.aggregates.size(); ++a) {
      const AggregateItem& item = node.aggregates[a];
      AggState& state = entry->states[a];
      if (item.func == AggFunc::kCountStar) {
        state.count += 1;
        continue;
      }
      PDW_ASSIGN_OR_RETURN(Datum v, EvalScalar(*item.arg, r, ords));
      if (v.is_null()) continue;
      if (item.distinct) {
        if (!state.distinct_seen.insert(v).second) continue;
      }
      switch (item.func) {
        case AggFunc::kCount:
          state.count += 1;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          if (state.value.is_null()) {
            state.value = v;
          } else if (state.value.type() == TypeId::kInt &&
                     v.type() == TypeId::kInt) {
            state.value = Datum::Int(state.value.int_value() + v.int_value());
          } else {
            state.value = Datum::Double(state.value.AsDouble() + v.AsDouble());
          }
          state.count += 1;
          break;
        }
        case AggFunc::kMin:
          if (state.value.is_null() || v.Compare(state.value) < 0) {
            state.value = v;
          }
          break;
        case AggFunc::kMax:
          if (state.value.is_null() || v.Compare(state.value) > 0) {
            state.value = v;
          }
          break;
        default:
          break;
      }
    }
  }

  RowVector out;
  auto emit_group = [&](const GroupEntry& entry) {
    Row row;
    for (int o : group_ords) {
      row.push_back(entry.key_row[static_cast<size_t>(o)]);
    }
    for (size_t a = 0; a < node.aggregates.size(); ++a) {
      const AggregateItem& item = node.aggregates[a];
      const AggState& state = entry.states[a];
      switch (item.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          row.push_back(Datum::Int(state.count));
          break;
        case AggFunc::kAvg:
          row.push_back(state.count > 0
                            ? Datum::Double(state.value.AsDouble() /
                                            static_cast<double>(state.count))
                            : Datum::Null());
          break;
        default:
          row.push_back(state.value);
      }
    }
    out.push_back(std::move(row));
  };

  for (const auto& [h, index] : order) {
    emit_group(groups[h][static_cast<size_t>(index)]);
  }
  // Scalar aggregate over empty input: one row of initial values.
  if (group_ords.empty() && out.empty()) {
    Row row;
    for (const auto& item : node.aggregates) {
      if (item.func == AggFunc::kCountStar || item.func == AggFunc::kCount) {
        row.push_back(Datum::Int(0));
      } else {
        row.push_back(Datum::Null());
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<RowVector> ExecuteSort(const PlanNode& node, RowVector input) {
  ColumnOrdinalMap ords = OrdinalsOf(node.output);
  std::vector<std::pair<int, bool>> keys;
  for (const auto& item : node.sort_items) {
    auto it = ords.find(item.column);
    if (it == ords.end()) {
      return Status::Internal("sort column missing from input");
    }
    keys.emplace_back(it->second, item.ascending);
  }
  std::stable_sort(input.begin(), input.end(),
                   [&](const Row& a, const Row& b) {
                     for (const auto& [o, asc] : keys) {
                       int c = a[static_cast<size_t>(o)].Compare(
                           b[static_cast<size_t>(o)]);
                       if (c != 0) return asc ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return input;
}

Result<RowVector> ExecuteNode(const PlanNode& plan, const TableProvider& tables,
                              ExecProfile* profile, int depth);

/// The operator dispatch, shared by the plain and the profiled path.
Result<RowVector> DispatchNode(const PlanNode& plan,
                               const TableProvider& tables,
                               ExecProfile* profile, int depth) {
  switch (plan.kind) {
    case PhysOpKind::kTableScan:
    case PhysOpKind::kTempScan:
      return ExecuteScan(plan, tables);
    case PhysOpKind::kEmpty:
      return RowVector{};
    case PhysOpKind::kFilter: {
      PDW_ASSIGN_OR_RETURN(RowVector input,
                           ExecuteNode(*plan.children[0], tables, profile, depth + 1));
      return ExecuteFilter(plan, std::move(input));
    }
    case PhysOpKind::kProject: {
      PDW_ASSIGN_OR_RETURN(RowVector input,
                           ExecuteNode(*plan.children[0], tables, profile, depth + 1));
      return ExecuteProject(plan, std::move(input),
                            plan.children[0]->output);
    }
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kNestedLoopJoin: {
      PDW_ASSIGN_OR_RETURN(RowVector left,
                           ExecuteNode(*plan.children[0], tables, profile, depth + 1));
      PDW_ASSIGN_OR_RETURN(RowVector right,
                           ExecuteNode(*plan.children[1], tables, profile, depth + 1));
      return ExecuteJoin(plan, std::move(left), std::move(right),
                         plan.children[0]->output, plan.children[1]->output);
    }
    case PhysOpKind::kHashAggregate: {
      PDW_ASSIGN_OR_RETURN(RowVector input,
                           ExecuteNode(*plan.children[0], tables, profile, depth + 1));
      return ExecuteAggregate(plan, std::move(input),
                              plan.children[0]->output);
    }
    case PhysOpKind::kSort: {
      PDW_ASSIGN_OR_RETURN(RowVector input,
                           ExecuteNode(*plan.children[0], tables, profile, depth + 1));
      return ExecuteSort(plan, std::move(input));
    }
    case PhysOpKind::kLimit: {
      PDW_ASSIGN_OR_RETURN(RowVector input,
                           ExecuteNode(*plan.children[0], tables, profile, depth + 1));
      if (plan.limit >= 0 &&
          input.size() > static_cast<size_t>(plan.limit)) {
        input.resize(static_cast<size_t>(plan.limit));
      }
      return input;
    }
    case PhysOpKind::kUnionAll: {
      RowVector out;
      for (size_t i = 0; i < plan.children.size(); ++i) {
        PDW_ASSIGN_OR_RETURN(RowVector rows,
                             ExecuteNode(*plan.children[i], tables, profile, depth + 1));
        // Re-order each child's row positionally via union_inputs.
        ColumnOrdinalMap ords = OrdinalsOf(plan.children[i]->output);
        std::vector<int> positions;
        for (ColumnId id : plan.union_inputs[i]) {
          auto it = ords.find(id);
          if (it == ords.end()) {
            return Status::Internal("union input column missing from child");
          }
          positions.push_back(it->second);
        }
        for (Row& r : rows) {
          Row mapped;
          mapped.reserve(positions.size());
          for (int p : positions) mapped.push_back(r[static_cast<size_t>(p)]);
          out.push_back(std::move(mapped));
        }
      }
      return out;
    }
    case PhysOpKind::kMove:
      return Status::Internal(
          "executor reached a Move node; moves are executed by the DMS "
          "service, not the per-node engine");
  }
  return Status::Internal("unreachable plan kind in executor");
}

Result<RowVector> ExecuteNode(const PlanNode& plan, const TableProvider& tables,
                              ExecProfile* profile, int depth) {
  if (profile == nullptr) return DispatchNode(plan, tables, nullptr, depth);

  // Reserve the record before recursing so operators stay in pre-order.
  size_t slot = profile->operators.size();
  profile->operators.emplace_back();
  double t0 = NowSeconds();
  Result<RowVector> rows = DispatchNode(plan, tables, profile, depth);
  obs::OperatorProfile& op = profile->operators[slot];
  op.depth = depth;
  op.name = PhysOpKindToString(plan.kind);
  if (plan.kind == PhysOpKind::kTableScan || plan.kind == PhysOpKind::kTempScan) {
    op.name += "(" + plan.table_name + ")";
  } else if (plan.kind == PhysOpKind::kHashAggregate &&
             plan.agg_phase != AggPhase::kFull) {
    op.name += plan.agg_phase == AggPhase::kLocal ? "(local)" : "(global)";
  }
  op.estimated_rows = plan.cardinality;
  op.seconds = NowSeconds() - t0;
  op.nodes = 1;
  if (rows.ok()) op.actual_rows = static_cast<double>(rows->size());
  return rows;
}

}  // namespace

EngineKind DefaultEngineKind() {
  static const EngineKind kKind = [] {
    const char* env = std::getenv("PDW_ENGINE");
    if (env != nullptr && std::string(env) == "row") return EngineKind::kRow;
    return EngineKind::kBatch;
  }();
  return kKind;
}

Result<RowVector> ExecutePlan(const PlanNode& plan,
                              const TableProvider& tables,
                              ExecProfile* profile,
                              const ExecOptions& options) {
  Result<RowVector> rows =
      options.engine == EngineKind::kBatch
          ? ExecuteBatchPlan(plan, tables, profile, options)
          : ExecuteNode(plan, tables, profile, 0);
  if (profile != nullptr && rows.ok()) {
    obs::MetricsRegistry::Global().Count("executor.rows_out",
                                         static_cast<double>(rows->size()));
  }
  return rows;
}

}  // namespace pdw
