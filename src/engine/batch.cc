#include "engine/batch.h"

#include <cmath>
#include <cstdlib>
#include <functional>

namespace pdw {

VecTag VecTagForType(TypeId type) {
  switch (type) {
    case TypeId::kBool:
    case TypeId::kInt:
    case TypeId::kDate:
      return VecTag::kInt64;
    case TypeId::kDouble:
      return VecTag::kDouble;
    case TypeId::kVarchar:
      return VecTag::kString;
    default:
      return VecTag::kVariant;
  }
}

void ColumnVector::Reserve(size_t n) {
  nulls_.reserve(n);
  switch (tag_) {
    case VecTag::kInt64:
      i64_.reserve(n);
      break;
    case VecTag::kDouble:
      f64_.reserve(n);
      break;
    case VecTag::kString:
      str_.reserve(n);
      break;
    case VecTag::kVariant:
      var_.reserve(n);
      break;
  }
}

void ColumnVector::Clear() {
  nulls_.clear();
  i64_.clear();
  f64_.clear();
  str_.clear();
  var_.clear();
}

Datum ColumnVector::GetDatum(size_t i) const {
  if (nulls_[i]) return Datum::Null();
  switch (tag_) {
    case VecTag::kInt64:
      switch (declared_) {
        case TypeId::kDate:
          return Datum::Date(static_cast<int32_t>(i64_[i]));
        case TypeId::kBool:
          return Datum::Bool(i64_[i] != 0);
        default:
          return Datum::Int(i64_[i]);
      }
    case VecTag::kDouble:
      return Datum::Double(f64_[i]);
    case VecTag::kString:
      return Datum::Varchar(str_[i]);
    case VecTag::kVariant:
      return var_[i];
  }
  return Datum::Null();
}

Datum ColumnVector::TakeDatum(size_t i) {
  if (nulls_[i]) return Datum::Null();
  switch (tag_) {
    case VecTag::kString:
      return Datum::Varchar(std::move(str_[i]));
    case VecTag::kVariant:
      return std::move(var_[i]);
    default:
      return GetDatum(i);
  }
}

void ColumnVector::PromoteToVariant() {
  size_t n = nulls_.size();
  var_.clear();
  var_.reserve(n);
  for (size_t i = 0; i < n; ++i) var_.push_back(GetDatum(i));
  tag_ = VecTag::kVariant;
  i64_.clear();
  f64_.clear();
  str_.clear();
}

void ColumnVector::Append(const Datum& d) {
  if (d.is_null()) {
    AppendNull();
    return;
  }
  switch (tag_) {
    case VecTag::kInt64:
      if (d.type() == declared_) {
        nulls_.push_back(0);
        // All int64-plane types store their raw 64-bit payload.
        i64_.push_back(declared_ == TypeId::kBool
                           ? static_cast<int64_t>(d.bool_value())
                       : declared_ == TypeId::kDate
                           ? static_cast<int64_t>(d.date_value())
                           : d.int_value());
        return;
      }
      break;
    case VecTag::kDouble:
      if (d.type() == TypeId::kDouble) {
        nulls_.push_back(0);
        f64_.push_back(d.double_value());
        return;
      }
      break;
    case VecTag::kString:
      if (d.type() == TypeId::kVarchar) {
        nulls_.push_back(0);
        str_.push_back(d.string_value());
        return;
      }
      break;
    case VecTag::kVariant:
      nulls_.push_back(0);
      var_.push_back(d);
      return;
  }
  // Runtime type disagrees with the declared column type: degrade to
  // exact Datum storage rather than coercing the value.
  PromoteToVariant();
  nulls_.push_back(0);
  var_.push_back(d);
}

void ColumnVector::AppendNull() {
  nulls_.push_back(1);
  switch (tag_) {
    case VecTag::kInt64:
      i64_.push_back(0);
      break;
    case VecTag::kDouble:
      f64_.push_back(0);
      break;
    case VecTag::kString:
      str_.emplace_back();
      break;
    case VecTag::kVariant:
      var_.emplace_back();
      break;
  }
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.nulls_[i]) {
    AppendNull();
    return;
  }
  if (tag_ == src.tag_ && declared_ == src.declared_ &&
      tag_ != VecTag::kVariant) {
    nulls_.push_back(0);
    switch (tag_) {
      case VecTag::kInt64:
        i64_.push_back(src.i64_[i]);
        return;
      case VecTag::kDouble:
        f64_.push_back(src.f64_[i]);
        return;
      case VecTag::kString:
        str_.push_back(src.str_[i]);
        return;
      default:
        break;
    }
  }
  Append(src.GetDatum(i));
}

void ColumnVector::AppendRangeFrom(const ColumnVector& src, size_t begin,
                                   size_t end) {
  if (begin >= end) return;
  if (tag_ == src.tag_ && declared_ == src.declared_) {
    nulls_.insert(nulls_.end(), src.nulls_.begin() + begin,
                  src.nulls_.begin() + end);
    switch (tag_) {
      case VecTag::kInt64:
        i64_.insert(i64_.end(), src.i64_.begin() + begin,
                    src.i64_.begin() + end);
        return;
      case VecTag::kDouble:
        f64_.insert(f64_.end(), src.f64_.begin() + begin,
                    src.f64_.begin() + end);
        return;
      case VecTag::kString:
        str_.insert(str_.end(), src.str_.begin() + begin,
                    src.str_.begin() + end);
        return;
      case VecTag::kVariant:
        var_.insert(var_.end(), src.var_.begin() + begin,
                    src.var_.begin() + end);
        return;
    }
  }
  Reserve(nulls_.size() + (end - begin));
  for (size_t i = begin; i < end; ++i) AppendFrom(src, i);
}

void ColumnVector::AppendRowsColumn(const RowVector& rows, size_t begin,
                                    size_t end, size_t ordinal) {
  Reserve(nulls_.size() + (end - begin));
  for (size_t r = begin; r < end; ++r) {
    const Datum& d = rows[r][ordinal];
    if (d.is_null()) {
      AppendNull();
      continue;
    }
    if (d.type() != declared_ || tag_ == VecTag::kVariant) {
      // Variant promotion changes the tag mid-column; finish this column
      // through the generic per-cell path.
      for (; r < end; ++r) Append(rows[r][ordinal]);
      return;
    }
    nulls_.push_back(0);
    switch (tag_) {
      case VecTag::kInt64:
        i64_.push_back(declared_ == TypeId::kBool
                           ? static_cast<int64_t>(d.bool_value())
                       : declared_ == TypeId::kDate
                           ? static_cast<int64_t>(d.date_value())
                           : d.int_value());
        break;
      case VecTag::kDouble:
        f64_.push_back(d.double_value());
        break;
      case VecTag::kString:
        str_.push_back(d.string_value());
        break;
      case VecTag::kVariant:
        var_.push_back(d);
        break;
    }
  }
}

void ColumnVector::AppendI64Bulk(const int64_t* v, const uint8_t* null_bytes,
                                 size_t n) {
  i64_.insert(i64_.end(), v, v + n);
  if (null_bytes == nullptr) {
    nulls_.insert(nulls_.end(), n, 0);
  } else {
    nulls_.insert(nulls_.end(), null_bytes, null_bytes + n);
  }
}

void ColumnVector::AppendF64Bulk(const double* v, const uint8_t* null_bytes,
                                 size_t n) {
  f64_.insert(f64_.end(), v, v + n);
  if (null_bytes == nullptr) {
    nulls_.insert(nulls_.end(), n, 0);
  } else {
    nulls_.insert(nulls_.end(), null_bytes, null_bytes + n);
  }
}

size_t ColumnVector::HashAt(size_t i) const {
  // Mirrors Datum::Hash exactly so hash-partitioned structures agree with
  // Datum-level equality (notably integral doubles hashing like ints).
  if (nulls_[i]) return 0x9e3779b97f4a7c15ULL;
  switch (tag_) {
    case VecTag::kInt64:
      if (declared_ == TypeId::kBool) return std::hash<bool>()(i64_[i] != 0);
      return std::hash<int64_t>()(i64_[i]);
    case VecTag::kDouble: {
      double d = f64_[i];
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case VecTag::kString:
      return std::hash<std::string>()(str_[i]);
    case VecTag::kVariant:
      return var_[i].Hash();
  }
  return 0;
}

int CompareAt(const ColumnVector& a, size_t ai, const ColumnVector& b,
              size_t bi) {
  bool an = a.IsNull(ai);
  bool bn = b.IsNull(bi);
  if (an && bn) return 0;
  if (an) return -1;
  if (bn) return 1;
  if (a.tag() == b.tag()) {
    switch (a.tag()) {
      case VecTag::kInt64: {
        // INT/DATE/BOOL compare within the int64 plane; mixed declared
        // types (e.g. INT vs DATE) still order by the raw value, exactly
        // like Datum::Compare's numeric path.
        int64_t x = a.i64(ai);
        int64_t y = b.i64(bi);
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      case VecTag::kDouble: {
        double x = a.f64(ai);
        double y = b.f64(bi);
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      case VecTag::kString: {
        int c = a.str(ai).compare(b.str(bi));
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
      case VecTag::kVariant:
        return a.variant(ai).Compare(b.variant(bi));
    }
  }
  if (a.tag() != VecTag::kVariant && b.tag() != VecTag::kVariant &&
      a.tag() != VecTag::kString && b.tag() != VecTag::kString) {
    double x = a.NumericAt(ai);
    double y = b.NumericAt(bi);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return a.GetDatum(ai).Compare(b.GetDatum(bi));
}

int DefaultBatchSize() {
  static const int kSize = [] {
    const char* env = std::getenv("PDW_BATCH_SIZE");
    if (env != nullptr) {
      int v = std::atoi(env);
      if (v >= 1) return v;
    }
    return 1024;
  }();
  return kSize;
}

void AppendRowsToBatch(const RowVector& rows, size_t begin, size_t end,
                       const std::vector<int>& ordinals, ColumnBatch* out) {
  size_t n = end - begin;
  for (size_t c = 0; c < ordinals.size(); ++c) {
    out->columns[c].AppendRowsColumn(rows, begin, end,
                                     static_cast<size_t>(ordinals[c]));
  }
  out->rows += n;
}

void AppendBatchToRows(const ColumnBatch& batch, RowVector* out) {
  out->reserve(out->size() + batch.rows);
  for (size_t r = 0; r < batch.rows; ++r) {
    Row row;
    row.reserve(batch.columns.size());
    for (const ColumnVector& col : batch.columns) {
      row.push_back(col.GetDatum(r));
    }
    out->push_back(std::move(row));
  }
}

void MoveBatchToRows(ColumnBatch* batch, RowVector* out) {
  out->reserve(out->size() + batch->rows);
  for (size_t r = 0; r < batch->rows; ++r) {
    Row row;
    row.reserve(batch->columns.size());
    for (ColumnVector& col : batch->columns) {
      row.push_back(col.TakeDatum(r));
    }
    out->push_back(std::move(row));
  }
}

RowVector TableToRows(const ColumnTable& table) {
  RowVector rows;
  for (const ColumnBatch& b : table.batches) AppendBatchToRows(b, &rows);
  return rows;
}

ColumnBatch ConcatBatches(const ColumnTable& table) {
  ColumnBatch out(table.types);
  size_t total = table.total_rows();
  for (ColumnVector& col : out.columns) col.Reserve(total);
  for (const ColumnBatch& b : table.batches) {
    for (size_t c = 0; c < b.columns.size(); ++c) {
      for (size_t r = 0; r < b.rows; ++r) {
        out.columns[c].AppendFrom(b.columns[c], r);
      }
    }
    out.rows += b.rows;
  }
  return out;
}

ColumnBatch GatherBatch(const ColumnBatch& batch, const SelVector& sel) {
  ColumnBatch out;
  out.columns.reserve(batch.columns.size());
  for (const ColumnVector& col : batch.columns) {
    ColumnVector dst(col.declared_type());
    dst.Reserve(sel.size());
    for (int32_t i : sel) dst.AppendFrom(col, static_cast<size_t>(i));
    out.columns.push_back(std::move(dst));
  }
  out.rows = sel.size();
  return out;
}

}  // namespace pdw
