#include "engine/local_engine.h"

#include <mutex>
#include <shared_mutex>

#include "algebra/scalar_eval.h"
#include "common/string_util.h"
#include "optimizer/serial_optimizer.h"
#include "sql/parser.h"

namespace pdw {

namespace {

/// Per-query view over the engine's storage with virtual-table snapshots
/// layered on top: scans of registered system views read the rows
/// materialized for *this* execution (stable for the query's duration),
/// everything else falls through to the engine.
class OverlayTableProvider : public TableProvider {
 public:
  struct Entry {
    const Schema* schema = nullptr;  ///< Points into the engine catalog.
    RowVector rows;
    ColumnTable columns;
  };

  explicit OverlayTableProvider(const TableProvider& base) : base_(base) {}

  void Add(std::string key, Entry entry) {
    tables_[std::move(key)] = std::move(entry);
  }

  Result<TableData> GetTableData(const std::string& name) const override {
    auto it = tables_.find(ToLower(name));
    if (it != tables_.end()) {
      return TableData{it->second.schema, &it->second.rows,
                       &it->second.columns};
    }
    return base_.GetTableData(name);
  }

 private:
  const TableProvider& base_;
  std::map<std::string, Entry> tables_;
};

/// Collects the (lowercased) names of every base table the plan scans.
void CollectScanNames(const PlanNode& node, std::vector<std::string>* out) {
  if (node.kind == PhysOpKind::kTableScan) {
    out->push_back(ToLower(node.table_name));
  }
  for (const auto& child : node.children) CollectScanNames(*child, out);
}

}  // namespace

LocalEngine::LocalEngine() {
  TableDef empty;
  empty.name = "pdw_empty";
  empty.schema = Schema({{"dummy", TypeId::kInt, true}});
  Status s = CreateTable(std::move(empty));
  (void)s;
}

Status LocalEngine::CreateTable(TableDef def) {
  std::string key = ToLower(def.name);
  std::vector<TypeId> types;
  for (int i = 0; i < def.schema.num_columns(); ++i) {
    types.push_back(def.schema.column(i).type);
  }
  PDW_RETURN_NOT_OK(catalog_.CreateTable(std::move(def)));
  std::unique_lock lock(mu_);
  StoredTable& table = storage_[key];
  table.rows.clear();
  table.columns.types = types;
  table.columns.batches.assign(1, ColumnBatch(types));
  return Status::OK();
}

Status LocalEngine::DropTable(const std::string& name) {
  PDW_RETURN_NOT_OK(catalog_.DropTable(name));
  std::unique_lock lock(mu_);
  storage_.erase(ToLower(name));
  virtual_.erase(ToLower(name));
  return Status::OK();
}

Status LocalEngine::RegisterVirtualTable(TableDef def, VirtualTableFn fn) {
  if (fn == nullptr) {
    return Status::InvalidArgument("virtual table needs a producer");
  }
  std::string key = ToLower(def.name);
  def.is_system_view = true;
  PDW_RETURN_NOT_OK(catalog_.CreateTable(std::move(def)));
  std::unique_lock lock(mu_);
  virtual_[key] = std::move(fn);
  return Status::OK();
}

Status LocalEngine::InsertRows(const std::string& name, RowVector rows) {
  PDW_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
  for (const Row& r : rows) {
    if (static_cast<int>(r.size()) != def->schema.num_columns()) {
      return Status::InvalidArgument(
          StringFormat("row arity %zu does not match table '%s' (%d columns)",
                       r.size(), name.c_str(), def->schema.num_columns()));
    }
  }
  // The shared lock protects the map lookup; appending to this table's
  // storage is safe because no other thread touches *this* table (see the
  // class thread-safety contract).
  std::shared_lock lock(mu_);
  auto it = storage_.find(ToLower(name));
  if (it == storage_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  StoredTable& dest = it->second;
  // Keep the columnar mirror in sync before the rows are moved away.
  ColumnBatch& mirror = dest.columns.batches.front();
  std::vector<int> ordinals(mirror.columns.size());
  for (size_t i = 0; i < ordinals.size(); ++i) ordinals[i] = static_cast<int>(i);
  AppendRowsToBatch(rows, 0, rows.size(), ordinals, &mirror);
  dest.rows.insert(dest.rows.end(), std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
  return Status::OK();
}

Result<const RowVector*> LocalEngine::GetRows(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = storage_.find(ToLower(name));
  if (it == storage_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return &it->second.rows;
}

Result<TableData> LocalEngine::GetTableData(const std::string& name) const {
  PDW_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
  std::shared_lock lock(mu_);
  auto it = storage_.find(ToLower(name));
  if (it == storage_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return TableData{&def->schema, &it->second.rows, &it->second.columns};
}

Result<TableStats> LocalEngine::ComputeLocalStats(const std::string& name,
                                                  int histogram_buckets) {
  PDW_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(name));
  PDW_ASSIGN_OR_RETURN(const RowVector* rows, GetRows(name));
  TableStats stats;
  stats.row_count = static_cast<double>(rows->size());
  double width = 0;
  for (const Row& r : *rows) width += RowWidth(r);
  stats.avg_row_width = rows->empty() ? 0 : width / stats.row_count;
  for (int i = 0; i < def->schema.num_columns(); ++i) {
    const ColumnDef& col = def->schema.column(i);
    stats.columns[ToLower(col.name)] =
        ColumnStats::FromRows(*rows, i, col.type, histogram_buckets);
  }
  return stats;
}

Result<SqlResult> LocalEngine::ExecuteSql(const std::string& sql,
                                          ExecProfile* profile,
                                          const ExecOptions& exec) {
  PDW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  SqlResult result;
  switch (stmt.kind) {
    case sql::StatementKind::kCreateTable: {
      TableDef def;
      def.name = stmt.create_table->name;
      def.schema = stmt.create_table->schema;
      def.distribution = stmt.create_table->distribution;
      PDW_RETURN_NOT_OK(CreateTable(std::move(def)));
      return result;
    }
    case sql::StatementKind::kDropTable:
      PDW_RETURN_NOT_OK(DropTable(stmt.drop_table->name));
      return result;
    case sql::StatementKind::kInsert: {
      PDW_ASSIGN_OR_RETURN(const TableDef* def,
                           catalog_.GetTable(stmt.insert->table));
      RowVector rows;
      for (const auto& exprs : stmt.insert->rows) {
        if (static_cast<int>(exprs.size()) != def->schema.num_columns()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        Row row;
        for (size_t i = 0; i < exprs.size(); ++i) {
          // VALUES entries must be constant expressions (literals or a
          // negated literal).
          const sql::Expr* e = exprs[i].get();
          bool negate = false;
          while (e->kind == sql::ExprKind::kUnary &&
                 static_cast<const sql::UnaryExpr&>(*e).op ==
                     sql::UnaryOp::kNegate) {
            negate = !negate;
            e = static_cast<const sql::UnaryExpr&>(*e).operand.get();
          }
          if (e->kind != sql::ExprKind::kLiteral) {
            return Status::NotImplemented(
                "only literal VALUES are supported");
          }
          Datum v = static_cast<const sql::LiteralExpr&>(*e).value;
          if (negate && !v.is_null()) {
            if (v.type() == TypeId::kInt) {
              v = Datum::Int(-v.int_value());
            } else if (v.type() == TypeId::kDouble) {
              v = Datum::Double(-v.double_value());
            } else {
              return Status::InvalidArgument("cannot negate this literal");
            }
          }
          TypeId want = def->schema.column(static_cast<int>(i)).type;
          if (!v.is_null() && v.type() != want) {
            PDW_ASSIGN_OR_RETURN(v, v.CastTo(want));
          }
          row.push_back(std::move(v));
        }
        rows.push_back(std::move(row));
      }
      PDW_RETURN_NOT_OK(InsertRows(stmt.insert->table, std::move(rows)));
      return result;
    }
    case sql::StatementKind::kSelect:
      break;
  }

  // SELECT: full serial pipeline against the local catalog + storage.
  PDW_ASSIGN_OR_RETURN(CompilationResult comp,
                       CompileSelect(catalog_, *stmt.select));
  PDW_ASSIGN_OR_RETURN(PlanNodePtr plan,
                       ExtractBestSerialPlan(comp.memo.get()));
  // Virtual-table scans (system views) read a snapshot materialized now,
  // for this execution only: call each view's producer once, mirror the
  // rows into one column batch so either engine can scan them, and layer
  // the snapshots over the stored tables.
  std::vector<std::string> scans;
  CollectScanNames(*plan, &scans);
  OverlayTableProvider overlay(*this);
  bool has_virtual = false;
  for (const std::string& key : scans) {
    VirtualTableFn fn;
    {
      std::shared_lock lock(mu_);
      auto vit = virtual_.find(key);
      if (vit == virtual_.end()) continue;
      fn = vit->second;
    }
    PDW_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(key));
    OverlayTableProvider::Entry entry;
    entry.schema = &def->schema;
    PDW_ASSIGN_OR_RETURN(entry.rows, fn());
    std::vector<TypeId> types;
    std::vector<int> ordinals;
    for (int i = 0; i < def->schema.num_columns(); ++i) {
      types.push_back(def->schema.column(i).type);
      ordinals.push_back(i);
    }
    entry.columns.types = types;
    entry.columns.batches.assign(1, ColumnBatch(types));
    AppendRowsToBatch(entry.rows, 0, entry.rows.size(), ordinals,
                      &entry.columns.batches.front());
    overlay.Add(key, std::move(entry));
    has_virtual = true;
  }
  const TableProvider& provider =
      has_virtual ? static_cast<const TableProvider&>(overlay) : *this;
  PDW_ASSIGN_OR_RETURN(result.rows,
                       ExecutePlan(*plan, provider, profile, exec));
  result.column_names = comp.output_names;
  for (const auto& b : plan->output) result.column_types.push_back(b.type);
  // Trim hidden ORDER BY carrier columns.
  if (comp.visible_columns >= 0) {
    size_t visible = static_cast<size_t>(comp.visible_columns);
    for (Row& r : result.rows) {
      if (r.size() > visible) r.resize(visible);
    }
    if (result.column_names.size() > visible) result.column_names.resize(visible);
    if (result.column_types.size() > visible) result.column_types.resize(visible);
  }
  return result;
}

}  // namespace pdw
