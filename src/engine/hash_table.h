#ifndef PDW_ENGINE_HASH_TABLE_H_
#define PDW_ENGINE_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "engine/batch.h"

namespace pdw {

/// Hash of the key tuple formed by `keys[*][row]`, combined exactly like
/// HashRowColumns so batch-side hashing agrees with every Datum-level
/// consumer (per-column hashes already mirror Datum::Hash).
uint64_t HashKeyColumns(const std::vector<const ColumnVector*>& keys,
                        size_t row);

/// True when the two key tuples are equal under Datum::Compare semantics
/// (NULLs equal each other — the grouping rule; join probes must reject
/// NULL keys before calling this).
bool KeyColumnsEqual(const std::vector<const ColumnVector*>& a, size_t arow,
                     const std::vector<const ColumnVector*>& b, size_t brow);

/// Flat open-addressing map from a key tuple to a dense group index in
/// first-seen order — the spine of hash aggregation and DISTINCT. Keys are
/// copied into per-table key columns on first sight, so group finalization
/// reads them back without touching the input. Power-of-two capacity,
/// linear probing, cached full hashes, load factor <= 0.5.
class GroupTable {
 public:
  explicit GroupTable(std::vector<TypeId> key_types);

  /// Group index of the key at `row` of `keys`, inserting a new group on
  /// first sight. NULL keys are valid and group together.
  size_t FindOrInsert(const std::vector<const ColumnVector*>& keys,
                      size_t row);

  /// Group index or -1 when the key was never inserted.
  int64_t Find(const std::vector<const ColumnVector*>& keys,
               size_t row) const;

  /// Pre-sizes the slot array (and key storage) for `expected_groups`, so
  /// bulk loads — partial-aggregate merges, pre-sized morsel tables — skip
  /// the doubling cascade. No-op when already large enough.
  void Reserve(size_t expected_groups);

  size_t num_groups() const { return group_hashes_.size(); }

  /// Key columns, dense in group-index (first-seen) order.
  const std::vector<ColumnVector>& group_keys() const { return key_cols_; }

 private:
  void Grow();

  std::vector<ColumnVector> key_cols_;
  /// Pointer view over key_cols_ (stable: the outer vector never grows).
  std::vector<const ColumnVector*> key_view_;
  std::vector<uint64_t> group_hashes_;  ///< Cached hash per group.
  std::vector<int32_t> slots_;          ///< Group index per slot; -1 empty.
  uint64_t mask_ = 0;
};

/// Flat open-addressing multimap from a key tuple to the build rows that
/// carry it: each slot heads a chain through `next` over equal-key rows.
/// Built once from dense, precomputed key columns; probes walk the chain.
/// Build rows with any NULL key are never inserted (SQL equality cannot
/// match them), and probes with NULL keys must not be issued.
class JoinHashTable {
 public:
  /// Indexes build rows [0, n) where n is the length of `keys` (which the
  /// table takes ownership of; they double as the stored key columns).
  void Build(std::vector<ColumnVector> keys);

  /// First build row whose key equals the probe key, or -1. Later matches
  /// follow via Next (chains run newest-to-oldest build row).
  int32_t FindFirst(const std::vector<const ColumnVector*>& probe_keys,
                    size_t probe_row) const;

  int32_t Next(int32_t build_row) const {
    return next_[static_cast<size_t>(build_row)];
  }

  const std::vector<ColumnVector>& keys() const { return key_cols_; }

 private:
  std::vector<ColumnVector> key_cols_;
  std::vector<const ColumnVector*> key_view_;
  std::vector<uint64_t> row_hashes_;  ///< Hash per build row (0 if skipped).
  std::vector<uint64_t> slot_hashes_;
  std::vector<int32_t> heads_;  ///< Chain head per slot; -1 empty.
  std::vector<int32_t> next_;   ///< Chain link per build row.
  uint64_t mask_ = 0;
};

}  // namespace pdw

#endif  // PDW_ENGINE_HASH_TABLE_H_
