#ifndef PDW_ENGINE_EXECUTOR_H_
#define PDW_ENGINE_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"
#include "obs/query_profile.h"
#include "plan/plan_node.h"

namespace pdw {

struct ColumnTable;  // engine/batch.h

/// Storage for one table as seen by the executor. `rows` is always
/// present (the row engine's input and the authoritative copy);
/// `columns` is an optional columnar mirror maintained at load time so
/// batch-engine scans slice vectors instead of converting rows per
/// query. When present it holds the same rows in the same order.
struct TableData {
  const Schema* schema = nullptr;
  const RowVector* rows = nullptr;
  const ColumnTable* columns = nullptr;
};

/// Supplies table contents to the executor (implemented by LocalEngine's
/// storage and by test fixtures).
class TableProvider {
 public:
  virtual ~TableProvider() = default;
  virtual Result<TableData> GetTableData(const std::string& name) const = 0;
};

/// Per-operator actuals of one plan execution, pre-order over the plan
/// tree. Filled only when a profile is passed to ExecutePlan; timings are
/// inclusive of children (EXPLAIN ANALYZE convention).
struct ExecProfile {
  std::vector<obs::OperatorProfile> operators;
};

/// Which local execution engine runs the plan. Both engines implement the
/// same operator semantics and produce multiset-identical results; the row
/// engine is the simple interpreter kept as the reference oracle, the batch
/// engine is the vectorized production path.
enum class EngineKind {
  kRow,    ///< Row-at-a-time Volcano interpreter.
  kBatch,  ///< Vectorized batches + compiled expressions + morsels.
};

/// Process default, read once from PDW_ENGINE ("row" or "batch");
/// unset/unrecognized means kBatch.
EngineKind DefaultEngineKind();

/// Per-execution knobs. The defaults run the batch engine with
/// PDW_BATCH_SIZE-sized batches and unconstrained morsel parallelism.
struct ExecOptions {
  EngineKind engine = DefaultEngineKind();
  /// Rows per column batch; 0 = DefaultBatchSize().
  int batch_size = 0;
  /// Cap on concurrent morsel tasks per operator; 0 = pool size.
  int max_morsel_parallelism = 0;
};

/// Executes a physical plan (without Move nodes) over materialized rows:
/// scans, filters, projections, hash/nested-loop joins of all logical join
/// types, hash aggregation (full/local/global phases behave identically at
/// this level — the phase difference is in which rows each node holds),
/// sort and limit. This is the per-node "SQL Server" execution backbone.
///
/// `options.engine` picks the interpreter: the row-at-a-time reference
/// engine, or the vectorized batch engine (default).
///
/// With a non-null `profile`, every operator records its emitted row count
/// and inclusive wall time (and bumps the global `executor.rows_out`
/// counter at the root); the batch engine additionally records batch and
/// morsel counts and filter/probe selectivity. With nullptr the
/// instrumented path is skipped entirely.
Result<RowVector> ExecutePlan(const PlanNode& plan,
                              const TableProvider& tables,
                              ExecProfile* profile = nullptr,
                              const ExecOptions& options = {});

/// The batch-engine entry point (batch_executor.cc); ExecutePlan dispatches
/// here when options.engine == kBatch. Exposed for the engine benches.
Result<RowVector> ExecuteBatchPlan(const PlanNode& plan,
                                   const TableProvider& tables,
                                   ExecProfile* profile,
                                   const ExecOptions& options);

}  // namespace pdw

#endif  // PDW_ENGINE_EXECUTOR_H_
