#ifndef PDW_ENGINE_EXECUTOR_H_
#define PDW_ENGINE_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"
#include "obs/query_profile.h"
#include "plan/plan_node.h"

namespace pdw {

/// Row storage for one table as seen by the executor.
struct TableData {
  const Schema* schema = nullptr;
  const RowVector* rows = nullptr;
};

/// Supplies table contents to the executor (implemented by LocalEngine's
/// storage and by test fixtures).
class TableProvider {
 public:
  virtual ~TableProvider() = default;
  virtual Result<TableData> GetTableData(const std::string& name) const = 0;
};

/// Per-operator actuals of one plan execution, pre-order over the plan
/// tree. Filled only when a profile is passed to ExecutePlan; timings are
/// inclusive of children (EXPLAIN ANALYZE convention).
struct ExecProfile {
  std::vector<obs::OperatorProfile> operators;
};

/// Interprets a physical plan (without Move nodes) over materialized rows:
/// scans, filters, projections, hash/nested-loop joins of all logical join
/// types, hash aggregation (full/local/global phases behave identically at
/// this level — the phase difference is in which rows each node holds),
/// sort and limit. This is the per-node "SQL Server" execution backbone.
///
/// With a non-null `profile`, every operator records its emitted row count
/// and inclusive wall time (and bumps the global `executor.rows_out`
/// counter at the root); with nullptr the instrumented path is skipped
/// entirely.
Result<RowVector> ExecutePlan(const PlanNode& plan,
                              const TableProvider& tables,
                              ExecProfile* profile = nullptr);

}  // namespace pdw

#endif  // PDW_ENGINE_EXECUTOR_H_
