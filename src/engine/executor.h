#ifndef PDW_ENGINE_EXECUTOR_H_
#define PDW_ENGINE_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"
#include "plan/plan_node.h"

namespace pdw {

/// Row storage for one table as seen by the executor.
struct TableData {
  const Schema* schema = nullptr;
  const RowVector* rows = nullptr;
};

/// Supplies table contents to the executor (implemented by LocalEngine's
/// storage and by test fixtures).
class TableProvider {
 public:
  virtual ~TableProvider() = default;
  virtual Result<TableData> GetTableData(const std::string& name) const = 0;
};

/// Interprets a physical plan (without Move nodes) over materialized rows:
/// scans, filters, projections, hash/nested-loop joins of all logical join
/// types, hash aggregation (full/local/global phases behave identically at
/// this level — the phase difference is in which rows each node holds),
/// sort and limit. This is the per-node "SQL Server" execution backbone.
Result<RowVector> ExecutePlan(const PlanNode& plan,
                              const TableProvider& tables);

}  // namespace pdw

#endif  // PDW_ENGINE_EXECUTOR_H_
