#ifndef PDW_ENGINE_EXPR_PROGRAM_H_
#define PDW_ENGINE_EXPR_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/column.h"
#include "algebra/scalar_expr.h"
#include "common/result.h"
#include "common/row.h"
#include "engine/batch.h"

namespace pdw {

/// A scalar expression compiled once per operator at plan-bind time for
/// batch execution. Compilation resolves every column reference to its
/// input ordinal (the row interpreter re-resolves through a ColumnId map
/// per row per reference), so evaluation is a walk over typed column
/// vectors with no name or id lookups.
///
/// Three entry points:
///  - Eval: vector-at-a-time evaluation over the selected rows, returning
///    a dense result (one value per selection entry, in selection order).
///    Typed kernels cover arithmetic, comparisons, AND/OR, LIKE and IS
///    NULL; CASE/CAST/functions evaluate vector-wise with value-generic
///    inner loops that share scalar_eval's operator semantics.
///  - Filter: fused predicate evaluation that shrinks a selection vector
///    in place. Conjunctions split recursively, and comparisons against
///    literals or between columns run as tight compare-and-keep loops
///    without materializing a boolean vector.
///  - EvalRow: the per-row path (nested-loop joins), still ordinal-resolved.
///
/// Programs are immutable after Compile and safe to share across morsel
/// threads.
class ExprProgram {
 public:
  ExprProgram() = default;

  /// Compiles `expr` against the operator input `input` (ordinal i of the
  /// input batch holds input[i]). Fails on references to absent columns.
  static Result<ExprProgram> Compile(const ScalarExprPtr& expr,
                                     const std::vector<ColumnBinding>& input);

  bool valid() const { return root_ != nullptr; }
  TypeId output_type() const;

  /// Dense evaluation over `sel`: result[k] is the value for batch row
  /// sel[k]. SQL semantics match EvalScalar exactly (three-valued logic,
  /// NULL propagation, div/mod-by-zero errors).
  Result<ColumnVector> Eval(const ColumnBatch& batch, const SelVector& sel) const;

  /// Removes the rows where this (predicate) program does not evaluate to
  /// TRUE; NULL and FALSE both reject, as in EvalPredicate.
  Status Filter(const ColumnBatch& batch, SelVector* sel) const;

  /// Row-at-a-time evaluation with the compiled ordinals.
  Result<Datum> EvalRow(const Row& row) const;

  struct Node;

 private:
  explicit ExprProgram(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}

  std::shared_ptr<const Node> root_;
};

}  // namespace pdw

#endif  // PDW_ENGINE_EXPR_PROGRAM_H_
