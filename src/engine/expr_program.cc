#include "engine/expr_program.h"

#include <cmath>
#include <map>
#include <utility>

#include "algebra/scalar_eval.h"

namespace pdw {

using sql::BinaryOp;

/// Compiled expression node: the bound ScalarExpr tree flattened into a
/// plain struct with every column reference resolved to an input ordinal.
/// `can_error` marks subtrees whose evaluation can fail (division/modulo by
/// zero, casts, functions, LIKE on non-strings); filter fusion only
/// short-circuits past conjuncts that cannot error, so the set of
/// (row, expression) evaluations that can raise matches the row engine's.
struct ExprProgram::Node {
  ScalarKind kind = ScalarKind::kLiteral;
  TypeId type = TypeId::kInvalid;
  int ordinal = -1;                   // kColumn
  Datum literal;                      // kLiteral
  BinaryOp bop = BinaryOp::kAnd;      // kBinary
  sql::UnaryOp uop = sql::UnaryOp::kNot;  // kUnary
  bool negated = false;               // kIsNull
  bool has_else = false;              // kCase
  bool can_error = false;
  std::string func_name;              // kFunction
  // kBinary: [left, right]; kUnary/kIsNull/kCast: [operand];
  // kCase: [when0, then0, when1, then1, ..., else?]; kFunction: args.
  std::vector<Node> children;
};

namespace {

using Node = ExprProgram::Node;

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArith(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

/// True for comparison verdicts that keep the row.
bool CmpKeeps(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: return false;
  }
}

/// Mirror of `a.Compare(b)` for the operand on the right of a flipped
/// comparison: `lit op col` becomes `col flipped(op) lit`.
BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // =, <> are symmetric
  }
}

Status CompileInto(const ScalarExpr& e, const std::map<ColumnId, int>& ords,
                   Node* out) {
  out->kind = e.kind();
  out->type = e.type();
  switch (e.kind()) {
    case ScalarKind::kColumn: {
      const auto& c = static_cast<const ColumnExpr&>(e);
      auto it = ords.find(c.id());
      if (it == ords.end()) {
        return Status::Internal("unbound column " + c.ToString());
      }
      out->ordinal = it->second;
      return Status::OK();
    }
    case ScalarKind::kLiteral:
      out->literal = static_cast<const LiteralExprB&>(e).value();
      return Status::OK();
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(e);
      out->bop = b.op();
      out->children.resize(2);
      PDW_RETURN_NOT_OK(CompileInto(*b.left(), ords, &out->children[0]));
      PDW_RETURN_NOT_OK(CompileInto(*b.right(), ords, &out->children[1]));
      out->can_error = out->children[0].can_error ||
                       out->children[1].can_error ||
                       b.op() == BinaryOp::kDiv || b.op() == BinaryOp::kMod ||
                       b.op() == BinaryOp::kLike ||
                       b.op() == BinaryOp::kNotLike;
      return Status::OK();
    }
    case ScalarKind::kUnary: {
      const auto& u = static_cast<const UnaryExprB&>(e);
      out->uop = u.op();
      out->children.resize(1);
      PDW_RETURN_NOT_OK(CompileInto(*u.operand(), ords, &out->children[0]));
      out->can_error = out->children[0].can_error;
      return Status::OK();
    }
    case ScalarKind::kIsNull: {
      const auto& n = static_cast<const IsNullExprB&>(e);
      out->negated = n.negated();
      out->children.resize(1);
      PDW_RETURN_NOT_OK(CompileInto(*n.operand(), ords, &out->children[0]));
      out->can_error = out->children[0].can_error;
      return Status::OK();
    }
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(e);
      out->children.reserve(c.whens().size() * 2 + 1);
      for (const auto& [when, then] : c.whens()) {
        out->children.emplace_back();
        PDW_RETURN_NOT_OK(CompileInto(*when, ords, &out->children.back()));
        out->children.emplace_back();
        PDW_RETURN_NOT_OK(CompileInto(*then, ords, &out->children.back()));
      }
      if (c.else_expr()) {
        out->has_else = true;
        out->children.emplace_back();
        PDW_RETURN_NOT_OK(
            CompileInto(*c.else_expr(), ords, &out->children.back()));
      }
      for (const Node& ch : out->children) out->can_error |= ch.can_error;
      return Status::OK();
    }
    case ScalarKind::kCast: {
      const auto& c = static_cast<const CastExprB&>(e);
      out->children.resize(1);
      PDW_RETURN_NOT_OK(CompileInto(*c.operand(), ords, &out->children[0]));
      out->can_error = true;
      return Status::OK();
    }
    case ScalarKind::kFunction: {
      const auto& f = static_cast<const FunctionExprB&>(e);
      out->func_name = f.name();
      out->children.resize(f.args().size());
      for (size_t i = 0; i < f.args().size(); ++i) {
        PDW_RETURN_NOT_OK(CompileInto(*f.args()[i], ords, &out->children[i]));
      }
      out->can_error = true;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable scalar kind");
}

Status EvalNode(const Node& n, const ColumnBatch& batch, const SelVector& sel,
                ColumnVector* out);

/// Arithmetic over two dense operand vectors. Typed kernels for the INT/INT
/// and numeric/numeric cases; everything else (dates, bools, promoted
/// variants) goes value-wise through EvalBinaryOp so semantics — including
/// date day-arithmetic and div/mod-by-zero errors — match the row engine.
Status EvalArithVec(const Node& n, const ColumnVector& l, const ColumnVector& r,
                    ColumnVector* out) {
  size_t count = l.size();
  bool l_int = l.tag() == VecTag::kInt64 && l.declared_type() == TypeId::kInt;
  bool r_int = r.tag() == VecTag::kInt64 && r.declared_type() == TypeId::kInt;
  if (l_int && r_int && n.bop != BinaryOp::kDiv) {
    *out = ColumnVector(TypeId::kInt);
    out->Reserve(count);
    for (size_t k = 0; k < count; ++k) {
      if (l.IsNull(k) || r.IsNull(k)) {
        out->AppendNull();
        continue;
      }
      int64_t a = l.i64(k);
      int64_t b = r.i64(k);
      switch (n.bop) {
        case BinaryOp::kAdd: out->AppendI64(a + b); break;
        case BinaryOp::kSub: out->AppendI64(a - b); break;
        case BinaryOp::kMul: out->AppendI64(a * b); break;
        default:  // kMod
          if (b == 0) return Status::ExecutionError("modulo by zero");
          out->AppendI64(a % b);
      }
    }
    return Status::OK();
  }
  auto numeric = [](const ColumnVector& v) {
    return (v.tag() == VecTag::kInt64 || v.tag() == VecTag::kDouble) &&
           (v.declared_type() == TypeId::kInt ||
            v.declared_type() == TypeId::kDouble);
  };
  if (numeric(l) && numeric(r)) {
    *out = ColumnVector(TypeId::kDouble);
    out->Reserve(count);
    for (size_t k = 0; k < count; ++k) {
      if (l.IsNull(k) || r.IsNull(k)) {
        out->AppendNull();
        continue;
      }
      double a = l.NumericAt(k);
      double b = r.NumericAt(k);
      switch (n.bop) {
        case BinaryOp::kAdd: out->AppendF64(a + b); break;
        case BinaryOp::kSub: out->AppendF64(a - b); break;
        case BinaryOp::kMul: out->AppendF64(a * b); break;
        case BinaryOp::kDiv:
          if (b == 0) return Status::ExecutionError("division by zero");
          out->AppendF64(a / b);
          break;
        default:  // kMod
          if (b == 0) return Status::ExecutionError("modulo by zero");
          out->AppendF64(std::fmod(a, b));
      }
    }
    return Status::OK();
  }
  *out = ColumnVector(n.type);
  out->Reserve(count);
  for (size_t k = 0; k < count; ++k) {
    PDW_ASSIGN_OR_RETURN(Datum d,
                         EvalBinaryOp(n.bop, l.GetDatum(k), r.GetDatum(k)));
    out->Append(d);
  }
  return Status::OK();
}

Status EvalNode(const Node& n, const ColumnBatch& batch, const SelVector& sel,
                ColumnVector* out) {
  size_t count = sel.size();
  switch (n.kind) {
    case ScalarKind::kColumn: {
      const ColumnVector& col = batch.columns[static_cast<size_t>(n.ordinal)];
      if (count == col.size()) {
        // Dense selections are the common case after a scan; a whole-column
        // splice beats per-row gathers. Must verify the identity explicitly:
        // a sort's permuted selection has full size too.
        bool identity = true;
        for (size_t k = 0; k < count; ++k) {
          if (sel[k] != static_cast<int32_t>(k)) {
            identity = false;
            break;
          }
        }
        if (identity) {
          *out = ColumnVector(col.declared_type());
          out->AppendRangeFrom(col, 0, count);
          return Status::OK();
        }
      }
      *out = ColumnVector(col.declared_type());
      out->Reserve(count);
      for (int32_t r : sel) out->AppendFrom(col, static_cast<size_t>(r));
      return Status::OK();
    }
    case ScalarKind::kLiteral: {
      *out = ColumnVector(n.literal.type());
      out->Reserve(count);
      for (size_t k = 0; k < count; ++k) out->Append(n.literal);
      return Status::OK();
    }
    case ScalarKind::kBinary: {
      ColumnVector l, r;
      PDW_RETURN_NOT_OK(EvalNode(n.children[0], batch, sel, &l));
      PDW_RETURN_NOT_OK(EvalNode(n.children[1], batch, sel, &r));
      if (IsArith(n.bop)) return EvalArithVec(n, l, r, out);
      if (IsComparison(n.bop)) {
        *out = ColumnVector(TypeId::kBool);
        out->Reserve(count);
        for (size_t k = 0; k < count; ++k) {
          if (l.IsNull(k) || r.IsNull(k)) {
            out->AppendNull();
            continue;
          }
          out->AppendI64(CmpKeeps(n.bop, CompareAt(l, k, r, k)) ? 1 : 0);
        }
        return Status::OK();
      }
      // AND / OR / LIKE: value-wise; both operands are already evaluated
      // over the full selection, exactly like the row engine.
      *out = ColumnVector(n.type);
      out->Reserve(count);
      for (size_t k = 0; k < count; ++k) {
        PDW_ASSIGN_OR_RETURN(Datum d,
                             EvalBinaryOp(n.bop, l.GetDatum(k), r.GetDatum(k)));
        out->Append(d);
      }
      return Status::OK();
    }
    case ScalarKind::kUnary: {
      ColumnVector v;
      PDW_RETURN_NOT_OK(EvalNode(n.children[0], batch, sel, &v));
      *out = ColumnVector(n.type);
      out->Reserve(count);
      for (size_t k = 0; k < count; ++k) {
        PDW_ASSIGN_OR_RETURN(Datum d, EvalUnaryOp(n.uop, v.GetDatum(k)));
        out->Append(d);
      }
      return Status::OK();
    }
    case ScalarKind::kIsNull: {
      ColumnVector v;
      PDW_RETURN_NOT_OK(EvalNode(n.children[0], batch, sel, &v));
      *out = ColumnVector(TypeId::kBool);
      out->Reserve(count);
      for (size_t k = 0; k < count; ++k) {
        bool is_null = v.IsNull(k);
        out->AppendI64((n.negated ? !is_null : is_null) ? 1 : 0);
      }
      return Status::OK();
    }
    case ScalarKind::kCase: {
      // Split the remaining selection per WHEN so each branch is evaluated
      // over exactly the rows the row engine would evaluate it on.
      std::vector<Datum> dense(count);
      std::vector<int32_t> rem_pos(count);
      for (size_t k = 0; k < count; ++k) rem_pos[k] = static_cast<int32_t>(k);
      SelVector rem_sel = sel;
      size_t pairs = (n.children.size() - (n.has_else ? 1 : 0)) / 2;
      for (size_t p = 0; p < pairs && !rem_sel.empty(); ++p) {
        ColumnVector w;
        PDW_RETURN_NOT_OK(EvalNode(n.children[p * 2], batch, rem_sel, &w));
        std::vector<int32_t> hit_pos, next_pos;
        SelVector hit_sel, next_sel;
        for (size_t j = 0; j < rem_sel.size(); ++j) {
          Datum d = w.GetDatum(j);
          bool matched = !d.is_null() && d.bool_value();
          (matched ? hit_pos : next_pos).push_back(rem_pos[j]);
          (matched ? hit_sel : next_sel).push_back(rem_sel[j]);
        }
        if (!hit_sel.empty()) {
          ColumnVector t;
          PDW_RETURN_NOT_OK(
              EvalNode(n.children[p * 2 + 1], batch, hit_sel, &t));
          for (size_t j = 0; j < hit_pos.size(); ++j) {
            dense[static_cast<size_t>(hit_pos[j])] = t.GetDatum(j);
          }
        }
        rem_pos = std::move(next_pos);
        rem_sel = std::move(next_sel);
      }
      if (n.has_else && !rem_sel.empty()) {
        ColumnVector e;
        PDW_RETURN_NOT_OK(
            EvalNode(n.children.back(), batch, rem_sel, &e));
        for (size_t j = 0; j < rem_pos.size(); ++j) {
          dense[static_cast<size_t>(rem_pos[j])] = e.GetDatum(j);
        }
      }
      *out = ColumnVector(n.type);
      out->Reserve(count);
      for (const Datum& d : dense) out->Append(d);
      return Status::OK();
    }
    case ScalarKind::kCast: {
      ColumnVector v;
      PDW_RETURN_NOT_OK(EvalNode(n.children[0], batch, sel, &v));
      *out = ColumnVector(n.type);
      out->Reserve(count);
      for (size_t k = 0; k < count; ++k) {
        PDW_ASSIGN_OR_RETURN(Datum d, v.GetDatum(k).CastTo(n.type));
        out->Append(d);
      }
      return Status::OK();
    }
    case ScalarKind::kFunction: {
      std::vector<ColumnVector> argv(n.children.size());
      for (size_t i = 0; i < n.children.size(); ++i) {
        PDW_RETURN_NOT_OK(EvalNode(n.children[i], batch, sel, &argv[i]));
      }
      *out = ColumnVector(n.type);
      out->Reserve(count);
      std::vector<Datum> args(n.children.size());
      for (size_t k = 0; k < count; ++k) {
        for (size_t i = 0; i < argv.size(); ++i) args[i] = argv[i].GetDatum(k);
        PDW_ASSIGN_OR_RETURN(Datum d, EvalFunctionOp(n.func_name, args));
        out->Append(d);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable scalar kind");
}

/// col-vs-literal comparison kernel: keeps selected rows where the
/// comparison is TRUE. `op` is already oriented as `col op lit`.
void FilterColLit(const ColumnVector& col, BinaryOp op, const Datum& lit,
                  SelVector* sel) {
  if (lit.is_null()) {
    // comparison with NULL is NULL for every row: nothing survives.
    sel->clear();
    return;
  }
  size_t w = 0;
  TypeId lt = lit.type();
  if (col.tag() == VecTag::kInt64 &&
      (lt == TypeId::kInt || lt == TypeId::kDate || lt == TypeId::kBool)) {
    // Entire int64 plane: raw payload comparison matches Datum::Compare
    // (dates/bools are exact in double, ints compare as ints).
    int64_t lv = lt == TypeId::kBool ? static_cast<int64_t>(lit.bool_value())
                 : lt == TypeId::kDate
                     ? static_cast<int64_t>(lit.date_value())
                     : lit.int_value();
    for (int32_t r : *sel) {
      size_t i = static_cast<size_t>(r);
      if (col.IsNull(i)) continue;
      int64_t v = col.i64(i);
      int c = v < lv ? -1 : (v > lv ? 1 : 0);
      if (CmpKeeps(op, c)) (*sel)[w++] = r;
    }
    sel->resize(w);
    return;
  }
  if ((col.tag() == VecTag::kInt64 || col.tag() == VecTag::kDouble) &&
      (lt == TypeId::kInt || lt == TypeId::kDouble || lt == TypeId::kDate ||
       lt == TypeId::kBool)) {
    double lv = lit.AsDouble();
    for (int32_t r : *sel) {
      size_t i = static_cast<size_t>(r);
      if (col.IsNull(i)) continue;
      double v = col.NumericAt(i);
      int c = v < lv ? -1 : (v > lv ? 1 : 0);
      if (CmpKeeps(op, c)) (*sel)[w++] = r;
    }
    sel->resize(w);
    return;
  }
  if (col.tag() == VecTag::kString && lt == TypeId::kVarchar) {
    const std::string& lv = lit.string_value();
    for (int32_t r : *sel) {
      size_t i = static_cast<size_t>(r);
      if (col.IsNull(i)) continue;
      int c = col.str(i).compare(lv);
      if (CmpKeeps(op, c < 0 ? -1 : (c > 0 ? 1 : 0))) (*sel)[w++] = r;
    }
    sel->resize(w);
    return;
  }
  // Variant storage or mixed string/number: Datum-level comparison.
  ColumnVector lv(lt);
  lv.Append(lit);
  for (int32_t r : *sel) {
    size_t i = static_cast<size_t>(r);
    if (col.IsNull(i)) continue;
    if (CmpKeeps(op, CompareAt(col, i, lv, 0))) (*sel)[w++] = r;
  }
  sel->resize(w);
}

Status FilterNode(const Node& n, const ColumnBatch& batch, SelVector* sel) {
  if (sel->empty()) return Status::OK();
  if (n.kind == ScalarKind::kBinary) {
    if (n.bop == BinaryOp::kAnd && !n.children[1].can_error) {
      // Fused conjunction: the second conjunct only sees the first's
      // survivors. Allowed only when it cannot raise, so skipping rows
      // never hides an error the row engine would report.
      PDW_RETURN_NOT_OK(FilterNode(n.children[0], batch, sel));
      return FilterNode(n.children[1], batch, sel);
    }
    if (IsComparison(n.bop)) {
      const Node& l = n.children[0];
      const Node& r = n.children[1];
      if (l.kind == ScalarKind::kColumn && r.kind == ScalarKind::kLiteral) {
        FilterColLit(batch.columns[static_cast<size_t>(l.ordinal)], n.bop,
                     r.literal, sel);
        return Status::OK();
      }
      if (l.kind == ScalarKind::kLiteral && r.kind == ScalarKind::kColumn) {
        FilterColLit(batch.columns[static_cast<size_t>(r.ordinal)],
                     FlipComparison(n.bop), l.literal, sel);
        return Status::OK();
      }
      if (l.kind == ScalarKind::kColumn && r.kind == ScalarKind::kColumn) {
        const ColumnVector& a = batch.columns[static_cast<size_t>(l.ordinal)];
        const ColumnVector& b = batch.columns[static_cast<size_t>(r.ordinal)];
        size_t w = 0;
        for (int32_t row : *sel) {
          size_t i = static_cast<size_t>(row);
          // NULL comparisons are NULL (reject), so check before CompareAt,
          // which would call two NULLs equal.
          if (a.IsNull(i) || b.IsNull(i)) continue;
          if (CmpKeeps(n.bop, CompareAt(a, i, b, i))) (*sel)[w++] = row;
        }
        sel->resize(w);
        return Status::OK();
      }
    }
  }
  if (n.kind == ScalarKind::kIsNull &&
      n.children[0].kind == ScalarKind::kColumn) {
    const ColumnVector& col =
        batch.columns[static_cast<size_t>(n.children[0].ordinal)];
    size_t w = 0;
    for (int32_t row : *sel) {
      bool is_null = col.IsNull(static_cast<size_t>(row));
      if (n.negated ? !is_null : is_null) (*sel)[w++] = row;
    }
    sel->resize(w);
    return Status::OK();
  }
  // Generic: evaluate densely, keep TRUE rows.
  ColumnVector v;
  PDW_RETURN_NOT_OK(EvalNode(n, batch, *sel, &v));
  size_t w = 0;
  if (v.tag() == VecTag::kInt64) {
    for (size_t k = 0; k < sel->size(); ++k) {
      if (!v.IsNull(k) && v.i64(k) != 0) (*sel)[w++] = (*sel)[k];
    }
  } else {
    for (size_t k = 0; k < sel->size(); ++k) {
      Datum d = v.GetDatum(k);
      if (!d.is_null() && d.bool_value()) (*sel)[w++] = (*sel)[k];
    }
  }
  sel->resize(w);
  return Status::OK();
}

Result<Datum> EvalRowNode(const Node& n, const Row& row) {
  switch (n.kind) {
    case ScalarKind::kColumn:
      return row[static_cast<size_t>(n.ordinal)];
    case ScalarKind::kLiteral:
      return n.literal;
    case ScalarKind::kBinary: {
      PDW_ASSIGN_OR_RETURN(Datum l, EvalRowNode(n.children[0], row));
      PDW_ASSIGN_OR_RETURN(Datum r, EvalRowNode(n.children[1], row));
      return EvalBinaryOp(n.bop, l, r);
    }
    case ScalarKind::kUnary: {
      PDW_ASSIGN_OR_RETURN(Datum v, EvalRowNode(n.children[0], row));
      return EvalUnaryOp(n.uop, v);
    }
    case ScalarKind::kIsNull: {
      PDW_ASSIGN_OR_RETURN(Datum v, EvalRowNode(n.children[0], row));
      return Datum::Bool(n.negated ? !v.is_null() : v.is_null());
    }
    case ScalarKind::kCase: {
      size_t pairs = (n.children.size() - (n.has_else ? 1 : 0)) / 2;
      for (size_t p = 0; p < pairs; ++p) {
        PDW_ASSIGN_OR_RETURN(Datum w, EvalRowNode(n.children[p * 2], row));
        if (!w.is_null() && w.bool_value()) {
          return EvalRowNode(n.children[p * 2 + 1], row);
        }
      }
      if (n.has_else) return EvalRowNode(n.children.back(), row);
      return Datum::Null();
    }
    case ScalarKind::kCast: {
      PDW_ASSIGN_OR_RETURN(Datum v, EvalRowNode(n.children[0], row));
      return v.CastTo(n.type);
    }
    case ScalarKind::kFunction: {
      std::vector<Datum> args(n.children.size());
      for (size_t i = 0; i < n.children.size(); ++i) {
        PDW_ASSIGN_OR_RETURN(args[i], EvalRowNode(n.children[i], row));
      }
      return EvalFunctionOp(n.func_name, args);
    }
  }
  return Status::Internal("unreachable scalar kind");
}

}  // namespace

Result<ExprProgram> ExprProgram::Compile(
    const ScalarExprPtr& expr, const std::vector<ColumnBinding>& input) {
  if (!expr) return Status::Internal("cannot compile null expression");
  std::map<ColumnId, int> ords;
  for (size_t i = 0; i < input.size(); ++i) {
    ords.emplace(input[i].id, static_cast<int>(i));
  }
  auto root = std::make_shared<Node>();
  PDW_RETURN_NOT_OK(CompileInto(*expr, ords, root.get()));
  return ExprProgram(std::move(root));
}

TypeId ExprProgram::output_type() const {
  return root_ ? root_->type : TypeId::kInvalid;
}

Result<ColumnVector> ExprProgram::Eval(const ColumnBatch& batch,
                                       const SelVector& sel) const {
  ColumnVector out;
  PDW_RETURN_NOT_OK(EvalNode(*root_, batch, sel, &out));
  return out;
}

Status ExprProgram::Filter(const ColumnBatch& batch, SelVector* sel) const {
  return FilterNode(*root_, batch, sel);
}

Result<Datum> ExprProgram::EvalRow(const Row& row) const {
  return EvalRowNode(*root_, row);
}

}  // namespace pdw
