#ifndef PDW_ENGINE_BATCH_H_
#define PDW_ENGINE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/row.h"
#include "common/types.h"

namespace pdw {

/// Indices of the active rows of a batch, in ascending row order. Fused
/// filter evaluation shrinks a selection vector in place instead of
/// copying survivors, so a scan→filter→filter chain touches each column
/// value once and materializes nothing until the pipeline's sink.
using SelVector = std::vector<int32_t>;

/// Physical storage class of a ColumnVector. Fixed-width SQL types share
/// the int64 plane (INT, DATE as epoch days, BOOL as 0/1); kVariant is the
/// escape hatch for columns whose runtime values diverge from the declared
/// type (e.g. a CASE mixing INT and DOUBLE branches) — those store whole
/// Datums and take the value-generic kernel paths.
enum class VecTag : uint8_t { kInt64, kDouble, kString, kVariant };

/// Storage class a declared type maps to.
VecTag VecTagForType(TypeId type);

/// One typed column of a batch: a value array plus a null bitmap (byte per
/// row; 1 = NULL). Null rows keep a default value slot so the value arrays
/// stay index-aligned with the bitmap. Appending a non-null Datum whose
/// runtime type differs from the declared type promotes the whole column
/// to kVariant storage, preserving exact values at the cost of the fast
/// kernels — correctness never depends on the declared type being right.
class ColumnVector {
 public:
  ColumnVector() : ColumnVector(TypeId::kInvalid) {}
  explicit ColumnVector(TypeId declared)
      : declared_(declared), tag_(VecTagForType(declared)) {}

  TypeId declared_type() const { return declared_; }
  VecTag tag() const { return tag_; }
  size_t size() const { return nulls_.size(); }
  bool empty() const { return nulls_.empty(); }

  void Reserve(size_t n);
  void Clear();

  bool IsNull(size_t i) const { return nulls_[i] != 0; }

  /// Reconstructs the Datum at `i` (exact round-trip of what was appended).
  Datum GetDatum(size_t i) const;

  /// GetDatum that surrenders ownership: strings and variant Datums are
  /// moved out, leaving the slot valid but unspecified. For single-pass
  /// batch→row conversions (MoveBatchToRows).
  Datum TakeDatum(size_t i);

  /// Appends any Datum, promoting storage if its type does not match.
  void Append(const Datum& d);
  void AppendNull();

  /// Fast typed appends; the tag must match (callers on hot paths know it).
  void AppendI64(int64_t v) {
    nulls_.push_back(0);
    i64_.push_back(v);
  }
  void AppendF64(double v) {
    nulls_.push_back(0);
    f64_.push_back(v);
  }
  void AppendString(std::string&& v) {
    nulls_.push_back(0);
    str_.push_back(std::move(v));
  }

  /// Appends row `i` of `src` (same declared type) to this vector.
  void AppendFrom(const ColumnVector& src, size_t i);

  /// Appends rows [begin, end) of `src` — a bulk vector splice when the
  /// storage classes match (the columnar-scan fast path), per-element
  /// AppendFrom otherwise.
  void AppendRangeFrom(const ColumnVector& src, size_t begin, size_t end);

  /// Appends column `ordinal` of rows[begin, end) — the scan-boundary bulk
  /// load. Equivalent to Append per cell but with the tag dispatch hoisted
  /// out of the loop; falls back to generic appends on the first cell whose
  /// runtime type disagrees with the declared type (variant promotion).
  void AppendRowsColumn(const RowVector& rows, size_t begin, size_t end,
                        size_t ordinal);

  // Typed readers; valid only for the matching tag and non-null rows
  // (no checks — these are the kernels' inner-loop accessors).
  int64_t i64(size_t i) const { return i64_[i]; }
  double f64(size_t i) const { return f64_[i]; }
  const std::string& str(size_t i) const { return str_[i]; }
  const Datum& variant(size_t i) const { return var_[i]; }
  const std::vector<uint8_t>& nulls() const { return nulls_; }

  // Raw value-plane pointers (valid for the matching tag; null slots hold
  // default values). The DMS columnar wire codec memcpy's whole planes
  // from these instead of re-dispatching per cell.
  const int64_t* i64_data() const { return i64_.data(); }
  const double* f64_data() const { return f64_.data(); }

  /// Bulk appends of `n` rows from a raw value plane plus an optional
  /// byte-per-row null array (nullptr = all rows valid) — the wire codec's
  /// unpack fast path. The tag must match; null slots keep the value-plane
  /// payload as their default slot.
  void AppendI64Bulk(const int64_t* v, const uint8_t* null_bytes, size_t n);
  void AppendF64Bulk(const double* v, const uint8_t* null_bytes, size_t n);

  /// Numeric view of a non-null fixed-width value (INT/DATE/BOOL/DOUBLE),
  /// for cross-type comparisons. Invalid for strings.
  double NumericAt(size_t i) const {
    return tag_ == VecTag::kInt64 ? static_cast<double>(i64_[i])
           : tag_ == VecTag::kDouble
               ? f64_[i]
               : GetDatum(i).AsDouble();  // variant numerics
  }

  /// Hash of row `i`, consistent with Datum::Hash (integral doubles hash
  /// like ints so mixed-type join keys agree across sides).
  size_t HashAt(size_t i) const;

 private:
  void PromoteToVariant();

  TypeId declared_;
  VecTag tag_;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
  std::vector<Datum> var_;
};

/// Compares row `ai` of `a` with row `bi` of `b` using Datum::Compare
/// semantics (NULLs first and equal to each other, mixed numerics by
/// value), with a fast path when both columns share a typed tag.
int CompareAt(const ColumnVector& a, size_t ai, const ColumnVector& b,
              size_t bi);

/// A horizontal slice of rows in columnar form — the unit that flows
/// between pipeline stages of the batch engine. All columns have `rows`
/// entries.
struct ColumnBatch {
  std::vector<ColumnVector> columns;
  size_t rows = 0;

  ColumnBatch() = default;
  explicit ColumnBatch(const std::vector<TypeId>& types) {
    columns.reserve(types.size());
    for (TypeId t : types) columns.emplace_back(t);
  }

  size_t num_columns() const { return columns.size(); }
};

/// A fully materialized operator result: column types plus the batches in
/// stream order. Batches keep their morsel boundaries so a downstream
/// pipeline can re-parallelize without re-splitting.
struct ColumnTable {
  std::vector<TypeId> types;
  std::vector<ColumnBatch> batches;

  size_t total_rows() const {
    size_t n = 0;
    for (const ColumnBatch& b : batches) n += b.rows;
    return n;
  }
};

/// Batch size the engine slices inputs into: PDW_BATCH_SIZE when set
/// (minimum 1), else 1024 — read once per process.
int DefaultBatchSize();

// --- row <-> batch converters (the DMS and client boundaries) ---

/// Appends rows[begin, end) to `out`, mapping stored column `ordinals[c]`
/// to batch column c (a scan's projection).
void AppendRowsToBatch(const RowVector& rows, size_t begin, size_t end,
                       const std::vector<int>& ordinals, ColumnBatch* out);

/// Appends every row of `batch` to `out` (the client/DMS boundary).
void AppendBatchToRows(const ColumnBatch& batch, RowVector* out);

/// AppendBatchToRows for a batch the caller is done with: strings and
/// variant Datums are moved out instead of copied (the DMS unpack path,
/// where every wire batch is converted exactly once). Leaves `batch` with
/// valid but unspecified column contents.
void MoveBatchToRows(ColumnBatch* batch, RowVector* out);

/// Flattens a ColumnTable to rows, batch order preserved.
RowVector TableToRows(const ColumnTable& table);

/// Concatenates all batches of `table` into one contiguous batch (hash-join
/// build sides gather from a single chunk).
ColumnBatch ConcatBatches(const ColumnTable& table);

/// Dense copy of the selected rows, in selection order.
ColumnBatch GatherBatch(const ColumnBatch& batch, const SelVector& sel);

}  // namespace pdw

#endif  // PDW_ENGINE_BATCH_H_
