#include "engine/hash_table.h"

namespace pdw {

namespace {

/// Smallest power of two >= max(16, 2 * n): load factor stays <= 0.5.
uint64_t SlotCountFor(size_t n) {
  uint64_t cap = 16;
  while (cap < 2 * static_cast<uint64_t>(n)) cap <<= 1;
  return cap;
}

}  // namespace

uint64_t HashKeyColumns(const std::vector<const ColumnVector*>& keys,
                        size_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const ColumnVector* col : keys) {
    uint64_t x = col->HashAt(row);
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool KeyColumnsEqual(const std::vector<const ColumnVector*>& a, size_t arow,
                     const std::vector<const ColumnVector*>& b, size_t brow) {
  for (size_t c = 0; c < a.size(); ++c) {
    if (CompareAt(*a[c], arow, *b[c], brow) != 0) return false;
  }
  return true;
}

GroupTable::GroupTable(std::vector<TypeId> key_types) {
  key_cols_.reserve(key_types.size());
  for (TypeId t : key_types) key_cols_.emplace_back(t);
  key_view_.reserve(key_cols_.size());
  for (const ColumnVector& c : key_cols_) key_view_.push_back(&c);
  mask_ = 16 - 1;
  slots_.assign(16, -1);
}

void GroupTable::Reserve(size_t expected_groups) {
  group_hashes_.reserve(expected_groups);
  for (ColumnVector& c : key_cols_) c.Reserve(expected_groups);
  uint64_t cap = SlotCountFor(expected_groups);
  if (cap <= mask_ + 1) return;
  slots_.assign(cap, -1);
  mask_ = cap - 1;
  for (size_t g = 0; g < group_hashes_.size(); ++g) {
    uint64_t slot = group_hashes_[g] & mask_;
    while (slots_[slot] != -1) slot = (slot + 1) & mask_;
    slots_[slot] = static_cast<int32_t>(g);
  }
}

void GroupTable::Grow() {
  uint64_t cap = (mask_ + 1) * 2;
  slots_.assign(cap, -1);
  mask_ = cap - 1;
  for (size_t g = 0; g < group_hashes_.size(); ++g) {
    uint64_t slot = group_hashes_[g] & mask_;
    while (slots_[slot] != -1) slot = (slot + 1) & mask_;
    slots_[slot] = static_cast<int32_t>(g);
  }
}

size_t GroupTable::FindOrInsert(const std::vector<const ColumnVector*>& keys,
                                size_t row) {
  uint64_t h = HashKeyColumns(keys, row);
  uint64_t slot = h & mask_;
  while (slots_[slot] != -1) {
    size_t g = static_cast<size_t>(slots_[slot]);
    if (group_hashes_[g] == h && KeyColumnsEqual(key_view_, g, keys, row)) {
      return g;
    }
    slot = (slot + 1) & mask_;
  }
  size_t g = group_hashes_.size();
  for (size_t c = 0; c < key_cols_.size(); ++c) {
    key_cols_[c].AppendFrom(*keys[c], row);
  }
  group_hashes_.push_back(h);
  slots_[slot] = static_cast<int32_t>(g);
  if (2 * group_hashes_.size() > mask_ + 1) Grow();
  return g;
}

int64_t GroupTable::Find(const std::vector<const ColumnVector*>& keys,
                         size_t row) const {
  uint64_t h = HashKeyColumns(keys, row);
  uint64_t slot = h & mask_;
  while (slots_[slot] != -1) {
    size_t g = static_cast<size_t>(slots_[slot]);
    if (group_hashes_[g] == h && KeyColumnsEqual(key_view_, g, keys, row)) {
      return static_cast<int64_t>(g);
    }
    slot = (slot + 1) & mask_;
  }
  return -1;
}

void JoinHashTable::Build(std::vector<ColumnVector> keys) {
  key_cols_ = std::move(keys);
  key_view_.clear();
  key_view_.reserve(key_cols_.size());
  for (const ColumnVector& c : key_cols_) key_view_.push_back(&c);

  size_t n = key_cols_.empty() ? 0 : key_cols_[0].size();
  uint64_t cap = SlotCountFor(n);
  mask_ = cap - 1;
  heads_.assign(cap, -1);
  slot_hashes_.assign(cap, 0);
  next_.assign(n, -1);
  row_hashes_.assign(n, 0);

  for (size_t r = 0; r < n; ++r) {
    bool has_null = false;
    for (const ColumnVector* c : key_view_) {
      if (c->IsNull(r)) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;  // NULL keys never match any probe.
    uint64_t h = HashKeyColumns(key_view_, r);
    row_hashes_[r] = h;
    uint64_t slot = h & mask_;
    while (heads_[slot] != -1) {
      size_t head = static_cast<size_t>(heads_[slot]);
      if (slot_hashes_[slot] == h &&
          KeyColumnsEqual(key_view_, head, key_view_, r)) {
        break;  // same key: prepend to this chain
      }
      slot = (slot + 1) & mask_;
    }
    next_[r] = heads_[slot];
    heads_[slot] = static_cast<int32_t>(r);
    slot_hashes_[slot] = h;
  }
}

int32_t JoinHashTable::FindFirst(
    const std::vector<const ColumnVector*>& probe_keys,
    size_t probe_row) const {
  if (key_cols_.empty() || heads_.empty()) return -1;
  uint64_t h = HashKeyColumns(probe_keys, probe_row);
  uint64_t slot = h & mask_;
  while (heads_[slot] != -1) {
    size_t head = static_cast<size_t>(heads_[slot]);
    if (slot_hashes_[slot] == h &&
        KeyColumnsEqual(key_view_, head, probe_keys, probe_row)) {
      return heads_[slot];
    }
    slot = (slot + 1) & mask_;
  }
  return -1;
}

}  // namespace pdw
