#include <algorithm>
#include <chrono>
#include <functional>
#include <set>
#include <utility>

#include "common/thread_pool.h"
#include "engine/batch.h"
#include "engine/executor.h"
#include "engine/expr_program.h"
#include "engine/hash_table.h"

/// The vectorized batch execution engine. Plans execute operator-at-a-time
/// over ColumnBatches instead of row-at-a-time over Datums:
///
///  - expressions are compiled once per operator into ExprPrograms with
///    resolved ordinals; filters fuse their conjuncts into an in-place
///    selection-vector shrink (no materialization between conjuncts);
///  - hash joins and aggregates run on flat open-addressing tables with
///    precomputed key columns (engine/hash_table.h);
///  - batches double as morsels: per-batch work (scan slicing, filtering,
///    projection, join probes, pre-aggregation) fans out on the global
///    ThreadPool, and per-morsel aggregation states merge deterministically
///    in morsel order, which reproduces the row engine's first-seen group
///    order exactly.
///
/// Semantics match the row interpreter in executor.cc — same evaluation
/// sets per (row, expression), same NULL and error behaviour — so the two
/// engines are interchangeable and differential-testable (RowSetsEqual).

namespace pdw {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One morsel of an operator's output: a column batch plus the selection
/// vector of active rows, in emission order. Filters shrink `sel` without
/// touching the batch; sorts reorder it.
struct PipelineBatch {
  ColumnBatch batch;
  SelVector sel;
};

/// A fully executed operator: column types plus output morsels in stream
/// order.
struct BatchResult {
  std::vector<TypeId> types;
  std::vector<PipelineBatch> batches;

  size_t ActiveRows() const {
    size_t n = 0;
    for (const PipelineBatch& b : batches) n += b.sel.size();
    return n;
  }
};

struct BatchExecCtx {
  const TableProvider& tables;
  ExecProfile* profile = nullptr;
  int batch_size = 1024;
  int max_parallelism = 0;
};

/// Batch/morsel counters one operator reports into its profile slot.
struct OpStats {
  double morsels = 0;
  double selectivity = -1;
};

std::vector<TypeId> TypesOf(const std::vector<ColumnBinding>& cols) {
  std::vector<TypeId> types;
  types.reserve(cols.size());
  for (const ColumnBinding& b : cols) types.push_back(b.type);
  return types;
}

SelVector IdentitySel(size_t n) {
  SelVector sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<int32_t>(i);
  return sel;
}

/// Runs fn(0..n-1) as morsel tasks on the global pool; returns the
/// lowest-index error so failures are deterministic regardless of task
/// interleaving.
Status ParallelMorsels(const BatchExecCtx& ctx, size_t n,
                       const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (n == 1) return fn(0);
  std::vector<Status> statuses(n);
  ThreadPool::Global().ParallelFor(
      static_cast<int>(n),
      [&](int i) { statuses[static_cast<size_t>(i)] = fn(static_cast<size_t>(i)); },
      ctx.max_parallelism);
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// True iff `sel` selects every one of `rows` rows in order. Must be an
/// explicit check — sort emits permuted selections where size alone says
/// nothing.
bool IsIdentity(const SelVector& sel, size_t rows) {
  if (sel.size() != rows) return false;
  for (size_t i = 0; i < rows; ++i) {
    if (sel[i] != static_cast<int32_t>(i)) return false;
  }
  return true;
}

/// Gathers every active row of `in` into one dense contiguous batch
/// (hash-join build sides, sort inputs).
ColumnBatch GatherConcat(const BatchResult& in) {
  ColumnBatch out(in.types);
  size_t total = in.ActiveRows();
  for (ColumnVector& c : out.columns) c.Reserve(total);
  for (const PipelineBatch& pb : in.batches) {
    if (IsIdentity(pb.sel, pb.batch.rows)) {
      for (size_t c = 0; c < out.columns.size(); ++c) {
        out.columns[c].AppendRangeFrom(pb.batch.columns[c], 0, pb.batch.rows);
      }
    } else {
      for (size_t c = 0; c < out.columns.size(); ++c) {
        const ColumnVector& src = pb.batch.columns[c];
        ColumnVector& dst = out.columns[c];
        for (int32_t r : pb.sel) dst.AppendFrom(src, static_cast<size_t>(r));
      }
    }
    out.rows += pb.sel.size();
  }
  return out;
}

/// Materializes the active rows as Datum rows (client boundary, nested
/// loops).
RowVector RowsFromResult(const BatchResult& in) {
  RowVector rows;
  rows.reserve(in.ActiveRows());
  for (const PipelineBatch& pb : in.batches) {
    for (int32_t r : pb.sel) {
      Row row;
      row.reserve(pb.batch.columns.size());
      for (const ColumnVector& col : pb.batch.columns) {
        row.push_back(col.GetDatum(static_cast<size_t>(r)));
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

/// Ordinal of each column id of `cols` (compile-time resolution).
Result<int> OrdinalOf(const std::vector<ColumnBinding>& cols, ColumnId id,
                      const char* what) {
  int pos = FindBinding(cols, id);
  if (pos < 0) return Status::Internal(std::string(what));
  return pos;
}

Result<std::vector<ExprProgram>> CompilePrograms(
    const std::vector<ScalarExprPtr>& exprs,
    const std::vector<ColumnBinding>& input) {
  std::vector<ExprProgram> progs;
  progs.reserve(exprs.size());
  for (const ScalarExprPtr& e : exprs) {
    PDW_ASSIGN_OR_RETURN(ExprProgram p, ExprProgram::Compile(e, input));
    progs.push_back(std::move(p));
  }
  return progs;
}

Result<BatchResult> ExecBatchNode(const PlanNode& plan, const BatchExecCtx& ctx,
                                  int depth);

// --- scan ---

Result<BatchResult> ExecScan(const PlanNode& node, const BatchExecCtx& ctx,
                             OpStats* stats) {
  PDW_ASSIGN_OR_RETURN(TableData data, ctx.tables.GetTableData(node.table_name));
  std::vector<int> ordinals;
  for (const auto& b : node.output) {
    int pos = data.schema->FindColumn(b.name);
    if (pos < 0) {
      return Status::Internal("scan column '" + b.name +
                              "' missing from table '" + node.table_name +
                              "' (" + data.schema->ToString() + ")");
    }
    ordinals.push_back(pos);
  }
  BatchResult result;
  result.types = TypesOf(node.output);
  size_t n = data.rows->size();
  size_t bs = static_cast<size_t>(ctx.batch_size);
  size_t nb = (n + bs - 1) / bs;
  result.batches.resize(nb);
  for (PipelineBatch& pb : result.batches) pb.batch = ColumnBatch(result.types);
  // Providers that maintain a columnar mirror (LocalEngine) let the scan
  // slice column vectors directly; others fall back to row conversion.
  const ColumnBatch* mirror = nullptr;
  if (data.columns != nullptr && data.columns->batches.size() == 1 &&
      data.columns->batches.front().rows == n) {
    mirror = &data.columns->batches.front();
  }
  const RowVector& rows = *data.rows;
  PDW_RETURN_NOT_OK(ParallelMorsels(ctx, nb, [&](size_t i) {
    size_t begin = i * bs;
    size_t end = std::min(n, begin + bs);
    ColumnBatch& out = result.batches[i].batch;
    if (mirror != nullptr) {
      for (size_t c = 0; c < ordinals.size(); ++c) {
        out.columns[c].AppendRangeFrom(
            mirror->columns[static_cast<size_t>(ordinals[c])], begin, end);
      }
      out.rows += end - begin;
    } else {
      AppendRowsToBatch(rows, begin, end, ordinals, &out);
    }
    result.batches[i].sel = IdentitySel(end - begin);
    return Status::OK();
  }));
  stats->morsels = static_cast<double>(nb);
  return result;
}

// --- filter ---

Result<BatchResult> ExecFilter(const PlanNode& node, BatchResult input,
                               const BatchExecCtx& ctx, OpStats* stats) {
  PDW_ASSIGN_OR_RETURN(std::vector<ExprProgram> progs,
                       CompilePrograms(node.conjuncts, node.output));
  size_t rows_in = input.ActiveRows();
  PDW_RETURN_NOT_OK(ParallelMorsels(ctx, input.batches.size(), [&](size_t i) {
    PipelineBatch& pb = input.batches[i];
    // Conjuncts shrink the selection in order: each one only sees the
    // previous one's survivors, exactly like the interpreter's per-row
    // short-circuit over the conjunct list.
    for (const ExprProgram& p : progs) {
      PDW_RETURN_NOT_OK(p.Filter(pb.batch, &pb.sel));
      if (pb.sel.empty()) break;
    }
    return Status::OK();
  }));
  stats->morsels = static_cast<double>(input.batches.size());
  if (rows_in > 0) {
    stats->selectivity =
        static_cast<double>(input.ActiveRows()) / static_cast<double>(rows_in);
  }
  return input;
}

// --- project ---

Result<BatchResult> ExecProject(const PlanNode& node, BatchResult input,
                                const std::vector<ColumnBinding>& child_cols,
                                const BatchExecCtx& ctx, OpStats* stats) {
  std::vector<ExprProgram> progs;
  progs.reserve(node.items.size());
  for (const ProjectItem& item : node.items) {
    PDW_ASSIGN_OR_RETURN(ExprProgram p,
                         ExprProgram::Compile(item.expr, child_cols));
    progs.push_back(std::move(p));
  }
  BatchResult result;
  result.types = TypesOf(node.output);
  result.batches.resize(input.batches.size());
  PDW_RETURN_NOT_OK(ParallelMorsels(ctx, input.batches.size(), [&](size_t i) {
    const PipelineBatch& pb = input.batches[i];
    PipelineBatch& ob = result.batches[i];
    ob.batch.columns.reserve(progs.size());
    for (const ExprProgram& p : progs) {
      PDW_ASSIGN_OR_RETURN(ColumnVector col, p.Eval(pb.batch, pb.sel));
      ob.batch.columns.push_back(std::move(col));
    }
    ob.batch.rows = pb.sel.size();
    ob.sel = IdentitySel(ob.batch.rows);
    return Status::OK();
  }));
  stats->morsels = static_cast<double>(input.batches.size());
  return result;
}

// --- joins ---

/// True for conjuncts that restate an extracted equi-key pair; the hash
/// table enforces exact key equality, so re-evaluating them per match is
/// redundant.
bool IsEquiKeyConjunct(const ScalarExprPtr& c,
                       const std::vector<std::pair<ColumnId, ColumnId>>& keys) {
  ColumnId a, b;
  if (!IsColumnEquality(c, &a, &b)) return false;
  for (const auto& [l, r] : keys) {
    if ((a == l && b == r) || (a == r && b == l)) return true;
  }
  return false;
}

Result<BatchResult> ExecHashJoin(const PlanNode& node, BatchResult left,
                                 const BatchResult& right,
                                 const std::vector<ColumnBinding>& left_cols,
                                 const std::vector<ColumnBinding>& right_cols,
                                 const BatchExecCtx& ctx, OpStats* stats) {
  LogicalJoinType jt = node.join_type;
  bool emit_right = jt == LogicalJoinType::kInner ||
                    jt == LogicalJoinType::kCross ||
                    jt == LogicalJoinType::kLeftOuter;

  // Residuals are the conjuncts beyond the equi keys, evaluated over the
  // concatenated (left ++ right) row layout.
  std::vector<ColumnBinding> combined = left_cols;
  combined.insert(combined.end(), right_cols.begin(), right_cols.end());
  std::vector<ScalarExprPtr> residual_exprs;
  for (const ScalarExprPtr& c : node.conjuncts) {
    if (!IsEquiKeyConjunct(c, node.equi_keys)) residual_exprs.push_back(c);
  }
  PDW_ASSIGN_OR_RETURN(std::vector<ExprProgram> residuals,
                       CompilePrograms(residual_exprs, combined));

  std::vector<int> l_key_ords, r_key_ords;
  for (const auto& [a, b] : node.equi_keys) {
    PDW_ASSIGN_OR_RETURN(int lo,
                         OrdinalOf(left_cols, a, "join key missing from left"));
    PDW_ASSIGN_OR_RETURN(
        int ro, OrdinalOf(right_cols, b, "join key missing from right"));
    l_key_ords.push_back(lo);
    r_key_ords.push_back(ro);
  }

  // Build side: one dense batch, with the key columns copied into the
  // table so probes never chase the original morsels.
  ColumnBatch build = GatherConcat(right);
  std::vector<ColumnVector> build_keys;
  build_keys.reserve(r_key_ords.size());
  for (int o : r_key_ords) build_keys.push_back(build.columns[static_cast<size_t>(o)]);
  JoinHashTable table;
  table.Build(std::move(build_keys));

  BatchResult result;
  result.types = TypesOf(node.output);
  result.batches.resize(left.batches.size());
  size_t left_in = left.ActiveRows();

  PDW_RETURN_NOT_OK(ParallelMorsels(ctx, left.batches.size(), [&](size_t m) {
    const PipelineBatch& pb = left.batches[m];
    std::vector<const ColumnVector*> probe_keys;
    probe_keys.reserve(l_key_ords.size());
    for (int o : l_key_ords) {
      probe_keys.push_back(&pb.batch.columns[static_cast<size_t>(o)]);
    }

    // Emission list: left row index + build row index (-1 = null pad /
    // left-only emission), in probe (left-major) order.
    std::vector<int32_t> emit_l, emit_b;

    if (residuals.empty()) {
      for (int32_t l : pb.sel) {
        size_t lr = static_cast<size_t>(l);
        bool has_null = false;
        for (const ColumnVector* k : probe_keys) {
          if (k->IsNull(lr)) {
            has_null = true;
            break;
          }
        }
        bool matched = false;
        if (!has_null) {
          for (int32_t b = table.FindFirst(probe_keys, lr); b >= 0;
               b = table.Next(b)) {
            matched = true;
            if (jt == LogicalJoinType::kSemi || jt == LogicalJoinType::kAnti) {
              break;
            }
            emit_l.push_back(l);
            emit_b.push_back(b);
          }
        }
        if ((jt == LogicalJoinType::kSemi && matched) ||
            (jt == LogicalJoinType::kAnti && !matched) ||
            (jt == LogicalJoinType::kLeftOuter && !matched)) {
          emit_l.push_back(l);
          emit_b.push_back(-1);
        }
      }
    } else {
      // Candidate pairs first, then the residual predicate vectorized over
      // the paired batch, then per-left-row join-type logic.
      std::vector<int32_t> pl, pr;
      std::vector<std::pair<size_t, size_t>> range(pb.sel.size());
      for (size_t k = 0; k < pb.sel.size(); ++k) {
        int32_t l = pb.sel[k];
        size_t lr = static_cast<size_t>(l);
        size_t start = pl.size();
        bool has_null = false;
        for (const ColumnVector* kc : probe_keys) {
          if (kc->IsNull(lr)) {
            has_null = true;
            break;
          }
        }
        if (!has_null) {
          for (int32_t b = table.FindFirst(probe_keys, lr); b >= 0;
               b = table.Next(b)) {
            pl.push_back(l);
            pr.push_back(b);
          }
        }
        range[k] = {start, pl.size()};
      }
      ColumnBatch pairs;
      pairs.columns.reserve(combined.size());
      for (size_t c = 0; c < left_cols.size(); ++c) {
        const ColumnVector& src = pb.batch.columns[c];
        ColumnVector dst(src.declared_type());
        dst.Reserve(pl.size());
        for (int32_t l : pl) dst.AppendFrom(src, static_cast<size_t>(l));
        pairs.columns.push_back(std::move(dst));
      }
      for (size_t c = 0; c < right_cols.size(); ++c) {
        const ColumnVector& src = build.columns[c];
        ColumnVector dst(src.declared_type());
        dst.Reserve(pr.size());
        for (int32_t b : pr) dst.AppendFrom(src, static_cast<size_t>(b));
        pairs.columns.push_back(std::move(dst));
      }
      pairs.rows = pl.size();
      SelVector psel = IdentitySel(pl.size());
      for (const ExprProgram& p : residuals) {
        PDW_RETURN_NOT_OK(p.Filter(pairs, &psel));
        if (psel.empty()) break;
      }
      std::vector<uint8_t> survived(pl.size(), 0);
      for (int32_t idx : psel) survived[static_cast<size_t>(idx)] = 1;
      for (size_t k = 0; k < pb.sel.size(); ++k) {
        int32_t l = pb.sel[k];
        bool matched = false;
        for (size_t idx = range[k].first; idx < range[k].second; ++idx) {
          if (!survived[idx]) continue;
          matched = true;
          if (jt == LogicalJoinType::kSemi || jt == LogicalJoinType::kAnti) {
            break;
          }
          emit_l.push_back(l);
          emit_b.push_back(pr[idx]);
        }
        if ((jt == LogicalJoinType::kSemi && matched) ||
            (jt == LogicalJoinType::kAnti && !matched) ||
            (jt == LogicalJoinType::kLeftOuter && !matched)) {
          emit_l.push_back(l);
          emit_b.push_back(-1);
        }
      }
    }

    // Materialize the morsel's output columns by gathering.
    PipelineBatch& ob = result.batches[m];
    ob.batch.columns.reserve(left_cols.size() +
                             (emit_right ? right_cols.size() : 0));
    for (size_t c = 0; c < left_cols.size(); ++c) {
      const ColumnVector& src = pb.batch.columns[c];
      ColumnVector dst(src.declared_type());
      dst.Reserve(emit_l.size());
      for (int32_t l : emit_l) dst.AppendFrom(src, static_cast<size_t>(l));
      ob.batch.columns.push_back(std::move(dst));
    }
    if (emit_right) {
      for (size_t c = 0; c < right_cols.size(); ++c) {
        const ColumnVector& src = build.columns[c];
        ColumnVector dst(src.declared_type());
        dst.Reserve(emit_b.size());
        for (int32_t b : emit_b) {
          if (b < 0) {
            dst.AppendNull();
          } else {
            dst.AppendFrom(src, static_cast<size_t>(b));
          }
        }
        ob.batch.columns.push_back(std::move(dst));
      }
    }
    ob.batch.rows = emit_l.size();
    ob.sel = IdentitySel(emit_l.size());
    return Status::OK();
  }));

  stats->morsels = static_cast<double>(left.batches.size());
  if (left_in > 0) {
    stats->selectivity =
        static_cast<double>(result.ActiveRows()) / static_cast<double>(left_in);
  }
  return result;
}

Result<BatchResult> ExecNestedLoopJoin(
    const PlanNode& node, const BatchResult& left, const BatchResult& right,
    const std::vector<ColumnBinding>& left_cols,
    const std::vector<ColumnBinding>& right_cols, OpStats* stats) {
  LogicalJoinType jt = node.join_type;
  bool emit_right = jt == LogicalJoinType::kInner ||
                    jt == LogicalJoinType::kCross ||
                    jt == LogicalJoinType::kLeftOuter;
  std::vector<ColumnBinding> combined = left_cols;
  combined.insert(combined.end(), right_cols.begin(), right_cols.end());
  PDW_ASSIGN_OR_RETURN(std::vector<ExprProgram> progs,
                       CompilePrograms(node.conjuncts, combined));

  // Nested loops run row-at-a-time (cross products have no vector shape),
  // but still through compiled ordinal-resolved programs.
  RowVector lrows = RowsFromResult(left);
  RowVector rrows = RowsFromResult(right);
  RowVector out;
  auto pair_matches = [&](const Row& both) -> Result<bool> {
    for (const ExprProgram& p : progs) {
      PDW_ASSIGN_OR_RETURN(Datum v, p.EvalRow(both));
      if (v.is_null() || !v.bool_value()) return false;
    }
    return true;
  };
  auto emit = [&](const Row& l, const Row* r) {
    Row row = l;
    if (emit_right) {
      if (r != nullptr) {
        row.insert(row.end(), r->begin(), r->end());
      } else {
        for (size_t i = 0; i < right_cols.size(); ++i) row.push_back(Datum::Null());
      }
    }
    out.push_back(std::move(row));
  };
  for (const Row& l : lrows) {
    bool matched = false;
    for (const Row& r : rrows) {
      Row both = l;
      both.insert(both.end(), r.begin(), r.end());
      PDW_ASSIGN_OR_RETURN(bool ok, pair_matches(both));
      if (!ok) continue;
      matched = true;
      if (jt == LogicalJoinType::kSemi || jt == LogicalJoinType::kAnti) break;
      emit(l, &r);
    }
    if ((jt == LogicalJoinType::kSemi && matched) ||
        (jt == LogicalJoinType::kAnti && !matched) ||
        (jt == LogicalJoinType::kLeftOuter && !matched)) {
      emit(l, nullptr);
    }
  }

  BatchResult result;
  result.types = TypesOf(node.output);
  if (!out.empty()) {
    PipelineBatch pb;
    pb.batch = ColumnBatch(result.types);
    std::vector<int> identity(result.types.size());
    for (size_t i = 0; i < identity.size(); ++i) identity[i] = static_cast<int>(i);
    AppendRowsToBatch(out, 0, out.size(), identity, &pb.batch);
    pb.sel = IdentitySel(out.size());
    result.batches.push_back(std::move(pb));
  }
  stats->morsels = 1;
  return result;
}

// --- aggregation ---

/// Accumulator for one (group, aggregate) pair; same semantics as the row
/// engine's AggState. DISTINCT aggregates keep only the value set per
/// morsel — counts and sums are derived from the merged set at finalize,
/// so cross-morsel duplicates collapse correctly.
struct BatchAggState {
  Datum value;
  int64_t count = 0;
  std::set<Datum, DatumLess> distinct;
};

void AccumulateValue(AggFunc func, const Datum& v, BatchAggState* state) {
  switch (func) {
    case AggFunc::kCount:
      state->count += 1;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (state->value.is_null()) {
        state->value = v;
      } else if (state->value.type() == TypeId::kInt &&
                 v.type() == TypeId::kInt) {
        state->value = Datum::Int(state->value.int_value() + v.int_value());
      } else {
        state->value = Datum::Double(state->value.AsDouble() + v.AsDouble());
      }
      state->count += 1;
      break;
    case AggFunc::kMin:
      if (state->value.is_null() || v.Compare(state->value) < 0) state->value = v;
      break;
    case AggFunc::kMax:
      if (state->value.is_null() || v.Compare(state->value) > 0) state->value = v;
      break;
    default:
      break;
  }
}

Result<BatchResult> ExecAggregate(const PlanNode& node, const BatchResult& input,
                                  const std::vector<ColumnBinding>& child_cols,
                                  const BatchExecCtx& ctx, OpStats* stats) {
  std::vector<int> group_ords;
  std::vector<TypeId> key_types;
  for (ColumnId g : node.group_by) {
    int pos = FindBinding(child_cols, g);
    if (pos < 0) {
      return Status::Internal("group-by column missing from aggregate input");
    }
    group_ords.push_back(pos);
    key_types.push_back(child_cols[static_cast<size_t>(pos)].type);
  }
  size_t num_aggs = node.aggregates.size();
  std::vector<ExprProgram> arg_progs(num_aggs);
  for (size_t a = 0; a < num_aggs; ++a) {
    if (node.aggregates[a].func == AggFunc::kCountStar) continue;
    PDW_ASSIGN_OR_RETURN(
        arg_progs[a], ExprProgram::Compile(node.aggregates[a].arg, child_cols));
  }

  // Phase 1: per-morsel pre-aggregation into thread-local tables.
  struct MorselAgg {
    GroupTable table;
    std::vector<BatchAggState> states;  // [group * num_aggs + a]
    explicit MorselAgg(const std::vector<TypeId>& kt) : table(kt) {}
  };
  std::vector<MorselAgg> morsels;
  morsels.reserve(input.batches.size());
  for (size_t i = 0; i < input.batches.size(); ++i) morsels.emplace_back(key_types);

  PDW_RETURN_NOT_OK(ParallelMorsels(ctx, input.batches.size(), [&](size_t m) {
    const PipelineBatch& pb = input.batches[m];
    MorselAgg& local = morsels[m];
    std::vector<const ColumnVector*> keys;
    keys.reserve(group_ords.size());
    for (int o : group_ords) {
      keys.push_back(&pb.batch.columns[static_cast<size_t>(o)]);
    }
    // Aggregate arguments evaluate densely over the selection once.
    std::vector<ColumnVector> args(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      if (!arg_progs[a].valid()) continue;
      PDW_ASSIGN_OR_RETURN(args[a], arg_progs[a].Eval(pb.batch, pb.sel));
    }
    // Group indices for the whole morsel first, then one typed pass per
    // aggregate — column-at-a-time, no per-row Datum materialization on
    // the numeric fast paths.
    size_t n = pb.sel.size();
    local.table.Reserve(n);
    std::vector<uint32_t> gidx(n);
    for (size_t k = 0; k < n; ++k) {
      gidx[k] = static_cast<uint32_t>(
          local.table.FindOrInsert(keys, static_cast<size_t>(pb.sel[k])));
    }
    size_t ng = local.table.num_groups();
    if (local.states.size() < ng * num_aggs) {
      local.states.resize(ng * num_aggs);
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggregateItem& item = node.aggregates[a];
      auto state_of = [&](size_t g) -> BatchAggState& {
        return local.states[g * num_aggs + a];
      };
      if (item.func == AggFunc::kCountStar) {
        for (size_t k = 0; k < n; ++k) state_of(gidx[k]).count += 1;
        continue;
      }
      const ColumnVector& arg = args[a];
      if (item.distinct) {
        for (size_t k = 0; k < n; ++k) {
          if (!arg.IsNull(k)) {
            state_of(gidx[k]).distinct.insert(arg.GetDatum(k));
          }
        }
        continue;
      }
      switch (item.func) {
        case AggFunc::kCount:
          for (size_t k = 0; k < n; ++k) {
            if (!arg.IsNull(k)) state_of(gidx[k]).count += 1;
          }
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          // Typed accumulators only when both storage and declared type
          // are unambiguous (a true INT column sums as int64, like the
          // row engine's int+int rule; a true DOUBLE column as double).
          if (arg.tag() == VecTag::kInt64 &&
              arg.declared_type() == TypeId::kInt) {
            std::vector<int64_t> acc(ng, 0);
            std::vector<int64_t> cnt(ng, 0);
            for (size_t k = 0; k < n; ++k) {
              if (arg.IsNull(k)) continue;
              acc[gidx[k]] += arg.i64(k);
              cnt[gidx[k]] += 1;
            }
            for (size_t g = 0; g < ng; ++g) {
              if (cnt[g] == 0) continue;
              BatchAggState& st = state_of(g);
              st.value = Datum::Int(acc[g]);
              st.count += cnt[g];
            }
          } else if (arg.tag() == VecTag::kDouble &&
                     arg.declared_type() == TypeId::kDouble) {
            std::vector<double> acc(ng, 0);
            std::vector<int64_t> cnt(ng, 0);
            for (size_t k = 0; k < n; ++k) {
              if (arg.IsNull(k)) continue;
              acc[gidx[k]] += arg.f64(k);
              cnt[gidx[k]] += 1;
            }
            for (size_t g = 0; g < ng; ++g) {
              if (cnt[g] == 0) continue;
              BatchAggState& st = state_of(g);
              st.value = Datum::Double(acc[g]);
              st.count += cnt[g];
            }
          } else {
            for (size_t k = 0; k < n; ++k) {
              if (arg.IsNull(k)) continue;
              AccumulateValue(item.func, arg.GetDatum(k),
                              &state_of(gidx[k]));
            }
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          if (arg.tag() != VecTag::kVariant) {
            // Track the winning row per group; only the winners become
            // Datums. Strict comparisons keep the first-seen row on ties,
            // like the interpreter. Raw int64 order matches Datum::Compare
            // for INT, DATE and BOOL payloads alike.
            std::vector<int64_t> best(ng, -1);
            bool want_min = item.func == AggFunc::kMin;
            for (size_t k = 0; k < n; ++k) {
              if (arg.IsNull(k)) continue;
              int64_t b = best[gidx[k]];
              if (b < 0) {
                best[gidx[k]] = static_cast<int64_t>(k);
                continue;
              }
              size_t bi = static_cast<size_t>(b);
              bool better = false;
              switch (arg.tag()) {
                case VecTag::kInt64:
                  better = want_min ? arg.i64(k) < arg.i64(bi)
                                    : arg.i64(k) > arg.i64(bi);
                  break;
                case VecTag::kDouble:
                  better = want_min ? arg.f64(k) < arg.f64(bi)
                                    : arg.f64(k) > arg.f64(bi);
                  break;
                default:
                  better = want_min ? arg.str(k) < arg.str(bi)
                                    : arg.str(bi) < arg.str(k);
                  break;
              }
              if (better) best[gidx[k]] = static_cast<int64_t>(k);
            }
            for (size_t g = 0; g < ng; ++g) {
              if (best[g] >= 0) {
                AccumulateValue(item.func,
                                arg.GetDatum(static_cast<size_t>(best[g])),
                                &state_of(g));
              }
            }
          } else {
            for (size_t k = 0; k < n; ++k) {
              if (arg.IsNull(k)) continue;
              AccumulateValue(item.func, arg.GetDatum(k),
                              &state_of(gidx[k]));
            }
          }
          break;
        default:
          break;
      }
    }
    return Status::OK();
  }));

  // Phase 2: merge in morsel order. Because morsels cover the input in
  // stream order, first-seen group order here equals the row engine's.
  GroupTable global(key_types);
  std::vector<BatchAggState> states;
  if (morsels.size() == 1) {
    // Single-morsel fast path (the common shape for partial-aggregate
    // steps over one temp-scan batch): the lone local table already IS the
    // global result, in the right first-seen order — adopt it wholesale.
    global = std::move(morsels[0].table);
    states = std::move(morsels[0].states);
    states.resize(global.num_groups() * num_aggs);
    morsels.clear();
  } else {
    size_t max_local_groups = 0;
    for (const MorselAgg& local : morsels) {
      max_local_groups = std::max(max_local_groups, local.table.num_groups());
    }
    global.Reserve(max_local_groups);
    states.reserve(max_local_groups * num_aggs);
  }
  for (MorselAgg& local : morsels) {
    std::vector<const ColumnVector*> keys;
    keys.reserve(local.table.group_keys().size());
    for (const ColumnVector& c : local.table.group_keys()) keys.push_back(&c);
    for (size_t lg = 0; lg < local.table.num_groups(); ++lg) {
      size_t gg = global.FindOrInsert(keys, lg);
      if (states.size() < global.num_groups() * num_aggs) {
        states.resize(global.num_groups() * num_aggs);
      }
      for (size_t a = 0; a < num_aggs; ++a) {
        BatchAggState& src = local.states[lg * num_aggs + a];
        BatchAggState& dst = states[gg * num_aggs + a];
        const AggregateItem& item = node.aggregates[a];
        if (item.distinct) {
          dst.distinct.merge(src.distinct);
          continue;
        }
        if (item.func == AggFunc::kCountStar || item.func == AggFunc::kCount) {
          dst.count += src.count;
          continue;
        }
        if (src.value.is_null()) {
          dst.count += src.count;
          continue;
        }
        switch (item.func) {
          case AggFunc::kSum:
          case AggFunc::kAvg:
            if (dst.value.is_null()) {
              dst.value = src.value;
            } else if (dst.value.type() == TypeId::kInt &&
                       src.value.type() == TypeId::kInt) {
              dst.value =
                  Datum::Int(dst.value.int_value() + src.value.int_value());
            } else {
              dst.value =
                  Datum::Double(dst.value.AsDouble() + src.value.AsDouble());
            }
            dst.count += src.count;
            break;
          case AggFunc::kMin:
            if (dst.value.is_null() || src.value.Compare(dst.value) < 0) {
              dst.value = src.value;
            }
            break;
          case AggFunc::kMax:
            if (dst.value.is_null() || src.value.Compare(dst.value) > 0) {
              dst.value = src.value;
            }
            break;
          default:
            break;
        }
      }
    }
  }

  // Finalize into one output batch: group keys then aggregate results.
  BatchResult result;
  result.types = TypesOf(node.output);
  PipelineBatch ob;
  ob.batch = ColumnBatch(result.types);
  size_t num_groups = global.num_groups();
  for (size_t c = 0; c < group_ords.size(); ++c) {
    ColumnVector& dst = ob.batch.columns[c];
    const ColumnVector& src = global.group_keys()[c];
    dst.Reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) dst.AppendFrom(src, g);
  }
  for (size_t a = 0; a < num_aggs; ++a) {
    const AggregateItem& item = node.aggregates[a];
    ColumnVector& dst = ob.batch.columns[group_ords.size() + a];
    dst.Reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const BatchAggState& state = states[g * num_aggs + a];
      if (item.distinct) {
        // Derive the result from the merged distinct set.
        if (item.func == AggFunc::kCount) {
          dst.Append(Datum::Int(static_cast<int64_t>(state.distinct.size())));
        } else if (state.distinct.empty()) {
          dst.AppendNull();
        } else if (item.func == AggFunc::kMin) {
          dst.Append(*state.distinct.begin());
        } else if (item.func == AggFunc::kMax) {
          dst.Append(*state.distinct.rbegin());
        } else {  // kSum / kAvg
          Datum sum;
          for (const Datum& v : state.distinct) {
            if (sum.is_null()) {
              sum = v;
            } else if (sum.type() == TypeId::kInt && v.type() == TypeId::kInt) {
              sum = Datum::Int(sum.int_value() + v.int_value());
            } else {
              sum = Datum::Double(sum.AsDouble() + v.AsDouble());
            }
          }
          if (item.func == AggFunc::kAvg) {
            dst.Append(Datum::Double(
                sum.AsDouble() / static_cast<double>(state.distinct.size())));
          } else {
            dst.Append(sum);
          }
        }
        continue;
      }
      switch (item.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          dst.Append(Datum::Int(state.count));
          break;
        case AggFunc::kAvg:
          if (state.count > 0) {
            dst.Append(Datum::Double(state.value.AsDouble() /
                                     static_cast<double>(state.count)));
          } else {
            dst.AppendNull();
          }
          break;
        default:
          dst.Append(state.value);
      }
    }
  }
  ob.batch.rows = num_groups;
  // Scalar aggregate over empty input: one row of initial values.
  if (group_ords.empty() && num_groups == 0) {
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggregateItem& item = node.aggregates[a];
      ColumnVector& dst = ob.batch.columns[a];
      if (item.func == AggFunc::kCountStar ||
          item.func == AggFunc::kCount) {
        dst.Append(Datum::Int(0));
      } else {
        dst.AppendNull();
      }
    }
    ob.batch.rows = 1;
  }
  ob.sel = IdentitySel(ob.batch.rows);
  result.batches.push_back(std::move(ob));
  stats->morsels = static_cast<double>(input.batches.size());
  return result;
}

// --- sort / limit / union ---

Result<BatchResult> ExecSort(const PlanNode& node, BatchResult input,
                             OpStats* stats) {
  std::vector<std::pair<int, bool>> keys;
  for (const SortItem& item : node.sort_items) {
    int pos = FindBinding(node.output, item.column);
    if (pos < 0) return Status::Internal("sort column missing from input");
    keys.emplace_back(pos, item.ascending);
  }
  ColumnBatch dense = GatherConcat(input);
  SelVector order = IdentitySel(dense.rows);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    for (const auto& [o, asc] : keys) {
      const ColumnVector& col = dense.columns[static_cast<size_t>(o)];
      int c = CompareAt(col, static_cast<size_t>(a), col, static_cast<size_t>(b));
      if (c != 0) return asc ? c < 0 : c > 0;
    }
    return false;
  });
  BatchResult result;
  result.types = std::move(input.types);
  PipelineBatch pb;
  pb.batch = std::move(dense);
  pb.sel = std::move(order);  // the sort order IS the selection
  result.batches.push_back(std::move(pb));
  stats->morsels = 1;
  return result;
}

BatchResult ExecLimit(const PlanNode& node, BatchResult input) {
  if (node.limit < 0) return input;
  size_t remaining = static_cast<size_t>(node.limit);
  std::vector<PipelineBatch> kept;
  for (PipelineBatch& pb : input.batches) {
    if (remaining == 0) break;
    if (pb.sel.size() > remaining) pb.sel.resize(remaining);
    remaining -= pb.sel.size();
    kept.push_back(std::move(pb));
  }
  input.batches = std::move(kept);
  return input;
}

Result<BatchResult> ExecUnionAll(const PlanNode& node, const BatchExecCtx& ctx,
                                 int depth, OpStats* stats) {
  BatchResult result;
  result.types = TypesOf(node.output);
  for (size_t i = 0; i < node.children.size(); ++i) {
    PDW_ASSIGN_OR_RETURN(BatchResult child,
                         ExecBatchNode(*node.children[i], ctx, depth + 1));
    std::vector<int> positions;
    for (ColumnId id : node.union_inputs[i]) {
      int pos = FindBinding(node.children[i]->output, id);
      if (pos < 0) {
        return Status::Internal("union input column missing from child");
      }
      positions.push_back(pos);
    }
    for (PipelineBatch& pb : child.batches) {
      PipelineBatch ob;
      ob.batch.columns.reserve(positions.size());
      // Copy (not move): union_inputs may reference a child column twice.
      for (int p : positions) {
        ob.batch.columns.push_back(pb.batch.columns[static_cast<size_t>(p)]);
      }
      ob.batch.rows = pb.batch.rows;
      ob.sel = std::move(pb.sel);
      result.batches.push_back(std::move(ob));
    }
  }
  stats->morsels = static_cast<double>(result.batches.size());
  return result;
}

// --- dispatch + profiling ---

Result<BatchResult> DispatchBatchNode(const PlanNode& plan,
                                      const BatchExecCtx& ctx, int depth,
                                      OpStats* stats) {
  switch (plan.kind) {
    case PhysOpKind::kTableScan:
    case PhysOpKind::kTempScan:
      return ExecScan(plan, ctx, stats);
    case PhysOpKind::kEmpty: {
      BatchResult r;
      r.types = TypesOf(plan.output);
      return r;
    }
    case PhysOpKind::kFilter: {
      PDW_ASSIGN_OR_RETURN(BatchResult input,
                           ExecBatchNode(*plan.children[0], ctx, depth + 1));
      return ExecFilter(plan, std::move(input), ctx, stats);
    }
    case PhysOpKind::kProject: {
      PDW_ASSIGN_OR_RETURN(BatchResult input,
                           ExecBatchNode(*plan.children[0], ctx, depth + 1));
      return ExecProject(plan, std::move(input), plan.children[0]->output, ctx,
                         stats);
    }
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kNestedLoopJoin: {
      PDW_ASSIGN_OR_RETURN(BatchResult left,
                           ExecBatchNode(*plan.children[0], ctx, depth + 1));
      PDW_ASSIGN_OR_RETURN(BatchResult right,
                           ExecBatchNode(*plan.children[1], ctx, depth + 1));
      if (!plan.equi_keys.empty()) {
        return ExecHashJoin(plan, std::move(left), right,
                            plan.children[0]->output, plan.children[1]->output,
                            ctx, stats);
      }
      return ExecNestedLoopJoin(plan, left, right, plan.children[0]->output,
                                plan.children[1]->output, stats);
    }
    case PhysOpKind::kHashAggregate: {
      PDW_ASSIGN_OR_RETURN(BatchResult input,
                           ExecBatchNode(*plan.children[0], ctx, depth + 1));
      return ExecAggregate(plan, input, plan.children[0]->output, ctx, stats);
    }
    case PhysOpKind::kSort: {
      PDW_ASSIGN_OR_RETURN(BatchResult input,
                           ExecBatchNode(*plan.children[0], ctx, depth + 1));
      return ExecSort(plan, std::move(input), stats);
    }
    case PhysOpKind::kLimit: {
      PDW_ASSIGN_OR_RETURN(BatchResult input,
                           ExecBatchNode(*plan.children[0], ctx, depth + 1));
      return ExecLimit(plan, std::move(input));
    }
    case PhysOpKind::kUnionAll:
      return ExecUnionAll(plan, ctx, depth, stats);
    case PhysOpKind::kMove:
      return Status::Internal(
          "executor reached a Move node; moves are executed by the DMS "
          "service, not the per-node engine");
  }
  return Status::Internal("unreachable plan kind in executor");
}

Result<BatchResult> ExecBatchNode(const PlanNode& plan, const BatchExecCtx& ctx,
                                  int depth) {
  OpStats stats;
  if (ctx.profile == nullptr) {
    return DispatchBatchNode(plan, ctx, depth, &stats);
  }
  // Reserve the record before recursing so operators stay in pre-order.
  size_t slot = ctx.profile->operators.size();
  ctx.profile->operators.emplace_back();
  double t0 = NowSeconds();
  Result<BatchResult> result = DispatchBatchNode(plan, ctx, depth, &stats);
  obs::OperatorProfile& op = ctx.profile->operators[slot];
  op.depth = depth;
  op.name = PhysOpKindToString(plan.kind);
  if (plan.kind == PhysOpKind::kTableScan ||
      plan.kind == PhysOpKind::kTempScan) {
    op.name += "(" + plan.table_name + ")";
  } else if (plan.kind == PhysOpKind::kHashAggregate &&
             plan.agg_phase != AggPhase::kFull) {
    op.name += plan.agg_phase == AggPhase::kLocal ? "(local)" : "(global)";
  }
  op.estimated_rows = plan.cardinality;
  op.seconds = NowSeconds() - t0;
  op.nodes = 1;
  op.morsels = stats.morsels;
  op.selectivity = stats.selectivity;
  if (result.ok()) {
    op.actual_rows = static_cast<double>(result->ActiveRows());
    op.batches = static_cast<double>(result->batches.size());
  }
  return result;
}

}  // namespace

Result<RowVector> ExecuteBatchPlan(const PlanNode& plan,
                                   const TableProvider& tables,
                                   ExecProfile* profile,
                                   const ExecOptions& options) {
  BatchExecCtx ctx{tables, profile,
                   options.batch_size >= 1 ? options.batch_size
                                           : DefaultBatchSize(),
                   options.max_morsel_parallelism};
  PDW_ASSIGN_OR_RETURN(BatchResult result, ExecBatchNode(plan, ctx, 0));
  return RowsFromResult(result);
}

}  // namespace pdw
