#ifndef PDW_ENGINE_LOCAL_ENGINE_H_
#define PDW_ENGINE_LOCAL_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/batch.h"
#include "engine/executor.h"
#include "optimizer/memo.h"

namespace pdw {

/// Result of one SQL execution.
struct SqlResult {
  std::vector<std::string> column_names;
  std::vector<TypeId> column_types;
  RowVector rows;
};

/// Produces the current rows of a virtual table (a sys.dm_pdw_* system
/// view), matching the registered schema. Called on the querying thread at
/// scan-materialization time; must be thread-safe — concurrent DMV queries
/// invoke it simultaneously.
using VirtualTableFn = std::function<Result<RowVector>()>;

/// A complete single-node SQL engine: catalog + in-memory row storage +
/// parse/bind/normalize/optimize/execute pipeline. One instance runs on
/// each compute node (and on the control node) of the appliance simulator,
/// standing in for the per-node SQL Server of Fig. 1. The DSQL executor
/// feeds it the *generated SQL text*, so DSQL SQL generation is exercised
/// on the real execution path.
///
/// Thread safety: concurrent ExecuteSql calls are safe, as is DDL on
/// *distinct* tables concurrent with queries — the case parallel DSQL
/// execution needs, where each in-flight query creates, fills and drops
/// its own uniquely-named temp tables. The storage map's structure is
/// guarded by a shared_mutex; row vectors of individual tables are not
/// independently locked, so loading rows into a table while another thread
/// queries that same table is not supported (loads are a setup-time
/// operation, as on the real appliance which takes table locks).
class LocalEngine : public TableProvider {
 public:
  /// Every engine owns a built-in zero-row table `pdw_empty` that the SQL
  /// generator uses to render contradiction (Empty) subtrees.
  LocalEngine();

  /// DDL / storage.
  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  /// Registers a virtual table: `def` enters the catalog (marked
  /// is_system_view) so binding and optimization see an ordinary leaf, but
  /// no rows are stored — each SELECT touching it calls `fn` once and scans
  /// the materialized snapshot (row vector + columnar mirror, so both
  /// engines work). Registration is setup-time; queries afterwards are
  /// fully concurrent.
  Status RegisterVirtualTable(TableDef def, VirtualTableFn fn);
  Status InsertRows(const std::string& name, RowVector rows);
  bool HasTable(const std::string& name) const { return catalog_.HasTable(name); }
  Result<const RowVector*> GetRows(const std::string& name) const;
  const Catalog& catalog() const { return catalog_; }

  /// Recomputes the local statistics of a table from its stored rows (the
  /// per-node half of the shell database's global-statistics story, §2.2).
  Result<TableStats> ComputeLocalStats(const std::string& name,
                                       int histogram_buckets = 32);

  /// Executes a SELECT (or CREATE TABLE / DROP TABLE / INSERT) statement.
  /// A non-null `profile` collects per-operator actual row counts and
  /// timings of the SELECT's plan (EXPLAIN ANALYZE support). `exec` picks
  /// the execution engine (row reference vs vectorized batch) and its
  /// batch-size / parallelism knobs.
  Result<SqlResult> ExecuteSql(const std::string& sql,
                               ExecProfile* profile = nullptr,
                               const ExecOptions& exec = {});

  // TableProvider:
  Result<TableData> GetTableData(const std::string& name) const override;

 private:
  /// One table's storage: the authoritative row vector plus a columnar
  /// mirror of the same rows (one contiguous batch), maintained at load
  /// time so batch-engine scans slice column vectors instead of
  /// converting rows on every query.
  struct StoredTable {
    RowVector rows;
    ColumnTable columns;
  };

  mutable std::shared_mutex mu_;  ///< Guards the structure of storage_.
  Catalog catalog_;
  std::map<std::string, StoredTable> storage_;  // keyed by lowercase name
  std::map<std::string, VirtualTableFn> virtual_;  // keyed by lowercase name
};

}  // namespace pdw

#endif  // PDW_ENGINE_LOCAL_ENGINE_H_
