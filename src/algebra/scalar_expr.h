#ifndef PDW_ALGEBRA_SCALAR_EXPR_H_
#define PDW_ALGEBRA_SCALAR_EXPR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/column.h"
#include "common/datum.h"
#include "sql/ast.h"

namespace pdw {

/// Kinds of *bound* scalar expressions (names resolved to ColumnIds).
enum class ScalarKind {
  kColumn,
  kLiteral,
  kBinary,
  kUnary,
  kIsNull,
  kCase,
  kCast,
  kFunction,  ///< Scalar functions (DATEADD, ...), never aggregates.
};

/// Immutable bound scalar expression tree. Nodes are shared freely between
/// plans and memo groups (shared_ptr<const>), which makes transformation
/// rules cheap.
class ScalarExpr {
 public:
  virtual ~ScalarExpr() = default;

  ScalarKind kind() const { return kind_; }
  TypeId type() const { return type_; }

  /// SQL-like rendering using bound column names (diagnostics only; the
  /// DSQL SQL generator has its own context-sensitive renderer).
  virtual std::string ToString() const = 0;

  /// Structural fingerprint for memo dedup and common-expression detection.
  virtual size_t Hash() const = 0;
  virtual bool Equals(const ScalarExpr& other) const = 0;

 protected:
  ScalarExpr(ScalarKind kind, TypeId type) : kind_(kind), type_(type) {}

 private:
  ScalarKind kind_;
  TypeId type_;
};

using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

class ColumnExpr : public ScalarExpr {
 public:
  ColumnExpr(ColumnId id, std::string name, TypeId type)
      : ScalarExpr(ScalarKind::kColumn, type), id_(id), name_(std::move(name)) {}

  ColumnId id() const { return id_; }
  const std::string& name() const { return name_; }

  std::string ToString() const override;
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  ColumnId id_;
  std::string name_;
};

class LiteralExprB : public ScalarExpr {
 public:
  explicit LiteralExprB(Datum value)
      : ScalarExpr(ScalarKind::kLiteral, value.type()), value_(std::move(value)) {}

  const Datum& value() const { return value_; }

  std::string ToString() const override { return value_.ToString(); }
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  Datum value_;
};

class BinaryExprB : public ScalarExpr {
 public:
  BinaryExprB(sql::BinaryOp op, ScalarExprPtr left, ScalarExprPtr right,
              TypeId type)
      : ScalarExpr(ScalarKind::kBinary, type), op_(op),
        left_(std::move(left)), right_(std::move(right)) {}

  sql::BinaryOp op() const { return op_; }
  const ScalarExprPtr& left() const { return left_; }
  const ScalarExprPtr& right() const { return right_; }

  std::string ToString() const override;
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  sql::BinaryOp op_;
  ScalarExprPtr left_;
  ScalarExprPtr right_;
};

class UnaryExprB : public ScalarExpr {
 public:
  UnaryExprB(sql::UnaryOp op, ScalarExprPtr operand, TypeId type)
      : ScalarExpr(ScalarKind::kUnary, type), op_(op),
        operand_(std::move(operand)) {}

  sql::UnaryOp op() const { return op_; }
  const ScalarExprPtr& operand() const { return operand_; }

  std::string ToString() const override;
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  sql::UnaryOp op_;
  ScalarExprPtr operand_;
};

class IsNullExprB : public ScalarExpr {
 public:
  IsNullExprB(ScalarExprPtr operand, bool negated)
      : ScalarExpr(ScalarKind::kIsNull, TypeId::kBool),
        operand_(std::move(operand)), negated_(negated) {}

  const ScalarExprPtr& operand() const { return operand_; }
  bool negated() const { return negated_; }

  std::string ToString() const override;
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  ScalarExprPtr operand_;
  bool negated_;
};

class CaseExprB : public ScalarExpr {
 public:
  CaseExprB(std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> whens,
            ScalarExprPtr else_expr, TypeId type)
      : ScalarExpr(ScalarKind::kCase, type), whens_(std::move(whens)),
        else_expr_(std::move(else_expr)) {}

  const std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>>& whens() const {
    return whens_;
  }
  const ScalarExprPtr& else_expr() const { return else_expr_; }

  std::string ToString() const override;
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> whens_;
  ScalarExprPtr else_expr_;  ///< May be null.
};

class CastExprB : public ScalarExpr {
 public:
  CastExprB(ScalarExprPtr operand, TypeId target)
      : ScalarExpr(ScalarKind::kCast, target), operand_(std::move(operand)) {}

  const ScalarExprPtr& operand() const { return operand_; }

  std::string ToString() const override;
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  ScalarExprPtr operand_;
};

class FunctionExprB : public ScalarExpr {
 public:
  FunctionExprB(std::string name, std::vector<ScalarExprPtr> args, TypeId type)
      : ScalarExpr(ScalarKind::kFunction, type), name_(std::move(name)),
        args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<ScalarExprPtr>& args() const { return args_; }

  std::string ToString() const override;
  size_t Hash() const override;
  bool Equals(const ScalarExpr& other) const override;

 private:
  std::string name_;
  std::vector<ScalarExprPtr> args_;
};

// --- construction helpers ---

ScalarExprPtr MakeColumn(const ColumnBinding& binding);
ScalarExprPtr MakeLiteral(Datum value);
ScalarExprPtr MakeBinary(sql::BinaryOp op, ScalarExprPtr l, ScalarExprPtr r);
ScalarExprPtr MakeNot(ScalarExprPtr e);
ScalarExprPtr MakeAnd(std::vector<ScalarExprPtr> conjuncts);

// --- analysis helpers ---

/// Adds every ColumnId referenced by `expr` to `out`.
void CollectColumns(const ScalarExprPtr& expr, std::set<ColumnId>* out);

/// True if every column `expr` references is in `available`.
bool ExprCoveredBy(const ScalarExprPtr& expr, const std::set<ColumnId>& available);

/// Rewrites column references per `mapping` (id -> replacement expression).
/// Ids absent from the mapping are left untouched.
ScalarExprPtr SubstituteColumns(
    const ScalarExprPtr& expr,
    const std::map<ColumnId, ScalarExprPtr>& mapping);

/// Replaces every subtree structurally equal to `target` with `replacement`.
ScalarExprPtr ReplaceSubtree(const ScalarExprPtr& expr,
                             const ScalarExprPtr& target,
                             const ScalarExprPtr& replacement);

/// Splits a boolean expression on AND into conjuncts.
void SplitConjuncts(const ScalarExprPtr& expr, std::vector<ScalarExprPtr>* out);

/// True if `expr` is `col = col` between exactly two distinct columns;
/// outputs their ids.
bool IsColumnEquality(const ScalarExprPtr& expr, ColumnId* a, ColumnId* b);

}  // namespace pdw

#endif  // PDW_ALGEBRA_SCALAR_EXPR_H_
