#include "algebra/logical_op.h"

#include "common/string_util.h"

namespace pdw {

namespace {

size_t HashCombine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

size_t HashExprs(const std::vector<ScalarExprPtr>& exprs, size_t seed) {
  size_t h = seed;
  for (const auto& e : exprs) h = HashCombine(h, e->Hash());
  return h;
}

bool ExprsEqual(const std::vector<ScalarExprPtr>& a,
                const std::vector<ScalarExprPtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->Equals(*b[i])) return false;
  }
  return true;
}

}  // namespace

const char* LogicalJoinTypeToString(LogicalJoinType t) {
  switch (t) {
    case LogicalJoinType::kInner: return "Inner";
    case LogicalJoinType::kLeftOuter: return "LeftOuter";
    case LogicalJoinType::kSemi: return "Semi";
    case LogicalJoinType::kAnti: return "Anti";
    case LogicalJoinType::kCross: return "Cross";
  }
  return "?";
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

std::vector<ColumnBinding> LogicalOp::OutputBindings() const {
  std::vector<std::vector<ColumnBinding>> child_outputs;
  child_outputs.reserve(children_.size());
  for (const auto& c : children_) child_outputs.push_back(c->OutputBindings());
  return ComputeOutput(child_outputs);
}

namespace {

void TreeToString(const LogicalOp& op, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(op.ToString());
  out->push_back('\n');
  for (const auto& c : op.children()) TreeToString(*c, indent + 1, out);
}

}  // namespace

std::string LogicalTreeToString(const LogicalOp& root) {
  std::string out;
  TreeToString(root, 0, &out);
  return out;
}

// --- LogicalGet ---

std::string LogicalGet::ToString() const {
  std::string out = "Get " + table_name_;
  if (!alias_.empty() && !EqualsIgnoreCase(alias_, table_name_)) {
    out += " AS " + alias_;
  }
  return out;
}

size_t LogicalGet::PayloadHash() const {
  size_t h = HashCombine(11, std::hash<std::string>()(ToLower(table_name_)));
  for (const auto& b : bindings_) {
    h = HashCombine(h, std::hash<int32_t>()(b.id));
  }
  return h;
}

bool LogicalGet::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kGet) return false;
  const auto& o = static_cast<const LogicalGet&>(other);
  if (!EqualsIgnoreCase(table_name_, o.table_name())) return false;
  if (bindings_.size() != o.bindings().size()) return false;
  // Two Gets of the same table are the same operator only if they are the
  // same *instance* (same column ids) — self-joins stay distinct.
  for (size_t i = 0; i < bindings_.size(); ++i) {
    if (bindings_[i].id != o.bindings()[i].id) return false;
  }
  return true;
}

LogicalOpPtr LogicalGet::WithChildren(std::vector<LogicalOpPtr>) const {
  return std::make_shared<LogicalGet>(table_name_, alias_, table_, bindings_);
}

// --- LogicalEmpty ---

size_t LogicalEmpty::PayloadHash() const {
  size_t h = 12;
  for (const auto& b : bindings_) h = HashCombine(h, std::hash<int32_t>()(b.id));
  return h;
}

bool LogicalEmpty::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kEmpty) return false;
  const auto& o = static_cast<const LogicalEmpty&>(other);
  if (bindings_.size() != o.ComputeOutput({}).size()) return false;
  auto ob = o.ComputeOutput({});
  for (size_t i = 0; i < bindings_.size(); ++i) {
    if (bindings_[i].id != ob[i].id) return false;
  }
  return true;
}

LogicalOpPtr LogicalEmpty::WithChildren(std::vector<LogicalOpPtr>) const {
  return std::make_shared<LogicalEmpty>(bindings_);
}

// --- LogicalFilter ---

std::string LogicalFilter::ToString() const {
  std::vector<std::string> parts;
  for (const auto& c : conjuncts_) parts.push_back(c->ToString());
  return "Filter [" + Join(parts, " AND ") + "]";
}

size_t LogicalFilter::PayloadHash() const { return HashExprs(conjuncts_, 13); }

bool LogicalFilter::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kFilter) return false;
  return ExprsEqual(conjuncts_,
                    static_cast<const LogicalFilter&>(other).conjuncts());
}

LogicalOpPtr LogicalFilter::WithChildren(
    std::vector<LogicalOpPtr> children) const {
  return std::make_shared<LogicalFilter>(
      conjuncts_, children.empty() ? nullptr : std::move(children[0]));
}

// --- LogicalProject ---

std::vector<ColumnBinding> LogicalProject::ComputeOutput(
    const std::vector<std::vector<ColumnBinding>>&) const {
  std::vector<ColumnBinding> out;
  out.reserve(items_.size());
  for (const auto& item : items_) out.push_back(item.output);
  return out;
}

std::string LogicalProject::ToString() const {
  std::vector<std::string> parts;
  for (const auto& item : items_) {
    parts.push_back(item.expr->ToString() + " AS " + item.output.name + "#" +
                    std::to_string(item.output.id));
  }
  return "Project [" + Join(parts, ", ") + "]";
}

size_t LogicalProject::PayloadHash() const {
  size_t h = 14;
  for (const auto& item : items_) {
    h = HashCombine(h, item.expr->Hash());
    h = HashCombine(h, std::hash<int32_t>()(item.output.id));
  }
  return h;
}

bool LogicalProject::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kProject) return false;
  const auto& o = static_cast<const LogicalProject&>(other);
  if (items_.size() != o.items().size()) return false;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].output.id != o.items()[i].output.id ||
        !items_[i].expr->Equals(*o.items()[i].expr)) {
      return false;
    }
  }
  return true;
}

LogicalOpPtr LogicalProject::WithChildren(
    std::vector<LogicalOpPtr> children) const {
  return std::make_shared<LogicalProject>(
      items_, children.empty() ? nullptr : std::move(children[0]));
}

// --- LogicalJoin ---

std::vector<std::pair<ColumnId, ColumnId>> LogicalJoin::EquiKeys(
    const std::vector<ColumnBinding>& left_cols,
    const std::vector<ColumnBinding>& right_cols) const {
  std::vector<std::pair<ColumnId, ColumnId>> keys;
  for (const auto& cond : conditions_) {
    ColumnId a, b;
    if (!IsColumnEquality(cond, &a, &b)) continue;
    bool a_left = FindBinding(left_cols, a) >= 0;
    bool a_right = FindBinding(right_cols, a) >= 0;
    bool b_left = FindBinding(left_cols, b) >= 0;
    bool b_right = FindBinding(right_cols, b) >= 0;
    if (a_left && b_right) {
      keys.emplace_back(a, b);
    } else if (b_left && a_right) {
      keys.emplace_back(b, a);
    }
  }
  return keys;
}

std::vector<ColumnBinding> LogicalJoin::ComputeOutput(
    const std::vector<std::vector<ColumnBinding>>& child_outputs) const {
  std::vector<ColumnBinding> out = child_outputs[0];
  if (join_type_ == LogicalJoinType::kSemi ||
      join_type_ == LogicalJoinType::kAnti) {
    return out;
  }
  out.insert(out.end(), child_outputs[1].begin(), child_outputs[1].end());
  return out;
}

std::string LogicalJoin::ToString() const {
  std::vector<std::string> parts;
  for (const auto& c : conditions_) parts.push_back(c->ToString());
  return std::string("Join ") + LogicalJoinTypeToString(join_type_) + " [" +
         Join(parts, " AND ") + "]";
}

size_t LogicalJoin::PayloadHash() const {
  return HashExprs(conditions_,
                   HashCombine(15, static_cast<size_t>(join_type_)));
}

bool LogicalJoin::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kJoin) return false;
  const auto& o = static_cast<const LogicalJoin&>(other);
  return join_type_ == o.join_type() && ExprsEqual(conditions_, o.conditions());
}

LogicalOpPtr LogicalJoin::WithChildren(
    std::vector<LogicalOpPtr> children) const {
  if (children.empty()) children.resize(2);
  return std::make_shared<LogicalJoin>(join_type_, conditions_,
                                       std::move(children[0]),
                                       std::move(children[1]));
}

// --- LogicalAggregate ---

std::vector<ColumnBinding> LogicalAggregate::ComputeOutput(
    const std::vector<std::vector<ColumnBinding>>& child_outputs) const {
  std::vector<ColumnBinding> out;
  for (ColumnId id : group_by_) {
    int pos = FindBinding(child_outputs[0], id);
    if (pos >= 0) {
      out.push_back(child_outputs[0][static_cast<size_t>(pos)]);
    } else {
      out.push_back(ColumnBinding{id, "g" + std::to_string(id), TypeId::kInvalid});
    }
  }
  for (const auto& a : aggregates_) out.push_back(a.output);
  return out;
}

std::string LogicalAggregate::ToString() const {
  std::vector<std::string> groups;
  for (ColumnId id : group_by_) groups.push_back("#" + std::to_string(id));
  std::vector<std::string> aggs;
  for (const auto& a : aggregates_) {
    std::string s = AggFuncToString(a.func);
    if (a.func != AggFunc::kCountStar) {
      s += "(";
      if (a.distinct) s += "DISTINCT ";
      s += a.arg->ToString();
      s += ")";
    }
    aggs.push_back(s + " AS #" + std::to_string(a.output.id));
  }
  return "Aggregate group=[" + Join(groups, ",") + "] aggs=[" +
         Join(aggs, ", ") + "]";
}

size_t LogicalAggregate::PayloadHash() const {
  size_t h = 16;
  for (ColumnId id : group_by_) h = HashCombine(h, std::hash<int32_t>()(id));
  for (const auto& a : aggregates_) {
    h = HashCombine(h, static_cast<size_t>(a.func));
    if (a.arg) h = HashCombine(h, a.arg->Hash());
    h = HashCombine(h, std::hash<int32_t>()(a.output.id));
  }
  return h;
}

bool LogicalAggregate::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kAggregate) return false;
  const auto& o = static_cast<const LogicalAggregate&>(other);
  if (group_by_ != o.group_by() ||
      aggregates_.size() != o.aggregates().size()) {
    return false;
  }
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const auto& a = aggregates_[i];
    const auto& b = o.aggregates()[i];
    if (a.func != b.func || a.distinct != b.distinct ||
        a.output.id != b.output.id) {
      return false;
    }
    if ((a.arg == nullptr) != (b.arg == nullptr)) return false;
    if (a.arg && !a.arg->Equals(*b.arg)) return false;
  }
  return true;
}

LogicalOpPtr LogicalAggregate::WithChildren(
    std::vector<LogicalOpPtr> children) const {
  return std::make_shared<LogicalAggregate>(
      group_by_, aggregates_, children.empty() ? nullptr : std::move(children[0]));
}

// --- LogicalSort ---

std::string LogicalSort::ToString() const {
  std::vector<std::string> parts;
  for (const auto& item : items_) {
    parts.push_back("#" + std::to_string(item.column) +
                    (item.ascending ? " ASC" : " DESC"));
  }
  return "Sort [" + Join(parts, ", ") + "]";
}

size_t LogicalSort::PayloadHash() const {
  size_t h = 17;
  for (const auto& item : items_) {
    h = HashCombine(h, std::hash<int32_t>()(item.column));
    h = HashCombine(h, item.ascending ? 1 : 0);
  }
  return h;
}

bool LogicalSort::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kSort) return false;
  const auto& o = static_cast<const LogicalSort&>(other);
  if (items_.size() != o.items().size()) return false;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].column != o.items()[i].column ||
        items_[i].ascending != o.items()[i].ascending) {
      return false;
    }
  }
  return true;
}

LogicalOpPtr LogicalSort::WithChildren(
    std::vector<LogicalOpPtr> children) const {
  return std::make_shared<LogicalSort>(
      items_, children.empty() ? nullptr : std::move(children[0]));
}

// --- LogicalUnionAll ---

std::string LogicalUnionAll::ToString() const {
  std::vector<std::string> cols;
  for (const auto& b : outputs_) cols.push_back("#" + std::to_string(b.id));
  return "UnionAll [" + Join(cols, ",") + "] over " +
         std::to_string(child_columns_.size()) + " inputs";
}

size_t LogicalUnionAll::PayloadHash() const {
  size_t h = 19;
  for (const auto& b : outputs_) h = HashCombine(h, std::hash<int32_t>()(b.id));
  for (const auto& cols : child_columns_) {
    for (ColumnId c : cols) h = HashCombine(h, std::hash<int32_t>()(c));
  }
  return h;
}

bool LogicalUnionAll::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kUnionAll) return false;
  const auto& o = static_cast<const LogicalUnionAll&>(other);
  if (outputs_.size() != o.outputs().size() ||
      child_columns_ != o.child_columns()) {
    return false;
  }
  for (size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i].id != o.outputs()[i].id) return false;
  }
  return true;
}

LogicalOpPtr LogicalUnionAll::WithChildren(
    std::vector<LogicalOpPtr> children) const {
  return std::make_shared<LogicalUnionAll>(outputs_, child_columns_,
                                           std::move(children));
}

// --- LogicalLimit ---

std::string LogicalLimit::ToString() const {
  return "Limit " + std::to_string(limit_);
}

size_t LogicalLimit::PayloadHash() const {
  return HashCombine(18, std::hash<int64_t>()(limit_));
}

bool LogicalLimit::PayloadEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kLimit) return false;
  return limit_ == static_cast<const LogicalLimit&>(other).limit();
}

LogicalOpPtr LogicalLimit::WithChildren(
    std::vector<LogicalOpPtr> children) const {
  return std::make_shared<LogicalLimit>(
      limit_, children.empty() ? nullptr : std::move(children[0]));
}

}  // namespace pdw
