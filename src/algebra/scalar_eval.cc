#include "algebra/scalar_eval.h"

#include <cmath>

#include "common/string_util.h"

namespace pdw {

namespace {

using sql::BinaryOp;

Result<Datum> EvalArith(BinaryOp op, const Datum& l, const Datum& r) {
  if (l.is_null() || r.is_null()) return Datum::Null();
  // DATE +/- INT means day arithmetic.
  if (l.type() == TypeId::kDate && r.type() == TypeId::kInt) {
    int32_t days = l.date_value();
    int64_t n = r.int_value();
    if (op == BinaryOp::kAdd) return Datum::Date(days + static_cast<int32_t>(n));
    if (op == BinaryOp::kSub) return Datum::Date(days - static_cast<int32_t>(n));
  }
  if (l.type() == TypeId::kDate && r.type() == TypeId::kDate &&
      op == BinaryOp::kSub) {
    return Datum::Int(l.date_value() - r.date_value());
  }
  bool integral = l.type() == TypeId::kInt && r.type() == TypeId::kInt;
  if (integral && op != BinaryOp::kDiv) {
    int64_t a = l.int_value();
    int64_t b = r.int_value();
    switch (op) {
      case BinaryOp::kAdd: return Datum::Int(a + b);
      case BinaryOp::kSub: return Datum::Int(a - b);
      case BinaryOp::kMul: return Datum::Int(a * b);
      case BinaryOp::kMod:
        if (b == 0) return Status::ExecutionError("modulo by zero");
        return Datum::Int(a % b);
      default: break;
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op) {
    case BinaryOp::kAdd: return Datum::Double(a + b);
    case BinaryOp::kSub: return Datum::Double(a - b);
    case BinaryOp::kMul: return Datum::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::ExecutionError("division by zero");
      return Datum::Double(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Status::ExecutionError("modulo by zero");
      return Datum::Double(std::fmod(a, b));
    default:
      return Status::Internal("not an arithmetic operator");
  }
}

Datum EvalComparison(BinaryOp op, const Datum& l, const Datum& r) {
  if (l.is_null() || r.is_null()) return Datum::Null();
  int c = l.Compare(r);
  bool v = false;
  switch (op) {
    case BinaryOp::kEq: v = c == 0; break;
    case BinaryOp::kNe: v = c != 0; break;
    case BinaryOp::kLt: v = c < 0; break;
    case BinaryOp::kLe: v = c <= 0; break;
    case BinaryOp::kGt: v = c > 0; break;
    case BinaryOp::kGe: v = c >= 0; break;
    default: break;
  }
  return Datum::Bool(v);
}

// Kleene three-valued AND/OR over Datums (NULL = unknown).
Datum EvalAnd(const Datum& l, const Datum& r) {
  bool l_false = !l.is_null() && !l.bool_value();
  bool r_false = !r.is_null() && !r.bool_value();
  if (l_false || r_false) return Datum::Bool(false);
  if (l.is_null() || r.is_null()) return Datum::Null();
  return Datum::Bool(true);
}

Datum EvalOr(const Datum& l, const Datum& r) {
  bool l_true = !l.is_null() && l.bool_value();
  bool r_true = !r.is_null() && r.bool_value();
  if (l_true || r_true) return Datum::Bool(true);
  if (l.is_null() || r.is_null()) return Datum::Null();
  return Datum::Bool(false);
}

Result<Datum> EvalFunction(const FunctionExprB& fn, const Row& row,
                           const ColumnOrdinalMap& ordinals) {
  std::vector<Datum> args;
  args.reserve(fn.args().size());
  for (const auto& arg : fn.args()) {
    PDW_ASSIGN_OR_RETURN(Datum v, EvalScalar(*arg, row, ordinals));
    args.push_back(std::move(v));
  }
  return EvalFunctionOp(fn.name(), args);
}

}  // namespace

Result<Datum> EvalFunctionOp(const std::string& name,
                             const std::vector<Datum>& args) {
  if (name == "DATEADD") {
    if (args.size() != 3) {
      return Status::ExecutionError("DATEADD expects 3 arguments");
    }
    const Datum& part = args[0];
    const Datum& n = args[1];
    Datum d = args[2];
    if (n.is_null() || d.is_null()) return Datum::Null();
    if (d.type() == TypeId::kVarchar) {
      PDW_ASSIGN_OR_RETURN(d, d.CastTo(TypeId::kDate));
    }
    std::string p = part.is_null() ? "day" : ToLower(part.string_value());
    int32_t days = d.date_value();
    int64_t count = n.type() == TypeId::kInt
                        ? n.int_value()
                        : static_cast<int64_t>(n.AsDouble());
    if (p == "year" || p == "yy" || p == "yyyy") {
      return Datum::Date(AddYears(days, static_cast<int>(count)));
    }
    if (p == "month" || p == "mm") {
      // Month arithmetic via year decomposition.
      int32_t result = days;
      int years = static_cast<int>(count / 12);
      int months = static_cast<int>(count % 12);
      result = AddYears(result, years);
      result += months * 30;  // engine approximation, documented in README
      return Datum::Date(result);
    }
    if (p == "day" || p == "dd") {
      return Datum::Date(days + static_cast<int32_t>(count));
    }
    return Status::ExecutionError("unsupported DATEADD part '" + p + "'");
  }
  if (name == "ABS") {
    if (args.size() != 1) return Status::ExecutionError("ABS expects 1 arg");
    const Datum& v = args[0];
    if (v.is_null()) return Datum::Null();
    if (v.type() == TypeId::kInt) return Datum::Int(std::abs(v.int_value()));
    return Datum::Double(std::fabs(v.AsDouble()));
  }
  if (name == "SUBSTRING") {
    if (args.size() != 3) {
      return Status::ExecutionError("SUBSTRING expects 3 arguments");
    }
    const Datum& s = args[0];
    const Datum& from = args[1];
    const Datum& len = args[2];
    if (s.is_null() || from.is_null() || len.is_null()) return Datum::Null();
    const std::string& str = s.string_value();
    int64_t start = std::max<int64_t>(1, from.int_value()) - 1;
    int64_t count = std::max<int64_t>(0, len.int_value());
    if (start >= static_cast<int64_t>(str.size())) return Datum::Varchar("");
    return Datum::Varchar(str.substr(static_cast<size_t>(start),
                                     static_cast<size_t>(count)));
  }
  return Status::ExecutionError("unknown function '" + name + "'");
}

Result<Datum> EvalBinaryOp(BinaryOp op, const Datum& l, const Datum& r) {
  switch (op) {
    case BinaryOp::kAnd:
      return EvalAnd(l, r);
    case BinaryOp::kOr:
      return EvalOr(l, r);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return EvalArith(op, l, r);
    case BinaryOp::kLike:
    case BinaryOp::kNotLike: {
      if (l.is_null() || r.is_null()) return Datum::Null();
      if (l.type() != TypeId::kVarchar || r.type() != TypeId::kVarchar) {
        return Status::ExecutionError("LIKE requires string operands");
      }
      bool m = LikeMatch(l.string_value(), r.string_value());
      return Datum::Bool(op == BinaryOp::kLike ? m : !m);
    }
    default:
      return EvalComparison(op, l, r);
  }
}

Result<Datum> EvalUnaryOp(sql::UnaryOp op, const Datum& v) {
  if (v.is_null()) return Datum::Null();
  if (op == sql::UnaryOp::kNot) return Datum::Bool(!v.bool_value());
  if (v.type() == TypeId::kInt) return Datum::Int(-v.int_value());
  return Datum::Double(-v.AsDouble());
}

Result<Datum> EvalScalar(const ScalarExpr& expr, const Row& row,
                         const ColumnOrdinalMap& ordinals) {
  switch (expr.kind()) {
    case ScalarKind::kColumn: {
      const auto& c = static_cast<const ColumnExpr&>(expr);
      auto it = ordinals.find(c.id());
      if (it == ordinals.end()) {
        return Status::Internal("unbound column " + c.ToString());
      }
      return row[static_cast<size_t>(it->second)];
    }
    case ScalarKind::kLiteral:
      return static_cast<const LiteralExprB&>(expr).value();
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(expr);
      PDW_ASSIGN_OR_RETURN(Datum l, EvalScalar(*b.left(), row, ordinals));
      PDW_ASSIGN_OR_RETURN(Datum r, EvalScalar(*b.right(), row, ordinals));
      return EvalBinaryOp(b.op(), l, r);
    }
    case ScalarKind::kUnary: {
      const auto& u = static_cast<const UnaryExprB&>(expr);
      PDW_ASSIGN_OR_RETURN(Datum v, EvalScalar(*u.operand(), row, ordinals));
      return EvalUnaryOp(u.op(), v);
    }
    case ScalarKind::kIsNull: {
      const auto& n = static_cast<const IsNullExprB&>(expr);
      PDW_ASSIGN_OR_RETURN(Datum v, EvalScalar(*n.operand(), row, ordinals));
      return Datum::Bool(n.negated() ? !v.is_null() : v.is_null());
    }
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(expr);
      for (const auto& [when, then] : c.whens()) {
        PDW_ASSIGN_OR_RETURN(Datum w, EvalScalar(*when, row, ordinals));
        if (!w.is_null() && w.bool_value()) {
          return EvalScalar(*then, row, ordinals);
        }
      }
      if (c.else_expr()) return EvalScalar(*c.else_expr(), row, ordinals);
      return Datum::Null();
    }
    case ScalarKind::kCast: {
      const auto& c = static_cast<const CastExprB&>(expr);
      PDW_ASSIGN_OR_RETURN(Datum v, EvalScalar(*c.operand(), row, ordinals));
      return v.CastTo(c.type());
    }
    case ScalarKind::kFunction:
      return EvalFunction(static_cast<const FunctionExprB&>(expr), row,
                          ordinals);
  }
  return Status::Internal("unreachable scalar kind");
}

bool IsConstantExpr(const ScalarExprPtr& expr) {
  std::set<ColumnId> cols;
  CollectColumns(expr, &cols);
  return cols.empty();
}

Result<Datum> EvalConstant(const ScalarExpr& expr) {
  static const Row kEmptyRow;
  static const ColumnOrdinalMap kEmptyMap;
  return EvalScalar(expr, kEmptyRow, kEmptyMap);
}

Result<bool> EvalPredicate(const ScalarExpr& expr, const Row& row,
                           const ColumnOrdinalMap& ordinals) {
  PDW_ASSIGN_OR_RETURN(Datum v, EvalScalar(expr, row, ordinals));
  return !v.is_null() && v.bool_value();
}

}  // namespace pdw
