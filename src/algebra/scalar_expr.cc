#include "algebra/scalar_expr.h"

#include "common/string_util.h"

namespace pdw {

namespace {

size_t HashCombine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace

int FindBinding(const std::vector<ColumnBinding>& cols, ColumnId id) {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

// --- ColumnExpr ---

std::string ColumnExpr::ToString() const {
  return name_ + "#" + std::to_string(id_);
}

size_t ColumnExpr::Hash() const {
  return HashCombine(1, std::hash<int32_t>()(id_));
}

bool ColumnExpr::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kColumn) return false;
  return id_ == static_cast<const ColumnExpr&>(other).id();
}

// --- LiteralExprB ---

size_t LiteralExprB::Hash() const { return HashCombine(2, value_.Hash()); }

bool LiteralExprB::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kLiteral) return false;
  const auto& o = static_cast<const LiteralExprB&>(other);
  if (value_.is_null() || o.value().is_null()) {
    return value_.is_null() && o.value().is_null();
  }
  return value_.Compare(o.value()) == 0 && value_.type() == o.value().type();
}

// --- BinaryExprB ---

std::string BinaryExprB::ToString() const {
  return "(" + left_->ToString() + " " + sql::BinaryOpToString(op_) + " " +
         right_->ToString() + ")";
}

size_t BinaryExprB::Hash() const {
  size_t h = HashCombine(3, static_cast<size_t>(op_));
  h = HashCombine(h, left_->Hash());
  return HashCombine(h, right_->Hash());
}

bool BinaryExprB::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kBinary) return false;
  const auto& o = static_cast<const BinaryExprB&>(other);
  return op_ == o.op() && left_->Equals(*o.left()) && right_->Equals(*o.right());
}

// --- UnaryExprB ---

std::string UnaryExprB::ToString() const {
  return op_ == sql::UnaryOp::kNot ? "(NOT " + operand_->ToString() + ")"
                                   : "(-" + operand_->ToString() + ")";
}

size_t UnaryExprB::Hash() const {
  return HashCombine(HashCombine(4, static_cast<size_t>(op_)), operand_->Hash());
}

bool UnaryExprB::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kUnary) return false;
  const auto& o = static_cast<const UnaryExprB&>(other);
  return op_ == o.op() && operand_->Equals(*o.operand());
}

// --- IsNullExprB ---

std::string IsNullExprB::ToString() const {
  return "(" + operand_->ToString() + (negated_ ? " IS NOT NULL)" : " IS NULL)");
}

size_t IsNullExprB::Hash() const {
  return HashCombine(HashCombine(5, negated_ ? 1 : 0), operand_->Hash());
}

bool IsNullExprB::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kIsNull) return false;
  const auto& o = static_cast<const IsNullExprB&>(other);
  return negated_ == o.negated() && operand_->Equals(*o.operand());
}

// --- CaseExprB ---

std::string CaseExprB::ToString() const {
  std::string out = "CASE";
  for (const auto& [w, t] : whens_) {
    out += " WHEN " + w->ToString() + " THEN " + t->ToString();
  }
  if (else_expr_) out += " ELSE " + else_expr_->ToString();
  return out + " END";
}

size_t CaseExprB::Hash() const {
  size_t h = 6;
  for (const auto& [w, t] : whens_) {
    h = HashCombine(h, w->Hash());
    h = HashCombine(h, t->Hash());
  }
  if (else_expr_) h = HashCombine(h, else_expr_->Hash());
  return h;
}

bool CaseExprB::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kCase) return false;
  const auto& o = static_cast<const CaseExprB&>(other);
  if (whens_.size() != o.whens().size()) return false;
  for (size_t i = 0; i < whens_.size(); ++i) {
    if (!whens_[i].first->Equals(*o.whens()[i].first) ||
        !whens_[i].second->Equals(*o.whens()[i].second)) {
      return false;
    }
  }
  if ((else_expr_ == nullptr) != (o.else_expr() == nullptr)) return false;
  return else_expr_ == nullptr || else_expr_->Equals(*o.else_expr());
}

// --- CastExprB ---

std::string CastExprB::ToString() const {
  return std::string("CAST(") + operand_->ToString() + " AS " +
         TypeIdToString(type()) + ")";
}

size_t CastExprB::Hash() const {
  return HashCombine(HashCombine(7, static_cast<size_t>(type())),
                     operand_->Hash());
}

bool CastExprB::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kCast) return false;
  const auto& o = static_cast<const CastExprB&>(other);
  return type() == o.type() && operand_->Equals(*o.operand());
}

// --- FunctionExprB ---

std::string FunctionExprB::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

size_t FunctionExprB::Hash() const {
  size_t h = HashCombine(8, std::hash<std::string>()(name_));
  for (const auto& a : args_) h = HashCombine(h, a->Hash());
  return h;
}

bool FunctionExprB::Equals(const ScalarExpr& other) const {
  if (other.kind() != ScalarKind::kFunction) return false;
  const auto& o = static_cast<const FunctionExprB&>(other);
  if (name_ != o.name() || args_.size() != o.args().size()) return false;
  for (size_t i = 0; i < args_.size(); ++i) {
    if (!args_[i]->Equals(*o.args()[i])) return false;
  }
  return true;
}

// --- helpers ---

ScalarExprPtr MakeColumn(const ColumnBinding& binding) {
  return std::make_shared<ColumnExpr>(binding.id, binding.name, binding.type);
}

ScalarExprPtr MakeLiteral(Datum value) {
  return std::make_shared<LiteralExprB>(std::move(value));
}

ScalarExprPtr MakeBinary(sql::BinaryOp op, ScalarExprPtr l, ScalarExprPtr r) {
  TypeId type = TypeId::kBool;
  switch (op) {
    case sql::BinaryOp::kAdd:
    case sql::BinaryOp::kSub:
    case sql::BinaryOp::kMul:
    case sql::BinaryOp::kDiv:
    case sql::BinaryOp::kMod: {
      TypeId lt = l->type();
      TypeId rt = r->type();
      if (lt == TypeId::kDouble || rt == TypeId::kDouble ||
          op == sql::BinaryOp::kDiv) {
        type = TypeId::kDouble;
      } else if (lt == TypeId::kDate || rt == TypeId::kDate) {
        type = TypeId::kDate;
      } else {
        type = TypeId::kInt;
      }
      break;
    }
    default:
      type = TypeId::kBool;
  }
  return std::make_shared<BinaryExprB>(op, std::move(l), std::move(r), type);
}

ScalarExprPtr MakeNot(ScalarExprPtr e) {
  return std::make_shared<UnaryExprB>(sql::UnaryOp::kNot, std::move(e),
                                      TypeId::kBool);
}

ScalarExprPtr MakeAnd(std::vector<ScalarExprPtr> conjuncts) {
  if (conjuncts.empty()) return MakeLiteral(Datum::Bool(true));
  ScalarExprPtr node = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    node = MakeBinary(sql::BinaryOp::kAnd, node, conjuncts[i]);
  }
  return node;
}

void CollectColumns(const ScalarExprPtr& expr, std::set<ColumnId>* out) {
  if (!expr) return;
  switch (expr->kind()) {
    case ScalarKind::kColumn:
      out->insert(static_cast<const ColumnExpr&>(*expr).id());
      return;
    case ScalarKind::kLiteral:
      return;
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(*expr);
      CollectColumns(b.left(), out);
      CollectColumns(b.right(), out);
      return;
    }
    case ScalarKind::kUnary:
      CollectColumns(static_cast<const UnaryExprB&>(*expr).operand(), out);
      return;
    case ScalarKind::kIsNull:
      CollectColumns(static_cast<const IsNullExprB&>(*expr).operand(), out);
      return;
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(*expr);
      for (const auto& [w, t] : c.whens()) {
        CollectColumns(w, out);
        CollectColumns(t, out);
      }
      CollectColumns(c.else_expr(), out);
      return;
    }
    case ScalarKind::kCast:
      CollectColumns(static_cast<const CastExprB&>(*expr).operand(), out);
      return;
    case ScalarKind::kFunction: {
      const auto& f = static_cast<const FunctionExprB&>(*expr);
      for (const auto& a : f.args()) CollectColumns(a, out);
      return;
    }
  }
}

bool ExprCoveredBy(const ScalarExprPtr& expr,
                   const std::set<ColumnId>& available) {
  std::set<ColumnId> used;
  CollectColumns(expr, &used);
  for (ColumnId id : used) {
    if (available.count(id) == 0) return false;
  }
  return true;
}

ScalarExprPtr SubstituteColumns(
    const ScalarExprPtr& expr,
    const std::map<ColumnId, ScalarExprPtr>& mapping) {
  if (!expr) return nullptr;
  switch (expr->kind()) {
    case ScalarKind::kColumn: {
      const auto& c = static_cast<const ColumnExpr&>(*expr);
      auto it = mapping.find(c.id());
      return it != mapping.end() ? it->second : expr;
    }
    case ScalarKind::kLiteral:
      return expr;
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(*expr);
      return std::make_shared<BinaryExprB>(
          b.op(), SubstituteColumns(b.left(), mapping),
          SubstituteColumns(b.right(), mapping), b.type());
    }
    case ScalarKind::kUnary: {
      const auto& u = static_cast<const UnaryExprB&>(*expr);
      return std::make_shared<UnaryExprB>(
          u.op(), SubstituteColumns(u.operand(), mapping), u.type());
    }
    case ScalarKind::kIsNull: {
      const auto& n = static_cast<const IsNullExprB&>(*expr);
      return std::make_shared<IsNullExprB>(
          SubstituteColumns(n.operand(), mapping), n.negated());
    }
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(*expr);
      std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> whens;
      for (const auto& [w, t] : c.whens()) {
        whens.emplace_back(SubstituteColumns(w, mapping),
                           SubstituteColumns(t, mapping));
      }
      return std::make_shared<CaseExprB>(
          std::move(whens), SubstituteColumns(c.else_expr(), mapping),
          c.type());
    }
    case ScalarKind::kCast: {
      const auto& c = static_cast<const CastExprB&>(*expr);
      return std::make_shared<CastExprB>(
          SubstituteColumns(c.operand(), mapping), c.type());
    }
    case ScalarKind::kFunction: {
      const auto& f = static_cast<const FunctionExprB&>(*expr);
      std::vector<ScalarExprPtr> args;
      for (const auto& a : f.args()) {
        args.push_back(SubstituteColumns(a, mapping));
      }
      return std::make_shared<FunctionExprB>(f.name(), std::move(args),
                                             f.type());
    }
  }
  return expr;
}

ScalarExprPtr ReplaceSubtree(const ScalarExprPtr& expr,
                             const ScalarExprPtr& target,
                             const ScalarExprPtr& replacement) {
  if (!expr) return nullptr;
  if (expr->Equals(*target)) return replacement;
  switch (expr->kind()) {
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
      return expr;
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(*expr);
      return std::make_shared<BinaryExprB>(
          b.op(), ReplaceSubtree(b.left(), target, replacement),
          ReplaceSubtree(b.right(), target, replacement), b.type());
    }
    case ScalarKind::kUnary: {
      const auto& u = static_cast<const UnaryExprB&>(*expr);
      return std::make_shared<UnaryExprB>(
          u.op(), ReplaceSubtree(u.operand(), target, replacement), u.type());
    }
    case ScalarKind::kIsNull: {
      const auto& n = static_cast<const IsNullExprB&>(*expr);
      return std::make_shared<IsNullExprB>(
          ReplaceSubtree(n.operand(), target, replacement), n.negated());
    }
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(*expr);
      std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> whens;
      for (const auto& [w, t] : c.whens()) {
        whens.emplace_back(ReplaceSubtree(w, target, replacement),
                           ReplaceSubtree(t, target, replacement));
      }
      return std::make_shared<CaseExprB>(
          std::move(whens),
          ReplaceSubtree(c.else_expr(), target, replacement), c.type());
    }
    case ScalarKind::kCast: {
      const auto& c = static_cast<const CastExprB&>(*expr);
      return std::make_shared<CastExprB>(
          ReplaceSubtree(c.operand(), target, replacement), c.type());
    }
    case ScalarKind::kFunction: {
      const auto& f = static_cast<const FunctionExprB&>(*expr);
      std::vector<ScalarExprPtr> args;
      for (const auto& a : f.args()) {
        args.push_back(ReplaceSubtree(a, target, replacement));
      }
      return std::make_shared<FunctionExprB>(f.name(), std::move(args),
                                             f.type());
    }
  }
  return expr;
}

void SplitConjuncts(const ScalarExprPtr& expr,
                    std::vector<ScalarExprPtr>* out) {
  if (!expr) return;
  if (expr->kind() == ScalarKind::kBinary) {
    const auto& b = static_cast<const BinaryExprB&>(*expr);
    if (b.op() == sql::BinaryOp::kAnd) {
      SplitConjuncts(b.left(), out);
      SplitConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

bool IsColumnEquality(const ScalarExprPtr& expr, ColumnId* a, ColumnId* b) {
  if (!expr || expr->kind() != ScalarKind::kBinary) return false;
  const auto& bin = static_cast<const BinaryExprB&>(*expr);
  if (bin.op() != sql::BinaryOp::kEq) return false;
  if (bin.left()->kind() != ScalarKind::kColumn ||
      bin.right()->kind() != ScalarKind::kColumn) {
    return false;
  }
  *a = static_cast<const ColumnExpr&>(*bin.left()).id();
  *b = static_cast<const ColumnExpr&>(*bin.right()).id();
  return *a != *b;
}

}  // namespace pdw
