#include "algebra/normalizer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "algebra/equivalence.h"
#include "algebra/scalar_eval.h"
#include "common/string_util.h"

namespace pdw {

namespace {

using sql::BinaryOp;

std::set<ColumnId> BindingIds(const std::vector<ColumnBinding>& cols) {
  std::set<ColumnId> out;
  for (const auto& b : cols) out.insert(b.id);
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1: constant folding.
// ---------------------------------------------------------------------------

bool IsLiteral(const ScalarExprPtr& e) {
  return e->kind() == ScalarKind::kLiteral;
}

/// Rebuilds `e` bottom-up; any subtree with no column references is
/// evaluated to a literal (evaluation failures leave the subtree as-is so
/// runtime errors like division by zero keep their semantics).
ScalarExprPtr FoldExpr(const ScalarExprPtr& e) {
  if (!e) return nullptr;
  ScalarExprPtr rebuilt = e;
  switch (e->kind()) {
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(*e);
      ScalarExprPtr l = FoldExpr(b.left());
      ScalarExprPtr r = FoldExpr(b.right());
      // Boolean identities: TRUE AND x -> x, FALSE OR x -> x, etc.
      if (b.op() == BinaryOp::kAnd || b.op() == BinaryOp::kOr) {
        bool is_and = b.op() == BinaryOp::kAnd;
        for (int side = 0; side < 2; ++side) {
          const ScalarExprPtr& self = side == 0 ? l : r;
          const ScalarExprPtr& other = side == 0 ? r : l;
          if (IsLiteral(self)) {
            const Datum& v = static_cast<const LiteralExprB&>(*self).value();
            if (!v.is_null()) {
              if (is_and && v.bool_value()) return other;
              if (is_and && !v.bool_value()) return MakeLiteral(Datum::Bool(false));
              if (!is_and && v.bool_value()) return MakeLiteral(Datum::Bool(true));
              if (!is_and && !v.bool_value()) return other;
            }
          }
        }
      }
      rebuilt = std::make_shared<BinaryExprB>(b.op(), l, r, b.type());
      break;
    }
    case ScalarKind::kUnary: {
      const auto& u = static_cast<const UnaryExprB&>(*e);
      rebuilt = std::make_shared<UnaryExprB>(u.op(), FoldExpr(u.operand()),
                                             u.type());
      break;
    }
    case ScalarKind::kIsNull: {
      const auto& n = static_cast<const IsNullExprB&>(*e);
      rebuilt = std::make_shared<IsNullExprB>(FoldExpr(n.operand()),
                                              n.negated());
      break;
    }
    case ScalarKind::kCast: {
      const auto& c = static_cast<const CastExprB&>(*e);
      rebuilt = std::make_shared<CastExprB>(FoldExpr(c.operand()), c.type());
      break;
    }
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(*e);
      std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> whens;
      for (const auto& [w, t] : c.whens()) {
        whens.emplace_back(FoldExpr(w), FoldExpr(t));
      }
      rebuilt = std::make_shared<CaseExprB>(std::move(whens),
                                            FoldExpr(c.else_expr()), c.type());
      break;
    }
    case ScalarKind::kFunction: {
      const auto& f = static_cast<const FunctionExprB&>(*e);
      std::vector<ScalarExprPtr> args;
      for (const auto& a : f.args()) args.push_back(FoldExpr(a));
      rebuilt = std::make_shared<FunctionExprB>(f.name(), std::move(args),
                                                f.type());
      break;
    }
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
      return e;
  }
  if (rebuilt->kind() != ScalarKind::kLiteral && IsConstantExpr(rebuilt)) {
    Result<Datum> v = EvalConstant(*rebuilt);
    if (v.ok()) return MakeLiteral(std::move(v).ValueOrDie());
  }
  return rebuilt;
}

LogicalOpPtr MakeEmpty(const LogicalOp& shaped_like) {
  return std::make_shared<LogicalEmpty>(shaped_like.OutputBindings());
}

LogicalOpPtr FoldConstantsPass(const LogicalOpPtr& op) {
  std::vector<LogicalOpPtr> children;
  for (const auto& c : op->children()) children.push_back(FoldConstantsPass(c));
  switch (op->kind()) {
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*op);
      std::vector<ScalarExprPtr> kept;
      for (const auto& c : f.conjuncts()) {
        ScalarExprPtr folded = FoldExpr(c);
        if (IsLiteral(folded)) {
          const Datum& v = static_cast<const LiteralExprB&>(*folded).value();
          if (!v.is_null() && v.bool_value()) continue;  // TRUE: drop
          return MakeEmpty(*op);  // FALSE or NULL: no rows survive
        }
        kept.push_back(folded);
      }
      if (kept.empty()) return children[0];
      return std::make_shared<LogicalFilter>(std::move(kept),
                                             std::move(children[0]));
    }
    case LogicalOpKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(*op);
      std::vector<ProjectItem> items;
      for (const auto& item : p.items()) {
        items.push_back(ProjectItem{FoldExpr(item.expr), item.output});
      }
      return std::make_shared<LogicalProject>(std::move(items),
                                              std::move(children[0]));
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*op);
      std::vector<ScalarExprPtr> conds;
      for (const auto& c : j.conditions()) conds.push_back(FoldExpr(c));
      return std::make_shared<LogicalJoin>(j.join_type(), std::move(conds),
                                           std::move(children[0]),
                                           std::move(children[1]));
    }
    default:
      return op->WithChildren(std::move(children));
  }
}

// ---------------------------------------------------------------------------
// Pass 2: predicate pushdown.
// ---------------------------------------------------------------------------

/// Conservative null-rejection: comparisons, LIKE and IS NOT NULL reject
/// NULL inputs; anything else is assumed not to.
bool IsNullRejecting(const ScalarExprPtr& e, const std::set<ColumnId>& side) {
  std::set<ColumnId> used;
  CollectColumns(e, &used);
  bool touches = false;
  for (ColumnId id : used) {
    if (side.count(id) > 0) touches = true;
  }
  if (!touches) return false;
  if (e->kind() == ScalarKind::kBinary) {
    const auto& b = static_cast<const BinaryExprB&>(*e);
    return b.op() != BinaryOp::kOr;  // comparisons, LIKE, AND of such
  }
  if (e->kind() == ScalarKind::kIsNull) {
    return static_cast<const IsNullExprB&>(*e).negated();
  }
  return false;
}

LogicalOpPtr PushDown(LogicalOpPtr op, std::vector<ScalarExprPtr> conjuncts);

LogicalOpPtr WrapFilter(LogicalOpPtr op, std::vector<ScalarExprPtr> conjuncts) {
  if (conjuncts.empty()) return op;
  return std::make_shared<LogicalFilter>(std::move(conjuncts), std::move(op));
}

LogicalOpPtr PushDownJoin(const LogicalJoin& join, LogicalOpPtr left,
                          LogicalOpPtr right,
                          std::vector<ScalarExprPtr> incoming) {
  std::set<ColumnId> left_ids = BindingIds(left->OutputBindings());
  std::set<ColumnId> right_ids = BindingIds(right->OutputBindings());
  LogicalJoinType jt = join.join_type();

  // Null-rejected left outer joins become inner joins.
  if (jt == LogicalJoinType::kLeftOuter) {
    for (const auto& c : incoming) {
      if (IsNullRejecting(c, right_ids)) {
        jt = LogicalJoinType::kInner;
        break;
      }
    }
  }

  std::vector<ScalarExprPtr> to_left;
  std::vector<ScalarExprPtr> to_right;
  std::vector<ScalarExprPtr> join_conds;
  std::vector<ScalarExprPtr> above;

  // Join's own ON conditions.
  for (const auto& c : join.conditions()) {
    bool l = ExprCoveredBy(c, left_ids);
    bool r = ExprCoveredBy(c, right_ids);
    switch (jt) {
      case LogicalJoinType::kInner:
      case LogicalJoinType::kCross:
        if (l) to_left.push_back(c);
        else if (r) to_right.push_back(c);
        else join_conds.push_back(c);
        break;
      case LogicalJoinType::kLeftOuter:
        // ON conditions of an outer join filter only the match, so only
        // right-side conditions may move (they pre-filter the inner input).
        if (r && !l) to_right.push_back(c);
        else join_conds.push_back(c);
        break;
      case LogicalJoinType::kSemi:
        if (l) to_left.push_back(c);
        else if (r) to_right.push_back(c);
        else join_conds.push_back(c);
        break;
      case LogicalJoinType::kAnti:
        // Right-only conditions pre-filter the probe set; left-only ones
        // change which rows are "matched" and must stay.
        if (r && !l) to_right.push_back(c);
        else join_conds.push_back(c);
        break;
    }
  }
  // Conjuncts arriving from above the join.
  for (const auto& c : incoming) {
    bool l = ExprCoveredBy(c, left_ids);
    bool r = ExprCoveredBy(c, right_ids);
    switch (jt) {
      case LogicalJoinType::kInner:
      case LogicalJoinType::kCross:
        if (l) to_left.push_back(c);
        else if (r) to_right.push_back(c);
        else if (ExprCoveredBy(c, [&] {
                   std::set<ColumnId> both = left_ids;
                   both.insert(right_ids.begin(), right_ids.end());
                   return both;
                 }())) {
          join_conds.push_back(c);
        } else {
          above.push_back(c);
        }
        break;
      case LogicalJoinType::kLeftOuter:
        if (l) to_left.push_back(c);
        else above.push_back(c);
        break;
      case LogicalJoinType::kSemi:
      case LogicalJoinType::kAnti:
        if (l) to_left.push_back(c);
        else above.push_back(c);
        break;
    }
  }

  if (jt == LogicalJoinType::kCross && !join_conds.empty()) {
    jt = LogicalJoinType::kInner;
  }

  LogicalOpPtr new_left = PushDown(std::move(left), std::move(to_left));
  LogicalOpPtr new_right = PushDown(std::move(right), std::move(to_right));
  LogicalOpPtr result = std::make_shared<LogicalJoin>(
      jt, std::move(join_conds), std::move(new_left), std::move(new_right));
  return WrapFilter(std::move(result), std::move(above));
}

LogicalOpPtr PushDown(LogicalOpPtr op, std::vector<ScalarExprPtr> conjuncts) {
  switch (op->kind()) {
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*op);
      std::vector<ScalarExprPtr> all = f.conjuncts();
      all.insert(all.end(), conjuncts.begin(), conjuncts.end());
      return PushDown(op->children()[0], std::move(all));
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*op);
      return PushDownJoin(j, op->children()[0], op->children()[1],
                          std::move(conjuncts));
    }
    case LogicalOpKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(*op);
      // Inline project expressions into the conjuncts and push them below.
      std::map<ColumnId, ScalarExprPtr> mapping;
      for (const auto& item : p.items()) {
        mapping[item.output.id] = item.expr;
      }
      std::vector<ScalarExprPtr> below;
      for (const auto& c : conjuncts) {
        below.push_back(SubstituteColumns(c, mapping));
      }
      LogicalOpPtr child = PushDown(op->children()[0], std::move(below));
      return std::make_shared<LogicalProject>(p.items(), std::move(child));
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(*op);
      std::set<ColumnId> group_set(a.group_by().begin(), a.group_by().end());
      std::vector<ScalarExprPtr> below;
      std::vector<ScalarExprPtr> above;
      for (const auto& c : conjuncts) {
        if (ExprCoveredBy(c, group_set)) {
          below.push_back(c);
        } else {
          above.push_back(c);
        }
      }
      LogicalOpPtr child = PushDown(op->children()[0], std::move(below));
      LogicalOpPtr agg = std::make_shared<LogicalAggregate>(
          a.group_by(), a.aggregates(), std::move(child));
      return WrapFilter(std::move(agg), std::move(above));
    }
    case LogicalOpKind::kSort: {
      LogicalOpPtr child = PushDown(op->children()[0], std::move(conjuncts));
      return op->WithChildren({std::move(child)});
    }
    case LogicalOpKind::kLimit: {
      // Filtering below a LIMIT changes results; keep conjuncts above.
      LogicalOpPtr child = PushDown(op->children()[0], {});
      return WrapFilter(op->WithChildren({std::move(child)}),
                        std::move(conjuncts));
    }
    case LogicalOpKind::kUnionAll: {
      // Conjuncts could be duplicated per branch via the positional
      // mapping; keep them above the union for simplicity.
      std::vector<LogicalOpPtr> children;
      for (const auto& c : op->children()) {
        children.push_back(PushDown(c, {}));
      }
      return WrapFilter(op->WithChildren(std::move(children)),
                        std::move(conjuncts));
    }
    case LogicalOpKind::kGet:
    case LogicalOpKind::kEmpty:
      return WrapFilter(op, std::move(conjuncts));
  }
  return WrapFilter(op, std::move(conjuncts));
}

// ---------------------------------------------------------------------------
// Pass 3: join transitivity closure + constant propagation.
// ---------------------------------------------------------------------------

bool IsColumnConstant(const ScalarExprPtr& e, ColumnId* col, Datum* value) {
  if (e->kind() != ScalarKind::kBinary) return false;
  const auto& b = static_cast<const BinaryExprB&>(*e);
  if (b.op() != BinaryOp::kEq) return false;
  const ScalarExprPtr* col_side = nullptr;
  const ScalarExprPtr* lit_side = nullptr;
  if (b.left()->kind() == ScalarKind::kColumn &&
      b.right()->kind() == ScalarKind::kLiteral) {
    col_side = &b.left();
    lit_side = &b.right();
  } else if (b.right()->kind() == ScalarKind::kColumn &&
             b.left()->kind() == ScalarKind::kLiteral) {
    col_side = &b.right();
    lit_side = &b.left();
  } else {
    return false;
  }
  *col = static_cast<const ColumnExpr&>(**col_side).id();
  *value = static_cast<const LiteralExprB&>(**lit_side).value();
  return true;
}

/// Collects equi conjuncts and column=constant conjuncts in an inner-join
/// cluster (a maximal region of inner/cross joins and filters).
void CollectClusterPredicates(const LogicalOp& op, ColumnEquivalence* equiv,
                              std::vector<std::pair<ColumnId, Datum>>* constants,
                              std::vector<ScalarExprPtr>* all_equalities) {
  if (op.kind() == LogicalOpKind::kJoin) {
    const auto& j = static_cast<const LogicalJoin&>(op);
    if (j.join_type() == LogicalJoinType::kInner ||
        j.join_type() == LogicalJoinType::kCross) {
      for (const auto& c : j.conditions()) {
        ColumnId a, b;
        if (IsColumnEquality(c, &a, &b)) {
          equiv->AddEquality(a, b);
          all_equalities->push_back(c);
        }
      }
      CollectClusterPredicates(*op.children()[0], equiv, constants,
                               all_equalities);
      CollectClusterPredicates(*op.children()[1], equiv, constants,
                               all_equalities);
    }
    return;  // other join types terminate the cluster
  }
  if (op.kind() == LogicalOpKind::kFilter) {
    const auto& f = static_cast<const LogicalFilter&>(op);
    for (const auto& c : f.conjuncts()) {
      ColumnId a, b;
      Datum v;
      if (IsColumnEquality(c, &a, &b)) {
        equiv->AddEquality(a, b);
        all_equalities->push_back(c);
      } else if (IsColumnConstant(c, &a, &v)) {
        constants->emplace_back(a, v);
      }
    }
    CollectClusterPredicates(*op.children()[0], equiv, constants,
                             all_equalities);
  }
  // Gets, projects, aggregates, other joins: cluster boundary.
}

/// Builds a column-id -> binding lookup for name/type reconstruction.
void CollectAllBindings(const LogicalOp& op,
                        std::map<ColumnId, ColumnBinding>* out) {
  std::vector<std::vector<ColumnBinding>> child_outputs;
  for (const auto& c : op.children()) {
    CollectAllBindings(*c, out);
    child_outputs.push_back(c->OutputBindings());
  }
  for (const auto& b : op.ComputeOutput(child_outputs)) {
    out->emplace(b.id, b);
  }
}

LogicalOpPtr TransitivityClosurePass(const LogicalOpPtr& op, bool* changed) {
  std::vector<LogicalOpPtr> children;
  for (const auto& c : op->children()) {
    children.push_back(TransitivityClosurePass(c, changed));
  }
  LogicalOpPtr rebuilt = op->WithChildren(std::move(children));

  // Only process at the *top* of an inner-join cluster: an inner/cross join
  // whose parent is not an inner/cross join. We approximate by processing
  // every inner join and deduplicating derived predicates.
  if (rebuilt->kind() != LogicalOpKind::kJoin) return rebuilt;
  const auto& j = static_cast<const LogicalJoin&>(*rebuilt);
  if (j.join_type() != LogicalJoinType::kInner &&
      j.join_type() != LogicalJoinType::kCross) {
    return rebuilt;
  }

  ColumnEquivalence equiv;
  std::vector<std::pair<ColumnId, Datum>> constants;
  std::vector<ScalarExprPtr> existing;
  CollectClusterPredicates(*rebuilt, &equiv, &constants, &existing);

  std::map<ColumnId, ColumnBinding> bindings;
  CollectAllBindings(*rebuilt, &bindings);

  std::vector<ScalarExprPtr> derived;
  // Derived equalities: all unordered pairs in each class, minus existing.
  for (const auto& cls : equiv.NonTrivialClasses()) {
    std::vector<ColumnId> members(cls.begin(), cls.end());
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t k = i + 1; k < members.size(); ++k) {
        bool present = false;
        for (const auto& e : existing) {
          ColumnId a, b;
          if (IsColumnEquality(e, &a, &b) &&
              ((a == members[i] && b == members[k]) ||
               (a == members[k] && b == members[i]))) {
            present = true;
            break;
          }
        }
        if (present) continue;
        auto ia = bindings.find(members[i]);
        auto ib = bindings.find(members[k]);
        if (ia == bindings.end() || ib == bindings.end()) continue;
        derived.push_back(MakeBinary(BinaryOp::kEq, MakeColumn(ia->second),
                                     MakeColumn(ib->second)));
        *changed = true;
      }
    }
  }
  // Constant propagation through equivalence classes.
  for (const auto& [col, value] : constants) {
    for (ColumnId other : equiv.ClassOf(col)) {
      if (other == col) continue;
      bool present = false;
      for (const auto& [c2, v2] : constants) {
        if (c2 == other && v2.Compare(value) == 0) present = true;
      }
      if (present) continue;
      auto it = bindings.find(other);
      if (it == bindings.end()) continue;
      derived.push_back(MakeBinary(BinaryOp::kEq, MakeColumn(it->second),
                                   MakeLiteral(value)));
      *changed = true;
    }
  }
  if (derived.empty()) return rebuilt;
  // Attach to the cluster top; the next pushdown pass places them.
  return std::make_shared<LogicalFilter>(std::move(derived),
                                         std::move(rebuilt));
}

// ---------------------------------------------------------------------------
// Pass 4: contradiction detection + empty propagation.
// ---------------------------------------------------------------------------

struct Range {
  std::optional<double> lo;
  bool lo_inclusive = true;
  std::optional<double> hi;
  bool hi_inclusive = true;
  bool contradictory = false;

  void ApplyLow(double v, bool inclusive) {
    if (!lo || v > *lo || (v == *lo && !inclusive)) {
      lo = v;
      lo_inclusive = inclusive;
    }
    Check();
  }
  void ApplyHigh(double v, bool inclusive) {
    if (!hi || v < *hi || (v == *hi && !inclusive)) {
      hi = v;
      hi_inclusive = inclusive;
    }
    Check();
  }
  void Check() {
    if (lo && hi &&
        (*lo > *hi || (*lo == *hi && (!lo_inclusive || !hi_inclusive)))) {
      contradictory = true;
    }
  }
};

bool NumericLiteral(const Datum& d, double* out) {
  switch (d.type()) {
    case TypeId::kInt: *out = static_cast<double>(d.int_value()); return true;
    case TypeId::kDouble: *out = d.double_value(); return true;
    case TypeId::kDate: *out = static_cast<double>(d.date_value()); return true;
    default: return false;
  }
}

/// True if the conjunct set over one Filter is unsatisfiable (empty numeric
/// range, or conflicting equality constants on any column).
bool FilterIsContradictory(const std::vector<ScalarExprPtr>& conjuncts) {
  std::map<ColumnId, Range> ranges;
  std::map<ColumnId, Datum> eq_string;
  for (const auto& c : conjuncts) {
    if (c->kind() != ScalarKind::kBinary) continue;
    const auto& b = static_cast<const BinaryExprB&>(*c);
    const ScalarExprPtr* col_side = nullptr;
    const ScalarExprPtr* lit_side = nullptr;
    bool flipped = false;
    if (b.left()->kind() == ScalarKind::kColumn &&
        b.right()->kind() == ScalarKind::kLiteral) {
      col_side = &b.left();
      lit_side = &b.right();
    } else if (b.right()->kind() == ScalarKind::kColumn &&
               b.left()->kind() == ScalarKind::kLiteral) {
      col_side = &b.right();
      lit_side = &b.left();
      flipped = true;
    } else {
      continue;
    }
    ColumnId id = static_cast<const ColumnExpr&>(**col_side).id();
    const Datum& v = static_cast<const LiteralExprB&>(**lit_side).value();
    BinaryOp op = b.op();
    if (flipped) {
      switch (op) {
        case BinaryOp::kLt: op = BinaryOp::kGt; break;
        case BinaryOp::kLe: op = BinaryOp::kGe; break;
        case BinaryOp::kGt: op = BinaryOp::kLt; break;
        case BinaryOp::kGe: op = BinaryOp::kLe; break;
        default: break;
      }
    }
    double num;
    if (NumericLiteral(v, &num)) {
      Range& r = ranges[id];
      switch (op) {
        case BinaryOp::kEq:
          r.ApplyLow(num, true);
          r.ApplyHigh(num, true);
          break;
        case BinaryOp::kLt: r.ApplyHigh(num, false); break;
        case BinaryOp::kLe: r.ApplyHigh(num, true); break;
        case BinaryOp::kGt: r.ApplyLow(num, false); break;
        case BinaryOp::kGe: r.ApplyLow(num, true); break;
        default: break;
      }
      if (r.contradictory) return true;
    } else if (v.type() == TypeId::kVarchar && op == BinaryOp::kEq) {
      auto it = eq_string.find(id);
      if (it != eq_string.end() && it->second.Compare(v) != 0) return true;
      eq_string.emplace(id, v);
    }
  }
  return false;
}

LogicalOpPtr ContradictionPass(const LogicalOpPtr& op) {
  std::vector<LogicalOpPtr> children;
  for (const auto& c : op->children()) children.push_back(ContradictionPass(c));

  switch (op->kind()) {
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*op);
      if (children[0]->kind() == LogicalOpKind::kEmpty) return children[0];
      if (FilterIsContradictory(f.conjuncts())) {
        return std::make_shared<LogicalEmpty>(children[0]->OutputBindings());
      }
      return op->WithChildren(std::move(children));
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*op);
      bool left_empty = children[0]->kind() == LogicalOpKind::kEmpty;
      bool right_empty = children[1]->kind() == LogicalOpKind::kEmpty;
      LogicalOpPtr rebuilt = op->WithChildren(
          {children[0], children[1]});
      switch (j.join_type()) {
        case LogicalJoinType::kInner:
        case LogicalJoinType::kCross:
        case LogicalJoinType::kSemi:
          if (left_empty || right_empty) {
            return std::make_shared<LogicalEmpty>(rebuilt->OutputBindings());
          }
          break;
        case LogicalJoinType::kAnti:
          if (left_empty) {
            return std::make_shared<LogicalEmpty>(rebuilt->OutputBindings());
          }
          if (right_empty) return children[0];
          break;
        case LogicalJoinType::kLeftOuter:
          if (left_empty) {
            return std::make_shared<LogicalEmpty>(rebuilt->OutputBindings());
          }
          if (right_empty) {
            // Left rows survive with NULL-padded right columns.
            std::vector<ProjectItem> items;
            for (const auto& b : children[0]->OutputBindings()) {
              items.push_back(ProjectItem{MakeColumn(b), b});
            }
            for (const auto& b : children[1]->OutputBindings()) {
              items.push_back(ProjectItem{MakeLiteral(Datum::Null()), b});
            }
            return std::make_shared<LogicalProject>(std::move(items),
                                                    children[0]);
          }
          break;
      }
      return rebuilt;
    }
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kLimit: {
      if (!children.empty() && children[0]->kind() == LogicalOpKind::kEmpty) {
        LogicalOpPtr rebuilt = op->WithChildren(std::move(children));
        return std::make_shared<LogicalEmpty>(rebuilt->OutputBindings());
      }
      return op->WithChildren(std::move(children));
    }
    default:
      return op->WithChildren(std::move(children));
  }
}

// ---------------------------------------------------------------------------
// Pass 5: redundant join elimination.
// ---------------------------------------------------------------------------

std::string ToLowerName(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// Adds the columns this operator itself consumes (predicates, projection
/// expressions, keys) to `out` — i.e. what its children must provide beyond
/// what the parent asked for.
void AddOwnColumnUses(const LogicalOp& op, std::set<ColumnId>* out) {
  switch (op.kind()) {
    case LogicalOpKind::kFilter:
      for (const auto& c : static_cast<const LogicalFilter&>(op).conjuncts()) {
        CollectColumns(c, out);
      }
      break;
    case LogicalOpKind::kProject:
      for (const auto& item : static_cast<const LogicalProject&>(op).items()) {
        CollectColumns(item.expr, out);
      }
      break;
    case LogicalOpKind::kJoin:
      for (const auto& c : static_cast<const LogicalJoin&>(op).conditions()) {
        CollectColumns(c, out);
      }
      break;
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(op);
      for (ColumnId id : a.group_by()) out->insert(id);
      for (const auto& agg : a.aggregates()) CollectColumns(agg.arg, out);
      break;
    }
    case LogicalOpKind::kSort:
      for (const auto& item : static_cast<const LogicalSort&>(op).items()) {
        out->insert(item.column);
      }
      break;
    case LogicalOpKind::kUnionAll:
      for (const auto& cols :
           static_cast<const LogicalUnionAll&>(op).child_columns()) {
        for (ColumnId id : cols) out->insert(id);
      }
      break;
    default:
      break;
  }
}

LogicalOpPtr EliminateRedundantJoins(const LogicalOpPtr& op,
                                     std::set<ColumnId> required,
                                     bool* changed) {
  if (op->kind() == LogicalOpKind::kJoin) {
    const auto& j = static_cast<const LogicalJoin&>(*op);
    if (j.join_type() == LogicalJoinType::kInner) {
      for (int side = 0; side < 2; ++side) {
        const LogicalOpPtr& keep = op->children()[side == 0 ? 0 : 1];
        const LogicalOpPtr& drop = op->children()[side == 0 ? 1 : 0];
        if (drop->kind() != LogicalOpKind::kGet) continue;
        const auto& get = static_cast<const LogicalGet&>(*drop);
        if (get.table() == nullptr || get.table()->primary_key.empty()) continue;
        std::set<ColumnId> drop_ids = BindingIds(get.bindings());
        // No column of the dropped side may be needed above the join.
        bool referenced_above = false;
        for (ColumnId id : required) {
          if (drop_ids.count(id) > 0) referenced_above = true;
        }
        if (referenced_above) continue;
        // Every condition must be an equality keep_col = drop_pk_col, and
        // together they must cover the entire primary key.
        std::set<std::string> pk_lower;
        for (const auto& pk : get.table()->primary_key) {
          pk_lower.insert(ToLowerName(pk));
        }
        std::set<std::string> covered;
        bool all_pk_equalities = !j.conditions().empty();
        for (const auto& cond : j.conditions()) {
          ColumnId a, b;
          if (!IsColumnEquality(cond, &a, &b)) {
            all_pk_equalities = false;
            break;
          }
          ColumnId drop_col = drop_ids.count(a) ? a : (drop_ids.count(b) ? b : kInvalidColumnId);
          ColumnId keep_col = drop_col == a ? b : a;
          if (drop_col == kInvalidColumnId || drop_ids.count(keep_col) > 0) {
            all_pk_equalities = false;
            break;
          }
          const ColumnBinding* binding = nullptr;
          for (const auto& bnd : get.bindings()) {
            if (bnd.id == drop_col) binding = &bnd;
          }
          if (binding == nullptr || pk_lower.count(ToLowerName(binding->name)) == 0) {
            all_pk_equalities = false;
            break;
          }
          covered.insert(ToLowerName(binding->name));
        }
        if (all_pk_equalities && covered == pk_lower) {
          *changed = true;
          return EliminateRedundantJoins(keep, std::move(required), changed);
        }
      }
    }
  }
  // Recurse, extending the required set with this operator's own column uses.
  std::set<ColumnId> child_required = required;
  AddOwnColumnUses(*op, &child_required);
  std::vector<LogicalOpPtr> children;
  for (const auto& c : op->children()) {
    children.push_back(EliminateRedundantJoins(c, child_required, changed));
  }
  return op->WithChildren(std::move(children));
}

// ---------------------------------------------------------------------------
// Pass 6: column pruning.
// ---------------------------------------------------------------------------

LogicalOpPtr PruneColumns(const LogicalOpPtr& op, std::set<ColumnId> required) {
  switch (op->kind()) {
    case LogicalOpKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(*op);
      std::vector<ColumnBinding> kept;
      for (const auto& b : get.bindings()) {
        bool needed = required.count(b.id) > 0;
        // Keep hash-distribution columns even when unreferenced: they carry
        // the scan's physical distribution property, which the PDW
        // optimizer exploits for collocation.
        if (!needed && get.table() != nullptr) {
          for (const std::string& dc : get.table()->distribution.columns) {
            if (EqualsIgnoreCase(b.name, dc)) needed = true;
          }
        }
        if (needed) kept.push_back(b);
      }
      // Keep the narrowest column when nothing is required (e.g. COUNT(*)),
      // so scans still produce rows.
      if (kept.empty() && !get.bindings().empty()) {
        const ColumnBinding* best = &get.bindings()[0];
        for (const auto& b : get.bindings()) {
          if (DefaultTypeWidth(b.type) < DefaultTypeWidth(best->type)) best = &b;
        }
        kept.push_back(*best);
      }
      return std::make_shared<LogicalGet>(get.table_name(), get.alias(),
                                          get.table(), std::move(kept));
    }
    case LogicalOpKind::kEmpty:
      return op;
    case LogicalOpKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(*op);
      std::vector<ProjectItem> kept;
      std::set<ColumnId> child_required;
      for (const auto& item : p.items()) {
        if (required.count(item.output.id) == 0) continue;
        kept.push_back(item);
        CollectColumns(item.expr, &child_required);
      }
      if (kept.empty() && !p.items().empty()) {
        kept.push_back(p.items()[0]);
        CollectColumns(p.items()[0].expr, &child_required);
      }
      LogicalOpPtr child = PruneColumns(op->children()[0], child_required);
      return std::make_shared<LogicalProject>(std::move(kept),
                                              std::move(child));
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(*op);
      std::vector<AggregateItem> kept;
      std::set<ColumnId> child_required;
      for (const auto& agg : a.aggregates()) {
        if (required.count(agg.output.id) == 0 && !a.aggregates().empty() &&
            !(a.aggregates().size() == 1 && a.group_by().empty())) {
          // Drop unused aggregate computations (but never turn a scalar
          // aggregate into a zero-column one).
          bool others_kept = false;
          for (const auto& other : a.aggregates()) {
            if (&other != &agg && required.count(other.output.id) > 0) {
              others_kept = true;
            }
          }
          if (others_kept || !a.group_by().empty()) continue;
        }
        kept.push_back(agg);
        CollectColumns(agg.arg, &child_required);
      }
      for (ColumnId id : a.group_by()) child_required.insert(id);
      LogicalOpPtr child = PruneColumns(op->children()[0], child_required);
      return std::make_shared<LogicalAggregate>(a.group_by(), std::move(kept),
                                                std::move(child));
    }
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kLimit: {
      std::set<ColumnId> child_required = required;
      AddOwnColumnUses(*op, &child_required);
      LogicalOpPtr child = PruneColumns(op->children()[0], child_required);
      return op->WithChildren({std::move(child)});
    }
    case LogicalOpKind::kUnionAll: {
      // No pruning through unions: outputs are positional.
      std::vector<LogicalOpPtr> children;
      std::set<ColumnId> child_required;
      AddOwnColumnUses(*op, &child_required);
      for (const auto& c : op->children()) {
        children.push_back(PruneColumns(c, child_required));
      }
      return op->WithChildren(std::move(children));
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*op);
      std::set<ColumnId> needed = required;
      AddOwnColumnUses(*op, &needed);
      std::set<ColumnId> left_ids = BindingIds(op->children()[0]->OutputBindings());
      std::set<ColumnId> right_ids =
          BindingIds(op->children()[1]->OutputBindings());
      std::set<ColumnId> left_req;
      std::set<ColumnId> right_req;
      for (ColumnId id : needed) {
        if (left_ids.count(id) > 0) left_req.insert(id);
        if (right_ids.count(id) > 0) right_req.insert(id);
      }
      LogicalOpPtr left = PruneColumns(op->children()[0], std::move(left_req));
      LogicalOpPtr right = PruneColumns(op->children()[1], std::move(right_req));
      return std::make_shared<LogicalJoin>(j.join_type(), j.conditions(),
                                           std::move(left), std::move(right));
    }
  }
  return op;
}

}  // namespace

Result<LogicalOpPtr> Normalize(LogicalOpPtr root,
                               const NormalizerOptions& options) {
  if (options.fold_constants) root = FoldConstantsPass(root);
  if (options.push_predicates) root = PushDown(std::move(root), {});
  if (options.transitive_closure) {
    bool changed = false;
    root = TransitivityClosurePass(root, &changed);
    if (changed && options.push_predicates) {
      root = PushDown(std::move(root), {});
    }
  }
  if (options.detect_contradictions) root = ContradictionPass(root);
  if (options.eliminate_redundant_joins) {
    bool changed = false;
    std::set<ColumnId> top;
    for (const auto& b : root->OutputBindings()) top.insert(b.id);
    root = EliminateRedundantJoins(root, top, &changed);
  }
  if (options.prune_columns) {
    std::set<ColumnId> top;
    for (const auto& b : root->OutputBindings()) top.insert(b.id);
    root = PruneColumns(root, top);
  }
  return root;
}

}  // namespace pdw
