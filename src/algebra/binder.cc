#include "algebra/binder.h"

#include <set>
#include <utility>

#include "common/string_util.h"

namespace pdw {

namespace {

/// One visible relation (base table or derived table) in a FROM scope.
struct TableScopeEntry {
  std::string alias;  ///< Lowercased alias or table name.
  std::vector<ColumnBinding> columns;
};

/// A name-resolution scope; `parent` links to the enclosing query's scope
/// for correlated sub-queries.
struct Scope {
  std::vector<TableScopeEntry> tables;
  Scope* parent = nullptr;
};

/// Collects the set of ColumnIds produced anywhere inside a subtree (used
/// to distinguish local from correlated/outer references).
void ProducedIds(const LogicalOp& op, std::set<ColumnId>* out) {
  switch (op.kind()) {
    case LogicalOpKind::kGet: {
      for (const auto& b : static_cast<const LogicalGet&>(op).bindings()) {
        out->insert(b.id);
      }
      break;
    }
    case LogicalOpKind::kEmpty: {
      for (const auto& b : op.ComputeOutput({})) out->insert(b.id);
      break;
    }
    case LogicalOpKind::kProject: {
      for (const auto& item : static_cast<const LogicalProject&>(op).items()) {
        out->insert(item.output.id);
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      for (const auto& a :
           static_cast<const LogicalAggregate&>(op).aggregates()) {
        out->insert(a.output.id);
      }
      break;
    }
    default:
      break;
  }
  for (const auto& c : op.children()) ProducedIds(*c, out);
}

}  // namespace

/// The actual binder; separated from the public Binder facade so the header
/// stays free of scope/context plumbing.
class BinderImpl {
 public:
  BinderImpl(const Catalog& catalog, ColumnId* next_id)
      : catalog_(catalog), next_id_(next_id) {}

  Result<BoundQuery> BindTopLevel(const sql::SelectStatement& stmt) {
    BoundQuery out;
    PDW_ASSIGN_OR_RETURN(out.root, BindSelect(stmt, nullptr, &out.output_names,
                                              &out.visible_columns));
    return out;
  }

 private:
  ColumnId NewId() { return (*next_id_)++; }

  // -------------------------------------------------------------------
  // Name resolution.
  // -------------------------------------------------------------------

  Result<ColumnBinding> ResolveColumn(Scope* scope, const std::string& table,
                                      const std::string& column) {
    for (Scope* s = scope; s != nullptr; s = s->parent) {
      std::vector<ColumnBinding> matches;
      for (const auto& entry : s->tables) {
        if (!table.empty() && !EqualsIgnoreCase(entry.alias, table)) continue;
        for (const auto& col : entry.columns) {
          if (EqualsIgnoreCase(col.name, column)) matches.push_back(col);
        }
      }
      if (matches.size() == 1) return matches[0];
      if (matches.size() > 1) {
        return Status::InvalidArgument("ambiguous column '" + column + "'");
      }
    }
    std::string qual = table.empty() ? column : table + "." + column;
    return Status::NotFound("column '" + qual + "' not found");
  }

  // -------------------------------------------------------------------
  // Scalar expression binding.
  // -------------------------------------------------------------------

  /// Context for binding one scalar expression. When `aggregates` is
  /// non-null, aggregate function calls are collected there and replaced
  /// with references to their output columns.
  struct ExprCtx {
    Scope* scope = nullptr;
    std::vector<AggregateItem>* aggregates = nullptr;
  };

  Result<ScalarExprPtr> BindScalar(const sql::Expr& e, ExprCtx* ctx) {
    using sql::ExprKind;
    switch (e.kind) {
      case ExprKind::kColumnRef: {
        const auto& c = static_cast<const sql::ColumnRefExpr&>(e);
        PDW_ASSIGN_OR_RETURN(ColumnBinding b,
                             ResolveColumn(ctx->scope, c.table, c.column));
        return MakeColumn(b);
      }
      case ExprKind::kLiteral:
        return MakeLiteral(static_cast<const sql::LiteralExpr&>(e).value);
      case ExprKind::kBinary: {
        const auto& b = static_cast<const sql::BinaryExpr&>(e);
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr l, BindScalar(*b.left, ctx));
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr r, BindScalar(*b.right, ctx));
        return MakeBinary(b.op, std::move(l), std::move(r));
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const sql::UnaryExpr&>(e);
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr v, BindScalar(*u.operand, ctx));
        TypeId t = u.op == sql::UnaryOp::kNot ? TypeId::kBool : v->type();
        return ScalarExprPtr(std::make_shared<UnaryExprB>(u.op, std::move(v), t));
      }
      case ExprKind::kIsNull: {
        const auto& n = static_cast<const sql::IsNullExpr&>(e);
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr v, BindScalar(*n.operand, ctx));
        return ScalarExprPtr(std::make_shared<IsNullExprB>(std::move(v),
                                                           n.negated));
      }
      case ExprKind::kBetween: {
        const auto& b = static_cast<const sql::BetweenExpr&>(e);
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr v, BindScalar(*b.value, ctx));
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr lo, BindScalar(*b.low, ctx));
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr hi, BindScalar(*b.high, ctx));
        ScalarExprPtr ge = MakeBinary(sql::BinaryOp::kGe, v, lo);
        ScalarExprPtr le = MakeBinary(sql::BinaryOp::kLe, v, hi);
        ScalarExprPtr both = MakeBinary(sql::BinaryOp::kAnd, ge, le);
        return b.negated ? MakeNot(both) : both;
      }
      case ExprKind::kInList: {
        const auto& in = static_cast<const sql::InListExpr&>(e);
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr v, BindScalar(*in.value, ctx));
        ScalarExprPtr disjunction;
        for (const auto& item : in.items) {
          PDW_ASSIGN_OR_RETURN(ScalarExprPtr rhs, BindScalar(*item, ctx));
          ScalarExprPtr eq = MakeBinary(sql::BinaryOp::kEq, v, rhs);
          disjunction = disjunction
                            ? MakeBinary(sql::BinaryOp::kOr, disjunction, eq)
                            : eq;
        }
        if (!disjunction) disjunction = MakeLiteral(Datum::Bool(false));
        return in.negated ? MakeNot(disjunction) : disjunction;
      }
      case ExprKind::kCase: {
        const auto& c = static_cast<const sql::CaseExpr&>(e);
        std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> whens;
        TypeId type = TypeId::kInvalid;
        for (const auto& [w, t] : c.whens) {
          PDW_ASSIGN_OR_RETURN(ScalarExprPtr bw, BindScalar(*w, ctx));
          PDW_ASSIGN_OR_RETURN(ScalarExprPtr bt, BindScalar(*t, ctx));
          if (type == TypeId::kInvalid) type = bt->type();
          whens.emplace_back(std::move(bw), std::move(bt));
        }
        ScalarExprPtr else_expr;
        if (c.else_expr) {
          PDW_ASSIGN_OR_RETURN(else_expr, BindScalar(*c.else_expr, ctx));
          if (type == TypeId::kInvalid) type = else_expr->type();
        }
        return ScalarExprPtr(std::make_shared<CaseExprB>(
            std::move(whens), std::move(else_expr), type));
      }
      case ExprKind::kCast: {
        const auto& c = static_cast<const sql::CastExpr&>(e);
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr v, BindScalar(*c.operand, ctx));
        return ScalarExprPtr(std::make_shared<CastExprB>(std::move(v),
                                                         c.target));
      }
      case ExprKind::kFunction: {
        const auto& f = static_cast<const sql::FunctionExpr&>(e);
        AggFunc agg;
        if (IsAggregateName(f.name, &agg)) {
          if (ctx->aggregates == nullptr) {
            return Status::InvalidArgument(
                "aggregate " + f.name + " not allowed in this context");
          }
          return BindAggregateCall(f, agg, ctx);
        }
        std::vector<ScalarExprPtr> args;
        for (const auto& a : f.args) {
          PDW_ASSIGN_OR_RETURN(ScalarExprPtr b, BindScalar(*a, ctx));
          args.push_back(std::move(b));
        }
        TypeId type = ScalarFunctionType(f.name, args);
        if (type == TypeId::kInvalid) {
          return Status::NotFound("unknown function '" + f.name + "'");
        }
        return ScalarExprPtr(std::make_shared<FunctionExprB>(
            f.name, std::move(args), type));
      }
      case ExprKind::kStar:
        return Status::InvalidArgument("'*' is only valid in a SELECT list");
      case ExprKind::kInSubquery:
      case ExprKind::kExistsSubquery:
      case ExprKind::kScalarSubquery:
        return Status::InvalidArgument(
            "sub-query is only supported in WHERE conjuncts");
    }
    return Status::Internal("unreachable expression kind");
  }

  static bool IsAggregateName(const std::string& name, AggFunc* out) {
    if (name == "COUNT") { *out = AggFunc::kCount; return true; }
    if (name == "SUM") { *out = AggFunc::kSum; return true; }
    if (name == "AVG") { *out = AggFunc::kAvg; return true; }
    if (name == "MIN") { *out = AggFunc::kMin; return true; }
    if (name == "MAX") { *out = AggFunc::kMax; return true; }
    return false;
  }

  static TypeId ScalarFunctionType(const std::string& name,
                                   const std::vector<ScalarExprPtr>& args) {
    if (name == "DATEADD") return TypeId::kDate;
    if (name == "ABS") return args.empty() ? TypeId::kDouble : args[0]->type();
    if (name == "SUBSTRING") return TypeId::kVarchar;
    return TypeId::kInvalid;
  }

  Result<ScalarExprPtr> BindAggregateCall(const sql::FunctionExpr& f,
                                          AggFunc func, ExprCtx* ctx) {
    // AVG(x) is rewritten to SUM(x)/COUNT(x) (guarded against empty input),
    // so every surviving aggregate is two-phase splittable for distributed
    // local/global aggregation. DISTINCT AVG keeps its distinct flag on
    // both halves.
    if (func == AggFunc::kAvg) {
      if (f.args.size() != 1) {
        return Status::InvalidArgument("AVG expects one argument");
      }
      PDW_ASSIGN_OR_RETURN(ScalarExprPtr sum_col,
                           BindSimpleAggregate(AggFunc::kSum, f, ctx));
      PDW_ASSIGN_OR_RETURN(ScalarExprPtr cnt_col,
                           BindSimpleAggregate(AggFunc::kCount, f, ctx));
      ScalarExprPtr zero = MakeLiteral(Datum::Int(0));
      ScalarExprPtr is_zero = MakeBinary(sql::BinaryOp::kEq, cnt_col, zero);
      ScalarExprPtr ratio = MakeBinary(sql::BinaryOp::kDiv, sum_col, cnt_col);
      std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> whens;
      whens.emplace_back(is_zero, MakeLiteral(Datum::Null()));
      return ScalarExprPtr(std::make_shared<CaseExprB>(
          std::move(whens), std::move(ratio), TypeId::kDouble));
    }
    return BindSimpleAggregate(func, f, ctx);
  }

  Result<ScalarExprPtr> BindSimpleAggregate(AggFunc func,
                                            const sql::FunctionExpr& f,
                                            ExprCtx* ctx) {
    AggregateItem item;
    item.distinct = f.distinct;
    if (f.star_arg || (func == AggFunc::kCount && f.args.empty())) {
      item.func = AggFunc::kCountStar;
    } else {
      if (f.args.size() != 1) {
        return Status::InvalidArgument(f.name + " expects one argument");
      }
      item.func = func;
      // Aggregate arguments must not themselves contain aggregates.
      ExprCtx arg_ctx;
      arg_ctx.scope = ctx->scope;
      PDW_ASSIGN_OR_RETURN(item.arg, BindScalar(*f.args[0], &arg_ctx));
    }
    TypeId out_type;
    switch (item.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        out_type = TypeId::kInt;
        break;
      case AggFunc::kAvg:
        out_type = TypeId::kDouble;
        break;
      default:
        out_type = item.arg->type();
    }
    // Reuse an identical aggregate already collected for this query block.
    for (const auto& existing : *ctx->aggregates) {
      if (existing.func == item.func && existing.distinct == item.distinct) {
        bool same_arg = (existing.arg == nullptr && item.arg == nullptr) ||
                        (existing.arg && item.arg &&
                         existing.arg->Equals(*item.arg));
        if (same_arg) return MakeColumn(existing.output);
      }
    }
    item.output = ColumnBinding{NewId(), ToLower(f.name), out_type};
    ctx->aggregates->push_back(item);
    return MakeColumn(item.output);
  }

  // -------------------------------------------------------------------
  // FROM clause.
  // -------------------------------------------------------------------

  Result<LogicalOpPtr> BindTableRef(const sql::TableRef& ref, Scope* scope) {
    switch (ref.kind) {
      case sql::TableRefKind::kBase: {
        const auto& base = static_cast<const sql::BaseTableRef&>(ref);
        PDW_ASSIGN_OR_RETURN(const TableDef* def,
                             catalog_.GetTable(base.table));
        std::vector<ColumnBinding> bindings;
        for (const auto& col : def->schema.columns()) {
          bindings.push_back(ColumnBinding{NewId(), col.name, col.type});
        }
        std::string alias = base.alias.empty() ? base.table : base.alias;
        scope->tables.push_back(TableScopeEntry{alias, bindings});
        return LogicalOpPtr(std::make_shared<LogicalGet>(
            def->name, alias, def, std::move(bindings)));
      }
      case sql::TableRefKind::kJoin: {
        const auto& join = static_cast<const sql::JoinTableRef&>(ref);
        PDW_ASSIGN_OR_RETURN(LogicalOpPtr left, BindTableRef(*join.left, scope));
        PDW_ASSIGN_OR_RETURN(LogicalOpPtr right,
                             BindTableRef(*join.right, scope));
        std::vector<ScalarExprPtr> conditions;
        if (join.condition) {
          ExprCtx ctx;
          ctx.scope = scope;
          PDW_ASSIGN_OR_RETURN(ScalarExprPtr cond,
                               BindScalar(*join.condition, &ctx));
          SplitConjuncts(cond, &conditions);
        }
        LogicalJoinType jt = LogicalJoinType::kInner;
        switch (join.join_type) {
          case sql::JoinType::kInner: jt = LogicalJoinType::kInner; break;
          case sql::JoinType::kLeft: jt = LogicalJoinType::kLeftOuter; break;
          case sql::JoinType::kCross: jt = LogicalJoinType::kCross; break;
        }
        return LogicalOpPtr(std::make_shared<LogicalJoin>(
            jt, std::move(conditions), std::move(left), std::move(right)));
      }
      case sql::TableRefKind::kDerived: {
        const auto& derived = static_cast<const sql::DerivedTableRef&>(ref);
        std::vector<std::string> names;
        int ignore_visible = -1;
        // Derived tables see the *outer* query's scope chain, not siblings.
        PDW_ASSIGN_OR_RETURN(
            LogicalOpPtr sub,
            BindSelect(*derived.subquery, scope->parent, &names,
                       &ignore_visible));
        std::vector<ColumnBinding> cols = sub->OutputBindings();
        for (size_t i = 0; i < cols.size() && i < names.size(); ++i) {
          cols[i].name = names[i];
        }
        scope->tables.push_back(TableScopeEntry{derived.alias, cols});
        return sub;
      }
    }
    return Status::Internal("unreachable table ref kind");
  }

  // -------------------------------------------------------------------
  // Sub-query unnesting (paper: "sub-query removal, sub-query into join").
  // -------------------------------------------------------------------

  /// Removes correlated conjuncts (those referencing columns not produced
  /// inside `op`'s subtree) from the subtree's filters and returns them.
  /// Columns the lifted conjuncts need are re-exposed through Projects and
  /// added to Aggregate group-by lists on the way up — the classic
  /// correlated-scalar-aggregate-to-join transformation.
  Result<LogicalOpPtr> Decorrelate(LogicalOpPtr op,
                                   const std::set<ColumnId>& local_ids,
                                   std::vector<ScalarExprPtr>* lifted) {
    switch (op->kind()) {
      case LogicalOpKind::kFilter: {
        const auto& f = static_cast<const LogicalFilter&>(*op);
        PDW_ASSIGN_OR_RETURN(
            LogicalOpPtr child,
            Decorrelate(op->children()[0], local_ids, lifted));
        std::vector<ScalarExprPtr> local;
        for (const auto& c : f.conjuncts()) {
          if (ExprCoveredBy(c, local_ids)) {
            local.push_back(c);
          } else {
            lifted->push_back(c);
          }
        }
        if (local.empty()) return child;
        return LogicalOpPtr(
            std::make_shared<LogicalFilter>(std::move(local), std::move(child)));
      }
      case LogicalOpKind::kProject: {
        const auto& p = static_cast<const LogicalProject&>(*op);
        PDW_ASSIGN_OR_RETURN(
            LogicalOpPtr child,
            Decorrelate(op->children()[0], local_ids, lifted));
        // Re-expose any local columns the lifted conjuncts reference.
        std::set<ColumnId> needed;
        for (const auto& c : *lifted) CollectColumns(c, &needed);
        std::vector<ProjectItem> items = p.items();
        std::vector<ColumnBinding> child_cols = child->OutputBindings();
        for (ColumnId id : needed) {
          int in_child = FindBinding(child_cols, id);
          if (in_child < 0) continue;  // outer column, not ours to expose
          bool already = false;
          for (const auto& item : items) {
            if (item.output.id == id) already = true;
          }
          if (!already) {
            const ColumnBinding& b = child_cols[static_cast<size_t>(in_child)];
            items.push_back(ProjectItem{MakeColumn(b), b});
          }
        }
        return LogicalOpPtr(
            std::make_shared<LogicalProject>(std::move(items), std::move(child)));
      }
      case LogicalOpKind::kAggregate: {
        const auto& a = static_cast<const LogicalAggregate&>(*op);
        PDW_ASSIGN_OR_RETURN(
            LogicalOpPtr child,
            Decorrelate(op->children()[0], local_ids, lifted));
        std::set<ColumnId> needed;
        for (const auto& c : *lifted) CollectColumns(c, &needed);
        std::vector<ColumnId> group_by = a.group_by();
        std::vector<ColumnBinding> child_cols = child->OutputBindings();
        for (ColumnId id : needed) {
          if (FindBinding(child_cols, id) < 0) continue;
          bool already = false;
          for (ColumnId g : group_by) {
            if (g == id) already = true;
          }
          if (!already) group_by.push_back(id);
        }
        return LogicalOpPtr(std::make_shared<LogicalAggregate>(
            std::move(group_by), a.aggregates(), std::move(child)));
      }
      case LogicalOpKind::kJoin: {
        const auto& j = static_cast<const LogicalJoin&>(*op);
        PDW_ASSIGN_OR_RETURN(
            LogicalOpPtr left, Decorrelate(op->children()[0], local_ids, lifted));
        PDW_ASSIGN_OR_RETURN(
            LogicalOpPtr right,
            Decorrelate(op->children()[1], local_ids, lifted));
        // The join's own conditions may be correlated too.
        std::vector<ScalarExprPtr> local;
        for (const auto& c : j.conditions()) {
          if (ExprCoveredBy(c, local_ids)) {
            local.push_back(c);
          } else {
            lifted->push_back(c);
          }
        }
        return LogicalOpPtr(std::make_shared<LogicalJoin>(
            j.join_type(), std::move(local), std::move(left), std::move(right)));
      }
      case LogicalOpKind::kGet:
      case LogicalOpKind::kEmpty:
      case LogicalOpKind::kUnionAll:
        return op;
      case LogicalOpKind::kSort:
      case LogicalOpKind::kLimit: {
        std::vector<ScalarExprPtr> below;
        PDW_ASSIGN_OR_RETURN(
            LogicalOpPtr child,
            Decorrelate(op->children()[0], local_ids, &below));
        if (!below.empty()) {
          return Status::NotImplemented(
              "correlated sub-query under ORDER BY/LIMIT");
        }
        return op->WithChildren({std::move(child)});
      }
    }
    return Status::Internal("unreachable op kind in Decorrelate");
  }

  /// Binds a sub-query appearing in a WHERE conjunct and attaches it to
  /// `input` as a semi/anti/inner join. `value` is the left operand for IN,
  /// `cmp_lhs`/`cmp_op` describe a scalar comparison context.
  Result<LogicalOpPtr> ApplySubqueryConjunct(LogicalOpPtr input, Scope* scope,
                                             const sql::Expr& conjunct,
                                             bool negated) {
    using sql::ExprKind;
    if (conjunct.kind == ExprKind::kInSubquery ||
        conjunct.kind == ExprKind::kExistsSubquery) {
      const auto& sq = static_cast<const sql::SubqueryExpr&>(conjunct);
      bool neg = negated != sq.negated;
      std::vector<std::string> names;
      int ignore_visible = -1;
      PDW_ASSIGN_OR_RETURN(LogicalOpPtr sub,
                           BindSelect(*sq.subquery, scope, &names,
                                      &ignore_visible));
      std::set<ColumnId> local;
      ProducedIds(*sub, &local);
      std::vector<ScalarExprPtr> lifted;
      PDW_ASSIGN_OR_RETURN(sub, Decorrelate(std::move(sub), local, &lifted));
      std::vector<ScalarExprPtr> conditions = std::move(lifted);
      if (conjunct.kind == ExprKind::kInSubquery) {
        ExprCtx ctx;
        ctx.scope = scope;
        PDW_ASSIGN_OR_RETURN(ScalarExprPtr lhs, BindScalar(*sq.value, &ctx));
        std::vector<ColumnBinding> sub_cols = sub->OutputBindings();
        if (sub_cols.empty()) {
          return Status::InvalidArgument("IN sub-query returns no columns");
        }
        conditions.push_back(MakeBinary(sql::BinaryOp::kEq, lhs,
                                        MakeColumn(sub_cols[0])));
      }
      LogicalJoinType jt = neg ? LogicalJoinType::kAnti : LogicalJoinType::kSemi;
      return LogicalOpPtr(std::make_shared<LogicalJoin>(
          jt, std::move(conditions), std::move(input), std::move(sub)));
    }
    return Status::Internal("not a sub-query conjunct");
  }

  /// Handles `lhs CMP (SELECT agg ...)` conjuncts by joining against the
  /// (possibly decorrelated, grouped) sub-query.
  Result<LogicalOpPtr> ApplyScalarSubqueryComparison(
      LogicalOpPtr input, Scope* scope, const sql::BinaryExpr& cmp) {
    const sql::Expr* scalar_side = nullptr;
    const sql::Expr* other_side = nullptr;
    bool subquery_on_right = false;
    if (cmp.right->kind == sql::ExprKind::kScalarSubquery) {
      scalar_side = cmp.right.get();
      other_side = cmp.left.get();
      subquery_on_right = true;
    } else {
      scalar_side = cmp.left.get();
      other_side = cmp.right.get();
    }
    const auto& sq = static_cast<const sql::SubqueryExpr&>(*scalar_side);
    std::vector<std::string> names;
    int ignore_visible = -1;
    PDW_ASSIGN_OR_RETURN(LogicalOpPtr sub,
                         BindSelect(*sq.subquery, scope, &names,
                                    &ignore_visible));
    std::set<ColumnId> local;
    ProducedIds(*sub, &local);
    std::vector<ScalarExprPtr> lifted;
    PDW_ASSIGN_OR_RETURN(sub, Decorrelate(std::move(sub), local, &lifted));

    // Guarantee single-row semantics: require an aggregate core.
    if (!HasScalarAggregateCore(*sub) && lifted.empty()) {
      return Status::NotImplemented(
          "scalar sub-query without aggregate is not supported");
    }
    std::vector<ColumnBinding> sub_cols = sub->OutputBindings();
    if (sub_cols.empty()) {
      return Status::InvalidArgument("scalar sub-query returns no columns");
    }
    ExprCtx ctx;
    ctx.scope = scope;
    PDW_ASSIGN_OR_RETURN(ScalarExprPtr outer_expr, BindScalar(*other_side, &ctx));
    ScalarExprPtr sub_col = MakeColumn(sub_cols[0]);
    ScalarExprPtr l = subquery_on_right ? outer_expr : sub_col;
    ScalarExprPtr r = subquery_on_right ? sub_col : outer_expr;
    std::vector<ScalarExprPtr> conditions = std::move(lifted);
    conditions.push_back(MakeBinary(cmp.op, std::move(l), std::move(r)));
    return LogicalOpPtr(std::make_shared<LogicalJoin>(
        LogicalJoinType::kInner, std::move(conditions), std::move(input),
        std::move(sub)));
  }

  static bool HasScalarAggregateCore(const LogicalOp& op) {
    if (op.kind() == LogicalOpKind::kAggregate) return true;
    if (op.children().size() == 1) {
      return HasScalarAggregateCore(*op.children()[0]);
    }
    return false;
  }

  static bool ContainsSubquery(const sql::Expr& e) {
    using sql::ExprKind;
    switch (e.kind) {
      case ExprKind::kInSubquery:
      case ExprKind::kExistsSubquery:
      case ExprKind::kScalarSubquery:
        return true;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const sql::BinaryExpr&>(e);
        return ContainsSubquery(*b.left) || ContainsSubquery(*b.right);
      }
      case ExprKind::kUnary:
        return ContainsSubquery(*static_cast<const sql::UnaryExpr&>(e).operand);
      default:
        return false;
    }
  }

  /// Splits a WHERE AST on AND, routes sub-query conjuncts through the
  /// unnesting paths, binds the rest, and wraps `input` accordingly.
  Result<LogicalOpPtr> BindWhere(const sql::Expr& where, LogicalOpPtr input,
                                 Scope* scope) {
    // AST-level conjunct split.
    std::vector<const sql::Expr*> conjuncts;
    CollectAstConjuncts(where, &conjuncts);

    std::vector<ScalarExprPtr> plain;
    for (const sql::Expr* c : conjuncts) {
      const sql::Expr* inner = c;
      bool negated = false;
      while (inner->kind == sql::ExprKind::kUnary &&
             static_cast<const sql::UnaryExpr&>(*inner).op ==
                 sql::UnaryOp::kNot) {
        negated = !negated;
        inner = static_cast<const sql::UnaryExpr&>(*inner).operand.get();
      }
      if (inner->kind == sql::ExprKind::kInSubquery ||
          inner->kind == sql::ExprKind::kExistsSubquery) {
        PDW_ASSIGN_OR_RETURN(
            input, ApplySubqueryConjunct(std::move(input), scope, *inner,
                                         negated));
        continue;
      }
      if (inner->kind == sql::ExprKind::kBinary) {
        const auto& b = static_cast<const sql::BinaryExpr&>(*inner);
        bool is_cmp = b.op == sql::BinaryOp::kEq || b.op == sql::BinaryOp::kNe ||
                      b.op == sql::BinaryOp::kLt || b.op == sql::BinaryOp::kLe ||
                      b.op == sql::BinaryOp::kGt || b.op == sql::BinaryOp::kGe;
        bool has_scalar_sub =
            b.left->kind == sql::ExprKind::kScalarSubquery ||
            b.right->kind == sql::ExprKind::kScalarSubquery;
        if (is_cmp && has_scalar_sub) {
          if (negated) {
            return Status::NotImplemented(
                "negated scalar sub-query comparison");
          }
          PDW_ASSIGN_OR_RETURN(
              input, ApplyScalarSubqueryComparison(std::move(input), scope, b));
          continue;
        }
      }
      if (ContainsSubquery(*inner)) {
        return Status::NotImplemented(
            "sub-query in unsupported predicate position: " + inner->ToString());
      }
      ExprCtx ctx;
      ctx.scope = scope;
      PDW_ASSIGN_OR_RETURN(ScalarExprPtr bound, BindScalar(*inner, &ctx));
      plain.push_back(negated ? MakeNot(bound) : bound);
    }
    if (plain.empty()) return input;
    return LogicalOpPtr(
        std::make_shared<LogicalFilter>(std::move(plain), std::move(input)));
  }

  static void CollectAstConjuncts(const sql::Expr& e,
                                  std::vector<const sql::Expr*>* out) {
    if (e.kind == sql::ExprKind::kBinary) {
      const auto& b = static_cast<const sql::BinaryExpr&>(e);
      if (b.op == sql::BinaryOp::kAnd) {
        CollectAstConjuncts(*b.left, out);
        CollectAstConjuncts(*b.right, out);
        return;
      }
    }
    out->push_back(&e);
  }

  // -------------------------------------------------------------------
  // SELECT statement binding.
  // -------------------------------------------------------------------

  /// Binds a UNION [ALL] chain: operands bind independently and align
  /// positionally; plain UNION adds a dedup aggregate; the last operand's
  /// ORDER BY / LIMIT apply to the whole union (resolved by output name).
  Result<LogicalOpPtr> BindUnion(const sql::SelectStatement& stmt,
                                 Scope* outer,
                                 std::vector<std::string>* output_names,
                                 int* visible_columns) {
    std::vector<LogicalOpPtr> children;
    std::vector<std::string> first_names;
    bool distinct_union = false;
    const sql::SelectStatement* last = &stmt;
    for (const sql::SelectStatement* cur = &stmt; cur != nullptr;
         cur = cur->union_next.get()) {
      std::vector<std::string> child_names;
      int ignore = -1;
      PDW_ASSIGN_OR_RETURN(
          LogicalOpPtr child,
          BindSelect(*cur, outer, &child_names, &ignore,
                     /*as_union_operand=*/true));
      if (children.empty()) first_names = child_names;
      if (cur->union_next != nullptr && cur->union_distinct) {
        distinct_union = true;
      }
      children.push_back(std::move(child));
      last = cur;
    }

    std::vector<ColumnBinding> first_out = children[0]->OutputBindings();
    size_t arity = first_out.size();
    std::vector<std::vector<ColumnId>> child_cols;
    for (const auto& child : children) {
      std::vector<ColumnBinding> out = child->OutputBindings();
      if (out.size() != arity) {
        return Status::InvalidArgument(
            "UNION operands have different column counts");
      }
      std::vector<ColumnId> ids;
      for (size_t p = 0; p < arity; ++p) {
        TypeId a = first_out[p].type;
        TypeId b = out[p].type;
        bool compatible = a == b || (IsNumericType(a) && IsNumericType(b));
        if (!compatible) {
          return Status::InvalidArgument(
              "UNION operand column types are incompatible at position " +
              std::to_string(p + 1));
        }
        ids.push_back(out[p].id);
      }
      child_cols.push_back(std::move(ids));
    }
    std::vector<ColumnBinding> outputs;
    for (size_t p = 0; p < arity; ++p) {
      std::string name = p < first_names.size() ? first_names[p]
                                                : first_out[p].name;
      outputs.push_back(ColumnBinding{NewId(), name, first_out[p].type});
    }
    *output_names = first_names;

    LogicalOpPtr plan = std::make_shared<LogicalUnionAll>(
        outputs, std::move(child_cols), std::move(children));
    if (distinct_union) {
      std::vector<ColumnId> all_ids;
      for (const auto& b : outputs) all_ids.push_back(b.id);
      plan = std::make_shared<LogicalAggregate>(
          all_ids, std::vector<AggregateItem>{}, std::move(plan));
    }
    // Whole-union ORDER BY / LIMIT from the last operand.
    if (!last->order_by.empty()) {
      std::vector<SortItem> sort_items;
      for (const auto& ob : last->order_by) {
        if (ob.expr->kind != sql::ExprKind::kColumnRef) {
          return Status::NotImplemented(
              "UNION ORDER BY must name an output column");
        }
        const auto& cr = static_cast<const sql::ColumnRefExpr&>(*ob.expr);
        ColumnId resolved = kInvalidColumnId;
        for (const auto& b : outputs) {
          if (EqualsIgnoreCase(b.name, cr.column)) resolved = b.id;
        }
        if (resolved == kInvalidColumnId) {
          return Status::InvalidArgument(
              "UNION ORDER BY column '" + cr.column + "' not in output");
        }
        sort_items.push_back(SortItem{resolved, ob.ascending});
      }
      plan = std::make_shared<LogicalSort>(std::move(sort_items),
                                           std::move(plan));
    }
    if (last->limit >= 0) {
      plan = std::make_shared<LogicalLimit>(last->limit, std::move(plan));
    }
    (void)visible_columns;
    return plan;
  }

  Result<LogicalOpPtr> BindSelect(const sql::SelectStatement& stmt,
                                  Scope* outer,
                                  std::vector<std::string>* output_names,
                                  int* visible_columns,
                                  bool as_union_operand = false) {
    if (!as_union_operand && stmt.union_next != nullptr) {
      return BindUnion(stmt, outer, output_names, visible_columns);
    }
    Scope scope;
    scope.parent = outer;

    if (stmt.from.empty()) {
      return Status::NotImplemented("SELECT without FROM");
    }
    // FROM: comma entries become cross joins (normalizer converts to inner
    // joins once WHERE equi-conjuncts are pushed into them).
    LogicalOpPtr plan;
    for (const auto& tr : stmt.from) {
      PDW_ASSIGN_OR_RETURN(LogicalOpPtr t, BindTableRef(*tr, &scope));
      plan = plan ? LogicalOpPtr(std::make_shared<LogicalJoin>(
                        LogicalJoinType::kCross, std::vector<ScalarExprPtr>{},
                        std::move(plan), std::move(t)))
                  : std::move(t);
    }

    if (stmt.where) {
      PDW_ASSIGN_OR_RETURN(plan, BindWhere(*stmt.where, std::move(plan), &scope));
    }

    // Group-by expressions: bare columns stay columns, computed expressions
    // go through a pre-projection.
    std::vector<ColumnId> group_ids;
    std::vector<ProjectItem> pre_projection;
    std::vector<std::pair<ScalarExprPtr, ColumnBinding>> group_exprs;
    for (const auto& g : stmt.group_by) {
      ExprCtx ctx;
      ctx.scope = &scope;
      PDW_ASSIGN_OR_RETURN(ScalarExprPtr bound, BindScalar(*g, &ctx));
      if (bound->kind() == ScalarKind::kColumn) {
        const auto& col = static_cast<const ColumnExpr&>(*bound);
        group_ids.push_back(col.id());
        group_exprs.emplace_back(bound,
                                 ColumnBinding{col.id(), col.name(), col.type()});
      } else {
        ColumnId gid = NewId();
        ColumnBinding out{gid, "gexpr" + std::to_string(gid), bound->type()};
        pre_projection.push_back(ProjectItem{bound, out});
        group_ids.push_back(out.id);
        group_exprs.emplace_back(bound, out);
      }
    }

    // SELECT list with aggregate collection. Star expansion first.
    std::vector<AggregateItem> aggregates;
    std::vector<ProjectItem> select_items;
    output_names->clear();
    for (const auto& item : stmt.items) {
      if (item.expr->kind == sql::ExprKind::kStar) {
        const auto& star = static_cast<const sql::StarExpr&>(*item.expr);
        for (const auto& entry : scope.tables) {
          if (!star.table.empty() &&
              !EqualsIgnoreCase(entry.alias, star.table)) {
            continue;
          }
          for (const auto& col : entry.columns) {
            select_items.push_back(ProjectItem{MakeColumn(col), col});
            output_names->push_back(col.name);
          }
        }
        continue;
      }
      ExprCtx ctx;
      ctx.scope = &scope;
      ctx.aggregates = &aggregates;
      PDW_ASSIGN_OR_RETURN(ScalarExprPtr bound, BindScalar(*item.expr, &ctx));
      std::string name = item.alias;
      if (name.empty()) {
        if (bound->kind() == ScalarKind::kColumn) {
          name = static_cast<const ColumnExpr&>(*bound).name();
        } else {
          name = "col" + std::to_string(select_items.size() + 1);
        }
      }
      ColumnBinding out{NewId(), name, bound->type()};
      select_items.push_back(ProjectItem{bound, out});
      output_names->push_back(name);
    }

    // HAVING (may add aggregates).
    ScalarExprPtr having;
    if (stmt.having) {
      ExprCtx ctx;
      ctx.scope = &scope;
      ctx.aggregates = &aggregates;
      PDW_ASSIGN_OR_RETURN(having, BindScalar(*stmt.having, &ctx));
    }

    bool has_agg = !aggregates.empty() || !group_ids.empty();
    if (has_agg) {
      if (!pre_projection.empty()) {
        // Pre-projection must also pass through every column the aggregate
        // arguments and group-by need.
        std::set<ColumnId> needed;
        for (const auto& a : aggregates) CollectColumns(a.arg, &needed);
        std::vector<ColumnBinding> child_cols = plan->OutputBindings();
        for (ColumnId id : needed) {
          int pos = FindBinding(child_cols, id);
          if (pos < 0) continue;
          bool present = false;
          for (const auto& p : pre_projection) {
            if (p.output.id == id) present = true;
          }
          if (!present) {
            const auto& b = child_cols[static_cast<size_t>(pos)];
            pre_projection.push_back(ProjectItem{MakeColumn(b), b});
          }
        }
        plan = std::make_shared<LogicalProject>(pre_projection, std::move(plan));
      }
      plan = std::make_shared<LogicalAggregate>(group_ids, aggregates,
                                                std::move(plan));
      // Substitute computed group expressions in SELECT/HAVING with their
      // group columns, then validate everything resolves post-aggregate.
      std::set<ColumnId> available;
      for (const auto& b : plan->OutputBindings()) available.insert(b.id);
      for (auto& item : select_items) {
        for (const auto& [gexpr, gcol] : group_exprs) {
          if (gexpr->kind() != ScalarKind::kColumn) {
            item.expr = ReplaceSubtree(item.expr, gexpr, MakeColumn(gcol));
          }
        }
        if (!ExprCoveredBy(item.expr, available)) {
          return Status::InvalidArgument(
              "SELECT item '" + item.output.name +
              "' references columns that are neither grouped nor aggregated");
        }
      }
      if (having && !ExprCoveredBy(having, available)) {
        return Status::InvalidArgument(
            "HAVING references columns that are neither grouped nor aggregated");
      }
      if (having) {
        std::vector<ScalarExprPtr> conjuncts;
        SplitConjuncts(having, &conjuncts);
        plan = std::make_shared<LogicalFilter>(std::move(conjuncts),
                                               std::move(plan));
      }
    } else if (having) {
      return Status::InvalidArgument("HAVING without GROUP BY or aggregates");
    }

    plan = std::make_shared<LogicalProject>(select_items, std::move(plan));

    if (stmt.distinct) {
      std::vector<ColumnId> all_ids;
      for (const auto& b : plan->OutputBindings()) all_ids.push_back(b.id);
      plan = std::make_shared<LogicalAggregate>(
          all_ids, std::vector<AggregateItem>{}, std::move(plan));
    }

    // ORDER BY: keys resolve by select alias, by equality with a select
    // expression, by a surviving output column, or — SQL-style — by an
    // input column not in the SELECT list, which rides along as a hidden
    // projection and is trimmed after the sort.
    if (!stmt.order_by.empty() && !as_union_operand) {
      std::vector<SortItem> sort_items;
      size_t visible_count = select_items.size();
      for (const auto& ob : stmt.order_by) {
        std::vector<ColumnBinding> out_cols = plan->OutputBindings();
        SortItem si;
        si.ascending = ob.ascending;
        ColumnId resolved = kInvalidColumnId;
        // Bare identifier matching a select alias.
        if (ob.expr->kind == sql::ExprKind::kColumnRef) {
          const auto& cr = static_cast<const sql::ColumnRefExpr&>(*ob.expr);
          if (cr.table.empty()) {
            for (size_t i = 0; i < select_items.size(); ++i) {
              if (EqualsIgnoreCase(select_items[i].output.name, cr.column)) {
                resolved = select_items[i].output.id;
                break;
              }
            }
          }
        }
        ScalarExprPtr bound;
        if (resolved == kInvalidColumnId) {
          ExprCtx ctx;
          ctx.scope = &scope;
          ctx.aggregates = nullptr;
          auto bound_or = BindScalar(*ob.expr, &ctx);
          if (bound_or.ok()) {
            bound = std::move(bound_or).ValueOrDie();
            // Equal to a select expression?
            for (const auto& item : select_items) {
              if (item.expr->Equals(*bound)) {
                resolved = item.output.id;
                break;
              }
            }
            if (resolved == kInvalidColumnId &&
                bound->kind() == ScalarKind::kColumn) {
              ColumnId id = static_cast<const ColumnExpr&>(*bound).id();
              if (FindBinding(out_cols, id) >= 0) resolved = id;
            }
          }
        }
        if (resolved == kInvalidColumnId && bound != nullptr && !has_agg &&
            !stmt.distinct && plan->kind() == LogicalOpKind::kProject) {
          // Hidden sort column: extend the projection.
          const auto& proj = static_cast<const LogicalProject&>(*plan);
          std::vector<ProjectItem> items = proj.items();
          ColumnId hid = NewId();
          ColumnBinding hidden{hid, "sortkey" + std::to_string(hid),
                               bound->type()};
          items.push_back(ProjectItem{bound, hidden});
          plan = std::make_shared<LogicalProject>(std::move(items),
                                                  plan->children()[0]);
          resolved = hid;
        }
        if (resolved == kInvalidColumnId) {
          return Status::InvalidArgument(
              "ORDER BY expression must appear in the SELECT list or "
              "reference an input column");
        }
        si.column = resolved;
        sort_items.push_back(si);
      }
      plan = std::make_shared<LogicalSort>(std::move(sort_items),
                                           std::move(plan));
      // Hidden sort columns stay in the plan so distributed merge can use
      // them; the result assembly trims rows to `visible_columns`.
      if (plan->OutputBindings().size() > visible_count) {
        *visible_columns = static_cast<int>(visible_count);
      }
    }

    if (stmt.limit >= 0 && !as_union_operand) {
      plan = std::make_shared<LogicalLimit>(stmt.limit, std::move(plan));
    }
    return plan;
  }

  const Catalog& catalog_;
  ColumnId* next_id_;
};

Result<BoundQuery> Binder::BindSelect(const sql::SelectStatement& stmt) {
  BinderImpl impl(catalog_, &next_id_);
  return impl.BindTopLevel(stmt);
}

}  // namespace pdw
