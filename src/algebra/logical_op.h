#ifndef PDW_ALGEBRA_LOGICAL_OP_H_
#define PDW_ALGEBRA_LOGICAL_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/scalar_expr.h"
#include "catalog/catalog.h"

namespace pdw {

enum class LogicalOpKind {
  kGet,        ///< Base table access.
  kEmpty,      ///< Zero-row relation (contradiction detection result).
  kFilter,     ///< Conjunctive selection.
  kProject,    ///< Scalar computation / column pruning.
  kJoin,       ///< All join flavours incl. semi/anti from unnesting.
  kAggregate,  ///< GROUP BY + aggregate functions (also DISTINCT).
  kSort,       ///< ORDER BY (meaningful at the plan root).
  kLimit,      ///< LIMIT / TOP.
  kUnionAll,   ///< Bag union; operands align positionally.
};

enum class LogicalJoinType { kInner, kLeftOuter, kSemi, kAnti, kCross };

const char* LogicalJoinTypeToString(LogicalJoinType t);

enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc f);

/// One aggregate computation: FUNC(arg) AS output. `arg` is null for
/// COUNT(*).
struct AggregateItem {
  AggFunc func = AggFunc::kCountStar;
  ScalarExprPtr arg;
  bool distinct = false;
  ColumnBinding output;
};

/// One projection: expr AS output.
struct ProjectItem {
  ScalarExprPtr expr;
  ColumnBinding output;
};

struct SortItem {
  ColumnId column = kInvalidColumnId;
  bool ascending = true;
};

class LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

/// Base class of the logical algebra. Trees are built by the binder,
/// rewritten by the normalizer, and then copied into the MEMO (where child
/// pointers are replaced by group references; PayloadHash/PayloadEquals
/// deliberately exclude children for that reason).
class LogicalOp {
 public:
  virtual ~LogicalOp() = default;

  LogicalOpKind kind() const { return kind_; }
  const std::vector<LogicalOpPtr>& children() const { return children_; }
  std::vector<LogicalOpPtr>* mutable_children() { return &children_; }

  /// Output columns given the outputs of the children (order matters).
  virtual std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>& child_outputs) const = 0;

  /// Output columns derived recursively from the attached children.
  std::vector<ColumnBinding> OutputBindings() const;

  /// One-line description of the operator (payload only).
  virtual std::string ToString() const = 0;

  /// Hash/equality over the operator payload, excluding children (the MEMO
  /// supplies child group identity separately).
  virtual size_t PayloadHash() const = 0;
  virtual bool PayloadEquals(const LogicalOp& other) const = 0;

  /// Shallow-copies the payload with new children attached.
  virtual LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const = 0;

 protected:
  LogicalOp(LogicalOpKind kind, std::vector<LogicalOpPtr> children)
      : kind_(kind), children_(std::move(children)) {}

 private:
  LogicalOpKind kind_;
  std::vector<LogicalOpPtr> children_;
};

/// Renders an indented multi-line tree (EXPLAIN-style).
std::string LogicalTreeToString(const LogicalOp& root);

class LogicalGet : public LogicalOp {
 public:
  LogicalGet(std::string table_name, std::string alias,
             const TableDef* table, std::vector<ColumnBinding> bindings)
      : LogicalOp(LogicalOpKind::kGet, {}), table_name_(std::move(table_name)),
        alias_(std::move(alias)), table_(table), bindings_(std::move(bindings)) {}

  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }
  const TableDef* table() const { return table_; }
  const std::vector<ColumnBinding>& bindings() const { return bindings_; }

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>&) const override {
    return bindings_;
  }
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  std::string table_name_;
  std::string alias_;
  const TableDef* table_;
  std::vector<ColumnBinding> bindings_;
};

class LogicalEmpty : public LogicalOp {
 public:
  explicit LogicalEmpty(std::vector<ColumnBinding> bindings)
      : LogicalOp(LogicalOpKind::kEmpty, {}), bindings_(std::move(bindings)) {}

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>&) const override {
    return bindings_;
  }
  std::string ToString() const override { return "Empty"; }
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ColumnBinding> bindings_;
};

class LogicalFilter : public LogicalOp {
 public:
  LogicalFilter(std::vector<ScalarExprPtr> conjuncts, LogicalOpPtr child)
      : LogicalOp(LogicalOpKind::kFilter, {std::move(child)}),
        conjuncts_(std::move(conjuncts)) {}

  const std::vector<ScalarExprPtr>& conjuncts() const { return conjuncts_; }

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>& child_outputs) const override {
    return child_outputs[0];
  }
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ScalarExprPtr> conjuncts_;
};

class LogicalProject : public LogicalOp {
 public:
  LogicalProject(std::vector<ProjectItem> items, LogicalOpPtr child)
      : LogicalOp(LogicalOpKind::kProject, {std::move(child)}),
        items_(std::move(items)) {}

  const std::vector<ProjectItem>& items() const { return items_; }

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>&) const override;
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ProjectItem> items_;
};

class LogicalJoin : public LogicalOp {
 public:
  LogicalJoin(LogicalJoinType type, std::vector<ScalarExprPtr> conditions,
              LogicalOpPtr left, LogicalOpPtr right)
      : LogicalOp(LogicalOpKind::kJoin, {std::move(left), std::move(right)}),
        join_type_(type), conditions_(std::move(conditions)) {}

  LogicalJoinType join_type() const { return join_type_; }
  const std::vector<ScalarExprPtr>& conditions() const { return conditions_; }

  /// Equality pairs (left_col, right_col) among `conditions` whose sides
  /// split cleanly across the given child outputs.
  std::vector<std::pair<ColumnId, ColumnId>> EquiKeys(
      const std::vector<ColumnBinding>& left_cols,
      const std::vector<ColumnBinding>& right_cols) const;

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>& child_outputs) const override;
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  LogicalJoinType join_type_;
  std::vector<ScalarExprPtr> conditions_;
};

class LogicalAggregate : public LogicalOp {
 public:
  LogicalAggregate(std::vector<ColumnId> group_by,
                   std::vector<AggregateItem> aggregates, LogicalOpPtr child)
      : LogicalOp(LogicalOpKind::kAggregate, {std::move(child)}),
        group_by_(std::move(group_by)), aggregates_(std::move(aggregates)) {}

  const std::vector<ColumnId>& group_by() const { return group_by_; }
  const std::vector<AggregateItem>& aggregates() const { return aggregates_; }

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>& child_outputs) const override;
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ColumnId> group_by_;
  std::vector<AggregateItem> aggregates_;
};

class LogicalSort : public LogicalOp {
 public:
  LogicalSort(std::vector<SortItem> items, LogicalOpPtr child)
      : LogicalOp(LogicalOpKind::kSort, {std::move(child)}),
        items_(std::move(items)) {}

  const std::vector<SortItem>& items() const { return items_; }

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>& child_outputs) const override {
    return child_outputs[0];
  }
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<SortItem> items_;
};

/// Bag union of n >= 2 inputs. The union's output columns are fresh
/// bindings; `child_columns()[i][p]` names the column of child i that
/// feeds output position p (children expose id-addressed outputs, so the
/// positional wiring is explicit).
class LogicalUnionAll : public LogicalOp {
 public:
  LogicalUnionAll(std::vector<ColumnBinding> outputs,
                  std::vector<std::vector<ColumnId>> child_columns,
                  std::vector<LogicalOpPtr> children)
      : LogicalOp(LogicalOpKind::kUnionAll, std::move(children)),
        outputs_(std::move(outputs)), child_columns_(std::move(child_columns)) {}

  const std::vector<ColumnBinding>& outputs() const { return outputs_; }
  const std::vector<std::vector<ColumnId>>& child_columns() const {
    return child_columns_;
  }

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>&) const override {
    return outputs_;
  }
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ColumnBinding> outputs_;
  std::vector<std::vector<ColumnId>> child_columns_;
};

class LogicalLimit : public LogicalOp {
 public:
  LogicalLimit(int64_t limit, LogicalOpPtr child)
      : LogicalOp(LogicalOpKind::kLimit, {std::move(child)}), limit_(limit) {}

  int64_t limit() const { return limit_; }

  std::vector<ColumnBinding> ComputeOutput(
      const std::vector<std::vector<ColumnBinding>>& child_outputs) const override {
    return child_outputs[0];
  }
  std::string ToString() const override;
  size_t PayloadHash() const override;
  bool PayloadEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithChildren(std::vector<LogicalOpPtr> children) const override;

 private:
  int64_t limit_;
};

}  // namespace pdw

#endif  // PDW_ALGEBRA_LOGICAL_OP_H_
