#ifndef PDW_ALGEBRA_BINDER_H_
#define PDW_ALGEBRA_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/logical_op.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace pdw {

/// A bound query: the logical operator tree plus client-facing column names.
struct BoundQuery {
  LogicalOpPtr root;
  std::vector<std::string> output_names;
  /// Number of client-visible leading output columns; -1 = all. Hidden
  /// trailing columns carry ORDER BY keys that are not in the SELECT list
  /// through the distributed merge, then get trimmed.
  int visible_columns = -1;
};

/// Resolves names in a parsed SELECT against the catalog and produces a
/// logical operator tree (the "algebrizer" role in the paper's Fig. 2).
///
/// Sub-queries are unnested during binding, which covers the paper's
/// "sub-query removal / sub-query into join transformation" repertoire:
///  * [NOT] IN (SELECT ...)  -> semi/anti join, correlated equality
///    conjuncts lifted into the join condition;
///  * [NOT] EXISTS (SELECT ...) -> semi/anti join;
///  * scalar aggregate sub-queries in comparisons -> join against a
///    GROUP BY on the correlation columns (SQL's empty-group NULL semantics
///    coincide with join semantics for comparison predicates).
/// NOT IN is translated as an anti join, which assumes the sub-query column
/// is non-NULL (true throughout TPC-H); see README for the caveat.
class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  Result<BoundQuery> BindSelect(const sql::SelectStatement& stmt);

  /// Number of column ids handed out so far; the serial optimizer continues
  /// from here when synthesizing columns.
  ColumnId next_column_id() const { return next_id_; }

 private:
  friend class BinderImpl;

  const Catalog& catalog_;
  ColumnId next_id_ = 1;
};

}  // namespace pdw

#endif  // PDW_ALGEBRA_BINDER_H_
