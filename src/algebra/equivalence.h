#ifndef PDW_ALGEBRA_EQUIVALENCE_H_
#define PDW_ALGEBRA_EQUIVALENCE_H_

#include <map>
#include <set>
#include <vector>

#include "algebra/column.h"

namespace pdw {

/// Union-find over ColumnIds, built from equi-join predicates. Used for
/// join-transitivity closure in the normalizer and for distribution
/// compatibility in the PDW optimizer (a stream hash-distributed on
/// o_custkey satisfies a requirement on c_custkey once the join predicate
/// equates them — paper §3.2).
class ColumnEquivalence {
 public:
  /// Records a = b.
  void AddEquality(ColumnId a, ColumnId b);

  /// Representative id of the class containing `id` (id itself if never
  /// seen). Representatives are stable within one instance.
  ColumnId Find(ColumnId id) const;

  bool AreEquivalent(ColumnId a, ColumnId b) const;

  /// All members of the class containing `id` (including `id`).
  std::set<ColumnId> ClassOf(ColumnId id) const;

  /// All equivalence classes with at least two members.
  std::vector<std::set<ColumnId>> NonTrivialClasses() const;

 private:
  /// Read-only root walk. Deliberately no path compression: const lookups
  /// run concurrently from the parallel memo expansion, so they must not
  /// mutate shared state. AddEquality (single-threaded build phase)
  /// compresses instead.
  ColumnId FindRoot(ColumnId id) const;
  /// Root walk with path compression, for use during construction only.
  ColumnId FindRootCompress(ColumnId id);

  std::map<ColumnId, ColumnId> parent_;
};

}  // namespace pdw

#endif  // PDW_ALGEBRA_EQUIVALENCE_H_
