#ifndef PDW_ALGEBRA_COLUMN_H_
#define PDW_ALGEBRA_COLUMN_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace pdw {

/// Stable identity of a column instance within one query compilation. The
/// binder assigns ids sequentially; expressions reference ids rather than
/// ordinals, so reordering joins never requires rebinding. Physical plan
/// construction resolves ids to row ordinals at the end.
using ColumnId = int32_t;

inline constexpr ColumnId kInvalidColumnId = -1;

/// A column exposed by an operator: identity plus display metadata.
struct ColumnBinding {
  ColumnId id = kInvalidColumnId;
  std::string name;  ///< Unqualified display name (for EXPLAIN / SQL gen).
  TypeId type = TypeId::kInvalid;

  bool operator==(const ColumnBinding& other) const { return id == other.id; }
};

/// Returns the position of `id` in `cols`, or -1.
int FindBinding(const std::vector<ColumnBinding>& cols, ColumnId id);

}  // namespace pdw

#endif  // PDW_ALGEBRA_COLUMN_H_
