#include "algebra/equivalence.h"

namespace pdw {

ColumnId ColumnEquivalence::FindRoot(ColumnId id) const {
  for (;;) {
    auto it = parent_.find(id);
    if (it == parent_.end() || it->second == id) return id;
    id = it->second;
  }
}

ColumnId ColumnEquivalence::FindRootCompress(ColumnId id) {
  ColumnId root = FindRoot(id);
  while (id != root) {
    ColumnId next = parent_[id];
    parent_[id] = root;
    id = next;
  }
  return root;
}

void ColumnEquivalence::AddEquality(ColumnId a, ColumnId b) {
  if (parent_.find(a) == parent_.end()) parent_[a] = a;
  if (parent_.find(b) == parent_.end()) parent_[b] = b;
  ColumnId ra = FindRootCompress(a);
  ColumnId rb = FindRootCompress(b);
  if (ra != rb) {
    // Smaller id wins as representative for determinism.
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
  }
}

ColumnId ColumnEquivalence::Find(ColumnId id) const { return FindRoot(id); }

bool ColumnEquivalence::AreEquivalent(ColumnId a, ColumnId b) const {
  return FindRoot(a) == FindRoot(b);
}

std::set<ColumnId> ColumnEquivalence::ClassOf(ColumnId id) const {
  std::set<ColumnId> out{id};
  ColumnId root = FindRoot(id);
  for (const auto& [member, parent] : parent_) {
    if (FindRoot(member) == root) out.insert(member);
  }
  return out;
}

std::vector<std::set<ColumnId>> ColumnEquivalence::NonTrivialClasses() const {
  std::map<ColumnId, std::set<ColumnId>> classes;
  for (const auto& [member, parent] : parent_) {
    classes[FindRoot(member)].insert(member);
  }
  std::vector<std::set<ColumnId>> out;
  for (auto& [root, members] : classes) {
    if (members.size() >= 2) out.push_back(std::move(members));
  }
  return out;
}

}  // namespace pdw
