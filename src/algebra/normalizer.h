#ifndef PDW_ALGEBRA_NORMALIZER_H_
#define PDW_ALGEBRA_NORMALIZER_H_

#include "algebra/logical_op.h"
#include "common/result.h"

namespace pdw {

/// Options controlling individual normalization rules; all on by default.
/// Benches switch rules off to measure their effect.
struct NormalizerOptions {
  bool fold_constants = true;
  bool push_predicates = true;
  bool transitive_closure = true;       ///< Join transitivity closure (§4).
  bool detect_contradictions = true;    ///< Paper §5 "contradiction detection".
  bool eliminate_redundant_joins = true;///< Paper §5 "redundant join elimination".
  bool prune_columns = true;
};

/// Simplifies a bound logical tree into the normalized form the optimizer
/// expects (paper Fig. 2, step 2a). The passes:
///   1. constant folding (and FALSE-filter short-circuit);
///   2. predicate pushdown — merges filters, converts cross joins to inner
///      joins, simplifies null-rejected left outer joins to inner joins,
///      pushes single-side join conditions into the inputs;
///   3. join transitivity closure — derives a=c from a=b AND b=c and
///      propagates column=constant through equivalence classes;
///   4. contradiction detection — empty-range predicates collapse subtrees
///      to a zero-row relation, which then propagates through joins;
///   5. redundant join elimination — drops an unreferenced, unfiltered
///      primary-key side of a FK join;
///   6. column pruning — trims unused Get bindings and Project items (this
///      is what keeps DMS row widths minimal).
Result<LogicalOpPtr> Normalize(LogicalOpPtr root,
                               const NormalizerOptions& options = {});

}  // namespace pdw

#endif  // PDW_ALGEBRA_NORMALIZER_H_
