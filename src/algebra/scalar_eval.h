#ifndef PDW_ALGEBRA_SCALAR_EVAL_H_
#define PDW_ALGEBRA_SCALAR_EVAL_H_

#include <map>

#include "algebra/scalar_expr.h"
#include "common/result.h"
#include "common/row.h"

namespace pdw {

/// Maps a ColumnId to its ordinal in the row being evaluated.
using ColumnOrdinalMap = std::map<ColumnId, int>;

/// Evaluates a bound scalar expression against a row, with SQL semantics:
/// three-valued logic for comparisons and AND/OR/NOT (NULL operands yield
/// NULL where SQL requires it). Boolean NULL is represented as a NULL Datum.
Result<Datum> EvalScalar(const ScalarExpr& expr, const Row& row,
                         const ColumnOrdinalMap& ordinals);

/// True if `expr` references no columns (safe to fold at compile time).
bool IsConstantExpr(const ScalarExprPtr& expr);

/// Evaluates a constant expression (no column references).
Result<Datum> EvalConstant(const ScalarExpr& expr);

/// Convenience: evaluates a predicate; returns true only for TRUE
/// (NULL and FALSE both reject the row).
Result<bool> EvalPredicate(const ScalarExpr& expr, const Row& row,
                           const ColumnOrdinalMap& ordinals);

// --- value-level operator semantics ---
//
// The single source of truth for SQL operator behaviour on already-evaluated
// operands (NULL propagation, Kleene AND/OR, date arithmetic, LIKE,
// div/mod-by-zero errors). Both the row interpreter above and the batch
// engine's compiled expression programs call these, so the two engines
// cannot drift apart on value semantics.

/// Any binary operator: arithmetic, comparison, LIKE and AND/OR.
Result<Datum> EvalBinaryOp(sql::BinaryOp op, const Datum& l, const Datum& r);

/// Unary NOT / numeric negation (NULL operand yields NULL).
Result<Datum> EvalUnaryOp(sql::UnaryOp op, const Datum& v);

/// Scalar function (DATEADD, ABS, SUBSTRING) applied to evaluated args.
Result<Datum> EvalFunctionOp(const std::string& name,
                             const std::vector<Datum>& args);

}  // namespace pdw

#endif  // PDW_ALGEBRA_SCALAR_EVAL_H_
