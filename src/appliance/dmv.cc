#include "appliance/dmv.h"

#include <string>
#include <utility>
#include <vector>

#include "common/datum.h"
#include "obs/metrics.h"

namespace pdw {

namespace {

/// Milliseconds between two registry timestamps; `end < 0` means the phase
/// is still open, so it is measured against `now` instead. Returns null
/// when the phase never started.
Datum PhaseMs(double start, double end, double now) {
  if (start < 0) return Datum::Null();
  double stop = end < 0 ? now : end;
  return Datum::Double((stop - start) * 1e3);
}

TableDef ViewDef(std::string name, std::vector<ColumnDef> columns) {
  TableDef def;
  def.name = std::move(name);
  def.schema = Schema(std::move(columns));
  return def;
}

Status InstallExecRequests(LocalEngine* engine,
                           const obs::RequestRegistry* requests) {
  TableDef def = ViewDef("sys.dm_pdw_exec_requests",
                         {{"request_id", TypeId::kInt, false},
                          {"session_id", TypeId::kInt, false},
                          {"status", TypeId::kVarchar, false},
                          {"sql_text", TypeId::kVarchar, false},
                          {"engine", TypeId::kVarchar, true},
                          {"resource_class", TypeId::kVarchar, true},
                          {"cache_hit", TypeId::kBool, false},
                          {"result_cache_hit", TypeId::kBool, false},
                          {"submit_time_s", TypeId::kDouble, false},
                          {"compile_ms", TypeId::kDouble, true},
                          {"queue_ms", TypeId::kDouble, true},
                          {"exec_ms", TypeId::kDouble, true},
                          {"total_ms", TypeId::kDouble, false},
                          {"current_step", TypeId::kInt, false},
                          {"total_steps", TypeId::kInt, false},
                          {"retries", TypeId::kInt, false},
                          {"rows_moved", TypeId::kDouble, false},
                          {"bytes_moved", TypeId::kDouble, false},
                          {"error_text", TypeId::kVarchar, true},
                          // Optimizer observability (new columns appended so
                          // positional readers of the older shape keep working).
                          {"bind_ms", TypeId::kDouble, true},
                          {"normalize_ms", TypeId::kDouble, true},
                          {"memo_ms", TypeId::kDouble, true},
                          {"enumerate_ms", TypeId::kDouble, true},
                          {"memo_groups", TypeId::kDouble, false},
                          {"memo_exprs", TypeId::kDouble, false},
                          {"budget_exhausted", TypeId::kBool, false},
                          {"beam_used", TypeId::kBool, false}});
  return engine->RegisterVirtualTable(
      std::move(def), [requests]() -> Result<RowVector> {
        double now = requests->NowSeconds();
        // Phase wall time by name, in ms; NULL when the phase didn't run
        // (e.g. a plan-cache hit skips the whole pipeline).
        auto phase_ms = [](const obs::RequestState& r, const char* name) {
          for (const auto& [phase, seconds] : r.compile_phases) {
            if (phase == name) return Datum::Double(seconds * 1e3);
          }
          return Datum::Null();
        };
        RowVector rows;
        for (const obs::RequestState& r : requests->Snapshot()) {
          Row row;
          row.push_back(Datum::Int(static_cast<int64_t>(r.query_id)));
          row.push_back(Datum::Int(static_cast<int64_t>(r.session_id)));
          row.push_back(Datum::Varchar(obs::RequestPhaseName(r.phase)));
          row.push_back(Datum::Varchar(r.sql));
          row.push_back(r.engine.empty() ? Datum::Null()
                                         : Datum::Varchar(r.engine));
          row.push_back(r.resource_class.empty()
                            ? Datum::Null()
                            : Datum::Varchar(r.resource_class));
          row.push_back(Datum::Bool(r.cache_hit));
          row.push_back(Datum::Bool(r.result_cache_hit));
          row.push_back(Datum::Double(r.submit_seconds));
          row.push_back(
              PhaseMs(r.compile_start_seconds, r.queue_start_seconds < 0
                                                   ? r.exec_start_seconds
                                                   : r.queue_start_seconds,
                      now));
          // Queue wait runs from entering the admission queue until a slot
          // was granted; still-queued requests measure against `now`.
          row.push_back(PhaseMs(r.queue_start_seconds, r.admit_seconds, now));
          row.push_back(PhaseMs(r.exec_start_seconds, r.end_seconds, now));
          double stop = r.end_seconds < 0 ? now : r.end_seconds;
          row.push_back(Datum::Double((stop - r.submit_seconds) * 1e3));
          row.push_back(Datum::Int(r.current_step));
          row.push_back(Datum::Int(r.total_steps));
          row.push_back(Datum::Int(r.TotalRetries()));
          row.push_back(Datum::Double(r.RowsMoved()));
          row.push_back(Datum::Double(r.BytesMoved()));
          row.push_back(r.error.empty() ? Datum::Null()
                                        : Datum::Varchar(r.error));
          row.push_back(phase_ms(r, "bind"));
          row.push_back(phase_ms(r, "normalize"));
          row.push_back(phase_ms(r, "memo"));
          row.push_back(phase_ms(r, "pdw_optimize"));
          row.push_back(Datum::Double(r.memo_groups));
          row.push_back(Datum::Double(r.memo_exprs));
          row.push_back(Datum::Bool(r.budget_exhausted));
          row.push_back(Datum::Bool(r.beam_used));
          rows.push_back(std::move(row));
        }
        return rows;
      });
}

Status InstallExecSteps(LocalEngine* engine,
                        const obs::RequestRegistry* requests) {
  TableDef def = ViewDef("sys.dm_pdw_exec_steps",
                         {{"request_id", TypeId::kInt, false},
                          {"step_index", TypeId::kInt, false},
                          {"kind", TypeId::kVarchar, false},
                          {"move_kind", TypeId::kVarchar, true},
                          {"dest_table", TypeId::kVarchar, true},
                          {"status", TypeId::kVarchar, false},
                          {"retries", TypeId::kInt, false},
                          {"rows_moved", TypeId::kDouble, false},
                          {"bytes_moved", TypeId::kDouble, false},
                          {"elapsed_ms", TypeId::kDouble, false},
                          {"sql_text", TypeId::kVarchar, true},
                          // Sub-plan sharing (new columns appended so
                          // positional readers of the older shape keep
                          // working): NULL role = executed privately.
                          {"shared_role", TypeId::kVarchar, true},
                          {"saved_bytes", TypeId::kDouble, false}});
  return engine->RegisterVirtualTable(
      std::move(def), [requests]() -> Result<RowVector> {
        RowVector rows;
        for (const obs::RequestState& r : requests->Snapshot()) {
          for (const obs::RequestStepState& s : r.steps) {
            Row row;
            row.push_back(Datum::Int(static_cast<int64_t>(r.query_id)));
            row.push_back(Datum::Int(s.index));
            row.push_back(Datum::Varchar(s.kind));
            row.push_back(s.move_kind.empty() ? Datum::Null()
                                              : Datum::Varchar(s.move_kind));
            row.push_back(s.dest_table.empty() ? Datum::Null()
                                               : Datum::Varchar(s.dest_table));
            row.push_back(Datum::Varchar(s.status));
            row.push_back(Datum::Int(s.retries));
            row.push_back(Datum::Double(s.rows_moved));
            row.push_back(Datum::Double(s.bytes_moved));
            row.push_back(Datum::Double(s.seconds * 1e3));
            row.push_back(s.sql.empty() ? Datum::Null()
                                        : Datum::Varchar(s.sql));
            row.push_back(s.shared_role.empty()
                              ? Datum::Null()
                              : Datum::Varchar(s.shared_role));
            row.push_back(Datum::Double(s.saved_bytes));
            rows.push_back(std::move(row));
          }
        }
        return rows;
      });
}

Status InstallDmsWorkers(LocalEngine* engine,
                         const obs::RequestRegistry* requests) {
  TableDef def = ViewDef("sys.dm_pdw_dms_workers",
                         {{"request_id", TypeId::kInt, false},
                          {"step_index", TypeId::kInt, false},
                          {"worker_type", TypeId::kVarchar, false},
                          {"status", TypeId::kVarchar, false},
                          {"bytes_processed", TypeId::kDouble, false},
                          {"seconds", TypeId::kDouble, false}});
  return engine->RegisterVirtualTable(
      std::move(def), [requests]() -> Result<RowVector> {
        RowVector rows;
        for (const obs::RequestState& r : requests->Snapshot()) {
          for (const obs::RequestStepState& s : r.steps) {
            if (s.kind != "DMS") continue;
            for (int c = 0; c < 4; ++c) {
              Row row;
              row.push_back(Datum::Int(static_cast<int64_t>(r.query_id)));
              row.push_back(Datum::Int(s.index));
              row.push_back(Datum::Varchar(obs::kDmsComponentNames[c]));
              row.push_back(Datum::Varchar(s.status));
              row.push_back(Datum::Double(s.component_bytes[c]));
              row.push_back(Datum::Double(s.component_seconds[c]));
              rows.push_back(std::move(row));
            }
          }
        }
        return rows;
      });
}

Status InstallMetrics(LocalEngine* engine) {
  TableDef def = ViewDef("sys.dm_pdw_metrics",
                         {{"metric_name", TypeId::kVarchar, false},
                          {"metric_kind", TypeId::kVarchar, false},
                          {"value", TypeId::kDouble, false},
                          {"total", TypeId::kDouble, true},
                          {"mean", TypeId::kDouble, true},
                          {"min_value", TypeId::kDouble, true},
                          {"max_value", TypeId::kDouble, true},
                          {"p50", TypeId::kDouble, true},
                          {"p95", TypeId::kDouble, true},
                          {"p99", TypeId::kDouble, true}});
  return engine->RegisterVirtualTable(
      std::move(def), []() -> Result<RowVector> {
        obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
        RowVector rows;
        for (const auto& [name, value] : snap.counters) {
          rows.push_back({Datum::Varchar(name), Datum::Varchar("counter"),
                          Datum::Double(value), Datum::Null(), Datum::Null(),
                          Datum::Null(), Datum::Null(), Datum::Null(),
                          Datum::Null(), Datum::Null()});
        }
        for (const auto& [name, value] : snap.gauges) {
          rows.push_back({Datum::Varchar(name), Datum::Varchar("gauge"),
                          Datum::Double(value), Datum::Null(), Datum::Null(),
                          Datum::Null(), Datum::Null(), Datum::Null(),
                          Datum::Null(), Datum::Null()});
        }
        for (const auto& [name, h] : snap.histograms) {
          // `value` of a histogram row is its observation count.
          rows.push_back({Datum::Varchar(name), Datum::Varchar("histogram"),
                          Datum::Double(static_cast<double>(h.count)),
                          Datum::Double(h.sum), Datum::Double(h.Mean()),
                          Datum::Double(h.min), Datum::Double(h.max),
                          Datum::Double(h.Quantile(0.50)),
                          Datum::Double(h.Quantile(0.95)),
                          Datum::Double(h.Quantile(0.99))});
        }
        return rows;
      });
}

Status InstallPlanCache(LocalEngine* engine, const PlanCache* plan_cache) {
  TableDef def = ViewDef("sys.dm_pdw_plan_cache",
                         {{"sql_text", TypeId::kVarchar, false},
                          {"fingerprint", TypeId::kVarchar, false},
                          {"hits", TypeId::kInt, false},
                          {"num_steps", TypeId::kInt, false},
                          {"modeled_cost", TypeId::kDouble, false},
                          {"base_tables", TypeId::kVarchar, false}});
  return engine->RegisterVirtualTable(
      std::move(def), [plan_cache]() -> Result<RowVector> {
        RowVector rows;
        for (const PlanCache::EntryInfo& e : plan_cache->ListEntries()) {
          std::string tables;
          for (const std::string& t : e.tables) {
            if (!tables.empty()) tables += ",";
            tables += t;
          }
          rows.push_back({Datum::Varchar(e.normalized_sql),
                          Datum::Varchar(e.options_fingerprint),
                          Datum::Int(static_cast<int64_t>(e.hits)),
                          Datum::Int(e.num_steps),
                          Datum::Double(e.modeled_cost),
                          Datum::Varchar(tables)});
        }
        return rows;
      });
}

Status InstallWorkload(LocalEngine* engine, const WorkloadManager* workload) {
  TableDef def = ViewDef("sys.dm_pdw_workload",
                         {{"resource_class", TypeId::kVarchar, false},
                          {"concurrency_slots", TypeId::kInt, false},
                          {"active", TypeId::kInt, false},
                          {"queued", TypeId::kInt, false},
                          {"queue_capacity", TypeId::kInt, false},
                          {"max_parallel_nodes", TypeId::kInt, false},
                          {"admitted_total", TypeId::kInt, false},
                          {"rejected_total", TypeId::kInt, false},
                          {"cancelled_total", TypeId::kInt, false},
                          {"queue_wait_ms_total", TypeId::kDouble, false},
                          {"cost_threshold", TypeId::kDouble, false}});
  return engine->RegisterVirtualTable(
      std::move(def), [workload]() -> Result<RowVector> {
        RowVector rows;
        for (const WorkloadClassSnapshot& c : workload->Snapshot()) {
          Row row;
          row.push_back(Datum::Varchar(ResourceClassName(c.resource_class)));
          row.push_back(Datum::Int(c.concurrency_slots));
          row.push_back(Datum::Int(c.active));
          row.push_back(Datum::Int(c.queued));
          row.push_back(Datum::Int(c.queue_depth));
          row.push_back(Datum::Int(c.max_parallel_nodes));
          row.push_back(Datum::Int(static_cast<int64_t>(c.admitted_total)));
          row.push_back(Datum::Int(static_cast<int64_t>(c.rejected_total)));
          row.push_back(Datum::Int(static_cast<int64_t>(c.cancelled_total)));
          row.push_back(Datum::Double(c.queue_wait_seconds_total * 1e3));
          row.push_back(Datum::Double(c.cost_threshold));
          rows.push_back(std::move(row));
        }
        return rows;
      });
}

Status InstallResultCache(LocalEngine* engine,
                          const ResultCache* result_cache) {
  TableDef def = ViewDef("sys.dm_pdw_result_cache",
                         {{"sql_text", TypeId::kVarchar, false},
                          {"fingerprint", TypeId::kVarchar, false},
                          {"hits", TypeId::kInt, false},
                          {"result_rows", TypeId::kInt, false},
                          {"modeled_cost", TypeId::kDouble, false},
                          {"base_tables", TypeId::kVarchar, false}});
  return engine->RegisterVirtualTable(
      std::move(def), [result_cache]() -> Result<RowVector> {
        RowVector rows;
        for (const ResultCache::EntryInfo& e : result_cache->ListEntries()) {
          std::string tables;
          for (const std::string& t : e.tables) {
            if (!tables.empty()) tables += ",";
            tables += t;
          }
          rows.push_back({Datum::Varchar(e.normalized_sql),
                          Datum::Varchar(e.options_fingerprint),
                          Datum::Int(static_cast<int64_t>(e.hits)),
                          Datum::Int(e.rows),
                          Datum::Double(e.modeled_cost),
                          Datum::Varchar(tables)});
        }
        return rows;
      });
}

Status InstallSharedSteps(LocalEngine* engine,
                          const SharedStepRegistry* shared_steps) {
  TableDef def = ViewDef("sys.dm_pdw_shared_steps",
                         {{"fingerprint", TypeId::kVarchar, false},
                          {"state", TypeId::kVarchar, false},
                          {"leader_request_id", TypeId::kInt, false},
                          {"temp_table", TypeId::kVarchar, true},
                          {"refcount", TypeId::kInt, false},
                          {"waiters", TypeId::kInt, false},
                          {"follows", TypeId::kInt, false},
                          {"rows_moved", TypeId::kDouble, false},
                          {"bytes_moved", TypeId::kDouble, false}});
  return engine->RegisterVirtualTable(
      std::move(def), [shared_steps]() -> Result<RowVector> {
        RowVector rows;
        for (const SharedStepRegistry::EntryInfo& e :
             shared_steps->ListEntries()) {
          Row row;
          row.push_back(Datum::Varchar(e.fingerprint_hex));
          row.push_back(Datum::Varchar(e.state));
          row.push_back(Datum::Int(static_cast<int64_t>(e.leader_query)));
          row.push_back(e.temp_table.empty() ? Datum::Null()
                                             : Datum::Varchar(e.temp_table));
          row.push_back(Datum::Int(e.refcount));
          row.push_back(Datum::Int(e.waiters));
          row.push_back(Datum::Int(static_cast<int64_t>(e.follows)));
          row.push_back(Datum::Double(e.rows_moved));
          row.push_back(Datum::Double(e.bytes_moved));
          rows.push_back(std::move(row));
        }
        return rows;
      });
}

}  // namespace

Status InstallSystemViews(LocalEngine* engine,
                          const obs::RequestRegistry* requests,
                          const PlanCache* plan_cache,
                          const WorkloadManager* workload,
                          const ResultCache* result_cache,
                          const SharedStepRegistry* shared_steps) {
  PDW_RETURN_NOT_OK(InstallExecRequests(engine, requests));
  PDW_RETURN_NOT_OK(InstallExecSteps(engine, requests));
  PDW_RETURN_NOT_OK(InstallDmsWorkers(engine, requests));
  PDW_RETURN_NOT_OK(InstallMetrics(engine));
  PDW_RETURN_NOT_OK(InstallPlanCache(engine, plan_cache));
  PDW_RETURN_NOT_OK(InstallWorkload(engine, workload));
  PDW_RETURN_NOT_OK(InstallResultCache(engine, result_cache));
  PDW_RETURN_NOT_OK(InstallSharedSteps(engine, shared_steps));
  return Status::OK();
}

}  // namespace pdw
