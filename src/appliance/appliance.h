#ifndef PDW_APPLIANCE_APPLIANCE_H_
#define PDW_APPLIANCE_APPLIANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "dms/dms_service.h"
#include "engine/local_engine.h"
#include "obs/query_profile.h"
#include "obs/request_registry.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "pdw/plan_cache.h"

namespace pdw {

/// Per-query knobs of the unified session entry point Appliance::Run.
struct QueryOptions {
  /// Knobs of the control-node compilation pipeline (Fig. 2).
  PdwCompilerOptions compile;
  /// Collect per-operator actual row counts and timings inside every
  /// node-local plan (the EXPLAIN ANALYZE data; adds metering overhead).
  bool collect_operator_actuals = false;
  /// Compile and render the plan but do not execute (EXPLAIN).
  bool explain_only = false;
  /// Serve the DSQL plan from the control node's compiled-plan cache when
  /// a fresh entry exists, and insert it after compiling otherwise.
  bool use_plan_cache = false;
  /// Cap on how many compute nodes run one DSQL step's work at the same
  /// time: 0 fans out across all nodes on the shared worker pool (the
  /// appliance model of Fig. 1), 1 reproduces the serial node-by-node
  /// loop (the bench_serial_vs_parallel baseline).
  int max_parallel_nodes = 0;
  /// Which local execution engine every node-local plan runs on: the
  /// vectorized batch engine (default, also overridable process-wide via
  /// PDW_ENGINE=row|batch) or the row-at-a-time reference interpreter.
  ExecOptions engine;
  /// DMS wire codec for this query's movement steps: the streaming
  /// columnar pipeline (default; process-wide overridable via
  /// PDW_DMS_CODEC=row|columnar) or the legacy materialized row path.
  DmsCodec dms_codec = DefaultDmsCodec();
  /// Faults armed for this query only (on top of any process-wide
  /// PDW_FAULTS schedule). Specs with query# = 1 or '*' target this query.
  fault::FaultSchedule faults;
  /// Retry policy for transient step failures: each DSQL step is retried
  /// at step granularity (its partial temp table dropped first), with
  /// exponential backoff between attempts.
  RetryPolicy retry;
  /// When non-empty, the global tracer is enabled for this query and a
  /// Chrome-trace JSON file (chrome://tracing / Perfetto "Open trace
  /// file") is written here when the query finishes. The process-wide
  /// PDW_TRACE_OUT environment variable is the same knob for every query.
  std::string trace_out;
};

/// Result of one distributed query execution.
struct ApplianceResult {
  /// Appliance-wide monotonically unique request id — the same number that
  /// keys this run in sys.dm_pdw_exec_requests and in the TEMP_ID_Q<id>_k
  /// temp-table names the run created.
  uint64_t query_id = 0;
  std::vector<std::string> column_names;
  RowVector rows;
  DsqlPlan dsql;
  double modeled_cost = 0;      ///< Optimizer's DMS cost estimate.
  double measured_seconds = 0;  ///< Wall time of DSQL execution.
  DmsRunMetrics dms_metrics;    ///< Accumulated over all DMS steps.
  std::string plan_text;        ///< EXPLAIN of the parallel plan.
  /// Rendered explanation: for explain_only the plan + DSQL steps, for
  /// executed queries the EXPLAIN ANALYZE text (est-vs-actual annotated
  /// when collect_operator_actuals was set).
  std::string explain_text;
  /// True when the DSQL plan was served from the plan cache and the
  /// compile pipeline was skipped entirely.
  bool cache_hit = false;
  /// Estimated-vs-actual profile: compile-phase timings, optimizer search
  /// counters, and one StepProfile per DSQL step (per-component DMS bytes,
  /// modeled cost vs measured seconds, estimated vs actual rows, per-node
  /// SQL wall times). Per-operator executor actuals are collected only
  /// when QueryOptions.collect_operator_actuals is set.
  obs::QueryProfile profile;
};

/// The full PDW appliance simulator (Fig. 1): a control node and N compute
/// nodes, each wrapping a LocalEngine ("SQL Server instance"), plus the DMS
/// service. The control node holds the shell database — metadata and merged
/// global statistics, no user rows (§2.2).
///
/// Query execution follows §2.4: the control node compiles a DSQL plan (or
/// serves it from the plan cache); each DSQL step then runs its SQL on
/// every source node *simultaneously* on the shared worker pool, DMS
/// routes rows into temp tables, and the Return step's per-node SQL is
/// assembled (merge-sorted, limited) into the final result.
///
/// Thread safety: Run / ExecutePlan / ExecuteReference and the const
/// accessors may be called from any number of session threads
/// concurrently; every in-flight query works on uniquely-named temp
/// tables. DDL and loads (CreateTable*, LoadRows, RefreshStatistics) are
/// setup-time operations and must not race queries that read the same
/// tables. The mutable accessors (mutable_shell, mutable_compute_node,
/// mutable_control_engine, dms) hand out unsynchronized references —
/// single-threaded use only.
class Appliance {
 public:
  explicit Appliance(Topology topology);

  int num_compute_nodes() const { return dms_.num_compute_nodes(); }

  /// DDL: registers the table in the shell database and creates the
  /// physical (empty) table on every compute node.
  Status CreateTable(TableDef def);
  /// DDL from SQL text ("CREATE TABLE ... WITH (DISTRIBUTION = ...)").
  Status CreateTableSql(const std::string& ddl);

  /// Loads rows, routing them by the table's distribution (hash or
  /// replicate); also maintains the single-node reference copy. Bumps the
  /// table's statistics version, invalidating cached plans that read it.
  Status LoadRows(const std::string& table, const RowVector& rows);

  /// Recomputes per-node local statistics and merges them into the shell
  /// database's global statistics (§2.2). Bumps the table's statistics
  /// version, invalidating cached plans that read it.
  Status RefreshStatistics(const std::string& table);

  /// The unified session entry point: compiles (or cache-loads) and runs a
  /// SELECT through the full PDW pipeline according to `options`.
  Result<ApplianceResult> Run(const std::string& sql,
                              const QueryOptions& options = {});

  /// Executes an already-generated parallel plan (used to run the
  /// parallelized-serial baseline for comparison benches).
  Result<ApplianceResult> ExecutePlan(const PlanNode& plan,
                                      std::vector<std::string> output_names);

  /// Runs the query on the single-node reference engine holding all data —
  /// ground truth for validating distributed execution. `exec` selects the
  /// local engine, so a caller can diff the two engines on the same data.
  Result<SqlResult> ExecuteReference(const std::string& sql,
                                     const ExecOptions& exec = {});

  /// Models the control→compute RPC of dispatching one step's SQL to a
  /// node (seconds; default 0). The pool overlaps these dispatches across
  /// nodes; the serial loop pays them one after another — the §2.4
  /// "steps run on all nodes simultaneously" effect made measurable.
  void set_dispatch_latency_seconds(double seconds) {
    dispatch_latency_seconds_ = seconds;
  }
  double dispatch_latency_seconds() const { return dispatch_latency_seconds_; }

  // Shared-state accessors. The const overloads are safe from concurrent
  // session threads; the mutable ones are not synchronized.
  const Catalog& shell() const { return shell_; }
  Catalog* mutable_shell() { return &shell_; }
  const DmsService& dms() const { return dms_; }
  DmsService& dms() { return dms_; }
  const LocalEngine& compute_node(int i) const {
    return *compute_[static_cast<size_t>(i)];
  }
  LocalEngine& mutable_compute_node(int i) {
    return *compute_[static_cast<size_t>(i)];
  }
  const LocalEngine& control_engine() const { return control_; }
  LocalEngine& mutable_control_engine() { return control_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }
  /// The always-on request registry behind sys.dm_pdw_exec_requests: every
  /// Run (and ExecutePlan) registers itself here and updates its lifecycle
  /// phase, current step, retry counts and rows/bytes moved live, so a DMV
  /// query from another session thread observes queries mid-flight.
  const obs::RequestRegistry& requests() const { return requests_; }
  obs::RequestRegistry& requests() { return requests_; }

 private:
  /// The body of Run, bracketed by the caller's registry Register +
  /// Complete/Fail so every exit path lands in exactly one terminal phase.
  Result<ApplianceResult> RunImpl(uint64_t query_id, const std::string& sql,
                                  const QueryOptions& options);
  /// Runs a query over sys.dm_pdw_* system views directly on the control
  /// node's engine (DMVs are control-node state on the real appliance; the
  /// distributed pipeline never sees them).
  Result<ApplianceResult> RunDmvQuery(uint64_t query_id,
                                      const std::string& sql,
                                      const QueryOptions& options);
  Result<ApplianceResult> ExecuteDsql(const DsqlPlan& dsql,
                                      uint64_t query_id,
                                      bool profile_operators,
                                      int max_parallel_nodes,
                                      const ExecOptions& exec,
                                      DmsCodec dms_codec,
                                      const RetryPolicy& retry);
  /// Nodes that run a step's source SQL.
  std::vector<int> SourceNodes(const DsqlStep& step) const;
  /// Nodes that must host a DMS step's destination temp table.
  std::vector<int> TargetNodes(const DsqlStep& step) const;
  Status DropTemps(const std::vector<std::string>& temps);

  Catalog shell_;
  DmsService dms_;
  std::vector<std::unique_ptr<LocalEngine>> compute_;
  LocalEngine control_;
  LocalEngine reference_;
  PlanCache plan_cache_;
  obs::RequestRegistry requests_;
  /// Per-execution id used to uniquify temp-table names so concurrent
  /// queries (and re-executions of one cached plan) never collide.
  std::atomic<uint64_t> next_query_id_{1};
  double dispatch_latency_seconds_ = 0;
};

}  // namespace pdw

#endif  // PDW_APPLIANCE_APPLIANCE_H_
