#ifndef PDW_APPLIANCE_APPLIANCE_H_
#define PDW_APPLIANCE_APPLIANCE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "appliance/shared_step_registry.h"
#include "appliance/workload_manager.h"
#include "common/fault.h"
#include "common/retry.h"
#include "dms/dms_service.h"
#include "engine/local_engine.h"
#include "obs/query_profile.h"
#include "obs/request_registry.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "pdw/plan_cache.h"
#include "pdw/result_cache.h"

namespace pdw {

/// Control-node compilation knobs (Fig. 2) of one query.
struct CompileOptions {
  /// Knobs of the compilation pipeline itself (parser/optimizer/DSQL gen).
  PdwCompilerOptions compiler;
  /// Serve the DSQL plan from the control node's compiled-plan cache when
  /// a fresh entry exists, and insert it after compiling otherwise. On by
  /// default — repeated statements skip the optimizer; stats-versioned
  /// invalidation keeps stale plans out after loads/stats refreshes.
  bool use_plan_cache = true;
  /// Compile and render the plan but do not execute (EXPLAIN).
  bool explain_only = false;
};

/// Execution-tier knobs of one query: engine/codec selection, workload
/// management, caching, retries, and fault injection.
struct ExecutionOptions {
  /// Cap on how many compute nodes run one DSQL step's work at the same
  /// time: 0 fans out across all nodes on the shared worker pool (the
  /// appliance model of Fig. 1), 1 reproduces the serial node-by-node
  /// loop (the bench_serial_vs_parallel baseline). The workload manager
  /// may lower the effective cap further via the admitted resource
  /// class's own max_parallel_nodes.
  int max_parallel_nodes = 0;
  /// Which local execution engine every node-local plan runs on: the
  /// vectorized batch engine (default, also overridable process-wide via
  /// PDW_ENGINE=row|batch) or the row-at-a-time reference interpreter.
  ExecOptions engine;
  /// DMS wire codec for this query's movement steps: the streaming
  /// columnar pipeline (default; process-wide overridable via
  /// PDW_DMS_CODEC=row|columnar) or the legacy materialized row path.
  DmsCodec dms_codec = DefaultDmsCodec();
  /// Faults armed for this query only (on top of any process-wide
  /// PDW_FAULTS schedule). Specs with query# = 1 or '*' target this query.
  fault::FaultSchedule faults;
  /// Retry policy for transient step failures: each DSQL step is retried
  /// at step granularity (its partial temp table dropped first), with
  /// exponential backoff between attempts.
  RetryPolicy retry;
  /// Workload-manager resource class: kAuto (default) classifies from the
  /// optimizer's modeled cost; anything else pins the class.
  ResourceClass resource_class = ResourceClass::kAuto;
  /// Admission priority within the resource class's queue: higher values
  /// dequeue first; equal priorities dequeue FIFO.
  int priority = 0;
  /// Serve byte-identical repeated queries from the control node's result
  /// cache (and coalesce identical in-flight queries onto one execution).
  /// Off by default: cached hits skip execution entirely, so profiles,
  /// step metrics, and fault points are not exercised on a hit.
  bool use_result_cache = false;
  /// Share identical DSQL steps with concurrent queries through the
  /// SharedStepRegistry: the first execution of a fingerprint-equal step
  /// leads, others consume its materialized temp table (§ DESIGN.md 5j).
  /// On by default; process-wide overridable via PDW_WLM_SHARE=0. The
  /// resolved value is part of every step fingerprint, so only executions
  /// that agree on the knob (and on engine + DMS codec) ever rendezvous.
  bool share_steps = DefaultSharedSteps();
};

/// Observability knobs of one query.
struct ObserveOptions {
  /// Collect per-operator actual row counts and timings inside every
  /// node-local plan (the EXPLAIN ANALYZE data; adds metering overhead).
  bool collect_operator_actuals = false;
  /// When non-empty, the global tracer is enabled for this query and a
  /// Chrome-trace JSON file (chrome://tracing / Perfetto "Open trace
  /// file") is written here when the query finishes. The process-wide
  /// PDW_TRACE_OUT environment variable is the same knob for every query.
  std::string trace_out;
};

/// Per-query knobs of a session Run, grouped by pipeline tier. Configure
/// either directly (options.execute.max_parallel_nodes = 1) or through the
/// fluent With* builders:
///   session.Run(sql, QueryOptions()
///                        .WithExplainOnly()
///                        .WithMaxParallelNodes(1));
struct QueryOptions {
  CompileOptions compile;
  ExecutionOptions execute;
  ObserveOptions observe;

  QueryOptions& WithCompilerOptions(PdwCompilerOptions compiler) {
    compile.compiler = std::move(compiler);
    return *this;
  }
  QueryOptions& WithPlanCache(bool on = true) {
    compile.use_plan_cache = on;
    return *this;
  }
  QueryOptions& WithExplainOnly(bool on = true) {
    compile.explain_only = on;
    return *this;
  }
  QueryOptions& WithMaxParallelNodes(int cap) {
    execute.max_parallel_nodes = cap;
    return *this;
  }
  QueryOptions& WithEngine(ExecOptions engine) {
    execute.engine = engine;
    return *this;
  }
  QueryOptions& WithDmsCodec(DmsCodec codec) {
    execute.dms_codec = codec;
    return *this;
  }
  QueryOptions& WithFaults(fault::FaultSchedule faults) {
    execute.faults = std::move(faults);
    return *this;
  }
  QueryOptions& WithRetry(RetryPolicy retry) {
    execute.retry = std::move(retry);
    return *this;
  }
  QueryOptions& WithResourceClass(ResourceClass rc) {
    execute.resource_class = rc;
    return *this;
  }
  QueryOptions& WithPriority(int priority) {
    execute.priority = priority;
    return *this;
  }
  QueryOptions& WithResultCache(bool on = true) {
    execute.use_result_cache = on;
    return *this;
  }
  QueryOptions& WithSharedSteps(bool on = true) {
    execute.share_steps = on;
    return *this;
  }
  QueryOptions& WithOperatorActuals(bool on = true) {
    observe.collect_operator_actuals = on;
    return *this;
  }
  QueryOptions& WithTraceOut(std::string path) {
    observe.trace_out = std::move(path);
    return *this;
  }
};

/// Result of one distributed query execution.
struct ApplianceResult {
  /// Appliance-wide monotonically unique request id — the same number that
  /// keys this run in sys.dm_pdw_exec_requests and in the TEMP_ID_Q<id>_k
  /// temp-table names the run created.
  uint64_t query_id = 0;
  /// Session the query ran under (1 = the implicit default session behind
  /// bare Appliance::Run).
  uint64_t session_id = 0;
  std::vector<std::string> column_names;
  RowVector rows;
  DsqlPlan dsql;
  double modeled_cost = 0;      ///< Optimizer's DMS cost estimate.
  double measured_seconds = 0;  ///< Wall time of DSQL execution.
  DmsRunMetrics dms_metrics;    ///< Accumulated over all DMS steps.
  std::string plan_text;        ///< EXPLAIN of the parallel plan.
  /// Rendered explanation: for explain_only the plan + DSQL steps, for
  /// executed queries the EXPLAIN ANALYZE text (est-vs-actual annotated
  /// when collect_operator_actuals was set).
  std::string explain_text;
  /// True when the DSQL plan was served from the plan cache and the
  /// compile pipeline was skipped entirely.
  bool cache_hit = false;
  /// True when the rows came from the result cache (LRU hit or coalesced
  /// onto an identical in-flight query) and nothing executed at all.
  bool result_cache_hit = false;
  /// Workload-manager class the query was admitted under ("small"/
  /// "medium"/"large"; empty for DMV / explain-only / cache-served runs
  /// that bypass admission).
  std::string resource_class;
  /// Seconds spent waiting in the admission queue before execution.
  double queue_seconds = 0;
  /// Sub-plan sharing outcome of this run: steps consumed from another
  /// query's leader instead of executing (followed), steps this run led
  /// that fed at least one waiting follower (led), and the DMS bytes the
  /// followed steps would otherwise have moved.
  int shared_steps_followed = 0;
  int shared_steps_led = 0;
  double shared_saved_bytes = 0;
  /// Estimated-vs-actual profile: compile-phase timings, optimizer search
  /// counters, and one StepProfile per DSQL step (per-component DMS bytes,
  /// modeled cost vs measured seconds, estimated vs actual rows, per-node
  /// SQL wall times). Per-operator executor actuals are collected only
  /// when ObserveOptions.collect_operator_actuals is set.
  obs::QueryProfile profile;
};

class Session;

/// The full PDW appliance simulator (Fig. 1): a control node and N compute
/// nodes, each wrapping a LocalEngine ("SQL Server instance"), plus the DMS
/// service. The control node holds the shell database — metadata and merged
/// global statistics, no user rows (§2.2).
///
/// Query execution follows §2.4: the control node compiles a DSQL plan (or
/// serves it from the plan cache); the workload manager classifies the
/// query into a resource class from its modeled cost and admits it through
/// that class's bounded concurrency gate; each DSQL step then runs its SQL
/// on every source node *simultaneously* on the shared worker pool, DMS
/// routes rows into temp tables, and the Return step's per-node SQL is
/// assembled (merge-sorted, limited) into the final result.
///
/// Sessions: Connect() returns a Session handle carrying per-session
/// default QueryOptions and a stable session_id surfaced in the DMVs.
/// Session::Run is the query entry point; Appliance::Run remains as a thin
/// wrapper over the implicit default session (id 1).
///
/// Thread safety: Run / ExecutePlan / ExecuteReference / Cancel and the
/// const accessors may be called from any number of session threads
/// concurrently; every in-flight query works on uniquely-named temp
/// tables. DDL and loads (CreateTable*, LoadRows, RefreshStatistics) are
/// setup-time operations and must not race queries that read the same
/// tables. The mutable accessors (mutable_shell, mutable_compute_node,
/// mutable_control_engine, dms) hand out unsynchronized references —
/// single-threaded use only.
class Appliance {
 public:
  explicit Appliance(Topology topology);

  int num_compute_nodes() const { return dms_.num_compute_nodes(); }

  /// Opens a new session with its own default QueryOptions and a fresh
  /// stable session id (surfaced in sys.dm_pdw_exec_requests.session_id).
  Session Connect(QueryOptions session_defaults = {});

  /// DDL: registers the table in the shell database and creates the
  /// physical (empty) table on every compute node.
  Status CreateTable(TableDef def);
  /// DDL from SQL text ("CREATE TABLE ... WITH (DISTRIBUTION = ...)").
  Status CreateTableSql(const std::string& ddl);

  /// Loads rows, routing them by the table's distribution (hash or
  /// replicate); also maintains the single-node reference copy. Bumps the
  /// table's statistics version, invalidating cached plans *and cached
  /// results* that read it.
  Status LoadRows(const std::string& table, const RowVector& rows);

  /// Recomputes per-node local statistics and merges them into the shell
  /// database's global statistics (§2.2). Bumps the table's statistics
  /// version, invalidating cached plans and cached results that read it.
  Status RefreshStatistics(const std::string& table);

  /// Runs a SELECT through the full PDW pipeline on the implicit default
  /// session (id 1). Prefer Session::Run for new code — it carries
  /// per-session defaults and a distinct session id.
  Result<ApplianceResult> Run(const std::string& sql,
                              const QueryOptions& options = {});

  /// Requests cooperative cancellation of an in-flight query by id. The
  /// query observes the flag at admission, at every step boundary, at
  /// retry re-entry, and inside DMS queue pushes, then fails with
  /// kCancelled after dropping its temp tables. Returns NotFound when no
  /// such query is currently running (finished queries included).
  Status Cancel(uint64_t query_id);

  /// Executes an already-generated parallel plan (used to run the
  /// parallelized-serial baseline for comparison benches).
  Result<ApplianceResult> ExecutePlan(const PlanNode& plan,
                                      std::vector<std::string> output_names);

  /// Runs the query on the single-node reference engine holding all data —
  /// ground truth for validating distributed execution. `exec` selects the
  /// local engine, so a caller can diff the two engines on the same data.
  Result<SqlResult> ExecuteReference(const std::string& sql,
                                     const ExecOptions& exec = {});

  /// Models the control→compute RPC of dispatching one step's SQL to a
  /// node (seconds; default 0). The pool overlaps these dispatches across
  /// nodes; the serial loop pays them one after another — the §2.4
  /// "steps run on all nodes simultaneously" effect made measurable.
  void set_dispatch_latency_seconds(double seconds) {
    dispatch_latency_seconds_ = seconds;
  }
  double dispatch_latency_seconds() const { return dispatch_latency_seconds_; }

  // Shared-state accessors. The const overloads are safe from concurrent
  // session threads; the mutable ones are not synchronized.
  const Catalog& shell() const { return shell_; }
  Catalog* mutable_shell() { return &shell_; }
  const DmsService& dms() const { return dms_; }
  DmsService& dms() { return dms_; }
  const LocalEngine& compute_node(int i) const {
    return *compute_[static_cast<size_t>(i)];
  }
  LocalEngine& mutable_compute_node(int i) {
    return *compute_[static_cast<size_t>(i)];
  }
  const LocalEngine& control_engine() const { return control_; }
  LocalEngine& mutable_control_engine() { return control_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }
  const ResultCache& result_cache() const { return result_cache_; }
  ResultCache& result_cache() { return result_cache_; }
  /// The admission-control tier every executed query passes through;
  /// backs sys.dm_pdw_workload. Constructed from the PDW_WLM_* env knobs.
  const WorkloadManager& workload() const { return workload_; }
  WorkloadManager& workload() { return workload_; }
  /// The always-on request registry behind sys.dm_pdw_exec_requests: every
  /// Run (and ExecutePlan) registers itself here and updates its lifecycle
  /// phase, current step, retry counts and rows/bytes moved live, so a DMV
  /// query from another session thread observes queries mid-flight.
  const obs::RequestRegistry& requests() const { return requests_; }
  obs::RequestRegistry& requests() { return requests_; }
  /// The sub-plan sharing rendezvous behind sys.dm_pdw_shared_steps:
  /// concurrent queries coalesce fingerprint-equal DSQL steps here.
  const SharedStepRegistry& shared_steps() const { return shared_steps_; }
  SharedStepRegistry& shared_steps() { return shared_steps_; }

 private:
  friend class Session;

  /// The implicit session behind bare Appliance::Run.
  static constexpr uint64_t kDefaultSessionId = 1;

  /// Session-tagged Run — the real entry point Session::Run and
  /// Appliance::Run both land on.
  Result<ApplianceResult> RunAs(uint64_t session_id, const std::string& sql,
                                const QueryOptions& options);
  /// The body of Run, bracketed by the caller's registry Register +
  /// Complete/Fail/Cancel so every exit path lands in exactly one terminal
  /// phase. `cancel` is this query's cooperative cancellation token.
  Result<ApplianceResult> RunImpl(uint64_t query_id, const std::string& sql,
                                  const QueryOptions& options,
                                  const std::atomic<bool>* cancel);
  /// Runs a query over sys.dm_pdw_* system views directly on the control
  /// node's engine (DMVs are control-node state on the real appliance; the
  /// distributed pipeline never sees them).
  Result<ApplianceResult> RunDmvQuery(uint64_t query_id,
                                      const std::string& sql,
                                      const QueryOptions& options);
  Result<ApplianceResult> ExecuteDsql(const DsqlPlan& dsql,
                                      uint64_t query_id,
                                      bool profile_operators,
                                      int max_parallel_nodes,
                                      const ExecOptions& exec,
                                      DmsCodec dms_codec,
                                      const RetryPolicy& retry,
                                      bool share_steps,
                                      const std::atomic<bool>* cancel);
  /// Registers (and on destruction unregisters) a query's cancellation
  /// token so Appliance::Cancel can find it.
  std::shared_ptr<std::atomic<bool>> RegisterCancelFlag(uint64_t query_id);
  void UnregisterCancelFlag(uint64_t query_id);
  /// Nodes that run a step's source SQL.
  std::vector<int> SourceNodes(const DsqlStep& step) const;
  /// Nodes that must host a DMS step's destination temp table.
  std::vector<int> TargetNodes(const DsqlStep& step) const;
  Status DropTemps(const std::vector<std::string>& temps);

  Catalog shell_;
  DmsService dms_;
  std::vector<std::unique_ptr<LocalEngine>> compute_;
  LocalEngine control_;
  LocalEngine reference_;
  /// One stats-version tracker shared by the plan cache and the result
  /// cache, so a LoadRows bump invalidates both in one place.
  std::shared_ptr<TableVersionTracker> table_versions_;
  PlanCache plan_cache_;
  ResultCache result_cache_;
  WorkloadManager workload_;
  obs::RequestRegistry requests_;
  /// Cross-query DSQL step rendezvous (sub-plan sharing, DESIGN.md §5j).
  SharedStepRegistry shared_steps_;
  /// Per-execution id used to uniquify temp-table names so concurrent
  /// queries (and re-executions of one cached plan) never collide.
  std::atomic<uint64_t> next_query_id_{1};
  /// Session ids handed out by Connect; 1 is the implicit default session.
  std::atomic<uint64_t> next_session_id_{2};
  /// Cancellation tokens of in-flight queries, keyed by query id.
  mutable std::mutex cancel_mu_;
  std::map<uint64_t, std::shared_ptr<std::atomic<bool>>> cancel_flags_;
  double dispatch_latency_seconds_ = 0;
};

/// A client connection to the appliance (PDW's session concept): carries
/// per-session default QueryOptions and a stable session_id that tags every
/// request this session runs in sys.dm_pdw_exec_requests. Obtained from
/// Appliance::Connect; copyable (copies share the id), cheap to pass by
/// value. The appliance must outlive its sessions.
class Session {
 public:
  uint64_t id() const { return session_id_; }

  const QueryOptions& defaults() const { return defaults_; }
  QueryOptions& mutable_defaults() { return defaults_; }

  /// Runs `sql` with this session's default options.
  Result<ApplianceResult> Run(const std::string& sql) {
    return appliance_->RunAs(session_id_, sql, defaults_);
  }
  /// Runs `sql` with explicit per-query options (replacing — not merging
  /// with — the session defaults for this one call).
  Result<ApplianceResult> Run(const std::string& sql,
                              const QueryOptions& options) {
    return appliance_->RunAs(session_id_, sql, options);
  }

  /// Cooperatively cancels an in-flight query (any session's — ids are
  /// appliance-global, as on the real control node).
  Status Cancel(uint64_t query_id) { return appliance_->Cancel(query_id); }

  Appliance* appliance() { return appliance_; }
  const Appliance* appliance() const { return appliance_; }

 private:
  friend class Appliance;
  Session(Appliance* appliance, uint64_t session_id, QueryOptions defaults)
      : appliance_(appliance),
        session_id_(session_id),
        defaults_(std::move(defaults)) {}

  Appliance* appliance_;
  uint64_t session_id_;
  QueryOptions defaults_;
};

inline Session Appliance::Connect(QueryOptions session_defaults) {
  return Session(this, next_session_id_.fetch_add(1),
                 std::move(session_defaults));
}

}  // namespace pdw

#endif  // PDW_APPLIANCE_APPLIANCE_H_
