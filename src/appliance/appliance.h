#ifndef PDW_APPLIANCE_APPLIANCE_H_
#define PDW_APPLIANCE_APPLIANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "dms/dms_service.h"
#include "engine/local_engine.h"
#include "obs/query_profile.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"

namespace pdw {

/// Result of one distributed query execution.
struct ApplianceResult {
  std::vector<std::string> column_names;
  RowVector rows;
  DsqlPlan dsql;
  double modeled_cost = 0;      ///< Optimizer's DMS cost estimate.
  double measured_seconds = 0;  ///< Wall time of DSQL execution.
  DmsRunMetrics dms_metrics;    ///< Accumulated over all DMS steps.
  std::string plan_text;        ///< EXPLAIN of the parallel plan.
  /// Estimated-vs-actual profile: compile-phase timings, optimizer search
  /// counters, and one StepProfile per DSQL step (per-component DMS bytes,
  /// modeled cost vs measured seconds, estimated vs actual rows).
  /// Per-operator executor actuals are collected only by ExecuteAnalyze /
  /// ExplainAnalyze.
  obs::QueryProfile profile;
};

/// The full PDW appliance simulator (Fig. 1): a control node and N compute
/// nodes, each wrapping a LocalEngine ("SQL Server instance"), plus the DMS
/// service. The control node holds the shell database — metadata and merged
/// global statistics, no user rows (§2.2).
///
/// Query execution follows §2.4 exactly: the control node compiles a DSQL
/// plan; DMS steps run their SQL on every source node, route rows into
/// temp tables; the Return step's SQL runs per node and the engine
/// assembles (merge-sorts, limits) the final result.
class Appliance {
 public:
  explicit Appliance(Topology topology);

  int num_compute_nodes() const { return dms_.num_compute_nodes(); }

  /// DDL: registers the table in the shell database and creates the
  /// physical (empty) table on every compute node.
  Status CreateTable(TableDef def);
  /// DDL from SQL text ("CREATE TABLE ... WITH (DISTRIBUTION = ...)").
  Status CreateTableSql(const std::string& ddl);

  /// Loads rows, routing them by the table's distribution (hash or
  /// replicate); also maintains the single-node reference copy.
  Status LoadRows(const std::string& table, const RowVector& rows);

  /// Recomputes per-node local statistics and merges them into the shell
  /// database's global statistics (§2.2).
  Status RefreshStatistics(const std::string& table);

  /// Compiles and executes a SELECT through the full PDW pipeline.
  Result<ApplianceResult> Execute(const std::string& sql,
                                  const PdwCompilerOptions& options = {});

  /// Like Execute, but additionally collects per-operator actual row counts
  /// and timings inside every node-local plan (EXPLAIN ANALYZE data).
  Result<ApplianceResult> ExecuteAnalyze(const std::string& sql,
                                         const PdwCompilerOptions& options = {});

  /// Executes the query and renders the DSQL plan annotated per step with
  /// modeled DMS cost vs measured wall time, estimated vs actual rows
  /// (flagging large misestimates), and per-component DMS bytes.
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     const PdwCompilerOptions& options = {});

  /// Compiles a SELECT and returns its parallel plan + DSQL rendering
  /// without executing anything (EXPLAIN).
  Result<std::string> Explain(const std::string& sql,
                              const PdwCompilerOptions& options = {});

  /// Executes an already-generated parallel plan (used to run the
  /// parallelized-serial baseline for comparison benches).
  Result<ApplianceResult> ExecutePlan(const PlanNode& plan,
                                      std::vector<std::string> output_names);

  /// Runs the query on the single-node reference engine holding all data —
  /// ground truth for validating distributed execution.
  Result<SqlResult> ExecuteReference(const std::string& sql);

  const Catalog& shell() const { return shell_; }
  Catalog* mutable_shell() { return &shell_; }
  DmsService& dms() { return dms_; }
  LocalEngine& compute_node(int i) { return *compute_[static_cast<size_t>(i)]; }
  LocalEngine& control_engine() { return control_; }

 private:
  Result<ApplianceResult> ExecuteInternal(const std::string& sql,
                                          const PdwCompilerOptions& options,
                                          bool profile_operators);
  Result<ApplianceResult> ExecuteDsql(const DsqlPlan& dsql,
                                      bool profile_operators = false);
  /// Nodes that run a step's source SQL.
  std::vector<int> SourceNodes(const DsqlStep& step) const;
  /// Nodes that must host a DMS step's destination temp table.
  std::vector<int> TargetNodes(const DsqlStep& step) const;
  Status DropTemps(const std::vector<std::string>& temps);

  Catalog shell_;
  DmsService dms_;
  std::vector<std::unique_ptr<LocalEngine>> compute_;
  LocalEngine control_;
  LocalEngine reference_;
};

}  // namespace pdw

#endif  // PDW_APPLIANCE_APPLIANCE_H_
