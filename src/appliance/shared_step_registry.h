#ifndef PDW_APPLIANCE_SHARED_STEP_REGISTRY_H_
#define PDW_APPLIANCE_SHARED_STEP_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pdw {

/// Resolved default of the PDW_WLM_SHARE knob: sub-plan sharing is on
/// unless the env var says "0"/"off"/"false". The resolved value is baked
/// into every step fingerprint (like PDW_OPT_PREAGG into plan-cache keys),
/// so flipping the knob can never pair a sharing execution with a
/// non-sharing one.
bool DefaultSharedSteps();

/// Rendezvous point where concurrent query executions share DSQL steps
/// (ROADMAP item 1; grounding: Multi Query Optimization in GLADE).
///
/// Keys are full StepFingerprint texts — equal key means the two steps
/// would materialize byte-identical temp tables. Protocol per step:
///
///  * JoinOrLead miss -> caller is the *leader*: it executes the step and
///    then calls Publish (success) or FailFlight (failure/cancel) with the
///    same key. Publish transfers ownership of the leader's temp table to
///    the registry.
///  * JoinOrLead hit on an executing entry -> caller is a *follower*: it
///    blocks until the leader resolves, then consumes the leader's
///    published temp table instead of re-running the move. A failed or
///    cancelled leader erases the entry and releases followers to loop
///    back — the first one in becomes the new leader, so sharing faults
///    degrade to isolated execution, never to query failure.
///  * JoinOrLead hit on an already-published entry (refcount still > 0,
///    e.g. a later step of the same query, or a query arriving during the
///    afterglow before the last consumer finished) -> immediate follower.
///
/// Temp lifetime is refcounted: Publish seeds the count with the leader's
/// own reference plus one *pre-granted* reference per waiter already
/// blocked (granting under the same lock that wakes them closes the
/// publish/release race); late joiners take their reference themselves.
/// Release decrements; the caller that drops the count to zero receives
/// the temp table name and owns the physical DROP.
///
/// All methods are thread-safe. Waits are cooperative: a follower whose
/// query is cancelled abandons the wait (Role::kSkipped) *unless* the
/// leader already published — a pre-granted reference is always taken so
/// it is always released. Counters mirror into obs metrics as
/// wlm.shared_step.*.
class SharedStepRegistry {
 public:
  enum class Role { kLeader, kFollower, kSkipped };

  /// What JoinOrLead decided for one step of one execution.
  struct JoinOutcome {
    Role role = Role::kSkipped;
    /// kFollower: the leader's materialized temp table to adopt.
    std::string temp_table;
    uint64_t leader_query = 0;
    /// kFollower: DMS bytes/rows the leader moved that this execution now
    /// skips (exec_steps saved_bytes column, bench shared-vs-isolated).
    double saved_bytes = 0;
    double saved_rows = 0;
    double wait_seconds = 0;
  };

  struct Stats {
    uint64_t leads = 0;
    uint64_t follows = 0;
    uint64_t publishes = 0;
    uint64_t failed_flights = 0;  ///< Leader failures/cancels.
    uint64_t releases = 0;
    uint64_t drops = 0;         ///< Releases that hit zero (temp dropped).
    uint64_t cancel_skips = 0;  ///< Followers that abandoned a wait.
    double saved_bytes = 0;
    double saved_rows = 0;
  };

  /// Introspection row for sys.dm_pdw_shared_steps.
  struct EntryInfo {
    std::string fingerprint_hex;
    std::string state;  ///< "executing" | "published".
    uint64_t leader_query = 0;
    std::string temp_table;
    int refcount = 0;
    int waiters = 0;
    uint64_t follows = 0;
    double rows_moved = 0;
    double bytes_moved = 0;
  };

  /// Live-progress fan-out: while the leader's DMS move runs, each blocked
  /// follower's (query, step) is reported through this hook so its
  /// exec_steps DMV row advances in real time, not just at adoption.
  using ProgressHook = std::function<void(uint64_t query_id, int step_index,
                                          double rows, double bytes)>;

  /// See class comment. `cancel` (optional) makes the follower wait
  /// cooperative; `step_index` is recorded for progress attribution.
  JoinOutcome JoinOrLead(const std::string& key, const std::string& hex,
                         uint64_t query_id, int step_index,
                         const std::atomic<bool>* cancel);

  /// Leader success: publishes `temp_table` under `key`, seeds the
  /// refcount with the leader plus every currently blocked waiter, wakes
  /// them. Returns the number of pre-granted waiter references (0 means
  /// nobody was waiting — the leader may still get afterglow followers
  /// until it releases its own reference).
  int Publish(const std::string& key, const std::string& temp_table,
              double rows_moved, double bytes_moved);

  /// Leader failure or cancel before Publish: erases the entry and wakes
  /// waiters to re-run JoinOrLead (first back leads). The leader's temp —
  /// if any was created — stays private to the leader's own cleanup.
  void FailFlight(const std::string& key);

  /// Drops one reference. Returns the temp table name exactly when the
  /// count hit zero — the caller then owns the physical drop; empty
  /// string otherwise.
  std::string Release(const std::string& key);

  /// Leader-side DMS progress deltas for the in-flight step under `key`:
  /// accumulated on the entry (Publish later replaces them with the
  /// metered totals) and fanned out to every waiter via the progress hook.
  void Progress(const std::string& key, double rows, double bytes);

  /// Wakes all waiters to re-check their cancel flags (Appliance::Cancel).
  void Poke();

  void set_progress_hook(ProgressHook hook);
  Stats stats() const;
  std::vector<EntryInfo> ListEntries() const;
  /// Entries currently live (executing or published-with-references);
  /// zero once every query finished — the no-leak assertion in tests.
  size_t active_entries() const;

 private:
  /// One shared step. Waiters hold the shared_ptr, so FailFlight erasing
  /// the map entry never invalidates a blocked follower mid-wait.
  struct Entry {
    std::string hex;
    uint64_t leader_query = 0;
    bool resolved = false;   ///< Leader published or failed.
    bool published = false;  ///< Valid once resolved.
    std::string temp_table;
    int refcount = 0;
    int waiters = 0;      ///< Currently blocked followers.
    uint64_t follows = 0; ///< Total followers ever served.
    double rows_moved = 0;
    double bytes_moved = 0;
    /// (query, step) of each blocked waiter, for progress attribution.
    std::vector<std::pair<uint64_t, int>> waiter_steps;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  Stats stats_;
  ProgressHook progress_hook_;
};

}  // namespace pdw

#endif  // PDW_APPLIANCE_SHARED_STEP_REGISTRY_H_
