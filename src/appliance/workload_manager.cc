#include "appliance/workload_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/fault.h"
#include "obs/metrics.h"

namespace pdw {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

void LoadClassFromEnv(const char* prefix_slots, const char* prefix_queue,
                      const char* prefix_maxdop, WorkloadClassConfig* cfg) {
  cfg->concurrency_slots =
      std::max(1, EnvInt(prefix_slots, cfg->concurrency_slots));
  cfg->queue_depth = std::max(0, EnvInt(prefix_queue, cfg->queue_depth));
  cfg->max_parallel_nodes =
      std::max(0, EnvInt(prefix_maxdop, cfg->max_parallel_nodes));
}

}  // namespace

const char* ResourceClassName(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::kAuto:
      return "auto";
    case ResourceClass::kSmall:
      return "small";
    case ResourceClass::kMedium:
      return "medium";
    case ResourceClass::kLarge:
      return "large";
  }
  return "unknown";
}

WorkloadManagerConfig WorkloadManagerConfig::FromEnv() {
  WorkloadManagerConfig cfg;
  cfg.enabled = EnvInt("PDW_WLM_DISABLE", 0) == 0;
  cfg.medium_cost_threshold =
      EnvDouble("PDW_WLM_MEDIUM_COST", cfg.medium_cost_threshold);
  cfg.large_cost_threshold =
      EnvDouble("PDW_WLM_LARGE_COST", cfg.large_cost_threshold);
  LoadClassFromEnv("PDW_WLM_SMALL_SLOTS", "PDW_WLM_SMALL_QUEUE",
                   "PDW_WLM_SMALL_MAXDOP", &cfg.small);
  LoadClassFromEnv("PDW_WLM_MEDIUM_SLOTS", "PDW_WLM_MEDIUM_QUEUE",
                   "PDW_WLM_MEDIUM_MAXDOP", &cfg.medium);
  LoadClassFromEnv("PDW_WLM_LARGE_SLOTS", "PDW_WLM_LARGE_QUEUE",
                   "PDW_WLM_LARGE_MAXDOP", &cfg.large);
  return cfg;
}

void WorkloadManager::Ticket::Release() {
  if (manager_ == nullptr) return;
  manager_->ReleaseSlot(resource_class_);
  manager_ = nullptr;
}

WorkloadManager::WorkloadManager(WorkloadManagerConfig config)
    : config_(std::move(config)),
      small_(std::make_unique<ClassState>(config_.small)),
      medium_(std::make_unique<ClassState>(config_.medium)),
      large_(std::make_unique<ClassState>(config_.large)) {}

ResourceClass WorkloadManager::Classify(double modeled_cost,
                                        ResourceClass requested) const {
  if (requested != ResourceClass::kAuto) return requested;
  if (modeled_cost >= config_.large_cost_threshold) return ResourceClass::kLarge;
  if (modeled_cost >= config_.medium_cost_threshold)
    return ResourceClass::kMedium;
  return ResourceClass::kSmall;
}

WorkloadManager::ClassState& WorkloadManager::StateFor(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::kMedium:
      return *medium_;
    case ResourceClass::kLarge:
      return *large_;
    default:
      return *small_;
  }
}

const WorkloadManager::ClassState& WorkloadManager::StateFor(
    ResourceClass rc) const {
  return const_cast<WorkloadManager*>(this)->StateFor(rc);
}

const WorkloadClassConfig& WorkloadManager::ConfigFor(ResourceClass rc) const {
  switch (rc) {
    case ResourceClass::kMedium:
      return config_.medium;
    case ResourceClass::kLarge:
      return config_.large;
    default:
      return config_.small;
  }
}

Result<WorkloadManager::Ticket> WorkloadManager::Admit(
    uint64_t query_id, ResourceClass rc, int priority,
    const std::atomic<bool>* cancel, double* queue_seconds) {
  if (queue_seconds != nullptr) *queue_seconds = 0;
  // The fault point fires before any slot or queue state changes, so an
  // injected admission failure can never leak a slot or a queue entry.
  PDW_FAULT_POINT("wlm.admit");
  if (!config_.enabled) return Ticket();
  if (rc == ResourceClass::kAuto) rc = ResourceClass::kSmall;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const WorkloadClassConfig& cfg = ConfigFor(rc);
  double start = SteadySeconds();
  std::unique_lock<std::mutex> lock(mu_);
  ClassState& cls = StateFor(rc);

  // Fast path: no one is waiting and a slot is free. Skipping the queue is
  // only fair when the queue is empty — otherwise the newcomer would jump
  // ahead of earlier arrivals.
  if (cls.queue.empty() && cls.slots.TryAcquire()) {
    ++cls.admitted_total;
    reg.Count("wlm.admitted");
    reg.Observe("wlm.queue_wait.seconds", 0);
    return Ticket(this, rc, cfg.max_parallel_nodes);
  }

  if (static_cast<int>(cls.queue.size()) >= cfg.queue_depth) {
    ++cls.rejected_total;
    reg.Count("wlm.rejected");
    return Status::Overloaded(std::string("workload queue full for class ") +
                              ResourceClassName(rc));
  }

  // Queue FIFO-within-priority: behind every waiter of >= priority, ahead
  // of the first strictly lower one.
  auto waiter = std::make_shared<Waiter>();
  waiter->query_id = query_id;
  waiter->priority = priority;
  waiter->seq = next_seq_++;
  waiter->cancel = cancel;
  auto pos = std::find_if(cls.queue.begin(), cls.queue.end(),
                          [&](const std::shared_ptr<Waiter>& w) {
                            return w->priority < priority;
                          });
  cls.queue.insert(pos, waiter);

  cv_.wait(lock, [&] {
    return waiter->granted || (cancel != nullptr && cancel->load());
  });

  double waited = SteadySeconds() - start;
  if (queue_seconds != nullptr) *queue_seconds = waited;
  cls.queue_wait_seconds_total += waited;
  reg.Observe("wlm.queue_wait.seconds", waited);

  if (!waiter->granted) {
    // Cancelled while queued: remove the entry so it never blocks others.
    auto it = std::find(cls.queue.begin(), cls.queue.end(), waiter);
    if (it != cls.queue.end()) cls.queue.erase(it);
    ++cls.cancelled_total;
    reg.Count("wlm.cancelled");
    return Status::Cancelled("query cancelled while queued for admission");
  }
  // Granted: ReleaseSlot already acquired the slot on our behalf and
  // removed us from the queue.
  ++cls.admitted_total;
  reg.Count("wlm.admitted");
  return Ticket(this, rc, cfg.max_parallel_nodes);
}

void WorkloadManager::ReleaseSlot(ResourceClass rc) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClassState& cls = StateFor(rc);
    cls.slots.Release();
    // Promote waiters in queue order while slots remain: each promoted
    // waiter gets the slot acquired *for* it here, so a newcomer's
    // fast-path TryAcquire can never steal it.
    while (!cls.queue.empty() && cls.slots.TryAcquire()) {
      std::shared_ptr<Waiter> front = cls.queue.front();
      cls.queue.pop_front();
      if (front->cancel != nullptr && front->cancel->load()) {
        // Already cancelled: give the slot back and keep promoting.
        cls.slots.Release();
        notify = true;  // Wake it so it can report kCancelled.
        continue;
      }
      front->granted = true;
      notify = true;
      break;
    }
  }
  if (notify) cv_.notify_all();
}

void WorkloadManager::Poke() { cv_.notify_all(); }

std::vector<WorkloadClassSnapshot> WorkloadManager::Snapshot() const {
  std::vector<WorkloadClassSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  const ResourceClass classes[] = {ResourceClass::kSmall,
                                   ResourceClass::kMedium,
                                   ResourceClass::kLarge};
  const double thresholds[] = {0, config_.medium_cost_threshold,
                               config_.large_cost_threshold};
  for (int i = 0; i < 3; ++i) {
    const ClassState& cls = StateFor(classes[i]);
    const WorkloadClassConfig& cfg = ConfigFor(classes[i]);
    WorkloadClassSnapshot snap;
    snap.resource_class = classes[i];
    snap.concurrency_slots = cfg.concurrency_slots;
    snap.active = cls.slots.in_use();
    snap.queued = static_cast<int>(cls.queue.size());
    snap.queue_depth = cfg.queue_depth;
    snap.max_parallel_nodes = cfg.max_parallel_nodes;
    snap.admitted_total = cls.admitted_total;
    snap.rejected_total = cls.rejected_total;
    snap.cancelled_total = cls.cancelled_total;
    snap.queue_wait_seconds_total = cls.queue_wait_seconds_total;
    snap.cost_threshold = thresholds[i];
    out.push_back(snap);
  }
  return out;
}

void WorkloadManager::SetConfig(WorkloadManagerConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = std::move(config);
  small_ = std::make_unique<ClassState>(config_.small);
  medium_ = std::make_unique<ClassState>(config_.medium);
  large_ = std::make_unique<ClassState>(config_.large);
}

}  // namespace pdw
