#ifndef PDW_APPLIANCE_WORKLOAD_MANAGER_H_
#define PDW_APPLIANCE_WORKLOAD_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/semaphore.h"
#include "common/status.h"

namespace pdw {

/// Workload-management resource class a query is admitted under. PDW maps
/// each session to a resource class that fixes its concurrency slot and
/// memory grant; here the class is derived per query from the optimizer's
/// modeled cost (kAuto) unless the session pins one explicitly.
enum class ResourceClass { kAuto, kSmall, kMedium, kLarge };

const char* ResourceClassName(ResourceClass rc);

/// Per-resource-class admission knobs.
struct WorkloadClassConfig {
  /// Queries of this class that may execute simultaneously.
  int concurrency_slots = 4;
  /// Bounded depth of the admission queue behind those slots. A query
  /// arriving when the queue is full fast-fails with kOverloaded instead
  /// of piling onto an already saturated appliance.
  int queue_depth = 16;
  /// Cap on execution fan-out for queries of this class: bounds both
  /// per-step node parallelism and DMS pipeline workers. 0 = uncapped.
  int max_parallel_nodes = 0;
};

/// Full workload-manager configuration. FromEnv() reads the PDW_WLM_*
/// knobs so deployments (and the storm bench) can tune without recompiling:
///   PDW_WLM_DISABLE=1              pass-through admission
///   PDW_WLM_<CLASS>_SLOTS=<n>      concurrency slots (SMALL/MEDIUM/LARGE)
///   PDW_WLM_<CLASS>_QUEUE=<n>      queue depth
///   PDW_WLM_<CLASS>_MAXDOP=<n>     per-class parallelism cap
///   PDW_WLM_MEDIUM_COST=<seconds>  modeled-cost threshold small -> medium
///   PDW_WLM_LARGE_COST=<seconds>   modeled-cost threshold medium -> large
struct WorkloadManagerConfig {
  bool enabled = true;
  /// Modeled-cost (seconds) boundaries for kAuto classification:
  /// cost < medium_cost_threshold            -> small
  /// medium_cost_threshold <= cost < large.. -> medium
  /// cost >= large_cost_threshold            -> large
  double medium_cost_threshold = 0.05;
  double large_cost_threshold = 1.0;
  /// Defaults keep the appliance permissive: generous slots and queues,
  /// no fan-out caps, so single-user workloads behave exactly as without
  /// a workload manager. Deployments (and the storm bench) tighten these
  /// via PDW_WLM_* or SetConfig.
  WorkloadClassConfig small{/*concurrency_slots=*/16, /*queue_depth=*/64,
                            /*max_parallel_nodes=*/0};
  WorkloadClassConfig medium{/*concurrency_slots=*/8, /*queue_depth=*/32,
                             /*max_parallel_nodes=*/0};
  WorkloadClassConfig large{/*concurrency_slots=*/4, /*queue_depth=*/16,
                            /*max_parallel_nodes=*/0};

  static WorkloadManagerConfig FromEnv();
};

/// Point-in-time view of one resource class for sys.dm_pdw_workload.
struct WorkloadClassSnapshot {
  ResourceClass resource_class = ResourceClass::kSmall;
  int concurrency_slots = 0;
  int active = 0;           ///< Slots currently held by executing queries.
  int queued = 0;           ///< Waiters in the admission queue right now.
  int queue_depth = 0;      ///< Configured queue capacity.
  int max_parallel_nodes = 0;
  uint64_t admitted_total = 0;
  uint64_t rejected_total = 0;   ///< Fast-failed with kOverloaded.
  uint64_t cancelled_total = 0;  ///< Cancelled while waiting in the queue.
  double queue_wait_seconds_total = 0;
  double cost_threshold = 0;  ///< Lower modeled-cost bound of this class.
};

/// The appliance's admission-control tier. Every query passes through
/// Admit() after compilation (classification needs the modeled cost);
/// admission grants a concurrency slot of the query's resource class or
/// queues the request FIFO-within-priority behind the slots. The returned
/// ticket releases the slot on destruction, promoting the next waiter.
///
/// Fairness: slot handoff is serialized through the waiter queue — a
/// releasing query wakes exactly the front waiter (highest priority,
/// earliest arrival), and new arrivals go behind existing waiters, so the
/// raw semaphore's wake order never determines admission order.
class WorkloadManager {
 public:
  /// RAII concurrency slot: releasing it (destruction or explicit
  /// Release()) returns the slot and promotes the next queued waiter.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      manager_ = other.manager_;
      resource_class_ = other.resource_class_;
      max_parallel_nodes_ = other.max_parallel_nodes_;
      other.manager_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();
    bool held() const { return manager_ != nullptr; }
    ResourceClass resource_class() const { return resource_class_; }
    /// The class's execution fan-out cap (0 = uncapped).
    int max_parallel_nodes() const { return max_parallel_nodes_; }

   private:
    friend class WorkloadManager;
    Ticket(WorkloadManager* manager, ResourceClass rc, int max_parallel_nodes)
        : manager_(manager),
          resource_class_(rc),
          max_parallel_nodes_(max_parallel_nodes) {}

    WorkloadManager* manager_ = nullptr;
    ResourceClass resource_class_ = ResourceClass::kSmall;
    int max_parallel_nodes_ = 0;
  };

  explicit WorkloadManager(WorkloadManagerConfig config = {});

  /// Maps a modeled cost estimate (seconds) to a resource class using the
  /// configured thresholds. `requested` != kAuto pins the class directly.
  ResourceClass Classify(double modeled_cost, ResourceClass requested) const;

  /// Blocks until a concurrency slot of `rc` is granted (returning the
  /// RAII ticket), fails fast with kOverloaded when the class's queue is
  /// full, or fails with kCancelled when `cancel` flips while waiting.
  /// `queue_seconds`, if non-null, receives the time spent waiting.
  /// When the manager is disabled every call is an immediate pass-through
  /// ticket with no cap. The "wlm.admit" fault point fires before any slot
  /// or queue state is touched, so injected faults cannot leak either.
  Result<Ticket> Admit(uint64_t query_id, ResourceClass rc, int priority,
                       const std::atomic<bool>* cancel = nullptr,
                       double* queue_seconds = nullptr);

  /// Wakes every queued waiter so it can re-check its cancellation token.
  void Poke();

  /// Per-class rows for sys.dm_pdw_workload (small, medium, large order).
  std::vector<WorkloadClassSnapshot> Snapshot() const;

  const WorkloadManagerConfig& config() const { return config_; }
  /// Swaps the configuration. Only safe while no queries are in flight
  /// (benches reconfigure between phases); slot counts reset.
  void SetConfig(WorkloadManagerConfig config);

 private:
  struct Waiter {
    uint64_t query_id = 0;
    int priority = 0;
    uint64_t seq = 0;  ///< Arrival order within equal priority.
    const std::atomic<bool>* cancel = nullptr;
    bool granted = false;
    bool removed = false;
  };

  /// One resource class's slots + FIFO-within-priority wait queue.
  struct ClassState {
    explicit ClassState(const WorkloadClassConfig& cfg)
        : slots(cfg.concurrency_slots) {}
    CountingSemaphore slots;
    std::deque<std::shared_ptr<Waiter>> queue;  ///< Priority-desc, seq-asc.
    uint64_t admitted_total = 0;
    uint64_t rejected_total = 0;
    uint64_t cancelled_total = 0;
    double queue_wait_seconds_total = 0;
  };

  ClassState& StateFor(ResourceClass rc);
  const ClassState& StateFor(ResourceClass rc) const;
  const WorkloadClassConfig& ConfigFor(ResourceClass rc) const;
  void ReleaseSlot(ResourceClass rc);

  WorkloadManagerConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_seq_ = 0;
  std::unique_ptr<ClassState> small_;
  std::unique_ptr<ClassState> medium_;
  std::unique_ptr<ClassState> large_;
};

}  // namespace pdw

#endif  // PDW_APPLIANCE_WORKLOAD_MANAGER_H_
