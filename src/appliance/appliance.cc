#include "appliance/appliance.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

#include "appliance/dmv.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdw/step_fingerprint.h"
#include "plan/distribution.h"
#include "sql/parser.h"

namespace pdw {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sums one node's per-operator actuals into the step aggregate. Plans are
/// compiled per node against local catalogs, so shapes could in principle
/// diverge; aggregation only happens when every operator lines up, else the
/// first node's profile is kept as-is.
void MergeOperators(const std::vector<obs::OperatorProfile>& from,
                    std::vector<obs::OperatorProfile>* into) {
  if (into->empty()) {
    *into = from;
    return;
  }
  if (into->size() != from.size()) return;
  for (size_t i = 0; i < from.size(); ++i) {
    if ((*into)[i].name != from[i].name) return;
  }
  for (size_t i = 0; i < from.size(); ++i) {
    obs::OperatorProfile& dst = (*into)[i];
    // Node-count-weighted mean, so the aggregate selectivity stays a ratio.
    if (from[i].selectivity >= 0) {
      dst.selectivity = dst.selectivity < 0
                            ? from[i].selectivity
                            : (dst.selectivity * dst.nodes +
                               from[i].selectivity * from[i].nodes) /
                                  (dst.nodes + from[i].nodes);
    }
    dst.estimated_rows += from[i].estimated_rows;
    dst.actual_rows += from[i].actual_rows;
    dst.seconds += from[i].seconds;
    dst.nodes += from[i].nodes;
    dst.batches += from[i].batches;
    dst.morsels += from[i].morsels;
  }
}

/// Wraps a node-local failure with the node id and SQL, preserving the
/// transient-vs-permanent classification so RetryPolicy sees through the
/// wrapper.
Status WrapNodeStatus(int node, const Status& s, const std::string& sql) {
  StatusCode code = s.code() == StatusCode::kTransient
                        ? StatusCode::kTransient
                        : StatusCode::kExecutionError;
  return Status(code, "DSQL step failed on node " + std::to_string(node) +
                          ": " + s.ToString() + "\nSQL: " + sql);
}

/// Measured input rows of a pre-aggregating step: the step SQL's root
/// aggregate sits first in the merged pre-order operator tree; its input is
/// the next operator one level deeper. 0 when actuals were not collected.
double PreaggActualRowsIn(const std::vector<obs::OperatorProfile>& ops) {
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].name.rfind("HashAggregate", 0) != 0) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[j].depth == ops[i].depth + 1) return ops[j].actual_rows;
      if (ops[j].depth <= ops[i].depth) break;
    }
    break;
  }
  return 0;
}

void FillComponents(const DmsRunMetrics& m, obs::StepProfile* sp) {
  sp->reader = {m.reader.bytes, m.reader.seconds};
  sp->network = {m.network.bytes, m.network.seconds};
  sp->writer = {m.writer.bytes, m.writer.seconds};
  sp->bulkcopy = {m.bulkcopy.bytes, m.bulkcopy.seconds};
  sp->rows_moved = static_cast<double>(m.rows_moved);
}

std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to) {
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string::npos) {
      out.append(s, pos, std::string::npos);
      return out;
    }
    out.append(s, pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

/// Rewrites every TEMP_ID_k name (dest tables and their references inside
/// later steps' SQL) to TEMP_ID_Q<qid>_k, so concurrent executions — and
/// repeated executions of one cached plan — never collide on a node's
/// temp-table namespace. The TEMP_ID marker is preserved for cleanup
/// checks.
void UniquifyTempNames(DsqlPlan* plan, uint64_t qid) {
  const std::string from = "TEMP_ID_";
  const std::string to = "TEMP_ID_Q" + std::to_string(qid) + "_";
  for (DsqlStep& step : plan->steps) {
    step.sql = ReplaceAll(std::move(step.sql), from, to);
    if (!step.dest_table.empty()) {
      step.dest_table = ReplaceAll(std::move(step.dest_table), from, to);
    }
  }
}

/// Base tables the parallel plan scans, with their current statistics
/// versions — the plan cache's invalidation anchor.
void CollectScanTables(const PlanNode& node, const PlanCache& cache,
                       std::set<std::string>* seen,
                       std::vector<std::pair<std::string, uint64_t>>* out) {
  if (node.kind == PhysOpKind::kTableScan) {
    std::string name = ToLower(node.table_name);
    if (seen->insert(name).second) {
      out->emplace_back(name, cache.TableVersion(name));
    }
  }
  for (const auto& child : node.children) {
    CollectScanTables(*child, cache, seen, out);
  }
}

const char* EngineLabel(const ExecOptions& exec) {
  return exec.engine == EngineKind::kRow ? "row" : "batch";
}

bool SelectReadsSystemViews(const sql::SelectStatement& stmt);

bool RefReadsSystemViews(const sql::TableRef& ref) {
  switch (ref.kind) {
    case sql::TableRefKind::kBase:
      return ToLower(static_cast<const sql::BaseTableRef&>(ref).table)
                 .rfind("sys.", 0) == 0;
    case sql::TableRefKind::kJoin: {
      const auto& join = static_cast<const sql::JoinTableRef&>(ref);
      return RefReadsSystemViews(*join.left) ||
             RefReadsSystemViews(*join.right);
    }
    case sql::TableRefKind::kDerived:
      return SelectReadsSystemViews(
          *static_cast<const sql::DerivedTableRef&>(ref).subquery);
  }
  return false;
}

/// True when any FROM entry (through joins, derived tables and UNION arms)
/// reads a sys.* system view — such queries route to the control node's
/// engine instead of the distributed pipeline.
bool SelectReadsSystemViews(const sql::SelectStatement& stmt) {
  for (const auto& ref : stmt.from) {
    if (RefReadsSystemViews(*ref)) return true;
  }
  if (stmt.union_next != nullptr) {
    return SelectReadsSystemViews(*stmt.union_next);
  }
  return false;
}

/// Latency bucket bounds (seconds) shared by every duration histogram:
/// 1µs..300s with extra resolution where query phases actually land.
std::vector<double> LatencyBuckets() {
  return {1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01,
          0.025, 0.05,  0.1,  0.25,  0.5,  1,    2.5,    5,    10,
          30,    60,    120,  300};
}

/// Wires the shared worker pool's live counters and the fault registry's
/// firings into the obs metrics registry — once per process, on first
/// appliance construction (pdw_common cannot depend on pdw_obs, so both
/// subsystems expose hooks instead of counting themselves). Also declares
/// the appliance's latency histograms so sys.dm_pdw_metrics reports
/// meaningful sub-second quantiles instead of decade-bucket defaults.
void InstallObsHooks() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.DefineHistogram("appliance.query.seconds", LatencyBuckets());
    reg.DefineHistogram("optimizer.compile.seconds", LatencyBuckets());
    reg.DefineHistogram("optimizer.phase.bind.seconds", LatencyBuckets());
    reg.DefineHistogram("optimizer.phase.normalize.seconds", LatencyBuckets());
    reg.DefineHistogram("optimizer.phase.memo.seconds", LatencyBuckets());
    reg.DefineHistogram("optimizer.phase.pdw_optimize.seconds",
                        LatencyBuckets());
    reg.DefineHistogram("wlm.queue_wait.seconds", LatencyBuckets());
    reg.DefineHistogram("wlm.shared_step.wait.seconds", LatencyBuckets());
    reg.DefineHistogram("dsql.step.seconds", LatencyBuckets());
    reg.DefineHistogram("dms.reader.seconds", LatencyBuckets());
    reg.DefineHistogram("dms.network.seconds", LatencyBuckets());
    reg.DefineHistogram("dms.writer.seconds", LatencyBuckets());
    reg.DefineHistogram("dms.bulkcopy.seconds", LatencyBuckets());
    obs::MetricsRegistry::Global().SetGauge(
        "pool.size", static_cast<double>(ThreadPool::Global().size()));
    ThreadPool::Global().SetMetricsHook([](int queue_depth, int active) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      reg.SetGauge("pool.queue_depth", static_cast<double>(queue_depth));
      reg.SetGauge("pool.active_workers", static_cast<double>(active));
      ThreadPool& pool = ThreadPool::Global();
      reg.SetGauge("pool.nested_depth",
                   static_cast<double>(pool.max_nesting_depth()));
      reg.SetGauge("pool.nested_serial_fallbacks",
                   static_cast<double>(pool.nested_serial_fallbacks()));
    });
    fault::FaultRegistry::Global().SetMetricsHook(
        [](const std::string& point, fault::FaultKind kind) {
          obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
          reg.Count("fault.injected.total");
          reg.Count(std::string("fault.injected.") +
                    fault::FaultKindToString(kind));
          reg.Count("fault.injected.point." + point);
        });
  });
}

}  // namespace

Appliance::Appliance(Topology topology)
    : shell_(topology),
      dms_(topology.num_compute_nodes),
      table_versions_(std::make_shared<TableVersionTracker>()),
      plan_cache_(/*capacity=*/128, table_versions_),
      result_cache_(/*capacity=*/64, table_versions_),
      workload_(WorkloadManagerConfig::FromEnv()) {
  for (int i = 0; i < topology.num_compute_nodes; ++i) {
    compute_.push_back(std::make_unique<LocalEngine>());
  }
  InstallObsHooks();
  // Shared-move progress attribution: while a leader's DMS move runs, each
  // blocked follower's exec_steps row advances with the same rows/bytes.
  shared_steps_.set_progress_hook(
      [this](uint64_t query_id, int step_index, double rows, double bytes) {
        requests_.StepProgress(query_id, step_index, rows, bytes);
      });
  // The control node's engine doubles as the DMV host: sys.dm_pdw_* view
  // names can never collide with user tables (the parser reserves the
  // sys. prefix for dotted names), so registration cannot fail.
  Status views = InstallSystemViews(&control_, &requests_, &plan_cache_,
                                    &workload_, &result_cache_, &shared_steps_);
  (void)views;
}

Status Appliance::CreateTable(TableDef def) {
  PDW_RETURN_NOT_OK(shell_.CreateTable(def));
  for (auto& node : compute_) {
    PDW_RETURN_NOT_OK(node->CreateTable(def));
  }
  return reference_.CreateTable(std::move(def));
}

Status Appliance::CreateTableSql(const std::string& ddl) {
  PDW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(ddl));
  if (stmt.kind != sql::StatementKind::kCreateTable) {
    return Status::InvalidArgument("expected CREATE TABLE");
  }
  TableDef def;
  def.name = stmt.create_table->name;
  def.schema = stmt.create_table->schema;
  def.distribution = stmt.create_table->distribution;
  return CreateTable(std::move(def));
}

Status Appliance::LoadRows(const std::string& table, const RowVector& rows) {
  PDW_ASSIGN_OR_RETURN(const TableDef* def, shell_.GetTable(table));
  int n = num_compute_nodes();
  if (def->distribution.is_replicated()) {
    for (auto& node : compute_) {
      PDW_RETURN_NOT_OK(node->InsertRows(table, rows));
    }
  } else {
    std::vector<int> hash_ordinals;
    for (const std::string& dc : def->distribution.columns) {
      int pos = def->schema.FindColumn(dc);
      if (pos < 0) return Status::Internal("distribution column missing");
      hash_ordinals.push_back(pos);
    }
    std::vector<RowVector> shards(static_cast<size_t>(n));
    for (const Row& r : rows) {
      shards[static_cast<size_t>(dms_.TargetNode(r, hash_ordinals))]
          .push_back(r);
    }
    for (int i = 0; i < n; ++i) {
      PDW_RETURN_NOT_OK(compute_[static_cast<size_t>(i)]->InsertRows(
          table, std::move(shards[static_cast<size_t>(i)])));
    }
  }
  PDW_RETURN_NOT_OK(reference_.InsertRows(table, rows));
  return RefreshStatistics(table);
}

Status Appliance::RefreshStatistics(const std::string& table) {
  PDW_ASSIGN_OR_RETURN(TableDef* def, shell_.GetMutableTable(table));
  std::vector<TableStats> parts;
  for (auto& node : compute_) {
    PDW_ASSIGN_OR_RETURN(TableStats local, node->ComputeLocalStats(table));
    parts.push_back(std::move(local));
  }
  std::string dist_col = def->distribution.is_replicated() ||
                                 def->distribution.columns.empty()
                             ? ""
                             : ToLower(def->distribution.columns[0]);
  if (def->distribution.is_replicated() && !parts.empty()) {
    // Every node holds the same rows: the global stats are any node's.
    def->stats = parts[0];
  } else {
    def->stats = TableStats::Merge(parts, dist_col);
  }
  // Fresh statistics can change distribution-dependent plan choices — and
  // fresh rows change answers. The bump goes through the tracker shared by
  // the plan cache and the result cache, so both invalidate at once.
  plan_cache_.BumpTableVersion(table);
  return Status::OK();
}

std::vector<int> Appliance::SourceNodes(const DsqlStep& step) const {
  int n = dms_.num_compute_nodes();
  if (step.source_distribution.is_control()) return {dms_.control_node()};
  if (step.kind == DsqlStepKind::kReturn &&
      step.source_distribution.is_replicated()) {
    return {0};  // identical streams: read one copy
  }
  if (step.kind == DsqlStepKind::kDms) {
    if (step.move_kind == DmsOpKind::kReplicatedBroadcast) return {0};
    if (step.move_kind == DmsOpKind::kRemoteCopyToSingle &&
        step.source_distribution.is_replicated()) {
      return {0};
    }
  }
  std::vector<int> all;
  for (int i = 0; i < n; ++i) all.push_back(i);
  return all;
}

std::vector<int> Appliance::TargetNodes(const DsqlStep& step) const {
  int n = dms_.num_compute_nodes();
  switch (step.move_kind) {
    case DmsOpKind::kPartitionMove:
    case DmsOpKind::kRemoteCopyToSingle:
      return {dms_.control_node()};
    default: {
      std::vector<int> all;
      for (int i = 0; i < n; ++i) all.push_back(i);
      return all;
    }
  }
}

Status Appliance::DropTemps(const std::vector<std::string>& temps) {
  for (const std::string& name : temps) {
    for (auto& node : compute_) {
      if (node->HasTable(name)) PDW_RETURN_NOT_OK(node->DropTable(name));
    }
    if (control_.HasTable(name)) PDW_RETURN_NOT_OK(control_.DropTable(name));
  }
  return Status::OK();
}

Result<ApplianceResult> Appliance::ExecuteDsql(const DsqlPlan& dsql,
                                               uint64_t query_id,
                                               bool profile_operators,
                                               int max_parallel_nodes,
                                               const ExecOptions& exec,
                                               DmsCodec dms_codec,
                                               const RetryPolicy& retry,
                                               bool share_steps,
                                               const std::atomic<bool>* cancel) {
  ApplianceResult result;
  result.dsql = dsql;
  result.column_names = dsql.output_names;
  double start = NowSeconds();
  std::vector<std::string> temps;
  obs::TraceSpan dsql_span("appliance.execute_dsql");
  dsql_span.AddAttr("steps", static_cast<double>(dsql.steps.size()));

  // Working copy of the plan for sub-plan sharing: a follower adopting a
  // leader's temp table rewrites later steps' references to it. result.dsql
  // doubles as that copy so the returned plan shows what actually ran.
  DsqlPlan& plan = result.dsql;
  // Step identities for the cross-query rendezvous (empty text = never
  // shared). Computed against the appliance's shared stats-version tracker,
  // so a load between two queries splits their fingerprints exactly as it
  // invalidates their cached plans.
  std::vector<StepFingerprint> fingerprints;
  if (share_steps) {
    StepFingerprintOptions fpo;
    fpo.engine_label = EngineLabel(exec);
    fpo.codec_label = dms_codec == DmsCodec::kColumnar ? "columnar" : "row";
    fingerprints =
        ComputeStepFingerprints(plan, query_id, *table_versions_, fpo);
  }
  // Registry references this execution holds (one per led-and-published or
  // followed step; a key may appear twice when a later step of this same
  // query re-joins its own published step). Every exit path releases them;
  // whoever drops a refcount to zero physically drops the shared temp.
  std::vector<std::string> shared_refs;
  auto release_shared = [&] {
    std::vector<std::string> drops;
    for (const std::string& key : shared_refs) {
      std::string t = shared_steps_.Release(key);
      if (!t.empty()) drops.push_back(t);
    }
    shared_refs.clear();
    if (!drops.empty()) (void)DropTemps(drops);
  };
  // Share key of the DMS step this execution is currently *leading*; the
  // DMS progress lambdas fan leader progress out to blocked followers
  // through it. Only written between step dispatches (never concurrently
  // with the pipeline's progress callbacks).
  const std::string* active_share_key = nullptr;

  // Transition the registry entry to executing with the plan's step
  // skeleton, so DMV queries see every step (pending ones included) from
  // the moment execution starts.
  {
    std::vector<obs::RequestStepState> skeleton;
    for (size_t i = 0; i < dsql.steps.size(); ++i) {
      const DsqlStep& step = dsql.steps[i];
      obs::RequestStepState s;
      s.index = static_cast<int>(i);
      s.kind = step.kind == DsqlStepKind::kDms ? "DMS" : "RETURN";
      if (step.kind == DsqlStepKind::kDms) {
        s.move_kind = DmsOpKindToString(step.move_kind);
      }
      s.dest_table = step.dest_table;
      s.sql = step.sql;
      skeleton.push_back(std::move(s));
    }
    requests_.BeginExecute(query_id, std::move(skeleton));
  }

  ThreadPool& pool = ThreadPool::Global();
  bool parallel = max_parallel_nodes != 1;
  double latency = dispatch_latency_seconds_;

  auto engine_of = [&](int node) -> LocalEngine& {
    return node == dms_.control_node() ? control_
                                       : *compute_[static_cast<size_t>(node)];
  };

  // Every abort funnels through here, and DropTemps traverses no fault
  // points, so a failed plan can never leak a TEMP_ID table — the appliance
  // stays serviceable for the next query.
  auto cleanup_and_fail = [&](Status s) -> Status {
    release_shared();
    Status drop = DropTemps(temps);
    (void)drop;
    return s;
  };

  // Runs one step's SQL on every node of `nodes` simultaneously (capped at
  // max_parallel_nodes; 1 = the serial node-by-node loop). Each node lands
  // its rows in source_rows[node]; per-node wall times go to the step
  // profile, per-operator actuals are merged in node order afterwards so
  // the aggregate stays deterministic.
  auto run_on_nodes =
      [&](const DsqlStep& step, const std::vector<int>& nodes,
          std::vector<RowVector>* source_rows,
          obs::StepProfile* sp) -> Status {
    size_t count = nodes.size();
    std::vector<ExecProfile> node_profiles(profile_operators ? count : 0);
    std::vector<Status> node_status(count);
    std::vector<SqlResult> node_results(count);
    std::vector<double> node_seconds(count, 0);
    pool.ParallelFor(
        static_cast<int>(count),
        [&](int i) {
          int node = nodes[static_cast<size_t>(i)];
          // Control→compute RPC of shipping the SQL and collecting status.
          Status fs = fault::Check("appliance.step.dispatch");
          if (!fs.ok()) {
            node_status[static_cast<size_t>(i)] =
                WrapNodeStatus(node, fs, step.sql);
            return;
          }
          if (latency > 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(latency));
          }
          double t0 = NowSeconds();
          auto rows = engine_of(node).ExecuteSql(
              step.sql,
              profile_operators ? &node_profiles[static_cast<size_t>(i)]
                                : nullptr,
              exec);
          node_seconds[static_cast<size_t>(i)] = NowSeconds() - t0;
          if (!rows.ok()) {
            node_status[static_cast<size_t>(i)] =
                WrapNodeStatus(node, rows.status(), step.sql);
            return;
          }
          node_results[static_cast<size_t>(i)] = std::move(*rows);
        },
        parallel ? max_parallel_nodes : 1);
    for (size_t i = 0; i < count; ++i) {
      if (!node_status[i].ok()) return node_status[i];
      sp->node_seconds.emplace_back(nodes[i], node_seconds[i]);
      if (profile_operators) {
        MergeOperators(node_profiles[i].operators, &sp->operators);
      }
      if (result.column_names.empty()) {
        result.column_names = node_results[i].column_names;
      }
      (*source_rows)[static_cast<size_t>(nodes[i])] =
          std::move(node_results[i].rows);
    }
    return Status::OK();
  };

  // Runs one DMS step end-to-end: source SQL on every source node, rows
  // through DMS, destination temp table materialized on every target node.
  auto run_dms_step = [&](const DsqlStep& step,
                          obs::StepProfile* sp) -> Status {
    sp->kind = "DMS";
    sp->move_kind = DmsOpKindToString(step.move_kind);
    sp->dest_table = step.dest_table;
    obs::TraceSpan step_span("dsql.step");
    step_span.AddAttr("kind", sp->move_kind);
    step_span.AddAttr("dest", step.dest_table);
    int slots = dms_.num_compute_nodes() + 1;
    DmsRunMetrics metrics;
    Result<std::vector<RowVector>> routed =
        Status::Internal("DMS step not executed");
    if (dms_codec == DmsCodec::kColumnar) {
      // Streaming path: each source node's SQL runs inside its DMS
      // producer, so row production on one node overlaps pack/route/
      // unpack of nodes that finished earlier — no materialization
      // barrier between step execution and movement.
      const std::vector<int> sources = SourceNodes(step);
      std::vector<ExecProfile> node_profiles(
          profile_operators ? sources.size() : 0);
      std::vector<double> node_seconds(sources.size(), 0);
      std::vector<std::vector<std::string>> node_names(sources.size());
      std::vector<DmsProducer> producers(static_cast<size_t>(slots));
      for (size_t i = 0; i < sources.size(); ++i) {
        int node = sources[i];
        producers[static_cast<size_t>(node)] =
            [&, node, i]() -> Result<RowVector> {
          // Control→compute RPC of shipping the SQL.
          Status fs = fault::Check("appliance.step.dispatch");
          if (!fs.ok()) return WrapNodeStatus(node, fs, step.sql);
          if (latency > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(latency));
          }
          double t0 = NowSeconds();
          auto rows = engine_of(node).ExecuteSql(
              step.sql, profile_operators ? &node_profiles[i] : nullptr,
              exec);
          node_seconds[i] = NowSeconds() - t0;
          if (!rows.ok()) {
            return WrapNodeStatus(node, rows.status(), step.sql);
          }
          node_names[i] = std::move(rows->column_names);
          return std::move(rows->rows);
        };
      }
      DmsExecOptions dms_options;
      dms_options.codec = DmsCodec::kColumnar;
      dms_options.cancel = cancel;
      dms_options.max_workers = max_parallel_nodes;
      dms_options.progress = [this, query_id, idx = sp->index,
                              &active_share_key](double rows_delta,
                                                 double bytes_delta) {
        requests_.StepProgress(query_id, idx, rows_delta, bytes_delta);
        // Leading a shared step: attribute the same movement to every
        // follower blocked on it, so their DMV rows advance live too.
        if (active_share_key != nullptr) {
          shared_steps_.Progress(*active_share_key, rows_delta, bytes_delta);
        }
      };
      for (const ColumnDef& col : step.dest_schema.columns()) {
        dms_options.types.push_back(col.type);
      }
      routed = dms_.ExecutePipelined(step.move_kind, std::move(producers),
                                     step.hash_column_ordinals, &metrics,
                                     parallel ? &pool : nullptr, dms_options);
      for (size_t i = 0; i < sources.size(); ++i) {
        sp->node_seconds.emplace_back(sources[i], node_seconds[i]);
        if (profile_operators) {
          MergeOperators(node_profiles[i].operators, &sp->operators);
        }
        if (result.column_names.empty() && !node_names[i].empty()) {
          result.column_names = node_names[i];
        }
      }
    } else {
      // Legacy row path: 1. run the step's SQL on every source node
      // simultaneously, materializing all rows; 2. move them phase by
      // phase through DMS.
      std::vector<RowVector> source_rows(static_cast<size_t>(slots));
      PDW_RETURN_NOT_OK(
          run_on_nodes(step, SourceNodes(step), &source_rows, sp));
      DmsExecOptions dms_options;
      dms_options.codec = DmsCodec::kRow;
      dms_options.cancel = cancel;
      dms_options.max_workers = max_parallel_nodes;
      dms_options.progress = [this, query_id, idx = sp->index,
                              &active_share_key](double rows_delta,
                                                 double bytes_delta) {
        requests_.StepProgress(query_id, idx, rows_delta, bytes_delta);
        if (active_share_key != nullptr) {
          shared_steps_.Progress(*active_share_key, rows_delta, bytes_delta);
        }
      };
      routed = dms_.Execute(step.move_kind, std::move(source_rows),
                            step.hash_column_ordinals, &metrics,
                            parallel ? &pool : nullptr, dms_options);
    }
    if (!routed.ok()) return routed.status();
    result.dms_metrics.Accumulate(metrics);
    FillComponents(metrics, sp);
    sp->actual_rows = static_cast<double>(metrics.rows_moved);
    // 3. Materialize the destination temp table on every target node,
    // again simultaneously — engines are per-node, so each target only
    // touches its own catalog and storage.
    TableDef temp_def;
    temp_def.name = step.dest_table;
    temp_def.schema = step.dest_schema;
    const std::vector<int> targets = TargetNodes(step);
    std::vector<Status> target_status(targets.size());
    pool.ParallelFor(
        static_cast<int>(targets.size()),
        [&](int i) {
          int node = targets[static_cast<size_t>(i)];
          LocalEngine& engine = engine_of(node);
          Status ts = fault::Check("appliance.temp.create");
          if (ts.ok()) ts = engine.CreateTable(temp_def);
          if (ts.ok()) {
            ts = engine.InsertRows(
                step.dest_table,
                std::move((*routed)[static_cast<size_t>(node)]));
          }
          target_status[static_cast<size_t>(i)] = std::move(ts);
        },
        parallel ? max_parallel_nodes : 1);
    for (Status& ts : target_status) {
      if (!ts.ok()) return std::move(ts);
    }
    return Status::OK();
  };

  // Runs the Return step: per-source-node SQL, deterministic assembly,
  // merge sort, limit, visible-column trim.
  auto run_return_step = [&](const DsqlStep& step,
                             obs::StepProfile* sp) -> Status {
    sp->kind = "RETURN";
    obs::TraceSpan step_span("dsql.step");
    step_span.AddAttr("kind", std::string("Return"));
    int slots = dms_.num_compute_nodes() + 1;
    std::vector<RowVector> per_node(static_cast<size_t>(slots));
    const std::vector<int> sources = SourceNodes(step);
    PDW_RETURN_NOT_OK(run_on_nodes(step, sources, &per_node, sp));
    // Assemble in node order, keeping the serial loop's deterministic
    // stream order regardless of which node finished first.
    RowVector assembled;
    for (int node : sources) {
      RowVector& rows = per_node[static_cast<size_t>(node)];
      assembled.insert(assembled.end(), std::make_move_iterator(rows.begin()),
                       std::make_move_iterator(rows.end()));
    }
    if (!step.merge_sort.empty()) {
      std::stable_sort(assembled.begin(), assembled.end(),
                       [&](const Row& a, const Row& b) {
                         for (const auto& [o, asc] : step.merge_sort) {
                           int c = a[static_cast<size_t>(o)].Compare(
                               b[static_cast<size_t>(o)]);
                           if (c != 0) return asc ? c < 0 : c > 0;
                         }
                         return false;
                       });
    }
    if (step.final_limit >= 0 &&
        assembled.size() > static_cast<size_t>(step.final_limit)) {
      assembled.resize(static_cast<size_t>(step.final_limit));
    }
    if (dsql.visible_columns >= 0) {
      size_t visible = static_cast<size_t>(dsql.visible_columns);
      for (Row& r : assembled) {
        if (r.size() > visible) r.resize(visible);
      }
      if (result.column_names.size() > visible) {
        result.column_names.resize(visible);
      }
    }
    result.rows = std::move(assembled);
    sp->actual_rows = static_cast<double>(result.rows.size());
    return Status::OK();
  };

  // Each step runs under the retry policy: a transient failure (node
  // hiccup, injected fault) re-runs the whole step after its partial dest
  // temp is dropped everywhere, with exponential backoff in between; any
  // other failure aborts the plan through cleanup_and_fail. The profile
  // keeps the successful attempt's numbers plus the retry count.
  int max_attempts = std::max(1, retry.max_attempts);
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const DsqlStep& step = plan.steps[i];
    int step_index = static_cast<int>(i);
    bool is_dms = step.kind == DsqlStepKind::kDms;

    // Sub-plan sharing rendezvous: before executing a shareable DMS step,
    // look for (or become) a concurrent execution of the same fingerprint.
    // An injected wlm.share.join fault skips sharing and runs the step
    // privately — sharing faults degrade to isolation, never fail queries.
    bool lead = false;
    const std::string* share_key = nullptr;
    if (is_dms && share_steps && fingerprints[i].shareable()) {
      Status sf = fault::Check("wlm.share.join");
      if (!sf.ok()) {
        obs::MetricsRegistry::Global().Count("wlm.shared_step.fault_skip");
      } else {
        SharedStepRegistry::JoinOutcome join = shared_steps_.JoinOrLead(
            fingerprints[i].text, fingerprints[i].hex, query_id, step_index,
            cancel);
        if (join.role == SharedStepRegistry::Role::kFollower) {
          // Adopt the leader's materialized temp table: hold a registry
          // reference until this query finishes and point every later
          // step's SQL at the adopted name instead of our own (bracketed
          // replacement, so TEMP_ID_Q7_1 can never corrupt TEMP_ID_Q7_10).
          shared_refs.push_back(fingerprints[i].text);
          const std::string own = "[" + step.dest_table + "]";
          const std::string adopted = "[" + join.temp_table + "]";
          for (size_t j = i + 1; j < plan.steps.size(); ++j) {
            plan.steps[j].sql =
                ReplaceAll(std::move(plan.steps[j].sql), own, adopted);
          }
          obs::StepProfile fsp;
          fsp.index = step_index;
          fsp.kind = "DMS";
          fsp.move_kind = DmsOpKindToString(step.move_kind);
          fsp.dest_table = join.temp_table;
          fsp.sql = step.sql;
          fsp.estimated_rows = step.estimated_rows;
          fsp.estimated_cost = step.estimated_cost;
          fsp.shared_role = "follower";
          fsp.shared_saved_bytes = join.saved_bytes;
          fsp.actual_rows = join.saved_rows;
          fsp.measured_seconds = join.wait_seconds;
          requests_.BeginStep(query_id, step_index, 0);
          obs::RequestStepState fin;
          fin.index = step_index;
          fin.kind = fsp.kind;
          fin.move_kind = fsp.move_kind;
          fin.dest_table = fsp.dest_table;
          fin.sql = fsp.sql;
          fin.seconds = join.wait_seconds;
          fin.shared_role = "follower";
          fin.saved_bytes = join.saved_bytes;
          requests_.EndStep(query_id, fin);
          obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
          reg.Observe("wlm.shared_step.wait.seconds", join.wait_seconds);
          reg.Observe("dsql.step.seconds", join.wait_seconds);
          ++result.shared_steps_followed;
          result.shared_saved_bytes += join.saved_bytes;
          result.dms_metrics.saved_bytes += join.saved_bytes;
          result.profile.steps.push_back(std::move(fsp));
          continue;
        }
        if (join.role == SharedStepRegistry::Role::kLeader) {
          lead = true;
          share_key = &fingerprints[i].text;
        }
        // Role::kSkipped: cancelled while waiting on a leader — fall
        // through; the step-boundary check below aborts cleanly.
      }
    }

    if (is_dms) temps.push_back(step.dest_table);
    if (lead) active_share_key = share_key;
    obs::StepProfile sp;
    for (int attempt = 0;; ++attempt) {
      // Cooperative cancellation is observed at every step boundary and at
      // every retry re-entry; the abort goes through cleanup_and_fail so a
      // cancelled query never leaks temp tables. A cancelled *leader* fails
      // its flight first, releasing blocked followers to re-lead.
      if (cancel != nullptr && cancel->load()) {
        if (lead) shared_steps_.FailFlight(*share_key);
        return cleanup_and_fail(
            Status::Cancelled("query cancelled at step boundary"));
      }
      sp = obs::StepProfile{};
      sp.index = step_index;
      sp.sql = step.sql;
      sp.estimated_rows = step.estimated_rows;
      sp.estimated_cost = step.estimated_cost;
      sp.preagg = step.preagg;
      sp.preagg_rows_in = step.preagg_rows_in;
      sp.retries = attempt;
      requests_.BeginStep(query_id, step_index, attempt);
      double step_start = NowSeconds();
      Status s = is_dms ? run_dms_step(step, &sp) : run_return_step(step, &sp);
      if (s.ok()) {
        sp.measured_seconds = NowSeconds() - step_start;
        if (sp.preagg) {
          sp.preagg_rows_in_actual = PreaggActualRowsIn(sp.operators);
          obs::MetricsRegistry::Global().Count("dms.preagg.rows_in",
                                               sp.preagg_rows_in_actual);
          obs::MetricsRegistry::Global().Count("dms.preagg.rows_out",
                                               sp.rows_moved);
        }
        break;
      }
      if (!retry.IsRetryable(s) || attempt + 1 >= max_attempts) {
        // A failed leader releases its followers to execute independently
        // (the first one back through JoinOrLead becomes the new leader);
        // its partial temp stays private and is dropped below.
        if (lead) shared_steps_.FailFlight(*share_key);
        return cleanup_and_fail(std::move(s));
      }
      // The failed attempt may have materialized a partial dest temp on
      // some target nodes: drop it so the retry starts clean.
      if (is_dms) (void)DropTemps({step.dest_table});
      double backoff = retry.BackoffForAttempt(attempt + 1);
      obs::MetricsRegistry::Global().Count("retry.attempts");
      obs::MetricsRegistry::Global().Count("retry.backoff_seconds", backoff);
      retry.Sleep(backoff);
    }
    active_share_key = nullptr;
    // Leader success: publish the materialized temp to the registry, which
    // wakes blocked followers and takes over the temp's lifetime (ownership
    // leaves `temps`; the last Release drops it). An injected
    // wlm.share.publish fault fails the flight instead — followers re-lead
    // and the temp stays private to this query's normal cleanup.
    if (lead) {
      Status pf = fault::Check("wlm.share.publish");
      if (pf.ok()) {
        int granted = shared_steps_.Publish(*share_key, step.dest_table,
                                            sp.actual_rows, sp.network.bytes);
        temps.pop_back();
        shared_refs.push_back(*share_key);
        sp.shared_role = "leader";
        if (granted > 0) ++result.shared_steps_led;
      } else {
        shared_steps_.FailFlight(*share_key);
        obs::MetricsRegistry::Global().Count("wlm.shared_step.fault_skip");
      }
    }
    // Finalize the registry's step with the successful attempt's metered
    // totals (replacing live-progress counts, which double-count broadcast
    // fan-out) and feed the latency histograms behind sys.dm_pdw_metrics.
    {
      obs::RequestStepState fin;
      fin.index = sp.index;
      fin.kind = sp.kind;
      fin.move_kind = sp.move_kind;
      fin.dest_table = sp.dest_table;
      fin.sql = sp.sql;
      fin.retries = sp.retries;
      fin.rows_moved = sp.actual_rows;
      fin.bytes_moved = sp.network.bytes;
      fin.seconds = sp.measured_seconds;
      fin.component_bytes[0] = sp.reader.bytes;
      fin.component_bytes[1] = sp.network.bytes;
      fin.component_bytes[2] = sp.writer.bytes;
      fin.component_bytes[3] = sp.bulkcopy.bytes;
      fin.component_seconds[0] = sp.reader.seconds;
      fin.component_seconds[1] = sp.network.seconds;
      fin.component_seconds[2] = sp.writer.seconds;
      fin.component_seconds[3] = sp.bulkcopy.seconds;
      fin.shared_role = sp.shared_role;
      fin.saved_bytes = sp.shared_saved_bytes;
      requests_.EndStep(query_id, fin);
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      reg.Observe("dsql.step.seconds", sp.measured_seconds);
      if (is_dms) {
        reg.Observe("dms.reader.seconds", sp.reader.seconds);
        reg.Observe("dms.network.seconds", sp.network.seconds);
        reg.Observe("dms.writer.seconds", sp.writer.seconds);
        reg.Observe("dms.bulkcopy.seconds", sp.bulkcopy.seconds);
      }
    }
    result.profile.steps.push_back(std::move(sp));
  }

  // Release this execution's shared-step references first: whoever drops a
  // refcount to zero physically drops that shared temp (refcounted temp
  // lifetime — a leader's published temp outlives it while followers read).
  release_shared();
  // End-of-query temp cleanup passes through its own injection point under
  // the same retry policy; a permanently injected drop failure still cleans
  // up (DropTemps itself is fault-exempt) but surfaces the error.
  Status drop = RunWithRetries(
      retry,
      [&]() -> Status {
        PDW_FAULT_POINT("appliance.temp.drop");
        return DropTemps(temps);
      },
      [&](int, double backoff) {
        obs::MetricsRegistry::Global().Count("retry.attempts");
        obs::MetricsRegistry::Global().Count("retry.backoff_seconds", backoff);
      });
  if (!drop.ok()) {
    (void)DropTemps(temps);
    return drop;
  }
  result.measured_seconds = NowSeconds() - start;
  result.profile.measured_seconds = result.measured_seconds;
  result.profile.modeled_cost = dsql.total_move_cost;
  return result;
}

Result<ApplianceResult> Appliance::Run(const std::string& sql,
                                       const QueryOptions& options) {
  return RunAs(kDefaultSessionId, sql, options);
}

std::shared_ptr<std::atomic<bool>> Appliance::RegisterCancelFlag(
    uint64_t query_id) {
  auto flag = std::make_shared<std::atomic<bool>>(false);
  std::lock_guard<std::mutex> lock(cancel_mu_);
  cancel_flags_[query_id] = flag;
  return flag;
}

void Appliance::UnregisterCancelFlag(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(cancel_mu_);
  cancel_flags_.erase(query_id);
}

Status Appliance::Cancel(uint64_t query_id) {
  std::shared_ptr<std::atomic<bool>> flag;
  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    auto it = cancel_flags_.find(query_id);
    if (it == cancel_flags_.end()) {
      return Status::NotFound("no in-flight query with id " +
                              std::to_string(query_id));
    }
    flag = it->second;
  }
  flag->store(true);
  // Wake admission-queue waiters so a queued (not yet executing) query
  // observes the flag immediately instead of after getting a slot, and
  // shared-step followers so a cancelled one abandons its leader wait.
  workload_.Poke();
  shared_steps_.Poke();
  return Status::OK();
}

Result<ApplianceResult> Appliance::RunAs(uint64_t session_id,
                                         const std::string& sql,
                                         const QueryOptions& options) {
  // Trace export: a per-query path (ObserveOptions::trace_out) or the
  // process-wide PDW_TRACE_OUT turns the global tracer on before the run
  // and dumps a Chrome-trace JSON file after it.
  std::string trace_path = options.observe.trace_out;
  if (trace_path.empty()) {
    const char* env = std::getenv("PDW_TRACE_OUT");
    if (env != nullptr && *env != '\0') trace_path = env;
  }
  if (!trace_path.empty()) obs::Tracer::Global().Enable();

  // Register the request before any work happens, so even a parse failure
  // shows up in sys.dm_pdw_exec_requests; every exit path of RunImpl then
  // lands in exactly one terminal phase below.
  uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  requests_.Register(query_id, session_id, NormalizeSqlForPlanCache(sql),
                     EngineLabel(options.execute.engine));
  std::shared_ptr<std::atomic<bool>> cancel = RegisterCancelFlag(query_id);
  double start = NowSeconds();
  Result<ApplianceResult> result = Status::Internal("query not executed");
  {
    obs::TraceSpan span("appliance.run");
    span.AddAttr("query_id", static_cast<double>(query_id));
    result = RunImpl(query_id, sql, options, cancel.get());
  }
  UnregisterCancelFlag(query_id);
  obs::MetricsRegistry::Global().Observe("appliance.query.seconds",
                                         NowSeconds() - start);
  if (result.ok()) {
    result->query_id = query_id;
    result->session_id = session_id;
    result->profile.query_id = query_id;
    requests_.Complete(query_id);
  } else if (result.status().code() == StatusCode::kCancelled) {
    requests_.Cancel(query_id, result.status().ToString());
  } else {
    requests_.Fail(query_id, result.status().ToString());
  }
  if (!trace_path.empty()) {
    Status written = obs::Tracer::Global().WriteChromeTrace(trace_path);
    (void)written;
  }
  return result;
}

Result<ApplianceResult> Appliance::RunDmvQuery(uint64_t query_id,
                                               const std::string& sql,
                                               const QueryOptions& options) {
  obs::TraceSpan span("appliance.dmv_query");
  requests_.BeginCompile(query_id);
  requests_.EndCompile(query_id, /*cache_hit=*/false);
  requests_.BeginExecute(query_id, {});
  double start = NowSeconds();
  PDW_ASSIGN_OR_RETURN(
      SqlResult rows, control_.ExecuteSql(sql, nullptr, options.execute.engine));
  ApplianceResult result;
  result.column_names = std::move(rows.column_names);
  result.rows = std::move(rows.rows);
  result.measured_seconds = NowSeconds() - start;
  result.plan_text = "-- control-node DMV query (system-view snapshot scan)";
  result.explain_text = result.plan_text;
  result.profile.sql = sql;
  result.profile.measured_seconds = result.measured_seconds;
  return result;
}

Result<ApplianceResult> Appliance::RunImpl(uint64_t query_id,
                                           const std::string& sql,
                                           const QueryOptions& options,
                                           const std::atomic<bool>* cancel) {
  // Queries over sys.dm_pdw_* system views never enter the distributed
  // pipeline: they run on the control node, like DMVs on the real
  // appliance — bypassing the workload manager and the result cache too,
  // so monitoring stays responsive on a saturated appliance. A parse
  // failure falls through so the ordinary pipeline reports its usual error.
  {
    auto parsed = sql::ParseStatement(sql);
    if (parsed.ok() && parsed->kind == sql::StatementKind::kSelect &&
        SelectReadsSystemViews(*parsed->select)) {
      return RunDmvQuery(query_id, sql, options);
    }
  }

  // Result cache: served entirely from the control node — no compile, no
  // admission, no execution. A miss makes this call the *leader* of its
  // key: identical queries arriving while it runs coalesce onto its
  // result, so the Publish/FailFlight obligation below must cover every
  // exit path of the body.
  const bool use_result_cache =
      options.execute.use_result_cache && !options.compile.explain_only;
  std::string rc_normalized, rc_fingerprint;
  if (use_result_cache) {
    rc_normalized = NormalizeSqlForPlanCache(sql);
    rc_fingerprint = FingerprintCompilerOptions(options.compile.compiler);
    bool coalesced = false;
    if (auto hit = result_cache_.LookupOrJoin(rc_normalized, rc_fingerprint,
                                              &coalesced)) {
      requests_.MarkResultCacheHit(query_id);
      ApplianceResult result;
      result.column_names = std::move(hit->column_names);
      result.rows = std::move(hit->rows);
      result.plan_text = std::move(hit->plan_text);
      result.modeled_cost = hit->modeled_cost;
      result.result_cache_hit = true;
      result.explain_text =
          std::string("-- served from result cache") +
          (coalesced ? " (coalesced onto identical in-flight query)" : "") +
          "\n" + result.plan_text;
      result.profile.sql = sql;
      result.profile.query_id = query_id;
      result.profile.modeled_cost = result.modeled_cost;
      return result;
    }
  }

  auto body = [&]() -> Result<ApplianceResult> {
    // Arm this query's fault schedule (if any) for the duration of the call
    // and open a new query scope, so query#-scoped specs — '1' in
    // ExecutionOptions::faults, the matching serial in PDW_FAULTS — target
    // it.
    fault::ScopedFaults scoped_faults(options.execute.faults);
    if (fault::FaultRegistry::Armed()) {
      fault::FaultRegistry::Global().BeginQuery();
    }
    obs::QueryProfile profile;
    profile.sql = sql;
    profile.query_id = query_id;

    // 1. Obtain a DSQL plan: from the plan cache when allowed and fresh,
    // else through the full parse→memo→XML→enumeration pipeline.
    DsqlPlan dsql;
    std::string plan_text;
    double modeled_cost = 0;
    std::vector<std::string> output_names;
    bool cache_hit = false;
    // Base tables the plan scans with their stats versions: the
    // invalidation anchor for both the plan cache and the result cache.
    std::vector<std::pair<std::string, uint64_t>> scan_versions;

    requests_.BeginCompile(query_id);
    std::string normalized, fingerprint;
    if (options.compile.use_plan_cache) {
      double t0 = NowSeconds();
      normalized = NormalizeSqlForPlanCache(sql);
      fingerprint = FingerprintCompilerOptions(options.compile.compiler);
      if (auto cached = plan_cache_.Lookup(normalized, fingerprint)) {
        dsql = std::move(cached->dsql);
        plan_text = std::move(cached->plan_text);
        modeled_cost = cached->modeled_cost;
        output_names = std::move(cached->output_names);
        profile.optimizer = cached->optimizer;
        scan_versions = std::move(cached->table_versions);
        cache_hit = true;
        double dt = NowSeconds() - t0;
        profile.compile_phases.push_back({"plan_cache_lookup", dt});
        profile.compile_seconds = dt;
      }
    }

    if (!cache_hit) {
      PDW_ASSIGN_OR_RETURN(
          PdwCompilation comp,
          CompilePdwQuery(shell_, sql, options.compile.compiler));
      double t0 = NowSeconds();
      {
        obs::TraceSpan gen("compile.dsql_gen");
        PDW_ASSIGN_OR_RETURN(
            dsql, GenerateDsql(*comp.parallel.plan, comp.output_names, "tpch",
                               comp.serial.visible_columns));
      }
      comp.phase_seconds.emplace_back("dsql_gen", NowSeconds() - t0);
      plan_text = PlanTreeToString(*comp.parallel.plan);
      modeled_cost = comp.parallel.cost;
      output_names = comp.output_names;
      for (const auto& [name, seconds] : comp.phase_seconds) {
        profile.compile_phases.push_back({name, seconds});
        profile.compile_seconds += seconds;
      }
      profile.optimizer.groups =
          static_cast<double>(comp.parallel.groups_optimized);
      profile.optimizer.options_considered =
          static_cast<double>(comp.parallel.options_considered);
      profile.optimizer.options_kept =
          static_cast<double>(comp.parallel.options_kept);
      profile.optimizer.options_pruned =
          static_cast<double>(comp.parallel.options_pruned);
      profile.optimizer.enforcers_inserted =
          static_cast<double>(comp.parallel.enforcers_inserted);
      profile.optimizer.memo_groups = static_cast<double>(comp.memo_groups);
      profile.optimizer.memo_exprs = static_cast<double>(comp.memo_exprs);
      profile.optimizer.budget_exhausted = comp.budget_exhausted;
      profile.optimizer.beam_used = comp.beam_used;

      std::set<std::string> seen;
      CollectScanTables(*comp.parallel.plan, plan_cache_, &seen,
                        &scan_versions);
      if (options.compile.use_plan_cache) {
        CachedDsqlPlan entry;
        entry.dsql = dsql;
        entry.output_names = output_names;
        entry.plan_text = plan_text;
        entry.modeled_cost = modeled_cost;
        entry.optimizer = profile.optimizer;
        entry.table_versions = scan_versions;
        plan_cache_.Insert(normalized, fingerprint, std::move(entry));
      }
    }
    profile.modeled_cost = modeled_cost;
    profile.cache_hit = cache_hit;
    requests_.EndCompile(query_id, cache_hit);
    // Cache hits restore the memo stats from the cached plan's profile, so
    // the DMV columns are populated either way.
    std::vector<std::pair<std::string, double>> phase_pairs;
    phase_pairs.reserve(profile.compile_phases.size());
    for (const obs::PhaseProfile& p : profile.compile_phases) {
      phase_pairs.emplace_back(p.name, p.seconds);
    }
    requests_.SetCompileInfo(query_id, std::move(phase_pairs),
                             profile.optimizer.memo_groups,
                             profile.optimizer.memo_exprs,
                             profile.optimizer.budget_exhausted,
                             profile.optimizer.beam_used);
    obs::MetricsRegistry::Global().Observe("optimizer.compile.seconds",
                                           profile.compile_seconds);
    for (const auto& [phase_name, phase_secs] : profile.compile_phases) {
      obs::MetricsRegistry::Global().Observe(
          "optimizer.phase." + phase_name + ".seconds", phase_secs);
    }

    // 2. EXPLAIN only: render without executing (no admission needed).
    if (options.compile.explain_only) {
      ApplianceResult result;
      result.dsql = std::move(dsql);
      result.column_names = output_names;
      result.modeled_cost = modeled_cost;
      result.plan_text = plan_text;
      result.cache_hit = cache_hit;
      std::string warning;
      if (profile.optimizer.budget_exhausted) {
        warning = std::string("-- WARNING: join enumeration degraded") +
                  (profile.optimizer.beam_used
                       ? " (beam search used)\n"
                       : " (single seeded join order)\n");
      }
      result.explain_text =
          "-- parallel plan (modeled DMS cost " +
          StringFormat("%.6f", modeled_cost) + ")" +
          (cache_hit ? "  [plan cache hit]" : "") + "\n" + warning +
          plan_text + "\n" + result.dsql.ToString();
      result.profile = std::move(profile);
      return result;
    }

    // 3. Workload management: classify from the optimizer's modeled cost
    // (unless the session pinned a class) and acquire a concurrency slot
    // of that class — queueing behind the bounded admission gate, or
    // fast-failing with kOverloaded when the queue itself is full. The
    // ticket holds the slot for the whole execution.
    ResourceClass rc =
        workload_.Classify(modeled_cost, options.execute.resource_class);
    requests_.BeginQueue(query_id, ResourceClassName(rc));
    double queue_seconds = 0;
    PDW_ASSIGN_OR_RETURN(
        WorkloadManager::Ticket ticket,
        workload_.Admit(query_id, rc, options.execute.priority, cancel,
                        &queue_seconds));
    requests_.Admit(query_id);
    if (cancel != nullptr && cancel->load()) {
      return Status::Cancelled("query cancelled before execution");
    }
    // The admitted class's fan-out cap composes with the caller's own:
    // the stricter one wins (0 = uncapped). It bounds both per-step node
    // parallelism and DMS pipeline workers.
    int max_parallel = options.execute.max_parallel_nodes;
    int class_cap = ticket.max_parallel_nodes();
    if (class_cap > 0 && (max_parallel == 0 || class_cap < max_parallel)) {
      max_parallel = class_cap;
    }

    // 4. Execute with per-execution-unique temp names — TEMP_ID_Q<id>_k,
    // where <id> is the same request id sys.dm_pdw_exec_requests shows.
    UniquifyTempNames(&dsql, query_id);
    PDW_ASSIGN_OR_RETURN(
        ApplianceResult result,
        ExecuteDsql(dsql, query_id, options.observe.collect_operator_actuals,
                    max_parallel, options.execute.engine,
                    options.execute.dms_codec, options.execute.retry,
                    options.execute.share_steps, cancel));
    result.modeled_cost = modeled_cost;
    result.plan_text = plan_text;
    result.cache_hit = cache_hit;
    result.resource_class = ResourceClassName(rc);
    result.queue_seconds = queue_seconds;
    if (result.column_names.empty()) result.column_names = output_names;

    // ExecuteDsql filled the per-step profile; graft the compile-side half
    // (phases, optimizer counters) in.
    profile.steps = std::move(result.profile.steps);
    profile.measured_seconds = result.profile.measured_seconds;
    profile.modeled_cost = result.profile.modeled_cost;
    result.profile = std::move(profile);

    result.explain_text = "-- parallel plan (modeled DMS cost " +
                          StringFormat("%.6f", result.modeled_cost) + ")" +
                          (cache_hit ? "  [plan cache hit]" : "") + "\n" +
                          result.plan_text + "\n" + result.profile.ToText();

    if (use_result_cache) {
      CachedQueryResult cached;
      cached.column_names = result.column_names;
      cached.rows = result.rows;
      cached.plan_text = result.plan_text;
      cached.modeled_cost = result.modeled_cost;
      cached.table_versions = std::move(scan_versions);
      result_cache_.Publish(rc_normalized, rc_fingerprint, std::move(cached));
    }
    return result;
  };

  Result<ApplianceResult> result = body();
  if (use_result_cache && !result.ok()) {
    // Leader failed (or was cancelled): release coalesced followers so one
    // of them retries as the new leader instead of inheriting this error.
    result_cache_.FailFlight(rc_normalized, rc_fingerprint);
  }
  return result;
}

Result<ApplianceResult> Appliance::ExecutePlan(
    const PlanNode& plan, std::vector<std::string> output_names) {
  PDW_ASSIGN_OR_RETURN(DsqlPlan dsql, GenerateDsql(plan, std::move(output_names)));
  uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  requests_.Register(query_id, kDefaultSessionId,
                     "(precompiled parallel plan)", EngineLabel(ExecOptions{}));
  UniquifyTempNames(&dsql, query_id);
  Result<ApplianceResult> result =
      ExecuteDsql(dsql, query_id, /*profile_operators=*/false,
                  /*max_parallel_nodes=*/0, ExecOptions{},
                  DefaultDmsCodec(), RetryPolicy{}, DefaultSharedSteps(),
                  /*cancel=*/nullptr);
  if (!result.ok()) {
    requests_.Fail(query_id, result.status().ToString());
    return result.status();
  }
  requests_.Complete(query_id);
  result->query_id = query_id;
  result->session_id = kDefaultSessionId;
  result->modeled_cost = TotalMoveCost(plan);
  result->plan_text = PlanTreeToString(plan);
  return result;
}

Result<SqlResult> Appliance::ExecuteReference(const std::string& sql,
                                              const ExecOptions& exec) {
  return reference_.ExecuteSql(sql, nullptr, exec);
}

}  // namespace pdw
