#include "appliance/appliance.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"
#include "obs/trace.h"
#include "plan/distribution.h"
#include "sql/parser.h"

namespace pdw {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sums one node's per-operator actuals into the step aggregate. Plans are
/// compiled per node against local catalogs, so shapes could in principle
/// diverge; aggregation only happens when every operator lines up, else the
/// first node's profile is kept as-is.
void MergeOperators(const std::vector<obs::OperatorProfile>& from,
                    std::vector<obs::OperatorProfile>* into) {
  if (into->empty()) {
    *into = from;
    return;
  }
  if (into->size() != from.size()) return;
  for (size_t i = 0; i < from.size(); ++i) {
    if ((*into)[i].name != from[i].name) return;
  }
  for (size_t i = 0; i < from.size(); ++i) {
    obs::OperatorProfile& dst = (*into)[i];
    dst.estimated_rows += from[i].estimated_rows;
    dst.actual_rows += from[i].actual_rows;
    dst.seconds += from[i].seconds;
    dst.nodes += from[i].nodes;
  }
}

void FillComponents(const DmsRunMetrics& m, obs::StepProfile* sp) {
  sp->reader = {m.reader.bytes, m.reader.seconds};
  sp->network = {m.network.bytes, m.network.seconds};
  sp->writer = {m.writer.bytes, m.writer.seconds};
  sp->bulkcopy = {m.bulkcopy.bytes, m.bulkcopy.seconds};
  sp->rows_moved = static_cast<double>(m.rows_moved);
}

void Accumulate(const DmsRunMetrics& from, DmsRunMetrics* to) {
  to->reader.bytes += from.reader.bytes;
  to->reader.seconds += from.reader.seconds;
  to->network.bytes += from.network.bytes;
  to->network.seconds += from.network.seconds;
  to->writer.bytes += from.writer.bytes;
  to->writer.seconds += from.writer.seconds;
  to->bulkcopy.bytes += from.bulkcopy.bytes;
  to->bulkcopy.seconds += from.bulkcopy.seconds;
  to->rows_moved += from.rows_moved;
  to->wall_seconds += from.wall_seconds;
}

}  // namespace

Appliance::Appliance(Topology topology)
    : shell_(topology), dms_(topology.num_compute_nodes) {
  for (int i = 0; i < topology.num_compute_nodes; ++i) {
    compute_.push_back(std::make_unique<LocalEngine>());
  }
}

Status Appliance::CreateTable(TableDef def) {
  PDW_RETURN_NOT_OK(shell_.CreateTable(def));
  for (auto& node : compute_) {
    PDW_RETURN_NOT_OK(node->CreateTable(def));
  }
  return reference_.CreateTable(std::move(def));
}

Status Appliance::CreateTableSql(const std::string& ddl) {
  PDW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(ddl));
  if (stmt.kind != sql::StatementKind::kCreateTable) {
    return Status::InvalidArgument("expected CREATE TABLE");
  }
  TableDef def;
  def.name = stmt.create_table->name;
  def.schema = stmt.create_table->schema;
  def.distribution = stmt.create_table->distribution;
  return CreateTable(std::move(def));
}

Status Appliance::LoadRows(const std::string& table, const RowVector& rows) {
  PDW_ASSIGN_OR_RETURN(const TableDef* def, shell_.GetTable(table));
  int n = num_compute_nodes();
  if (def->distribution.is_replicated()) {
    for (auto& node : compute_) {
      PDW_RETURN_NOT_OK(node->InsertRows(table, rows));
    }
  } else {
    std::vector<int> hash_ordinals;
    for (const std::string& dc : def->distribution.columns) {
      int pos = def->schema.FindColumn(dc);
      if (pos < 0) return Status::Internal("distribution column missing");
      hash_ordinals.push_back(pos);
    }
    std::vector<RowVector> shards(static_cast<size_t>(n));
    for (const Row& r : rows) {
      shards[static_cast<size_t>(dms_.TargetNode(r, hash_ordinals))]
          .push_back(r);
    }
    for (int i = 0; i < n; ++i) {
      PDW_RETURN_NOT_OK(compute_[static_cast<size_t>(i)]->InsertRows(
          table, std::move(shards[static_cast<size_t>(i)])));
    }
  }
  PDW_RETURN_NOT_OK(reference_.InsertRows(table, rows));
  return RefreshStatistics(table);
}

Status Appliance::RefreshStatistics(const std::string& table) {
  PDW_ASSIGN_OR_RETURN(TableDef* def, shell_.GetMutableTable(table));
  std::vector<TableStats> parts;
  for (auto& node : compute_) {
    PDW_ASSIGN_OR_RETURN(TableStats local, node->ComputeLocalStats(table));
    parts.push_back(std::move(local));
  }
  std::string dist_col = def->distribution.is_replicated() ||
                                 def->distribution.columns.empty()
                             ? ""
                             : ToLower(def->distribution.columns[0]);
  if (def->distribution.is_replicated() && !parts.empty()) {
    // Every node holds the same rows: the global stats are any node's.
    def->stats = parts[0];
  } else {
    def->stats = TableStats::Merge(parts, dist_col);
  }
  return Status::OK();
}

std::vector<int> Appliance::SourceNodes(const DsqlStep& step) const {
  int n = dms_.num_compute_nodes();
  if (step.source_distribution.is_control()) return {dms_.control_node()};
  if (step.kind == DsqlStepKind::kReturn &&
      step.source_distribution.is_replicated()) {
    return {0};  // identical streams: read one copy
  }
  if (step.kind == DsqlStepKind::kDms) {
    if (step.move_kind == DmsOpKind::kReplicatedBroadcast) return {0};
    if (step.move_kind == DmsOpKind::kRemoteCopyToSingle &&
        step.source_distribution.is_replicated()) {
      return {0};
    }
  }
  std::vector<int> all;
  for (int i = 0; i < n; ++i) all.push_back(i);
  return all;
}

std::vector<int> Appliance::TargetNodes(const DsqlStep& step) const {
  int n = dms_.num_compute_nodes();
  switch (step.move_kind) {
    case DmsOpKind::kPartitionMove:
    case DmsOpKind::kRemoteCopyToSingle:
      return {dms_.control_node()};
    default: {
      std::vector<int> all;
      for (int i = 0; i < n; ++i) all.push_back(i);
      return all;
    }
  }
}

Status Appliance::DropTemps(const std::vector<std::string>& temps) {
  for (const std::string& name : temps) {
    for (auto& node : compute_) {
      if (node->HasTable(name)) PDW_RETURN_NOT_OK(node->DropTable(name));
    }
    if (control_.HasTable(name)) PDW_RETURN_NOT_OK(control_.DropTable(name));
  }
  return Status::OK();
}

Result<ApplianceResult> Appliance::ExecuteDsql(const DsqlPlan& dsql,
                                               bool profile_operators) {
  ApplianceResult result;
  result.dsql = dsql;
  result.column_names = dsql.output_names;
  double start = NowSeconds();
  std::vector<std::string> temps;
  obs::TraceSpan dsql_span("appliance.execute_dsql");
  dsql_span.AddAttr("steps", static_cast<double>(dsql.steps.size()));

  auto engine_of = [&](int node) -> LocalEngine& {
    return node == dms_.control_node() ? control_
                                       : *compute_[static_cast<size_t>(node)];
  };

  auto cleanup_and_fail = [&](Status s) -> Status {
    Status drop = DropTemps(temps);
    (void)drop;
    return s;
  };

  int step_index = 0;
  for (const DsqlStep& step : dsql.steps) {
    obs::StepProfile sp;
    sp.index = step_index++;
    sp.sql = step.sql;
    sp.estimated_rows = step.estimated_rows;
    sp.estimated_cost = step.estimated_cost;
    double step_start = NowSeconds();

    if (step.kind == DsqlStepKind::kDms) {
      sp.kind = "DMS";
      sp.move_kind = DmsOpKindToString(step.move_kind);
      sp.dest_table = step.dest_table;
      obs::TraceSpan step_span("dsql.step");
      step_span.AddAttr("kind", sp.move_kind);
      step_span.AddAttr("dest", step.dest_table);
      // 1. Run the step's SQL on every source node.
      int slots = dms_.num_compute_nodes() + 1;
      std::vector<RowVector> source_rows(static_cast<size_t>(slots));
      for (int node : SourceNodes(step)) {
        ExecProfile node_profile;
        auto rows = engine_of(node).ExecuteSql(
            step.sql, profile_operators ? &node_profile : nullptr);
        if (!rows.ok()) {
          return cleanup_and_fail(Status::ExecutionError(
              "DSQL step failed on node " + std::to_string(node) + ": " +
              rows.status().ToString() + "\nSQL: " + step.sql));
        }
        if (profile_operators) {
          MergeOperators(node_profile.operators, &sp.operators);
        }
        source_rows[static_cast<size_t>(node)] = std::move(rows->rows);
      }
      // 2. Route through DMS.
      DmsRunMetrics metrics;
      auto routed = dms_.Execute(step.move_kind, std::move(source_rows),
                                 step.hash_column_ordinals, &metrics);
      if (!routed.ok()) return cleanup_and_fail(routed.status());
      Accumulate(metrics, &result.dms_metrics);
      FillComponents(metrics, &sp);
      sp.actual_rows = static_cast<double>(metrics.rows_moved);
      // 3. Materialize the destination temp table on every target node.
      TableDef temp_def;
      temp_def.name = step.dest_table;
      temp_def.schema = step.dest_schema;
      temps.push_back(step.dest_table);
      for (int node : TargetNodes(step)) {
        LocalEngine& engine = engine_of(node);
        Status s = engine.CreateTable(temp_def);
        if (!s.ok()) return cleanup_and_fail(s);
        s = engine.InsertRows(
            step.dest_table,
            std::move((*routed)[static_cast<size_t>(node)]));
        if (!s.ok()) return cleanup_and_fail(s);
      }
      sp.measured_seconds = NowSeconds() - step_start;
      result.profile.steps.push_back(std::move(sp));
      continue;
    }

    // Return step: run per source node, assemble, finalize.
    sp.kind = "RETURN";
    obs::TraceSpan step_span("dsql.step");
    step_span.AddAttr("kind", std::string("Return"));
    RowVector assembled;
    for (int node : SourceNodes(step)) {
      ExecProfile node_profile;
      auto rows = engine_of(node).ExecuteSql(
          step.sql, profile_operators ? &node_profile : nullptr);
      if (!rows.ok()) {
        return cleanup_and_fail(Status::ExecutionError(
            "Return step failed on node " + std::to_string(node) + ": " +
            rows.status().ToString() + "\nSQL: " + step.sql));
      }
      if (profile_operators) {
        MergeOperators(node_profile.operators, &sp.operators);
      }
      if (result.column_names.empty()) {
        result.column_names = rows->column_names;
      }
      assembled.insert(assembled.end(),
                       std::make_move_iterator(rows->rows.begin()),
                       std::make_move_iterator(rows->rows.end()));
    }
    if (!step.merge_sort.empty()) {
      std::stable_sort(assembled.begin(), assembled.end(),
                       [&](const Row& a, const Row& b) {
                         for (const auto& [o, asc] : step.merge_sort) {
                           int c = a[static_cast<size_t>(o)].Compare(
                               b[static_cast<size_t>(o)]);
                           if (c != 0) return asc ? c < 0 : c > 0;
                         }
                         return false;
                       });
    }
    if (step.final_limit >= 0 &&
        assembled.size() > static_cast<size_t>(step.final_limit)) {
      assembled.resize(static_cast<size_t>(step.final_limit));
    }
    if (dsql.visible_columns >= 0) {
      size_t visible = static_cast<size_t>(dsql.visible_columns);
      for (Row& r : assembled) {
        if (r.size() > visible) r.resize(visible);
      }
      if (result.column_names.size() > visible) {
        result.column_names.resize(visible);
      }
    }
    result.rows = std::move(assembled);
    sp.actual_rows = static_cast<double>(result.rows.size());
    sp.measured_seconds = NowSeconds() - step_start;
    result.profile.steps.push_back(std::move(sp));
  }

  PDW_RETURN_NOT_OK(DropTemps(temps));
  result.measured_seconds = NowSeconds() - start;
  result.profile.measured_seconds = result.measured_seconds;
  result.profile.modeled_cost = dsql.total_move_cost;
  return result;
}

Result<ApplianceResult> Appliance::ExecuteInternal(
    const std::string& sql, const PdwCompilerOptions& options,
    bool profile_operators) {
  obs::TraceSpan span("appliance.execute");
  PDW_ASSIGN_OR_RETURN(PdwCompilation comp, CompilePdwQuery(shell_, sql, options));
  double t0 = NowSeconds();
  DsqlPlan dsql;
  {
    obs::TraceSpan gen("compile.dsql_gen");
    PDW_ASSIGN_OR_RETURN(dsql,
                         GenerateDsql(*comp.parallel.plan, comp.output_names,
                                      "tpch", comp.serial.visible_columns));
  }
  comp.phase_seconds.emplace_back("dsql_gen", NowSeconds() - t0);
  PDW_ASSIGN_OR_RETURN(ApplianceResult result,
                       ExecuteDsql(dsql, profile_operators));
  result.modeled_cost = comp.parallel.cost;
  result.plan_text = PlanTreeToString(*comp.parallel.plan);
  if (result.column_names.empty()) result.column_names = comp.output_names;

  obs::QueryProfile& profile = result.profile;
  profile.sql = sql;
  for (const auto& [name, seconds] : comp.phase_seconds) {
    profile.compile_phases.push_back({name, seconds});
    profile.compile_seconds += seconds;
  }
  profile.optimizer.groups =
      static_cast<double>(comp.parallel.groups_optimized);
  profile.optimizer.options_considered =
      static_cast<double>(comp.parallel.options_considered);
  profile.optimizer.options_kept =
      static_cast<double>(comp.parallel.options_kept);
  profile.optimizer.options_pruned =
      static_cast<double>(comp.parallel.options_pruned);
  profile.optimizer.enforcers_inserted =
      static_cast<double>(comp.parallel.enforcers_inserted);
  profile.modeled_cost = comp.parallel.cost;
  return result;
}

Result<ApplianceResult> Appliance::Execute(const std::string& sql,
                                           const PdwCompilerOptions& options) {
  return ExecuteInternal(sql, options, /*profile_operators=*/false);
}

Result<ApplianceResult> Appliance::ExecuteAnalyze(
    const std::string& sql, const PdwCompilerOptions& options) {
  return ExecuteInternal(sql, options, /*profile_operators=*/true);
}

Result<std::string> Appliance::ExplainAnalyze(const std::string& sql,
                                              const PdwCompilerOptions& options) {
  PDW_ASSIGN_OR_RETURN(ApplianceResult result, ExecuteAnalyze(sql, options));
  std::string out = "-- parallel plan (modeled DMS cost " +
                    StringFormat("%.6f", result.modeled_cost) + ")\n";
  out += result.plan_text;
  out += "\n";
  out += result.profile.ToText();
  return out;
}

Result<std::string> Appliance::Explain(const std::string& sql,
                                        const PdwCompilerOptions& options) {
  PDW_ASSIGN_OR_RETURN(PdwCompilation comp,
                       CompilePdwQuery(shell_, sql, options));
  PDW_ASSIGN_OR_RETURN(DsqlPlan dsql,
                       GenerateDsql(*comp.parallel.plan, comp.output_names,
                                    "tpch", comp.serial.visible_columns));
  std::string out = "-- parallel plan (modeled DMS cost " +
                    StringFormat("%.6f", comp.parallel.cost) + ")\n";
  out += PlanTreeToString(*comp.parallel.plan);
  out += "\n";
  out += dsql.ToString();
  return out;
}

Result<ApplianceResult> Appliance::ExecutePlan(
    const PlanNode& plan, std::vector<std::string> output_names) {
  PDW_ASSIGN_OR_RETURN(DsqlPlan dsql, GenerateDsql(plan, std::move(output_names)));
  PDW_ASSIGN_OR_RETURN(ApplianceResult result, ExecuteDsql(dsql));
  result.modeled_cost = TotalMoveCost(plan);
  result.plan_text = PlanTreeToString(plan);
  return result;
}

Result<SqlResult> Appliance::ExecuteReference(const std::string& sql) {
  return reference_.ExecuteSql(sql);
}

}  // namespace pdw
