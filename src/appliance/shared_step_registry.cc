#include "appliance/shared_step_registry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"

namespace pdw {

bool DefaultSharedSteps() {
  const char* env = std::getenv("PDW_WLM_SHARE");
  if (env == nullptr) return true;
  std::string v = env;
  return !(v == "0" || v == "off" || v == "false");
}

SharedStepRegistry::JoinOutcome SharedStepRegistry::JoinOrLead(
    const std::string& key, const std::string& hex, uint64_t query_id,
    int step_index, const std::atomic<bool>* cancel) {
  auto& reg = obs::MetricsRegistry::Global();
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      auto e = std::make_shared<Entry>();
      e->hex = hex;
      e->leader_query = query_id;
      entries_[key] = std::move(e);
      ++stats_.leads;
      reg.Count("wlm.shared_step.lead");
      JoinOutcome out;
      out.role = Role::kLeader;
      out.leader_query = query_id;
      return out;
    }
    std::shared_ptr<Entry> e = it->second;
    if (e->published) {
      // Afterglow join: the step is already materialized and still
      // referenced; take our own reference immediately.
      ++e->refcount;
      ++e->follows;
      ++stats_.follows;
      stats_.saved_bytes += e->bytes_moved;
      stats_.saved_rows += e->rows_moved;
      reg.Count("wlm.shared_step.follow");
      JoinOutcome out;
      out.role = Role::kFollower;
      out.temp_table = e->temp_table;
      out.leader_query = e->leader_query;
      out.saved_bytes = e->bytes_moved;
      out.saved_rows = e->rows_moved;
      out.wait_seconds = elapsed();
      return out;
    }
    // A leader is executing this step right now: wait for it to resolve.
    ++e->waiters;
    e->waiter_steps.emplace_back(query_id, step_index);
    auto drop_waiter = [&] {
      --e->waiters;
      auto ws = std::find(e->waiter_steps.begin(), e->waiter_steps.end(),
                          std::make_pair(query_id, step_index));
      if (ws != e->waiter_steps.end()) e->waiter_steps.erase(ws);
    };
    // `resolved` is checked BEFORE the cancel flag: once the leader
    // published, our reference is already pre-granted, so we must take it
    // (and release it through normal cleanup) — abandoning here would
    // leak it. Cancellation of a published-step follower is handled at
    // the next step boundary.
    while (!e->resolved) {
      if (cancel != nullptr && cancel->load()) {
        drop_waiter();
        ++stats_.cancel_skips;
        reg.Count("wlm.shared_step.cancel_skip");
        JoinOutcome out;
        out.role = Role::kSkipped;
        out.wait_seconds = elapsed();
        return out;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    drop_waiter();
    if (e->published) {
      // Publish counted us in the refcount it seeded — do not increment.
      ++e->follows;
      ++stats_.follows;
      stats_.saved_bytes += e->bytes_moved;
      stats_.saved_rows += e->rows_moved;
      reg.Count("wlm.shared_step.follow");
      JoinOutcome out;
      out.role = Role::kFollower;
      out.temp_table = e->temp_table;
      out.leader_query = e->leader_query;
      out.saved_bytes = e->bytes_moved;
      out.saved_rows = e->rows_moved;
      out.wait_seconds = elapsed();
      return out;
    }
    // Leader failed: its FailFlight erased the map entry. Loop back —
    // whoever re-finds the key missing becomes the new leader.
  }
}

int SharedStepRegistry::Publish(const std::string& key,
                                const std::string& temp_table,
                                double rows_moved, double bytes_moved) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;  // FailFlight raced us; caller keeps temp.
  std::shared_ptr<Entry>& e = it->second;
  e->resolved = true;
  e->published = true;
  e->temp_table = temp_table;
  e->rows_moved = rows_moved;
  e->bytes_moved = bytes_moved;
  // One reference for the leader plus one pre-granted per blocked waiter,
  // all under the lock that wakes them: a waiter can never observe the
  // publish without its reference already counted, so the temp cannot be
  // dropped out from under it.
  const int granted = e->waiters;
  e->refcount = 1 + granted;
  ++stats_.publishes;
  obs::MetricsRegistry::Global().Count("wlm.shared_step.publish");
  cv_.notify_all();
  return granted;
}

void SharedStepRegistry::FailFlight(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  it->second->resolved = true;
  it->second->published = false;
  entries_.erase(it);
  ++stats_.failed_flights;
  obs::MetricsRegistry::Global().Count("wlm.shared_step.fail_flight");
  cv_.notify_all();
}

std::string SharedStepRegistry::Release(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return "";
  std::shared_ptr<Entry>& e = it->second;
  ++stats_.releases;
  if (--e->refcount > 0) return "";
  std::string temp = e->temp_table;
  entries_.erase(it);
  ++stats_.drops;
  obs::MetricsRegistry::Global().Count("wlm.shared_step.drop");
  return temp;
}

void SharedStepRegistry::Progress(const std::string& key, double rows,
                                  double bytes) {
  std::vector<std::pair<uint64_t, int>> waiters;
  ProgressHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return;
    it->second->rows_moved += rows;
    it->second->bytes_moved += bytes;
    waiters = it->second->waiter_steps;
    hook = progress_hook_;
  }
  // Fan out outside the lock — the hook takes the request registry's own
  // lock and must not nest under ours.
  if (hook) {
    for (const auto& [query, step] : waiters) hook(query, step, rows, bytes);
  }
}

void SharedStepRegistry::Poke() {
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

void SharedStepRegistry::set_progress_hook(ProgressHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  progress_hook_ = std::move(hook);
}

SharedStepRegistry::Stats SharedStepRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<SharedStepRegistry::EntryInfo> SharedStepRegistry::ListEntries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    EntryInfo info;
    info.fingerprint_hex = e->hex;
    info.state = e->published ? "published" : "executing";
    info.leader_query = e->leader_query;
    info.temp_table = e->temp_table;
    info.refcount = e->refcount;
    info.waiters = e->waiters;
    info.follows = e->follows;
    info.rows_moved = e->rows_moved;
    info.bytes_moved = e->bytes_moved;
    out.push_back(std::move(info));
  }
  return out;
}

size_t SharedStepRegistry::active_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace pdw
