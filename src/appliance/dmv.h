#ifndef PDW_APPLIANCE_DMV_H_
#define PDW_APPLIANCE_DMV_H_

#include "appliance/shared_step_registry.h"
#include "appliance/workload_manager.h"
#include "common/status.h"
#include "engine/local_engine.h"
#include "obs/request_registry.h"
#include "pdw/plan_cache.h"
#include "pdw/result_cache.h"

namespace pdw {

/// Registers the PDW-style dynamic management views on `engine` as virtual
/// tables, mirroring the DMVs an operator queries on the real appliance's
/// control node:
///
///  * sys.dm_pdw_exec_requests — one row per request the appliance has run
///    (or is running right now), from the always-on request registry;
///  * sys.dm_pdw_exec_steps    — one row per DSQL step of those requests,
///    with live rows/bytes-moved counters while a DMS move is in flight;
///  * sys.dm_pdw_dms_workers   — one row per DMS component (reader,
///    network, writer, bulkcopy) of every DMS step;
///  * sys.dm_pdw_metrics       — the global metrics registry: counters,
///    gauges, and histograms with mean/p50/p95/p99;
///  * sys.dm_pdw_plan_cache    — the control node's compiled-plan cache,
///    MRU first, with per-entry hit counts;
///  * sys.dm_pdw_workload      — one row per workload-manager resource
///    class: slots, live active/queued occupancy, queue capacity, fan-out
///    cap, and admitted/rejected/cancelled totals with cumulative wait;
///  * sys.dm_pdw_result_cache  — the control node's keyed result cache,
///    MRU first, with per-entry hit counts and invalidation anchors;
///  * sys.dm_pdw_shared_steps  — live sub-plan sharing state: one row per
///    DSQL step fingerprint currently executing or published, with its
///    leader, refcount, blocked waiters, and rows/bytes moved.
///
/// Every SELECT touching a view materializes a fresh point-in-time snapshot
/// (see LocalEngine::RegisterVirtualTable), so a DMV query issued from a
/// second session thread observes requests mid-execution — including ones
/// still waiting in an admission queue. All registries must outlive
/// `engine`'s use of the views; all are owned by the same Appliance in
/// practice.
Status InstallSystemViews(LocalEngine* engine,
                          const obs::RequestRegistry* requests,
                          const PlanCache* plan_cache,
                          const WorkloadManager* workload,
                          const ResultCache* result_cache,
                          const SharedStepRegistry* shared_steps);

}  // namespace pdw

#endif  // PDW_APPLIANCE_DMV_H_
