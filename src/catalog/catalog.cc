#include "catalog/catalog.h"

#include <mutex>
#include <shared_mutex>

#include "common/string_util.h"

namespace pdw {

std::string DistributionSpec::ToString() const {
  if (is_replicated()) return "REPLICATED";
  return "HASH(" + Join(columns, ", ") + ")";
}

const ColumnStats* TableDef::GetColumnStats(const std::string& column) const {
  auto it = stats.columns.find(ToLower(column));
  if (it != stats.columns.end()) return &it->second;
  // Stats keys are stored lowercase; also try the raw name for robustness.
  it = stats.columns.find(column);
  return it != stats.columns.end() ? &it->second : nullptr;
}

int TableDef::DistributionColumnOrdinal() const {
  if (distribution.is_replicated() || distribution.columns.empty()) return -1;
  return schema.FindColumn(distribution.columns[0]);
}

std::string Catalog::Key(const std::string& name) const {
  return ToLower(name);
}

Catalog Catalog::Clone() const {
  Catalog copy(topology_);
  std::shared_lock lock(mu_);
  copy.tables_ = tables_;
  return copy;
}

Status Catalog::CreateTable(TableDef def) {
  std::string key = Key(def.name);
  std::unique_lock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + def.name + "' already exists");
  }
  if (!def.distribution.is_replicated()) {
    for (const std::string& c : def.distribution.columns) {
      if (def.schema.FindColumn(c) < 0) {
        return Status::InvalidArgument("distribution column '" + c +
                                       "' not in schema of '" + def.name + "'");
      }
    }
    if (def.distribution.columns.empty()) {
      return Status::InvalidArgument(
          "hash-distributed table '" + def.name + "' needs a column");
    }
  }
  tables_.emplace(key, std::move(def));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::unique_lock lock(mu_);
  if (tables_.erase(Key(name)) == 0) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  return tables_.count(Key(name)) > 0;
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return &it->second;
}

Result<TableDef*> Catalog::GetMutableTable(const std::string& name) {
  std::shared_lock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Catalog::ListTables() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, def] : tables_) out.push_back(def.name);
  return out;
}

}  // namespace pdw
