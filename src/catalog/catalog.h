#ifndef PDW_CATALOG_CATALOG_H_
#define PDW_CATALOG_CATALOG_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "stats/column_stats.h"

namespace pdw {

/// How a user table is laid out across the appliance's compute nodes
/// (paper §2.1): hash-partitioned on one or more columns, or fully
/// replicated on every compute node.
enum class TableLayout {
  kHashDistributed,
  kReplicated,
};

/// Distribution specification for a table.
struct DistributionSpec {
  TableLayout layout = TableLayout::kReplicated;
  /// Hash-distribution column names; empty iff replicated.
  std::vector<std::string> columns;

  static DistributionSpec Replicated() { return DistributionSpec{}; }
  static DistributionSpec HashOn(std::string column) {
    return DistributionSpec{TableLayout::kHashDistributed, {std::move(column)}};
  }

  bool is_replicated() const { return layout == TableLayout::kReplicated; }
  std::string ToString() const;
};

/// Full metadata for one table: schema, distribution and (global, merged)
/// statistics. In the shell database this is all that exists — no rows.
struct TableDef {
  std::string name;
  Schema schema;
  DistributionSpec distribution;
  TableStats stats;
  /// Primary-key column names (may be empty). Enables redundant-join
  /// elimination; correctness of that rewrite additionally assumes
  /// referential integrity of foreign keys, as in the paper's TPC-H setup.
  std::vector<std::string> primary_key;

  /// True for synthesized system views (the sys.dm_pdw_* DMVs): the table
  /// has no stored rows — its scan materializes from live appliance state
  /// at execution time — and it is served on the control node only.
  bool is_system_view = false;

  /// Stats lookup by column name; returns nullptr if the column has no
  /// statistics (estimation then falls back to magic-number heuristics).
  const ColumnStats* GetColumnStats(const std::string& column) const;

  /// Ordinal of a distribution column within the schema, or -1.
  int DistributionColumnOrdinal() const;
};

/// The appliance's node topology. The paper's homogeneity assumption means
/// a single count suffices; the control node is node index -1 by convention.
struct Topology {
  int num_compute_nodes = 8;
};

/// The metadata catalog. A Catalog instance on the control node with only
/// metadata + global stats *is* the paper's "shell database" (§2.2);
/// Catalog instances on compute nodes describe the local fragments.
///
/// Thread safety: the table map itself is guarded by an internal
/// shared_mutex, so concurrent queries may look tables up while other
/// queries create/drop *different* tables (per-node temp-table bookkeeping
/// during parallel DSQL execution). Pointers returned by GetTable stay
/// valid across unrelated DDL (std::map node stability); dropping a table
/// while another thread still uses its TableDef — or mutating a TableDef
/// through GetMutableTable while readers are live — is not synchronized
/// and remains a load-time-only operation.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(Topology topology) : topology_(topology) {}

  // Movable so factories can build-and-return a catalog; moves are
  // setup-time operations and must not race any other access (the mutex
  // itself is not moved — each instance owns a fresh one).
  Catalog(Catalog&& other) noexcept
      : topology_(other.topology_), tables_(std::move(other.tables_)) {}
  Catalog& operator=(Catalog&& other) noexcept {
    topology_ = other.topology_;
    tables_ = std::move(other.tables_);
    return *this;
  }

  const Topology& topology() const { return topology_; }
  void set_topology(Topology t) { topology_ = t; }

  /// Deep copy under the source's read lock — what-if analysis works on a
  /// clone so candidate designs never disturb the live shell database.
  Catalog Clone() const;

  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;

  /// Case-insensitive table lookup.
  Result<const TableDef*> GetTable(const std::string& name) const;
  /// Mutable lookup (stats refresh, temp-table width updates).
  Result<TableDef*> GetMutableTable(const std::string& name);

  std::vector<std::string> ListTables() const;

 private:
  std::string Key(const std::string& name) const;

  Topology topology_;
  mutable std::shared_mutex mu_;  ///< Guards the structure of tables_.
  std::map<std::string, TableDef> tables_;
};

}  // namespace pdw

#endif  // PDW_CATALOG_CATALOG_H_
