#include "optimizer/join_stress.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/string_util.h"
#include "common/types.h"

namespace pdw {

namespace {

/// Deterministic row count in [1e3, 1e6), log-uniform so the generated
/// workload mixes small dimensions with large facts.
double RandomRows(std::mt19937& rng) {
  std::uniform_real_distribution<double> exp_dist(3.0, 6.0);
  double rows = std::pow(10.0, exp_dist(rng));
  return std::floor(rows);
}

void AddTable(Catalog* catalog, const std::string& name,
              std::vector<ColumnDef> cols, double rows,
              std::vector<double> ndvs, std::mt19937& rng) {
  TableDef def;
  def.name = name;
  def.schema = Schema(std::move(cols));
  // Hash-distribute on the first column; small tables replicate, as a DBA
  // would lay out dimension tables.
  if (rows < 5000) {
    def.distribution = DistributionSpec::Replicated();
  } else {
    def.distribution = DistributionSpec::HashOn(def.schema.column(0).name);
  }
  def.stats.row_count = rows;
  double width = 0;
  for (int i = 0; i < def.schema.num_columns(); ++i) {
    const ColumnDef& c = def.schema.column(i);
    ColumnStats cs;
    cs.row_count = rows;
    cs.distinct_count = std::max(1.0, std::min(rows, ndvs[static_cast<size_t>(i)]));
    cs.avg_width = DefaultTypeWidth(c.type);
    width += cs.avg_width;
    def.stats.columns[c.name] = cs;
  }
  def.stats.avg_row_width = width;
  Status s = catalog->CreateTable(std::move(def));
  (void)s;
  (void)rng;
}

}  // namespace

const char* JoinStressShapeName(JoinStressShape shape) {
  switch (shape) {
    case JoinStressShape::kStar:
      return "star";
    case JoinStressShape::kChain:
      return "chain";
    case JoinStressShape::kClique:
      return "clique";
  }
  return "unknown";
}

JoinStressQuery MakeJoinStressQuery(const JoinStressSpec& spec) {
  int n = std::max(2, std::min(31, spec.relations));
  std::mt19937 rng(spec.seed);
  std::uniform_real_distribution<double> frac(0.1, 1.0);

  JoinStressQuery out{Catalog(Topology{spec.nodes}), ""};
  std::vector<std::string> conditions;

  auto col = [](int table, const char* suffix) {
    return StringFormat("t%d_%s", table, suffix);
  };

  switch (spec.shape) {
    case JoinStressShape::kStar: {
      // t0 is the fact table carrying one foreign-key column per dimension;
      // each dimension t1..t{n-1} joins the fact on its key.
      std::vector<double> dim_rows(static_cast<size_t>(n), 0);
      for (int i = 1; i < n; ++i) dim_rows[static_cast<size_t>(i)] = RandomRows(rng);
      double fact_rows = 1e6 + std::floor(frac(rng) * 1e6);
      std::vector<ColumnDef> fact_cols;
      std::vector<double> fact_ndvs;
      for (int i = 1; i < n; ++i) {
        fact_cols.push_back({col(0, StringFormat("k%d", i).c_str()),
                             TypeId::kInt, false});
        fact_ndvs.push_back(
            std::max(1.0, dim_rows[static_cast<size_t>(i)] * frac(rng)));
      }
      fact_cols.push_back({col(0, "payload"), TypeId::kDouble, false});
      fact_ndvs.push_back(fact_rows * frac(rng));
      AddTable(&out.catalog, "t0", std::move(fact_cols), fact_rows,
               std::move(fact_ndvs), rng);
      for (int i = 1; i < n; ++i) {
        double rows = dim_rows[static_cast<size_t>(i)];
        AddTable(&out.catalog, StringFormat("t%d", i),
                 {{col(i, "key"), TypeId::kInt, false},
                  {col(i, "payload"), TypeId::kDouble, false}},
                 rows, {rows, rows * frac(rng)}, rng);
        conditions.push_back(col(0, StringFormat("k%d", i).c_str()) + " = " +
                             col(i, "key"));
      }
      break;
    }
    case JoinStressShape::kChain: {
      for (int i = 0; i < n; ++i) {
        double rows = RandomRows(rng);
        AddTable(&out.catalog, StringFormat("t%d", i),
                 {{col(i, "key"), TypeId::kInt, false},
                  {col(i, "next"), TypeId::kInt, false},
                  {col(i, "payload"), TypeId::kDouble, false}},
                 rows, {rows * frac(rng), rows * frac(rng), rows * frac(rng)},
                 rng);
        if (i > 0) {
          conditions.push_back(col(i - 1, "next") + " = " + col(i, "key"));
        }
      }
      break;
    }
    case JoinStressShape::kClique: {
      // Every pair joins on its key column: the join graph is complete, so
      // every one of the 2^n - 1 nonempty subsets is connected.
      for (int i = 0; i < n; ++i) {
        double rows = RandomRows(rng);
        AddTable(&out.catalog, StringFormat("t%d", i),
                 {{col(i, "key"), TypeId::kInt, false},
                  {col(i, "payload"), TypeId::kDouble, false}},
                 rows, {rows * frac(rng), rows * frac(rng)}, rng);
      }
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          conditions.push_back(col(i, "key") + " = " + col(j, "key"));
        }
      }
      break;
    }
  }

  std::string select = "SELECT ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) select += ", ";
    select += col(i, "payload");
  }
  select += " FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) select += ", ";
    select += StringFormat("t%d", i);
  }
  select += " WHERE ";
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) select += " AND ";
    select += conditions[i];
  }
  out.sql = std::move(select);
  return out;
}

}  // namespace pdw
