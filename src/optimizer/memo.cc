#include "optimizer/memo.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pdw {

int ResolveOptThreads(int opt_threads) {
  if (opt_threads >= 1) return opt_threads;
  if (const char* env = std::getenv("PDW_OPT_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  // CPU-bound work: one claimer per core. The executor pool oversubscribes
  // cores on purpose (its tasks block on modeled dispatch latency); letting
  // the optimizer do the same just adds contention — most visibly on a
  // single-core host, where this default collapses to serial inline.
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw >= 1 ? hw : 1;
}

int ResolveBeamWidth(int beam_width) {
  if (beam_width >= 0) return beam_width;
  if (const char* env = std::getenv("PDW_OPT_BEAM")) {
    int n = std::atoi(env);
    if (n >= 0) return n;
  }
  return 64;
}

namespace {

size_t HashCombine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

size_t ExprFingerprint(const LogicalOp& payload,
                       const std::vector<GroupId>& children) {
  size_t h = payload.PayloadHash();
  for (GroupId c : children) h = HashCombine(h, std::hash<int32_t>()(c));
  return h;
}

/// Finds the base-table access underlying a join-cluster leaf (a Get,
/// possibly under filters/projects); nullptr when the leaf is something
/// more complex (aggregate, semi join, ...).
const LogicalGet* FindUnderlyingGet(const LogicalOp& op) {
  if (op.kind() == LogicalOpKind::kGet) {
    return &static_cast<const LogicalGet&>(op);
  }
  if ((op.kind() == LogicalOpKind::kFilter ||
       op.kind() == LogicalOpKind::kProject) &&
      op.children().size() == 1) {
    return FindUnderlyingGet(*op.children()[0]);
  }
  return nullptr;
}

}  // namespace

GroupId Memo::NewGroup(std::vector<ColumnBinding> output, double cardinality,
                       double row_width) {
  Group g;
  g.id = static_cast<GroupId>(groups_.size());
  g.output = std::move(output);
  g.cardinality = cardinality;
  g.row_width = row_width;
  groups_.push_back(std::move(g));
  return groups_.back().id;
}

GroupId Memo::AddExpr(LogicalOpPtr payload, std::vector<GroupId> children,
                      GroupId target_group) {
  size_t fp = ExprFingerprint(*payload, children);
  return AddExprWithFingerprint(std::move(payload), std::move(children), fp,
                                target_group);
}

GroupId Memo::AddExprWithFingerprint(LogicalOpPtr payload,
                                     std::vector<GroupId> children, size_t fp,
                                     GroupId target_group) {
  {
    auto [lo, hi] = expr_index_.equal_range(fp);
    for (auto it = lo; it != hi; ++it) {
      const auto& [gid, idx] = it->second;
      const GroupExpr& e =
          groups_[static_cast<size_t>(gid)].exprs[static_cast<size_t>(idx)];
      if (e.children == children && e.op->PayloadEquals(*payload)) {
        // Already present somewhere; never duplicate.
        return target_group != kInvalidGroupId ? target_group : gid;
      }
    }
  }
  GroupExpr e;
  e.op = std::move(payload);
  e.children = std::move(children);

  GroupId gid = target_group;
  if (gid == kInvalidGroupId) {
    gid = NewGroup({}, 0, 0);
    ComputeGroupProperties(&groups_[static_cast<size_t>(gid)], e);
  }
  Group& g = groups_[static_cast<size_t>(gid)];
  expr_index_.emplace(fp, std::make_pair(gid, static_cast<int>(g.exprs.size())));
  g.exprs.push_back(std::move(e));
  ++num_exprs_;
  return gid;
}

void Memo::ComputeGroupProperties(Group* g, const GroupExpr& e) {
  std::vector<std::vector<ColumnBinding>> child_outputs;
  std::vector<double> child_cards;
  for (GroupId c : e.children) {
    child_outputs.push_back(groups_[static_cast<size_t>(c)].output);
    child_cards.push_back(groups_[static_cast<size_t>(c)].cardinality);
  }
  g->output = e.op->ComputeOutput(child_outputs);
  g->row_width = estimator_->RowWidth(g->output);

  const CardinalityEstimator& est = *estimator_;
  switch (e.op->kind()) {
    case LogicalOpKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(*e.op);
      double rows = get.table() != nullptr ? get.table()->stats.row_count : 0;
      g->cardinality = rows > 0 ? rows : 1000;
      break;
    }
    case LogicalOpKind::kEmpty:
      g->cardinality = 0;
      break;
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*e.op);
      g->cardinality = child_cards[0] * est.Selectivity(f.conjuncts());
      break;
    }
    case LogicalOpKind::kProject:
      g->cardinality = child_cards[0];
      break;
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*e.op);
      double sel = 1.0;
      for (const auto& c : j.conditions()) {
        ColumnId a, b;
        if (IsColumnEquality(c, &a, &b)) {
          sel *= est.JoinEqualitySelectivity(a, b);
        } else {
          sel *= est.ConjunctSelectivity(c);
        }
      }
      switch (j.join_type()) {
        case LogicalJoinType::kInner:
        case LogicalJoinType::kCross:
          g->cardinality = child_cards[0] * child_cards[1] * sel;
          break;
        case LogicalJoinType::kLeftOuter:
          g->cardinality =
              std::max(child_cards[0], child_cards[0] * child_cards[1] * sel);
          break;
        case LogicalJoinType::kSemi: {
          double match = std::min(1.0, child_cards[1] * sel);
          g->cardinality = child_cards[0] * match;
          break;
        }
        case LogicalJoinType::kAnti: {
          double match = std::min(1.0, child_cards[1] * sel);
          g->cardinality = child_cards[0] * std::max(0.0, 1.0 - match);
          break;
        }
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(*e.op);
      g->cardinality = est.GroupCardinality(a.group_by(), child_cards[0]);
      break;
    }
    case LogicalOpKind::kSort:
      g->cardinality = child_cards[0];
      break;
    case LogicalOpKind::kUnionAll: {
      double total = 0;
      for (double c : child_cards) total += c;
      g->cardinality = total;
      break;
    }
    case LogicalOpKind::kLimit: {
      const auto& l = static_cast<const LogicalLimit&>(*e.op);
      g->cardinality = std::min(child_cards[0], static_cast<double>(l.limit()));
      break;
    }
  }
  g->cardinality = std::max(0.0, g->cardinality);
}

Result<GroupId> Memo::InsertTree(const LogicalOpPtr& tree) {
  root_ = InsertTreeInternal(tree);
  if (options_.enable_semijoin_to_join) ExploreSemiJoinAlternatives();
  return root_;
}

GroupId Memo::InsertTreeInternal(const LogicalOpPtr& op) {
  if (options_.enumerate_joins && op->kind() == LogicalOpKind::kJoin) {
    const auto& j = static_cast<const LogicalJoin&>(*op);
    if (j.join_type() == LogicalJoinType::kInner ||
        j.join_type() == LogicalJoinType::kCross) {
      return InsertJoinCluster(op);
    }
  }
  std::vector<GroupId> children;
  for (const auto& c : op->children()) {
    children.push_back(InsertTreeInternal(c));
  }
  return AddExpr(op->WithChildren({}), std::move(children));
}

namespace {

/// Gathers an inner-join cluster: the leaf subtrees and the join conjuncts
/// of a maximal region of inner/cross joins.
void CollectCluster(const LogicalOpPtr& op, std::vector<LogicalOpPtr>* leaves,
                    std::vector<ScalarExprPtr>* conjuncts) {
  if (op->kind() == LogicalOpKind::kJoin) {
    const auto& j = static_cast<const LogicalJoin&>(*op);
    if (j.join_type() == LogicalJoinType::kInner ||
        j.join_type() == LogicalJoinType::kCross) {
      CollectCluster(op->children()[0], leaves, conjuncts);
      CollectCluster(op->children()[1], leaves, conjuncts);
      conjuncts->insert(conjuncts->end(), j.conditions().begin(),
                        j.conditions().end());
      return;
    }
  }
  leaves->push_back(op);
}

int Popcount(uint32_t v) { return __builtin_popcount(v); }

}  // namespace

GroupId Memo::InsertJoinCluster(const LogicalOpPtr& top) {
  std::vector<LogicalOpPtr> leaf_trees;
  std::vector<ScalarExprPtr> conjuncts;
  CollectCluster(top, &leaf_trees, &conjuncts);
  int n = static_cast<int>(leaf_trees.size());

  struct Leaf {
    GroupId gid;
    std::set<ColumnId> cols;
    double card;
    // Ids of the leaf's hash-distribution columns (empty when replicated or
    // unknown) — used by distribution-aware seeding.
    std::set<ColumnId> dist_cols;
    bool replicated = false;
  };
  std::vector<Leaf> leaves;
  for (const auto& lt : leaf_trees) {
    Leaf leaf;
    leaf.gid = InsertTreeInternal(lt);
    const Group& g = group(leaf.gid);
    for (const auto& b : g.output) leaf.cols.insert(b.id);
    leaf.card = g.cardinality;
    if (const LogicalGet* get = FindUnderlyingGet(*lt)) {
      const TableDef* t = get->table();
      if (t != nullptr) {
        if (t->distribution.is_replicated()) {
          leaf.replicated = true;
        } else {
          for (const std::string& dc : t->distribution.columns) {
            for (const auto& b : get->bindings()) {
              if (EqualsIgnoreCase(b.name, dc)) leaf.dist_cols.insert(b.id);
            }
          }
        }
      }
    }
    leaves.push_back(std::move(leaf));
  }

  if (n == 1) return leaves[0].gid;

  auto leaf_of_column = [&](ColumnId id) -> int {
    for (int i = 0; i < n; ++i) {
      if (leaves[static_cast<size_t>(i)].cols.count(id) > 0) return i;
    }
    return -1;
  };

  // Leaf mask each conjunct touches.
  std::vector<uint32_t> conjunct_masks;
  for (const auto& c : conjuncts) {
    std::set<ColumnId> used;
    CollectColumns(c, &used);
    uint32_t mask = 0;
    bool in_cluster = true;
    for (ColumnId id : used) {
      int leaf = leaf_of_column(id);
      if (leaf < 0) in_cluster = false;
      else mask |= 1u << leaf;
    }
    conjunct_masks.push_back(in_cluster ? mask : 0);
  }

  auto connected = [&](uint32_t mask) {
    if (mask == 0) return false;
    uint32_t reached = mask & (~mask + 1);  // lowest set bit
    while (true) {
      uint32_t grew = reached;
      for (size_t k = 0; k < conjuncts.size(); ++k) {
        uint32_t cm = conjunct_masks[k];
        if (cm != 0 && (cm & reached) != 0 && (cm & mask) == cm) {
          grew |= cm;
        }
      }
      if (grew == reached) break;
      reached = grew;
    }
    return reached == mask;
  };

  auto subset_cardinality = [&](uint32_t mask) {
    double card = 1;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) card *= leaves[static_cast<size_t>(i)].card;
    }
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      uint32_t cm = conjunct_masks[k];
      if (cm == 0 || Popcount(cm) < 2 || (cm & mask) != cm) continue;
      ColumnId a, b;
      if (IsColumnEquality(conjuncts[k], &a, &b)) {
        card *= estimator_->JoinEqualitySelectivity(a, b);
      } else {
        card *= estimator_->ConjunctSelectivity(conjuncts[k]);
      }
    }
    return std::max(0.0, card);
  };

  auto subset_output = [&](uint32_t mask) {
    std::vector<ColumnBinding> out;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        const Group& g = group(leaves[static_cast<size_t>(i)].gid);
        out.insert(out.end(), g.output.begin(), g.output.end());
      }
    }
    return out;
  };

  // Conjuncts that span split (L, R) within `mask`.
  auto split_conditions = [&](uint32_t l_mask, uint32_t r_mask) {
    std::vector<ScalarExprPtr> conds;
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      uint32_t cm = conjunct_masks[k];
      if (cm == 0 || Popcount(cm) < 2) continue;
      if ((cm & (l_mask | r_mask)) != cm) continue;
      if ((cm & l_mask) == 0 || (cm & r_mask) == 0) continue;
      conds.push_back(conjuncts[k]);
    }
    return conds;
  };

  const uint32_t full = n >= 32 ? 0xffffffffu : (1u << n) - 1;
  bool graph_connected = connected(full);
  const int threads = ResolveOptThreads(options_.opt_threads);
  ThreadPool& pool = ThreadPool::Global();

  // Decide full DP vs. degraded enumeration (the "timeout" fallback).
  bool full_dp = options_.enumerate_joins && n < 32 &&
                 n <= options_.max_dp_relations && graph_connected;
  // level_masks[s]: connected masks of popcount s, ascending — the DP
  // levels. Enumerated in parallel chunks merged in chunk order, which is
  // ascending-mask order, so the levels are independent of thread count.
  std::vector<std::vector<uint32_t>> level_masks;
  if (full_dp) {
    level_masks.assign(static_cast<size_t>(n) + 1, {});
    constexpr uint64_t kChunk = 4096;
    const uint64_t total = static_cast<uint64_t>(full);  // masks 1..full
    if (threads != 1 && total >= 2 * kChunk) {
      const uint64_t num_chunks = (total + kChunk - 1) / kChunk;
      std::vector<std::vector<std::vector<uint32_t>>> chunk_levels(
          static_cast<size_t>(num_chunks));
      pool.ParallelFor(
          static_cast<int>(num_chunks),
          [&](int ci) {
            auto& lv = chunk_levels[static_cast<size_t>(ci)];
            lv.assign(static_cast<size_t>(n) + 1, {});
            const uint64_t lo = 1 + static_cast<uint64_t>(ci) * kChunk;
            const uint64_t hi = std::min(total, lo + kChunk - 1);
            for (uint64_t m = lo; m <= hi; ++m) {
              uint32_t mask = static_cast<uint32_t>(m);
              int size = Popcount(mask);
              if (size >= 2 && connected(mask)) {
                lv[static_cast<size_t>(size)].push_back(mask);
              }
            }
          },
          threads);
      for (auto& lv : chunk_levels) {
        for (int s = 2; s <= n; ++s) {
          auto& dst = level_masks[static_cast<size_t>(s)];
          auto& src = lv[static_cast<size_t>(s)];
          dst.insert(dst.end(), src.begin(), src.end());
        }
      }
    } else {
      for (uint32_t mask = 1; mask <= full; ++mask) {
        int size = Popcount(mask);
        if (size >= 2 && connected(mask)) {
          level_masks[static_cast<size_t>(size)].push_back(mask);
        }
      }
    }
    // Rough bound: each subset contributes ~2*size split expressions.
    size_t connected_subsets = 0;
    for (int s = 2; s <= n; ++s) {
      connected_subsets += level_masks[static_cast<size_t>(s)].size();
    }
    if (connected_subsets * 2 * static_cast<size_t>(n) + num_exprs_ >
        static_cast<size_t>(options_.expr_budget)) {
      full_dp = false;
    }
  }
  // Any degradation of a connected cluster — budget hit or cluster wider
  // than max_dp_relations — is the graceful-degradation path and is
  // surfaced to EXPLAIN / DMVs. A disconnected cluster is not: it needs
  // cross joins that the DP never enumerates anyway.
  if (!full_dp && options_.enumerate_joins && graph_connected) {
    budget_exhausted_ = true;
  }

  if (full_dp) {
    // Dense mask -> group table: the split loop probes it ~3^n times (every
    // submask of every connected subset), so indexed loads beat a std::map
    // by an order of magnitude. 4 bytes * 2^n stays under 64 MB through
    // n = 24; the budget check above caps realistic n far below that, and
    // the sparse map covers anyone who raises every knob at once.
    const bool dense = n <= 24;
    std::vector<GroupId> dense_group;
    if (dense) {
      dense_group.assign(static_cast<size_t>(full) + 1, kInvalidGroupId);
    }
    std::map<uint32_t, GroupId> sparse_group;
    auto subset_lookup = [&](uint32_t m) -> GroupId {
      if (dense) return dense_group[m];
      auto it = sparse_group.find(m);
      return it == sparse_group.end() ? kInvalidGroupId : it->second;
    };
    auto subset_store = [&](uint32_t m, GroupId g) {
      if (dense) {
        dense_group[m] = g;
      } else {
        sparse_group[m] = g;
      }
    };
    for (int i = 0; i < n; ++i) {
      subset_store(1u << i, leaves[static_cast<size_t>(i)].gid);
    }
    // One DP level per subset size. Within a level no subset depends on
    // another, so the expansion — properties, splits, fingerprints; all
    // pure reads of lower levels' subset_group entries — fans out across
    // the pool. The commit then replays the expansions serially in
    // ascending-mask order, mutating groups_/expr_index_/num_exprs_ in
    // exactly the serial DP's order, which keeps the memo byte-identical
    // at every thread count.
    struct SplitPlan {
      LogicalOpPtr payload;
      GroupId left = kInvalidGroupId;
      GroupId right = kInvalidGroupId;
      size_t fp = 0;
    };
    struct MaskPlan {
      uint32_t mask = 0;
      double card = 0;
      double row_width = 0;
      std::vector<ColumnBinding> output;
      std::vector<SplitPlan> splits;
    };
    for (int size = 2; size <= n; ++size) {
      const std::vector<uint32_t>& masks =
          level_masks[static_cast<size_t>(size)];
      if (masks.empty()) continue;
      std::vector<MaskPlan> plans(masks.size());
      // Small levels are not worth the fan-out (~masks * 2^size split work).
      int par =
          (static_cast<uint64_t>(masks.size()) << size) < 4096 ? 1 : threads;
      pool.ParallelFor(
          static_cast<int>(masks.size()),
          [&](int mi) {
            const uint32_t mask = masks[static_cast<size_t>(mi)];
            MaskPlan& p = plans[static_cast<size_t>(mi)];
            p.mask = mask;
            p.card = subset_cardinality(mask);
            p.output = subset_output(mask);
            p.row_width = estimator_->RowWidth(p.output);
            // All splits (both orders arise as (L,R) and (R,L)).
            for (uint32_t l = (mask - 1) & mask; l != 0; l = (l - 1) & mask) {
              uint32_t r = mask ^ l;
              GroupId gl = subset_lookup(l);
              GroupId gr = subset_lookup(r);
              if (gl == kInvalidGroupId || gr == kInvalidGroupId) continue;
              std::vector<ScalarExprPtr> conds = split_conditions(l, r);
              if (conds.empty()) continue;  // connected mask => no cross needed
              SplitPlan sp;
              sp.payload = std::make_shared<LogicalJoin>(
                  LogicalJoinType::kInner, std::move(conds), nullptr, nullptr);
              sp.left = gl;
              sp.right = gr;
              sp.fp = ExprFingerprint(*sp.payload, {sp.left, sp.right});
              p.splits.push_back(std::move(sp));
            }
          },
          par);
      // One rehash for the whole level instead of amortized growth during
      // the serial commit (rehashing 100k+ expression entries mid-commit
      // is a measurable chunk of large-star compile time).
      size_t level_exprs = 0;
      for (const MaskPlan& p : plans) level_exprs += p.splits.size();
      expr_index_.reserve(expr_index_.size() + level_exprs);
      for (MaskPlan& p : plans) {
        GroupId gid = NewGroup(std::move(p.output), p.card, 0);
        mutable_group(gid).row_width = p.row_width;
        subset_store(p.mask, gid);
        for (SplitPlan& sp : p.splits) {
          AddExprWithFingerprint(std::move(sp.payload), {sp.left, sp.right},
                                 sp.fp, gid);
        }
      }
    }
    return subset_lookup(full);
  }

  // Greedy seed order (§3.1 seeding): distribution-aware collocated pair
  // first when one exists, then connected / collocated / smallest-card
  // next. Shared by the beam's spine and the left-deep fallback.
  auto compute_seed_order = [&]() {
    std::vector<int> order;
    std::vector<bool> used(static_cast<size_t>(n), false);
    int first = 0;
    for (int i = 1; i < n; ++i) {
      if (leaves[static_cast<size_t>(i)].card <
          leaves[static_cast<size_t>(first)].card) {
        first = i;
      }
    }
    // Distribution-aware seeding starts from a collocated pair when one
    // exists — "for PDW optimization we seed the MEMO with execution plans
    // that consider distribution information of tables, for collocated
    // operations" (§3.1).
    int second = -1;
    if (options_.seed_distribution_aware) {
      double best_pair_card = 0;
      for (size_t k = 0; k < conjuncts.size(); ++k) {
        ColumnId a, b;
        if (conjunct_masks[k] == 0 || Popcount(conjunct_masks[k]) != 2 ||
            !IsColumnEquality(conjuncts[k], &a, &b)) {
          continue;
        }
        int la = leaf_of_column(a);
        int lb = leaf_of_column(b);
        if (la < 0 || lb < 0 || la == lb) continue;
        const Leaf& la_leaf = leaves[static_cast<size_t>(la)];
        const Leaf& lb_leaf = leaves[static_cast<size_t>(lb)];
        bool collocated =
            (la_leaf.dist_cols.count(a) > 0 &&
             lb_leaf.dist_cols.count(b) > 0) ||
            la_leaf.replicated || lb_leaf.replicated;
        if (!collocated) continue;
        double pair_card = la_leaf.card + lb_leaf.card;
        if (second == -1 || pair_card < best_pair_card) {
          best_pair_card = pair_card;
          first = la_leaf.card <= lb_leaf.card ? la : lb;
          second = first == la ? lb : la;
        }
      }
    }
    order.push_back(first);
    used[static_cast<size_t>(first)] = true;
    uint32_t acc_mask = 1u << first;
    if (second >= 0) {
      order.push_back(second);
      used[static_cast<size_t>(second)] = true;
      acc_mask |= 1u << second;
    }
    while (static_cast<int>(order.size()) < n) {
      int best = -1;
      double best_score = -1e18;
      for (int i = 0; i < n; ++i) {
        if (used[static_cast<size_t>(i)]) continue;
        double score = 0;
        uint32_t pair_mask = acc_mask | (1u << i);
        bool connects = false;
        bool collocated = false;
        for (size_t k = 0; k < conjuncts.size(); ++k) {
          uint32_t cm = conjunct_masks[k];
          if (cm == 0 || (cm & (1u << i)) == 0 || (cm & acc_mask) == 0 ||
              (cm & pair_mask) != cm) {
            continue;
          }
          connects = true;
          if (options_.seed_distribution_aware) {
            ColumnId a, b;
            if (IsColumnEquality(conjuncts[k], &a, &b)) {
              const Leaf& leaf = leaves[static_cast<size_t>(i)];
              bool new_side_dist = leaf.dist_cols.count(a) > 0 ||
                                   leaf.dist_cols.count(b) > 0;
              ColumnId other = leaf.cols.count(a) > 0 ? b : a;
              int other_leaf = leaf_of_column(other);
              bool other_side_dist =
                  other_leaf >= 0 &&
                  leaves[static_cast<size_t>(other_leaf)].dist_cols.count(
                      other) > 0;
              if (new_side_dist && other_side_dist) collocated = true;
              if (leaf.replicated ||
                  (other_leaf >= 0 &&
                   leaves[static_cast<size_t>(other_leaf)].replicated)) {
                collocated = true;
              }
            }
          }
        }
        if (connects) score += 1e12;
        if (collocated) score += 1e13;
        score -= leaves[static_cast<size_t>(i)].card;
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      order.push_back(best);
      used[static_cast<size_t>(best)] = true;
      acc_mask |= 1u << best;
    }
    return order;
  };

  const int beam = ResolveBeamWidth(options_.beam_width);
  if (options_.enumerate_joins && graph_connected && beam > 0 && n <= 32) {
    // Budget-bounded beam search over the DP levels: keep the top-k
    // cheapest connected subsets per level instead of abandoning
    // enumeration entirely (the graduated replacement for the old
    // all-or-nothing cliff). Deterministic by construction — candidate
    // generation fans out over the pool but merges in task order, and
    // ranking ties break on the mask — so the memo is identical at every
    // thread count.
    int k = std::min(
        beam, std::max(2, options_.expr_budget / std::max(1, 2 * n * n)));
    constexpr size_t kMaxSplitsPerSubset = 8;

    std::vector<int> seed = compute_seed_order();
    // Prefix masks of the seeded chain, force-kept per level as the beam's
    // spine: the final level then always has a candidate, so the beam can
    // never do worse than the left-deep fallback.
    std::vector<uint32_t> chain(static_cast<size_t>(n) + 1, 0);
    for (int s = 1; s <= n; ++s) {
      chain[static_cast<size_t>(s)] =
          chain[static_cast<size_t>(s - 1)] |
          (1u << seed[static_cast<size_t>(s - 1)]);
    }

    struct BeamPair {
      uint32_t a = 0;
      uint32_t b = 0;
      std::vector<ScalarExprPtr> conds;
    };
    // surv[s]: masks kept at level s, in commit order. Singletons are
    // never pruned, so every level has combination candidates.
    std::vector<std::vector<uint32_t>> surv(static_cast<size_t>(n) + 1);
    std::map<uint32_t, GroupId> subset_group;
    for (int i = 0; i < n; ++i) {
      subset_group[1u << i] = leaves[static_cast<size_t>(i)].gid;
      surv[1].push_back(1u << i);
    }

    bool beam_failed = false;
    for (int s = 2; s <= n && !beam_failed; ++s) {
      // Candidates: disjoint survivor pairs from levels (i, s-i) joined by
      // at least one conjunct. One task per left survivor.
      std::vector<std::pair<int, size_t>> tasks;
      for (int i = 1; i * 2 <= s; ++i) {
        for (size_t ai = 0; ai < surv[static_cast<size_t>(i)].size(); ++ai) {
          tasks.emplace_back(i, ai);
        }
      }
      std::vector<std::vector<BeamPair>> task_pairs(tasks.size());
      pool.ParallelFor(
          static_cast<int>(tasks.size()),
          [&](int ti) {
            auto [i, ai] = tasks[static_cast<size_t>(ti)];
            uint32_t a = surv[static_cast<size_t>(i)][ai];
            auto& out = task_pairs[static_cast<size_t>(ti)];
            for (uint32_t b : surv[static_cast<size_t>(s - i)]) {
              if (i * 2 == s && b <= a) continue;  // unordered pair once
              if ((a & b) != 0) continue;
              std::vector<ScalarExprPtr> conds = split_conditions(a, b);
              if (conds.empty()) continue;
              out.push_back(BeamPair{a, b, std::move(conds)});
            }
          },
          threads);
      std::map<uint32_t, std::vector<BeamPair>> cands;
      for (auto& tp : task_pairs) {
        for (BeamPair& p : tp) {
          std::vector<BeamPair>& v = cands[p.a | p.b];
          if (v.size() < kMaxSplitsPerSubset) v.push_back(std::move(p));
        }
      }
      if (cands.empty()) {
        beam_failed = true;
        break;
      }
      // Rank by estimated cardinality, mask as the deterministic tie-break.
      std::vector<std::pair<double, uint32_t>> ranked;
      ranked.reserve(cands.size());
      for (const auto& [cand_mask, pairs] : cands) {
        ranked.emplace_back(subset_cardinality(cand_mask), cand_mask);
      }
      std::sort(ranked.begin(), ranked.end());
      std::vector<uint32_t> keep;
      for (const auto& [card, cand_mask] : ranked) {
        if (static_cast<int>(keep.size()) >= k) break;
        keep.push_back(cand_mask);
      }
      uint32_t spine = chain[static_cast<size_t>(s)];
      if (cands.count(spine) > 0 &&
          std::find(keep.begin(), keep.end(), spine) == keep.end()) {
        keep.push_back(spine);
      }
      for (uint32_t kept : keep) {
        GroupId gid =
            NewGroup(subset_output(kept), subset_cardinality(kept), 0);
        mutable_group(gid).row_width = estimator_->RowWidth(group(gid).output);
        subset_group[kept] = gid;
        for (BeamPair& p : cands[kept]) {
          GroupId ga = subset_group.at(p.a);
          GroupId gb = subset_group.at(p.b);
          AddExpr(std::make_shared<LogicalJoin>(LogicalJoinType::kInner,
                                                p.conds, nullptr, nullptr),
                  {ga, gb}, gid);
          AddExpr(std::make_shared<LogicalJoin>(LogicalJoinType::kInner,
                                                std::move(p.conds), nullptr,
                                                nullptr),
                  {gb, ga}, gid);
        }
        surv[static_cast<size_t>(s)].push_back(kept);
      }
      if (surv[static_cast<size_t>(s)].empty()) beam_failed = true;
    }
    auto it = subset_group.find(full);
    if (!beam_failed && it != subset_group.end()) {
      beam_used_ = true;
      return it->second;
    }
    // A conjunct spanning 3+ leaves can starve the spine; the left-deep
    // chain below still handles the cluster. Groups a partial beam already
    // committed remain as unreachable alternatives.
  }

  // Single seeded left-deep chain (beam disabled or infeasible).
  std::vector<int> order = compute_seed_order();
  uint32_t mask = 1u << order[0];
  GroupId acc = leaves[static_cast<size_t>(order[0])].gid;
  for (size_t i = 1; i < order.size(); ++i) {
    int leaf_idx = order[i];
    uint32_t new_mask = mask | (1u << leaf_idx);
    std::vector<ScalarExprPtr> conds =
        split_conditions(mask, 1u << leaf_idx);
    GroupId gid = NewGroup(subset_output(new_mask),
                           subset_cardinality(new_mask), 0);
    mutable_group(gid).row_width = estimator_->RowWidth(group(gid).output);
    LogicalJoinType jt =
        conds.empty() ? LogicalJoinType::kCross : LogicalJoinType::kInner;
    GroupId leaf_gid = leaves[static_cast<size_t>(leaf_idx)].gid;
    AddExpr(std::make_shared<LogicalJoin>(jt, conds, nullptr, nullptr),
            {acc, leaf_gid}, gid);
    AddExpr(std::make_shared<LogicalJoin>(jt, conds, nullptr, nullptr),
            {leaf_gid, acc}, gid);
    acc = gid;
    mask = new_mask;
  }
  return acc;
}

void Memo::ExploreSemiJoinAlternatives() {
  size_t group_count = groups_.size();
  for (size_t gi = 0; gi < group_count; ++gi) {
    size_t expr_count = groups_[gi].exprs.size();
    for (size_t ei = 0; ei < expr_count; ++ei) {
      // Copy what we need: AddExpr below may reallocate groups_.
      GroupExpr expr = groups_[gi].exprs[ei];
      if (expr.op->kind() != LogicalOpKind::kJoin) continue;
      const auto& j = static_cast<const LogicalJoin&>(*expr.op);
      if (j.join_type() != LogicalJoinType::kSemi) continue;

      GroupId left_gid = expr.children[0];
      GroupId right_gid = expr.children[1];
      std::set<ColumnId> right_ids;
      for (const auto& b : group(right_gid).output) right_ids.insert(b.id);

      // Every condition must bind right columns only through equalities
      // whose right side is a bare column; collect those columns.
      std::vector<ColumnId> bcols;
      bool ok = !j.conditions().empty();
      for (const auto& cond : j.conditions()) {
        std::set<ColumnId> used;
        CollectColumns(cond, &used);
        bool touches_right = false;
        for (ColumnId id : used) {
          if (right_ids.count(id) > 0) touches_right = true;
        }
        if (!touches_right) continue;
        ColumnId a, b;
        if (!IsColumnEquality(cond, &a, &b)) {
          ok = false;
          break;
        }
        ColumnId rcol = right_ids.count(a) > 0 ? a : b;
        ColumnId lcol = rcol == a ? b : a;
        if (right_ids.count(lcol) > 0) {
          ok = false;  // both sides from the right input
          break;
        }
        if (std::find(bcols.begin(), bcols.end(), rcol) == bcols.end()) {
          bcols.push_back(rcol);
        }
      }
      if (!ok || bcols.empty()) continue;

      // Distinct over the right side's join columns...
      auto agg = std::make_shared<LogicalAggregate>(
          bcols, std::vector<AggregateItem>{}, nullptr);
      GroupId dist_gid = AddExpr(std::move(agg), {right_gid});
      // ...joined inner (both orders)...
      auto join1 = std::make_shared<LogicalJoin>(
          LogicalJoinType::kInner, j.conditions(), nullptr, nullptr);
      GroupId join_gid = AddExpr(std::move(join1), {left_gid, dist_gid});
      auto join2 = std::make_shared<LogicalJoin>(
          LogicalJoinType::kInner, j.conditions(), nullptr, nullptr);
      AddExpr(std::move(join2), {dist_gid, left_gid}, join_gid);
      // ...then projected back to the semi join's output columns.
      std::vector<ProjectItem> items;
      for (const auto& b : groups_[gi].output) {
        items.push_back(ProjectItem{MakeColumn(b), b});
      }
      auto proj = std::make_shared<LogicalProject>(std::move(items), nullptr);
      AddExpr(std::move(proj), {join_gid}, static_cast<GroupId>(gi));
    }
  }
}

std::string Memo::ToString() const {
  std::string out;
  for (const auto& g : groups_) {
    out += StringFormat("Group %d: rows=%.1f width=%.1f cols=[", g.id,
                        g.cardinality, g.row_width);
    for (size_t i = 0; i < g.output.size(); ++i) {
      if (i > 0) out += ",";
      out += "#" + std::to_string(g.output[i].id);
    }
    out += "]\n";
    for (size_t i = 0; i < g.exprs.size(); ++i) {
      const GroupExpr& e = g.exprs[i];
      out += StringFormat("  %d.%zu: %s", g.id, i + 1, e.op->ToString().c_str());
      if (!e.children.empty()) {
        out += " (";
        for (size_t k = 0; k < e.children.size(); ++k) {
          if (k > 0) out += ", ";
          out += std::to_string(e.children[k]);
        }
        out += ")";
      }
      out += "\n";
    }
  }
  return out;
}

Result<std::vector<std::vector<GroupId>>> MemoLevels(const Memo& memo,
                                                     GroupId root) {
  if (root == kInvalidGroupId || root >= memo.num_groups()) {
    return Status::Internal("MemoLevels: invalid root group");
  }
  // Longest-path level of every reachable group via iterative DFS.
  // state: 0 = unvisited, 1 = on stack (in progress), 2 = done.
  std::vector<int8_t> state(static_cast<size_t>(memo.num_groups()), 0);
  std::vector<int> level(static_cast<size_t>(memo.num_groups()), -1);
  std::vector<std::pair<GroupId, size_t>> stack;  // (group, child cursor)
  stack.emplace_back(root, 0);
  state[static_cast<size_t>(root)] = 1;
  auto children_of = [&memo](GroupId gid) {
    std::vector<GroupId> out;
    for (const GroupExpr& e : memo.group(gid).exprs) {
      for (GroupId c : e.children) {
        // Self-children arise from in-group alternatives (e.g. the
        // semi-join rewrite's project back into its own group); the winner
        // passes skip those expressions, so the level order does too.
        if (c != gid) out.push_back(c);
      }
    }
    return out;
  };
  std::vector<std::vector<GroupId>> adj(static_cast<size_t>(memo.num_groups()));
  adj[static_cast<size_t>(root)] = children_of(root);
  while (!stack.empty()) {
    auto& [gid, cursor] = stack.back();
    const auto& kids = adj[static_cast<size_t>(gid)];
    if (cursor < kids.size()) {
      GroupId c = kids[cursor++];
      if (state[static_cast<size_t>(c)] == 1) {
        return Status::Internal("MemoLevels: cross-group cycle in memo");
      }
      if (state[static_cast<size_t>(c)] == 0) {
        state[static_cast<size_t>(c)] = 1;
        adj[static_cast<size_t>(c)] = children_of(c);
        stack.emplace_back(c, 0);
      }
      continue;
    }
    int lv = 0;
    for (GroupId c : kids) {
      lv = std::max(lv, level[static_cast<size_t>(c)] + 1);
    }
    level[static_cast<size_t>(gid)] = lv;
    state[static_cast<size_t>(gid)] = 2;
    stack.pop_back();
  }
  int max_level = level[static_cast<size_t>(root)];
  std::vector<std::vector<GroupId>> levels(static_cast<size_t>(max_level) + 1);
  for (GroupId g = 0; g < memo.num_groups(); ++g) {
    if (state[static_cast<size_t>(g)] == 2) {
      levels[static_cast<size_t>(level[static_cast<size_t>(g)])].push_back(g);
    }
  }
  return levels;
}

}  // namespace pdw
