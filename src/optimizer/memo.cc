#include "optimizer/memo.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace pdw {

namespace {

size_t HashCombine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

size_t ExprFingerprint(const LogicalOp& payload,
                       const std::vector<GroupId>& children) {
  size_t h = payload.PayloadHash();
  for (GroupId c : children) h = HashCombine(h, std::hash<int32_t>()(c));
  return h;
}

/// Finds the base-table access underlying a join-cluster leaf (a Get,
/// possibly under filters/projects); nullptr when the leaf is something
/// more complex (aggregate, semi join, ...).
const LogicalGet* FindUnderlyingGet(const LogicalOp& op) {
  if (op.kind() == LogicalOpKind::kGet) {
    return &static_cast<const LogicalGet&>(op);
  }
  if ((op.kind() == LogicalOpKind::kFilter ||
       op.kind() == LogicalOpKind::kProject) &&
      op.children().size() == 1) {
    return FindUnderlyingGet(*op.children()[0]);
  }
  return nullptr;
}

}  // namespace

GroupId Memo::NewGroup(std::vector<ColumnBinding> output, double cardinality,
                       double row_width) {
  Group g;
  g.id = static_cast<GroupId>(groups_.size());
  g.output = std::move(output);
  g.cardinality = cardinality;
  g.row_width = row_width;
  groups_.push_back(std::move(g));
  return groups_.back().id;
}

GroupId Memo::FindExistingExpr(const LogicalOp& payload,
                               const std::vector<GroupId>& children) const {
  size_t fp = ExprFingerprint(payload, children);
  auto [lo, hi] = expr_index_.equal_range(fp);
  for (auto it = lo; it != hi; ++it) {
    const auto& [gid, idx] = it->second;
    const GroupExpr& e = groups_[static_cast<size_t>(gid)].exprs[static_cast<size_t>(idx)];
    if (e.children == children && e.op->PayloadEquals(payload)) return gid;
  }
  return kInvalidGroupId;
}

GroupId Memo::AddExpr(LogicalOpPtr payload, std::vector<GroupId> children,
                      GroupId target_group) {
  GroupId existing = FindExistingExpr(*payload, children);
  if (existing != kInvalidGroupId) {
    // Already present somewhere; never duplicate.
    return target_group != kInvalidGroupId ? target_group : existing;
  }
  GroupExpr e;
  e.op = std::move(payload);
  e.children = std::move(children);

  GroupId gid = target_group;
  if (gid == kInvalidGroupId) {
    gid = NewGroup({}, 0, 0);
    ComputeGroupProperties(&groups_[static_cast<size_t>(gid)], e);
  }
  Group& g = groups_[static_cast<size_t>(gid)];
  size_t fp = ExprFingerprint(*e.op, e.children);
  expr_index_.emplace(fp, std::make_pair(gid, static_cast<int>(g.exprs.size())));
  g.exprs.push_back(std::move(e));
  ++num_exprs_;
  return gid;
}

void Memo::ComputeGroupProperties(Group* g, const GroupExpr& e) {
  std::vector<std::vector<ColumnBinding>> child_outputs;
  std::vector<double> child_cards;
  for (GroupId c : e.children) {
    child_outputs.push_back(groups_[static_cast<size_t>(c)].output);
    child_cards.push_back(groups_[static_cast<size_t>(c)].cardinality);
  }
  g->output = e.op->ComputeOutput(child_outputs);
  g->row_width = estimator_->RowWidth(g->output);

  const CardinalityEstimator& est = *estimator_;
  switch (e.op->kind()) {
    case LogicalOpKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(*e.op);
      double rows = get.table() != nullptr ? get.table()->stats.row_count : 0;
      g->cardinality = rows > 0 ? rows : 1000;
      break;
    }
    case LogicalOpKind::kEmpty:
      g->cardinality = 0;
      break;
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*e.op);
      g->cardinality = child_cards[0] * est.Selectivity(f.conjuncts());
      break;
    }
    case LogicalOpKind::kProject:
      g->cardinality = child_cards[0];
      break;
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*e.op);
      double sel = 1.0;
      for (const auto& c : j.conditions()) {
        ColumnId a, b;
        if (IsColumnEquality(c, &a, &b)) {
          sel *= est.JoinEqualitySelectivity(a, b);
        } else {
          sel *= est.ConjunctSelectivity(c);
        }
      }
      switch (j.join_type()) {
        case LogicalJoinType::kInner:
        case LogicalJoinType::kCross:
          g->cardinality = child_cards[0] * child_cards[1] * sel;
          break;
        case LogicalJoinType::kLeftOuter:
          g->cardinality =
              std::max(child_cards[0], child_cards[0] * child_cards[1] * sel);
          break;
        case LogicalJoinType::kSemi: {
          double match = std::min(1.0, child_cards[1] * sel);
          g->cardinality = child_cards[0] * match;
          break;
        }
        case LogicalJoinType::kAnti: {
          double match = std::min(1.0, child_cards[1] * sel);
          g->cardinality = child_cards[0] * std::max(0.0, 1.0 - match);
          break;
        }
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(*e.op);
      g->cardinality = est.GroupCardinality(a.group_by(), child_cards[0]);
      break;
    }
    case LogicalOpKind::kSort:
      g->cardinality = child_cards[0];
      break;
    case LogicalOpKind::kUnionAll: {
      double total = 0;
      for (double c : child_cards) total += c;
      g->cardinality = total;
      break;
    }
    case LogicalOpKind::kLimit: {
      const auto& l = static_cast<const LogicalLimit&>(*e.op);
      g->cardinality = std::min(child_cards[0], static_cast<double>(l.limit()));
      break;
    }
  }
  g->cardinality = std::max(0.0, g->cardinality);
}

Result<GroupId> Memo::InsertTree(const LogicalOpPtr& tree) {
  root_ = InsertTreeInternal(tree);
  if (options_.enable_semijoin_to_join) ExploreSemiJoinAlternatives();
  return root_;
}

GroupId Memo::InsertTreeInternal(const LogicalOpPtr& op) {
  if (options_.enumerate_joins && op->kind() == LogicalOpKind::kJoin) {
    const auto& j = static_cast<const LogicalJoin&>(*op);
    if (j.join_type() == LogicalJoinType::kInner ||
        j.join_type() == LogicalJoinType::kCross) {
      return InsertJoinCluster(op);
    }
  }
  std::vector<GroupId> children;
  for (const auto& c : op->children()) {
    children.push_back(InsertTreeInternal(c));
  }
  return AddExpr(op->WithChildren({}), std::move(children));
}

namespace {

/// Gathers an inner-join cluster: the leaf subtrees and the join conjuncts
/// of a maximal region of inner/cross joins.
void CollectCluster(const LogicalOpPtr& op, std::vector<LogicalOpPtr>* leaves,
                    std::vector<ScalarExprPtr>* conjuncts) {
  if (op->kind() == LogicalOpKind::kJoin) {
    const auto& j = static_cast<const LogicalJoin&>(*op);
    if (j.join_type() == LogicalJoinType::kInner ||
        j.join_type() == LogicalJoinType::kCross) {
      CollectCluster(op->children()[0], leaves, conjuncts);
      CollectCluster(op->children()[1], leaves, conjuncts);
      conjuncts->insert(conjuncts->end(), j.conditions().begin(),
                        j.conditions().end());
      return;
    }
  }
  leaves->push_back(op);
}

int Popcount(uint32_t v) { return __builtin_popcount(v); }

}  // namespace

GroupId Memo::InsertJoinCluster(const LogicalOpPtr& top) {
  std::vector<LogicalOpPtr> leaf_trees;
  std::vector<ScalarExprPtr> conjuncts;
  CollectCluster(top, &leaf_trees, &conjuncts);
  int n = static_cast<int>(leaf_trees.size());

  struct Leaf {
    GroupId gid;
    std::set<ColumnId> cols;
    double card;
    // Ids of the leaf's hash-distribution columns (empty when replicated or
    // unknown) — used by distribution-aware seeding.
    std::set<ColumnId> dist_cols;
    bool replicated = false;
  };
  std::vector<Leaf> leaves;
  for (const auto& lt : leaf_trees) {
    Leaf leaf;
    leaf.gid = InsertTreeInternal(lt);
    const Group& g = group(leaf.gid);
    for (const auto& b : g.output) leaf.cols.insert(b.id);
    leaf.card = g.cardinality;
    if (const LogicalGet* get = FindUnderlyingGet(*lt)) {
      const TableDef* t = get->table();
      if (t != nullptr) {
        if (t->distribution.is_replicated()) {
          leaf.replicated = true;
        } else {
          for (const std::string& dc : t->distribution.columns) {
            for (const auto& b : get->bindings()) {
              if (EqualsIgnoreCase(b.name, dc)) leaf.dist_cols.insert(b.id);
            }
          }
        }
      }
    }
    leaves.push_back(std::move(leaf));
  }

  if (n == 1) return leaves[0].gid;

  auto leaf_of_column = [&](ColumnId id) -> int {
    for (int i = 0; i < n; ++i) {
      if (leaves[static_cast<size_t>(i)].cols.count(id) > 0) return i;
    }
    return -1;
  };

  // Leaf mask each conjunct touches.
  std::vector<uint32_t> conjunct_masks;
  for (const auto& c : conjuncts) {
    std::set<ColumnId> used;
    CollectColumns(c, &used);
    uint32_t mask = 0;
    bool in_cluster = true;
    for (ColumnId id : used) {
      int leaf = leaf_of_column(id);
      if (leaf < 0) in_cluster = false;
      else mask |= 1u << leaf;
    }
    conjunct_masks.push_back(in_cluster ? mask : 0);
  }

  auto connected = [&](uint32_t mask) {
    if (mask == 0) return false;
    uint32_t reached = mask & (~mask + 1);  // lowest set bit
    while (true) {
      uint32_t grew = reached;
      for (size_t k = 0; k < conjuncts.size(); ++k) {
        uint32_t cm = conjunct_masks[k];
        if (cm != 0 && (cm & reached) != 0 && (cm & mask) == cm) {
          grew |= cm;
        }
      }
      if (grew == reached) break;
      reached = grew;
    }
    return reached == mask;
  };

  auto subset_cardinality = [&](uint32_t mask) {
    double card = 1;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) card *= leaves[static_cast<size_t>(i)].card;
    }
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      uint32_t cm = conjunct_masks[k];
      if (cm == 0 || Popcount(cm) < 2 || (cm & mask) != cm) continue;
      ColumnId a, b;
      if (IsColumnEquality(conjuncts[k], &a, &b)) {
        card *= estimator_->JoinEqualitySelectivity(a, b);
      } else {
        card *= estimator_->ConjunctSelectivity(conjuncts[k]);
      }
    }
    return std::max(0.0, card);
  };

  auto subset_output = [&](uint32_t mask) {
    std::vector<ColumnBinding> out;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        const Group& g = group(leaves[static_cast<size_t>(i)].gid);
        out.insert(out.end(), g.output.begin(), g.output.end());
      }
    }
    return out;
  };

  // Conjuncts that span split (L, R) within `mask`.
  auto split_conditions = [&](uint32_t l_mask, uint32_t r_mask) {
    std::vector<ScalarExprPtr> conds;
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      uint32_t cm = conjunct_masks[k];
      if (cm == 0 || Popcount(cm) < 2) continue;
      if ((cm & (l_mask | r_mask)) != cm) continue;
      if ((cm & l_mask) == 0 || (cm & r_mask) == 0) continue;
      conds.push_back(conjuncts[k]);
    }
    return conds;
  };

  const uint32_t full = n >= 32 ? 0xffffffffu : (1u << n) - 1;
  bool graph_connected = connected(full);

  // Decide full DP vs. seeded left-deep chain (the "timeout" fallback).
  bool full_dp = options_.enumerate_joins && n <= options_.max_dp_relations &&
                 graph_connected;
  if (full_dp) {
    // Pre-count connected subsets to respect the expression budget.
    int connected_subsets = 0;
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (Popcount(mask) >= 2 && connected(mask)) ++connected_subsets;
    }
    // Rough bound: each subset contributes ~2*size split expressions.
    if (static_cast<size_t>(connected_subsets) * 2 * static_cast<size_t>(n) +
            num_exprs_ >
        static_cast<size_t>(options_.expr_budget)) {
      full_dp = false;
      budget_exhausted_ = true;
    }
  }

  if (full_dp) {
    std::map<uint32_t, GroupId> subset_group;
    for (int i = 0; i < n; ++i) {
      subset_group[1u << i] = leaves[static_cast<size_t>(i)].gid;
    }
    for (int size = 2; size <= n; ++size) {
      for (uint32_t mask = 1; mask <= full; ++mask) {
        if (Popcount(mask) != size || !connected(mask)) continue;
        GroupId gid = NewGroup(subset_output(mask), subset_cardinality(mask), 0);
        mutable_group(gid).row_width =
            estimator_->RowWidth(group(gid).output);
        subset_group[mask] = gid;
        // All splits (both orders arise as (L,R) and (R,L)).
        for (uint32_t l = (mask - 1) & mask; l != 0; l = (l - 1) & mask) {
          uint32_t r = mask ^ l;
          auto it_l = subset_group.find(l);
          auto it_r = subset_group.find(r);
          if (it_l == subset_group.end() || it_r == subset_group.end()) continue;
          std::vector<ScalarExprPtr> conds = split_conditions(l, r);
          if (conds.empty()) continue;  // connected mask => no cross needed
          auto payload = std::make_shared<LogicalJoin>(
              LogicalJoinType::kInner, std::move(conds), nullptr, nullptr);
          AddExpr(std::move(payload), {it_l->second, it_r->second}, gid);
        }
      }
    }
    return subset_group[full];
  }

  // Seeded left-deep chain. Order: distribution-aware greedy (§3.1 seeding)
  // or plain smallest-cardinality-first.
  std::vector<int> order;
  std::vector<bool> used(static_cast<size_t>(n), false);
  int first = 0;
  for (int i = 1; i < n; ++i) {
    if (leaves[static_cast<size_t>(i)].card <
        leaves[static_cast<size_t>(first)].card) {
      first = i;
    }
  }
  // Distribution-aware seeding starts from a collocated pair when one
  // exists — "for PDW optimization we seed the MEMO with execution plans
  // that consider distribution information of tables, for collocated
  // operations" (§3.1).
  int second = -1;
  if (options_.seed_distribution_aware) {
    double best_pair_card = 0;
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      ColumnId a, b;
      if (conjunct_masks[k] == 0 || Popcount(conjunct_masks[k]) != 2 ||
          !IsColumnEquality(conjuncts[k], &a, &b)) {
        continue;
      }
      int la = leaf_of_column(a);
      int lb = leaf_of_column(b);
      if (la < 0 || lb < 0 || la == lb) continue;
      const Leaf& la_leaf = leaves[static_cast<size_t>(la)];
      const Leaf& lb_leaf = leaves[static_cast<size_t>(lb)];
      bool collocated =
          (la_leaf.dist_cols.count(a) > 0 && lb_leaf.dist_cols.count(b) > 0) ||
          la_leaf.replicated || lb_leaf.replicated;
      if (!collocated) continue;
      double pair_card = la_leaf.card + lb_leaf.card;
      if (second == -1 || pair_card < best_pair_card) {
        best_pair_card = pair_card;
        first = la_leaf.card <= lb_leaf.card ? la : lb;
        second = first == la ? lb : la;
      }
    }
  }
  order.push_back(first);
  used[static_cast<size_t>(first)] = true;
  uint32_t acc_mask = 1u << first;
  if (second >= 0) {
    order.push_back(second);
    used[static_cast<size_t>(second)] = true;
    acc_mask |= 1u << second;
  }
  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    double best_score = -1e18;
    for (int i = 0; i < n; ++i) {
      if (used[static_cast<size_t>(i)]) continue;
      double score = 0;
      uint32_t pair_mask = acc_mask | (1u << i);
      bool connects = false;
      bool collocated = false;
      for (size_t k = 0; k < conjuncts.size(); ++k) {
        uint32_t cm = conjunct_masks[k];
        if (cm == 0 || (cm & (1u << i)) == 0 || (cm & acc_mask) == 0 ||
            (cm & pair_mask) != cm) {
          continue;
        }
        connects = true;
        if (options_.seed_distribution_aware) {
          ColumnId a, b;
          if (IsColumnEquality(conjuncts[k], &a, &b)) {
            const Leaf& leaf = leaves[static_cast<size_t>(i)];
            bool new_side_dist = leaf.dist_cols.count(a) > 0 ||
                                 leaf.dist_cols.count(b) > 0;
            ColumnId other = leaf.cols.count(a) > 0 ? b : a;
            int other_leaf = leaf_of_column(other);
            bool other_side_dist =
                other_leaf >= 0 &&
                leaves[static_cast<size_t>(other_leaf)].dist_cols.count(other) > 0;
            if (new_side_dist && other_side_dist) collocated = true;
            if (leaf.replicated ||
                (other_leaf >= 0 &&
                 leaves[static_cast<size_t>(other_leaf)].replicated)) {
              collocated = true;
            }
          }
        }
      }
      if (connects) score += 1e12;
      if (collocated) score += 1e13;
      score -= leaves[static_cast<size_t>(i)].card;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    order.push_back(best);
    used[static_cast<size_t>(best)] = true;
    acc_mask |= 1u << best;
  }

  uint32_t mask = 1u << order[0];
  GroupId acc = leaves[static_cast<size_t>(order[0])].gid;
  for (size_t i = 1; i < order.size(); ++i) {
    int leaf_idx = order[i];
    uint32_t new_mask = mask | (1u << leaf_idx);
    std::vector<ScalarExprPtr> conds =
        split_conditions(mask, 1u << leaf_idx);
    GroupId gid = NewGroup(subset_output(new_mask),
                           subset_cardinality(new_mask), 0);
    mutable_group(gid).row_width = estimator_->RowWidth(group(gid).output);
    LogicalJoinType jt =
        conds.empty() ? LogicalJoinType::kCross : LogicalJoinType::kInner;
    GroupId leaf_gid = leaves[static_cast<size_t>(leaf_idx)].gid;
    AddExpr(std::make_shared<LogicalJoin>(jt, conds, nullptr, nullptr),
            {acc, leaf_gid}, gid);
    AddExpr(std::make_shared<LogicalJoin>(jt, conds, nullptr, nullptr),
            {leaf_gid, acc}, gid);
    acc = gid;
    mask = new_mask;
  }
  return acc;
}

void Memo::ExploreSemiJoinAlternatives() {
  size_t group_count = groups_.size();
  for (size_t gi = 0; gi < group_count; ++gi) {
    size_t expr_count = groups_[gi].exprs.size();
    for (size_t ei = 0; ei < expr_count; ++ei) {
      // Copy what we need: AddExpr below may reallocate groups_.
      GroupExpr expr = groups_[gi].exprs[ei];
      if (expr.op->kind() != LogicalOpKind::kJoin) continue;
      const auto& j = static_cast<const LogicalJoin&>(*expr.op);
      if (j.join_type() != LogicalJoinType::kSemi) continue;

      GroupId left_gid = expr.children[0];
      GroupId right_gid = expr.children[1];
      std::set<ColumnId> right_ids;
      for (const auto& b : group(right_gid).output) right_ids.insert(b.id);

      // Every condition must bind right columns only through equalities
      // whose right side is a bare column; collect those columns.
      std::vector<ColumnId> bcols;
      bool ok = !j.conditions().empty();
      for (const auto& cond : j.conditions()) {
        std::set<ColumnId> used;
        CollectColumns(cond, &used);
        bool touches_right = false;
        for (ColumnId id : used) {
          if (right_ids.count(id) > 0) touches_right = true;
        }
        if (!touches_right) continue;
        ColumnId a, b;
        if (!IsColumnEquality(cond, &a, &b)) {
          ok = false;
          break;
        }
        ColumnId rcol = right_ids.count(a) > 0 ? a : b;
        ColumnId lcol = rcol == a ? b : a;
        if (right_ids.count(lcol) > 0) {
          ok = false;  // both sides from the right input
          break;
        }
        if (std::find(bcols.begin(), bcols.end(), rcol) == bcols.end()) {
          bcols.push_back(rcol);
        }
      }
      if (!ok || bcols.empty()) continue;

      // Distinct over the right side's join columns...
      auto agg = std::make_shared<LogicalAggregate>(
          bcols, std::vector<AggregateItem>{}, nullptr);
      GroupId dist_gid = AddExpr(std::move(agg), {right_gid});
      // ...joined inner (both orders)...
      auto join1 = std::make_shared<LogicalJoin>(
          LogicalJoinType::kInner, j.conditions(), nullptr, nullptr);
      GroupId join_gid = AddExpr(std::move(join1), {left_gid, dist_gid});
      auto join2 = std::make_shared<LogicalJoin>(
          LogicalJoinType::kInner, j.conditions(), nullptr, nullptr);
      AddExpr(std::move(join2), {dist_gid, left_gid}, join_gid);
      // ...then projected back to the semi join's output columns.
      std::vector<ProjectItem> items;
      for (const auto& b : groups_[gi].output) {
        items.push_back(ProjectItem{MakeColumn(b), b});
      }
      auto proj = std::make_shared<LogicalProject>(std::move(items), nullptr);
      AddExpr(std::move(proj), {join_gid}, static_cast<GroupId>(gi));
    }
  }
}

std::string Memo::ToString() const {
  std::string out;
  for (const auto& g : groups_) {
    out += StringFormat("Group %d: rows=%.1f width=%.1f cols=[", g.id,
                        g.cardinality, g.row_width);
    for (size_t i = 0; i < g.output.size(); ++i) {
      if (i > 0) out += ",";
      out += "#" + std::to_string(g.output[i].id);
    }
    out += "]\n";
    for (size_t i = 0; i < g.exprs.size(); ++i) {
      const GroupExpr& e = g.exprs[i];
      out += StringFormat("  %d.%zu: %s", g.id, i + 1, e.op->ToString().c_str());
      if (!e.children.empty()) {
        out += " (";
        for (size_t k = 0; k < e.children.size(); ++k) {
          if (k > 0) out += ", ";
          out += std::to_string(e.children[k]);
        }
        out += ")";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace pdw
