#ifndef PDW_OPTIMIZER_JOIN_STRESS_H_
#define PDW_OPTIMIZER_JOIN_STRESS_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"

namespace pdw {

/// Join-graph topologies for optimizer stress queries, ordered by how fast
/// the connected-subset count grows with the relation count: a star has
/// 2^(n-1) connected subsets, a chain n(n+1)/2, a clique all 2^n - 1.
enum class JoinStressShape { kStar, kChain, kClique };

const char* JoinStressShapeName(JoinStressShape shape);

struct JoinStressSpec {
  JoinStressShape shape = JoinStressShape::kStar;
  /// Number of base relations (2..31 — the memo's full DP is mask-based).
  int relations = 15;
  /// Seeds the synthetic statistics (row counts, NDVs), so two specs with
  /// the same seed produce byte-identical catalogs and SQL.
  uint32_t seed = 42;
  /// Compute nodes in the shell catalog's topology.
  int nodes = 8;
};

/// A generated stress query: a shell catalog of `relations` tables with
/// randomized-but-deterministic statistics, plus a SELECT that joins all of
/// them in the spec's shape. Every table contributes a payload column to
/// the select list and no table declares a primary key, so the normalizer
/// cannot eliminate any join — the optimizer must order all n relations.
struct JoinStressQuery {
  Catalog catalog;
  std::string sql;
};

JoinStressQuery MakeJoinStressQuery(const JoinStressSpec& spec);

}  // namespace pdw

#endif  // PDW_OPTIMIZER_JOIN_STRESS_H_
