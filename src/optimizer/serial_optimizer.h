#ifndef PDW_OPTIMIZER_SERIAL_OPTIMIZER_H_
#define PDW_OPTIMIZER_SERIAL_OPTIMIZER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/binder.h"
#include "algebra/normalizer.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "optimizer/memo.h"
#include "plan/plan_node.h"

namespace pdw {

/// Everything the "SQL Server compilation" stage produces against the shell
/// database (paper Fig. 2, component 2): the bound + normalized tree, the
/// statistics context, and the populated MEMO search space.
struct CompilationResult {
  std::vector<std::string> output_names;
  /// See BoundQuery::visible_columns.
  int visible_columns = -1;
  LogicalOpPtr normalized;
  std::shared_ptr<StatsContext> stats;
  std::shared_ptr<CardinalityEstimator> estimator;
  std::shared_ptr<Memo> memo;
  /// Wall seconds of each stage (bind, normalize, memo), in order.
  std::vector<std::pair<std::string, double>> phase_seconds;
};

/// Parses, binds, normalizes and explores a SELECT against `catalog`
/// (which, on the control node, is the shell database).
Result<CompilationResult> CompileQuery(const Catalog& catalog,
                                       const std::string& sql,
                                       const MemoOptions& memo_options = {},
                                       const NormalizerOptions& norm_options = {});

/// Same pipeline for an already-parsed statement.
Result<CompilationResult> CompileSelect(const Catalog& catalog,
                                        const sql::SelectStatement& stmt,
                                        const MemoOptions& memo_options = {},
                                        const NormalizerOptions& norm_options = {});

/// Computes serial winners for every group reachable from the memo root
/// (single-node cost model: scans, hash joins, aggregation, sort) and
/// returns the best serial plan — what a non-PDW SQL Server would run, and
/// the input to the parallelize-the-serial-plan baseline.
///
/// `opt_threads` fans the winner computation out level-by-level over the
/// memo DAG (see MemoLevels); semantics as MemoOptions::opt_threads. The
/// chosen winners are identical at every setting — within a group the
/// expression order fixes the tie-break, and group costs only depend on
/// lower levels, which are complete before a level starts.
Result<PlanNodePtr> ExtractBestSerialPlan(Memo* memo, int opt_threads = -1);

/// Serial cost of one group's winner (computes winners on demand).
double SerialWinnerCost(Memo* memo, GroupId gid);

/// Builds a PlanNode for a logical payload with physical kind selection
/// (joins pick hash vs nested-loop from the equi keys). Shared with the
/// PDW enumerator. `children` supply output bindings for key extraction.
PlanNodePtr PlanNodeFromPayload(const LogicalOp& payload,
                                std::vector<PlanNodePtr> children,
                                double cardinality, double row_width);

}  // namespace pdw

#endif  // PDW_OPTIMIZER_SERIAL_OPTIMIZER_H_
