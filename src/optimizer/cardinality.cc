#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace pdw {

namespace {

using sql::BinaryOp;

constexpr double kDefaultCmpSelectivity = 1.0 / 3.0;
constexpr double kDefaultEqSelectivity = 0.1;
constexpr double kLikeSelectivity = 0.05;

bool SplitColumnLiteral(const ScalarExprPtr& e, ColumnId* col, Datum* value,
                        BinaryOp* op) {
  if (e->kind() != ScalarKind::kBinary) return false;
  const auto& b = static_cast<const BinaryExprB&>(*e);
  *op = b.op();
  if (b.left()->kind() == ScalarKind::kColumn &&
      b.right()->kind() == ScalarKind::kLiteral) {
    *col = static_cast<const ColumnExpr&>(*b.left()).id();
    *value = static_cast<const LiteralExprB&>(*b.right()).value();
    return true;
  }
  if (b.right()->kind() == ScalarKind::kColumn &&
      b.left()->kind() == ScalarKind::kLiteral) {
    *col = static_cast<const ColumnExpr&>(*b.right()).id();
    *value = static_cast<const LiteralExprB&>(*b.left()).value();
    switch (b.op()) {
      case BinaryOp::kLt: *op = BinaryOp::kGt; break;
      case BinaryOp::kLe: *op = BinaryOp::kGe; break;
      case BinaryOp::kGt: *op = BinaryOp::kLt; break;
      case BinaryOp::kGe: *op = BinaryOp::kLe; break;
      default: break;
    }
    return true;
  }
  return false;
}

}  // namespace

double CardinalityEstimator::ConjunctSelectivity(
    const ScalarExprPtr& conjunct) const {
  if (!conjunct) return 1.0;
  // Literal TRUE/FALSE.
  if (conjunct->kind() == ScalarKind::kLiteral) {
    const Datum& v = static_cast<const LiteralExprB&>(*conjunct).value();
    if (v.is_null()) return 0.0;
    return v.bool_value() ? 1.0 : 0.0;
  }
  if (conjunct->kind() == ScalarKind::kUnary) {
    const auto& u = static_cast<const UnaryExprB&>(*conjunct);
    if (u.op() == sql::UnaryOp::kNot) {
      return std::clamp(1.0 - ConjunctSelectivity(u.operand()), 0.0, 1.0);
    }
    return kDefaultCmpSelectivity;
  }
  if (conjunct->kind() == ScalarKind::kIsNull) {
    const auto& n = static_cast<const IsNullExprB&>(*conjunct);
    double null_frac = 0.01;
    if (n.operand()->kind() == ScalarKind::kColumn) {
      ColumnId id = static_cast<const ColumnExpr&>(*n.operand()).id();
      const ColumnStats* cs = stats_->GetStats(id);
      if (cs != nullptr && cs->row_count > 0) {
        null_frac = cs->null_count / cs->row_count;
      }
    }
    return n.negated() ? 1.0 - null_frac : null_frac;
  }
  if (conjunct->kind() != ScalarKind::kBinary) return kDefaultCmpSelectivity;

  const auto& b = static_cast<const BinaryExprB&>(*conjunct);
  switch (b.op()) {
    case BinaryOp::kAnd:
      return ConjunctSelectivity(b.left()) * ConjunctSelectivity(b.right());
    case BinaryOp::kOr: {
      double l = ConjunctSelectivity(b.left());
      double r = ConjunctSelectivity(b.right());
      return std::clamp(l + r - l * r, 0.0, 1.0);
    }
    case BinaryOp::kLike:
      return kLikeSelectivity;
    case BinaryOp::kNotLike:
      return 1.0 - kLikeSelectivity;
    default:
      break;
  }

  // Column-vs-column equality (within one input): 1/max ndv.
  ColumnId ca, cb;
  if (IsColumnEquality(conjunct, &ca, &cb)) {
    return JoinEqualitySelectivity(ca, cb);
  }

  // Column-vs-literal.
  ColumnId col;
  Datum value;
  BinaryOp op;
  if (SplitColumnLiteral(conjunct, &col, &value, &op)) {
    const ColumnStats* cs = stats_->GetStats(col);
    if (cs == nullptr) {
      return op == BinaryOp::kEq ? kDefaultEqSelectivity
                                 : kDefaultCmpSelectivity;
    }
    switch (op) {
      case BinaryOp::kEq:
        return cs->EqualsSelectivity(value);
      case BinaryOp::kNe:
        return std::clamp(1.0 - cs->EqualsSelectivity(value), 0.0, 1.0);
      case BinaryOp::kLt:
        return cs->RangeSelectivity(Datum::Null(), false, value, false);
      case BinaryOp::kLe:
        return cs->RangeSelectivity(Datum::Null(), false, value, true);
      case BinaryOp::kGt:
        return cs->RangeSelectivity(value, false, Datum::Null(), false);
      case BinaryOp::kGe:
        return cs->RangeSelectivity(value, true, Datum::Null(), false);
      default:
        return kDefaultCmpSelectivity;
    }
  }
  return kDefaultCmpSelectivity;
}

double CardinalityEstimator::Selectivity(
    const std::vector<ScalarExprPtr>& conjuncts) const {
  double s = 1.0;
  for (const auto& c : conjuncts) s *= ConjunctSelectivity(c);
  return s;
}

double CardinalityEstimator::JoinEqualitySelectivity(ColumnId a,
                                                     ColumnId b) const {
  double ndv_a = stats_->Ndv(a, 10);
  double ndv_b = stats_->Ndv(b, 10);
  double d = std::max({ndv_a, ndv_b, 1.0});
  return 1.0 / d;
}

double CardinalityEstimator::GroupCardinality(
    const std::vector<ColumnId>& group_cols, double input_rows) const {
  if (group_cols.empty()) return 1;
  double product = 1;
  for (ColumnId id : group_cols) {
    product *= std::max(1.0, stats_->Ndv(id, std::sqrt(std::max(1.0, input_rows))));
    if (product > input_rows) return std::max(1.0, input_rows);
  }
  return std::max(1.0, std::min(product, input_rows));
}

double CardinalityEstimator::RowWidth(
    const std::vector<ColumnBinding>& cols) const {
  double w = 0;
  for (const auto& b : cols) w += stats_->Width(b.id);
  return std::max(1.0, w);
}

}  // namespace pdw
