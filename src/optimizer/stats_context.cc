#include "optimizer/stats_context.h"

#include "common/string_util.h"

namespace pdw {

void StatsContext::RegisterGet(const LogicalGet& get) {
  const TableDef* table = get.table();
  for (const auto& b : get.bindings()) {
    Entry e;
    e.type = b.type;
    e.width = DefaultTypeWidth(b.type);
    if (table != nullptr) {
      e.table_rows = table->stats.row_count;
      e.stats = table->GetColumnStats(b.name);
      if (e.stats != nullptr && e.stats->avg_width > 0) {
        e.width = e.stats->avg_width;
      }
    }
    entries_[b.id] = e;
  }
}

void StatsContext::RegisterTree(const LogicalOp& root) {
  for (const auto& c : root.children()) RegisterTree(*c);
  if (root.kind() == LogicalOpKind::kGet) {
    RegisterGet(static_cast<const LogicalGet&>(root));
    return;
  }
  if (root.kind() == LogicalOpKind::kProject) {
    const auto& p = static_cast<const LogicalProject&>(root);
    for (const auto& item : p.items()) {
      if (entries_.count(item.output.id) > 0) continue;
      if (item.expr->kind() == ScalarKind::kColumn) {
        // Pass-through/renamed column: inherit the source entry.
        ColumnId src = static_cast<const ColumnExpr&>(*item.expr).id();
        auto it = entries_.find(src);
        if (it != entries_.end()) {
          entries_[item.output.id] = it->second;
          continue;
        }
      }
      Entry e;
      e.type = item.output.type;
      e.width = DefaultTypeWidth(item.output.type);
      entries_[item.output.id] = e;
    }
  }
  if (root.kind() == LogicalOpKind::kAggregate) {
    const auto& a = static_cast<const LogicalAggregate&>(root);
    for (const auto& agg : a.aggregates()) {
      if (entries_.count(agg.output.id) > 0) continue;
      Entry e;
      e.type = agg.output.type;
      e.width = DefaultTypeWidth(agg.output.type);
      entries_[agg.output.id] = e;
    }
  }
}

void StatsContext::RegisterSynthesized(ColumnId id, TypeId type, double ndv,
                                       double width) {
  Entry e;
  e.type = type;
  e.ndv = ndv;
  e.width = width;
  entries_[id] = e;
}

const ColumnStats* StatsContext::GetStats(ColumnId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.stats;
}

double StatsContext::Ndv(ColumnId id, double fallback) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return fallback;
  if (it->second.ndv >= 0) return it->second.ndv;
  if (it->second.stats != nullptr && it->second.stats->distinct_count > 0) {
    return it->second.stats->distinct_count;
  }
  return fallback;
}

double StatsContext::Width(ColumnId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? 8 : it->second.width;
}

double StatsContext::TableCardinality(ColumnId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.table_rows;
}

}  // namespace pdw
