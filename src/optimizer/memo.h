#ifndef PDW_OPTIMIZER_MEMO_H_
#define PDW_OPTIMIZER_MEMO_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_op.h"
#include "common/result.h"
#include "optimizer/cardinality.h"

namespace pdw {

using GroupId = int32_t;
inline constexpr GroupId kInvalidGroupId = -1;

/// A group expression: an operator payload whose children are groups, not
/// operators. Together with Group this is the paper's (and Cascades' [5,6])
/// MEMO representation — "a groupExpression is an operator having other
/// groups (rather than other operators) as children".
struct GroupExpr {
  LogicalOpPtr op;  ///< Payload; op->children() is ignored inside the memo.
  std::vector<GroupId> children;
};

/// A group: the set of all equivalent operator trees producing the same
/// output, with shared logical properties (output columns, cardinality).
struct Group {
  GroupId id = kInvalidGroupId;
  std::vector<GroupExpr> exprs;
  std::vector<ColumnBinding> output;
  double cardinality = 0;
  double row_width = 0;

  // Serial-optimizer winner (best serial implementation), used both to
  // extract the best serial plan and by the parallelize-the-serial-plan
  // baseline. -1 cost means not yet computed.
  double winner_cost = -1;
  int winner_expr = -1;
};

/// Exploration controls. `expr_budget` plays the role of the SQL Server
/// optimizer timeout of §3.1: when the search space would exceed it, the
/// memo degrades gracefully — first to a budget-bounded beam search over
/// the DP levels (`beam_width` best subsets per level), and only with the
/// beam disabled to a single seeded left-deep join order, so the seed
/// determines the space considered — which is why PDW seeds with
/// distribution-aware collocated orders.
struct MemoOptions {
  int max_dp_relations = 9;
  int expr_budget = 60000;
  bool seed_distribution_aware = true;
  bool enable_semijoin_to_join = true;
  bool enumerate_joins = true;  ///< false = keep the input join order only.
  /// Threads fanning out the join-order DP (and the downstream cost
  /// sweeps). -1 = PDW_OPT_THREADS env, else one per hardware core;
  /// 1 = serial. The memo produced is byte-identical at every setting.
  int opt_threads = -1;
  /// Beam width of the degraded enumeration (top-K cheapest connected
  /// subsets kept per DP level). -1 = PDW_OPT_BEAM env, else 64;
  /// 0 = disable the beam (legacy left-deep cliff).
  int beam_width = -1;
};

/// Effective thread cap for optimizer fan-out: `opt_threads` when >= 1,
/// else PDW_OPT_THREADS when set, else hardware_concurrency. Optimizer
/// work is CPU-bound, so the default never oversubscribes cores the way
/// the (dispatch-latency-bound) executor pool deliberately does; on a
/// single-core host it degrades to serial inline with zero overhead.
int ResolveOptThreads(int opt_threads);

/// Effective beam width: `beam_width` when >= 0, else PDW_OPT_BEAM when
/// set, else 64.
int ResolveBeamWidth(int beam_width);

/// The optimizer search space: a DAG of groups. Construction inserts the
/// normalized logical tree with full join-order enumeration inside each
/// inner-join cluster (dynamic programming over connected sub-sets, with
/// commuted variants — "all equivalent join orders are generated"), plus
/// non-join alternatives such as semi-join -> join + group-by.
class Memo {
 public:
  Memo(const CardinalityEstimator* estimator, MemoOptions options)
      : estimator_(estimator), options_(options) {}

  /// Inserts a logical tree; returns the root group. Also runs the
  /// non-join transformation rules.
  Result<GroupId> InsertTree(const LogicalOpPtr& tree);

  GroupId root() const { return root_; }
  /// Marks the root group (XML importer use).
  void SetRoot(GroupId root) { root_ = root; }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  size_t num_exprs() const { return num_exprs_; }
  const Group& group(GroupId id) const { return groups_[static_cast<size_t>(id)]; }
  Group& mutable_group(GroupId id) { return groups_[static_cast<size_t>(id)]; }

  /// True if join enumeration was degraded for some cluster: the budget
  /// was hit or the cluster exceeded max_dp_relations (the "timeout" path).
  bool budget_exhausted() const { return budget_exhausted_; }

  /// True if the degraded enumeration ran as a beam search (rather than
  /// the single seeded left-deep order).
  bool beam_used() const { return beam_used_; }

  const CardinalityEstimator& estimator() const { return *estimator_; }

  /// Inserts a raw group expression (used by the XML importer and by the
  /// PDW pre-processing rules). When `target_group` is given the expression
  /// joins that group; otherwise a group is found by dedup or created with
  /// the given logical properties.
  GroupId AddExpr(LogicalOpPtr payload, std::vector<GroupId> children,
                  GroupId target_group = kInvalidGroupId);

  /// Creates an empty group with explicit properties (XML importer).
  GroupId NewGroup(std::vector<ColumnBinding> output, double cardinality,
                   double row_width);

  /// Multi-line dump of all groups for debugging and the Fig. 3 bench.
  std::string ToString() const;

 private:
  struct ExprKey {
    size_t payload_hash;
    std::vector<GroupId> children;
  };

  GroupId InsertTreeInternal(const LogicalOpPtr& op);
  GroupId InsertJoinCluster(const LogicalOpPtr& top);
  void ComputeGroupProperties(Group* g, const GroupExpr& e);
  /// AddExpr with the fingerprint already computed (the parallel DP hashes
  /// expressions off the commit thread); semantics identical to AddExpr.
  GroupId AddExprWithFingerprint(LogicalOpPtr payload,
                                 std::vector<GroupId> children, size_t fp,
                                 GroupId target_group);
  void ExploreSemiJoinAlternatives();

  const CardinalityEstimator* estimator_;
  MemoOptions options_;
  std::vector<Group> groups_;
  GroupId root_ = kInvalidGroupId;
  size_t num_exprs_ = 0;
  bool budget_exhausted_ = false;
  bool beam_used_ = false;
  // Dedup: payload+children fingerprint -> (group, expr index).
  std::unordered_multimap<size_t, std::pair<GroupId, int>> expr_index_;
};

/// Groups reachable from `root`, bucketed by longest-path level over the
/// memo DAG: every child of a level-L group sits strictly below L, so the
/// levels can be processed bottom-up with a barrier between them and no
/// synchronization inside one. Self-referencing children are ignored (the
/// winner pass skips those expressions anyway). Fails if the reachable
/// subgraph has a cross-group cycle.
Result<std::vector<std::vector<GroupId>>> MemoLevels(const Memo& memo,
                                                     GroupId root);

}  // namespace pdw

#endif  // PDW_OPTIMIZER_MEMO_H_
