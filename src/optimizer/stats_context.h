#ifndef PDW_OPTIMIZER_STATS_CONTEXT_H_
#define PDW_OPTIMIZER_STATS_CONTEXT_H_

#include <map>

#include "algebra/logical_op.h"
#include "stats/column_stats.h"

namespace pdw {

/// Per-compilation lookup from ColumnId to the statistics of the base-table
/// column it was bound to. Columns synthesized by projects/aggregates are
/// registered with derived statistics. This is what the cardinality module
/// consults; in the paper's terms these are the shell database's global
/// statistics made addressable by column instance.
class StatsContext {
 public:
  /// Registers all bindings of a base-table access.
  void RegisterGet(const LogicalGet& get);

  /// Walks a logical tree and registers every Get plus synthesized columns
  /// (project outputs referencing a single column inherit its stats).
  void RegisterTree(const LogicalOp& root);

  /// Registers a synthesized column with an explicit NDV estimate.
  void RegisterSynthesized(ColumnId id, TypeId type, double ndv, double width);

  /// Base-table stats for a column, or nullptr for synthesized columns
  /// without registered stats.
  const ColumnStats* GetStats(ColumnId id) const;

  /// Distinct-count estimate; falls back to `fallback` when unknown.
  double Ndv(ColumnId id, double fallback) const;

  /// Average width in bytes (stats, then type default, then 8).
  double Width(ColumnId id) const;

  /// Row count of the base table the column belongs to (0 when synthesized).
  double TableCardinality(ColumnId id) const;

 private:
  struct Entry {
    const ColumnStats* stats = nullptr;  // owned by the catalog
    double table_rows = 0;
    double ndv = -1;     // explicit override for synthesized columns
    double width = 8;
    TypeId type = TypeId::kInvalid;
  };
  std::map<ColumnId, Entry> entries_;
};

}  // namespace pdw

#endif  // PDW_OPTIMIZER_STATS_CONTEXT_H_
