#include "optimizer/serial_optimizer.h"

#include <chrono>
#include <cmath>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace pdw {

namespace {

// Serial cost-model weights (abstract units; only relative magnitudes
// matter for plan choice). Tuned so smaller-input-first join orders win —
// the behaviour the paper ascribes to the serial optimizer in §2.5.
constexpr double kScanWeight = 1.0;
constexpr double kFilterWeight = 0.2;
constexpr double kProjectWeight = 0.1;
constexpr double kHashBuildWeight = 1.5;
constexpr double kHashProbeWeight = 1.0;
constexpr double kNestedLoopWeight = 0.2;
constexpr double kAggWeight = 1.5;
constexpr double kSortWeight = 0.3;
constexpr double kOutputWeight = 0.1;

/// Local (per-operator) serial cost of one group expression given child
/// cardinalities.
double LocalSerialCost(const Memo& memo, const Group& g, const GroupExpr& e) {
  auto child_card = [&](int i) {
    return memo.group(e.children[static_cast<size_t>(i)]).cardinality;
  };
  switch (e.op->kind()) {
    case LogicalOpKind::kGet:
      return kScanWeight * g.cardinality;
    case LogicalOpKind::kEmpty:
      return 0;
    case LogicalOpKind::kFilter:
      return kFilterWeight * child_card(0);
    case LogicalOpKind::kProject:
      return kProjectWeight * child_card(0);
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*e.op);
      const Group& lg = memo.group(e.children[0]);
      const Group& rg = memo.group(e.children[1]);
      std::vector<std::pair<ColumnId, ColumnId>> keys =
          j.EquiKeys(lg.output, rg.output);
      if (!keys.empty() || j.join_type() == LogicalJoinType::kSemi ||
          j.join_type() == LogicalJoinType::kAnti) {
        return kHashBuildWeight * rg.cardinality +
               kHashProbeWeight * lg.cardinality +
               kOutputWeight * g.cardinality;
      }
      return kNestedLoopWeight * lg.cardinality * rg.cardinality +
             kOutputWeight * g.cardinality;
    }
    case LogicalOpKind::kAggregate:
      return kAggWeight * child_card(0) + kOutputWeight * g.cardinality;
    case LogicalOpKind::kSort: {
      double n = std::max(2.0, child_card(0));
      return kSortWeight * n * std::log2(n);
    }
    case LogicalOpKind::kLimit:
      return 0;
    case LogicalOpKind::kUnionAll:
      return kProjectWeight * g.cardinality;
  }
  return 0;
}

double ComputeWinner(Memo* memo, GroupId gid) {
  Group& g = memo->mutable_group(gid);
  if (g.winner_cost >= 0) return g.winner_cost;
  // Guard against accidental cycles: mark as in-progress with a huge cost.
  g.winner_cost = 1e300;
  double best = 1e300;
  int best_expr = -1;
  for (size_t i = 0; i < g.exprs.size(); ++i) {
    const GroupExpr& e = g.exprs[i];
    double total = LocalSerialCost(*memo, g, e);
    bool valid = true;
    for (GroupId c : e.children) {
      if (c == gid) {
        valid = false;
        break;
      }
      total += ComputeWinner(memo, c);
      if (total >= 1e300) {
        valid = false;
        break;
      }
    }
    if (valid && total < best) {
      best = total;
      best_expr = static_cast<int>(i);
    }
  }
  Group& g2 = memo->mutable_group(gid);
  g2.winner_cost = best;
  g2.winner_expr = best_expr;
  return best;
}

/// Non-recursive winner computation for the level-ordered sweep: every
/// child's winner is already final (lower level), so this only reads
/// sibling groups and writes its own — safe to run one call per group of a
/// level concurrently. Cost arithmetic and tie-breaks match ComputeWinner
/// exactly, so the sweep picks identical winners.
void ComputeWinnerLocal(Memo* memo, GroupId gid) {
  Group& g = memo->mutable_group(gid);
  if (g.winner_cost >= 0) return;
  double best = 1e300;
  int best_expr = -1;
  for (size_t i = 0; i < g.exprs.size(); ++i) {
    const GroupExpr& e = g.exprs[i];
    double total = LocalSerialCost(*memo, g, e);
    bool valid = true;
    for (GroupId c : e.children) {
      if (c == gid) {
        valid = false;
        break;
      }
      double child_cost = memo->group(c).winner_cost;
      if (child_cost < 0 || child_cost >= 1e300) {
        valid = false;
        break;
      }
      total += child_cost;
      if (total >= 1e300) {
        valid = false;
        break;
      }
    }
    if (valid && total < best) {
      best = total;
      best_expr = static_cast<int>(i);
    }
  }
  g.winner_cost = best;
  g.winner_expr = best_expr;
}

}  // namespace

PlanNodePtr PlanNodeFromPayload(const LogicalOp& payload,
                                std::vector<PlanNodePtr> children,
                                double cardinality, double row_width) {
  auto node = std::make_unique<PlanNode>();
  node->cardinality = cardinality;
  node->row_width = row_width;

  std::vector<std::vector<ColumnBinding>> child_outputs;
  for (const auto& c : children) child_outputs.push_back(c->output);
  node->output = payload.ComputeOutput(child_outputs);

  switch (payload.kind()) {
    case LogicalOpKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(payload);
      node->kind = PhysOpKind::kTableScan;
      node->table_name = get.table_name();
      node->table = get.table();
      break;
    }
    case LogicalOpKind::kEmpty:
      node->kind = PhysOpKind::kEmpty;
      break;
    case LogicalOpKind::kFilter: {
      node->kind = PhysOpKind::kFilter;
      node->conjuncts = static_cast<const LogicalFilter&>(payload).conjuncts();
      break;
    }
    case LogicalOpKind::kProject: {
      node->kind = PhysOpKind::kProject;
      node->items = static_cast<const LogicalProject&>(payload).items();
      break;
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(payload);
      node->join_type = j.join_type();
      node->conjuncts = j.conditions();
      node->equi_keys = j.EquiKeys(child_outputs[0], child_outputs[1]);
      node->kind = node->equi_keys.empty() ? PhysOpKind::kNestedLoopJoin
                                           : PhysOpKind::kHashJoin;
      break;
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(payload);
      node->kind = PhysOpKind::kHashAggregate;
      node->group_by = a.group_by();
      node->aggregates = a.aggregates();
      node->agg_phase = AggPhase::kFull;
      break;
    }
    case LogicalOpKind::kSort: {
      node->kind = PhysOpKind::kSort;
      node->sort_items = static_cast<const LogicalSort&>(payload).items();
      break;
    }
    case LogicalOpKind::kLimit: {
      node->kind = PhysOpKind::kLimit;
      node->limit = static_cast<const LogicalLimit&>(payload).limit();
      break;
    }
    case LogicalOpKind::kUnionAll: {
      node->kind = PhysOpKind::kUnionAll;
      node->union_inputs =
          static_cast<const LogicalUnionAll&>(payload).child_columns();
      break;
    }
  }
  node->children = std::move(children);
  return node;
}

namespace {

PlanNodePtr BuildSerialPlan(const Memo& memo, GroupId gid) {
  const Group& g = memo.group(gid);
  const GroupExpr& e = g.exprs[static_cast<size_t>(g.winner_expr)];
  std::vector<PlanNodePtr> children;
  for (GroupId c : e.children) children.push_back(BuildSerialPlan(memo, c));
  return PlanNodeFromPayload(*e.op, std::move(children), g.cardinality,
                             g.row_width);
}

}  // namespace

double SerialWinnerCost(Memo* memo, GroupId gid) {
  return ComputeWinner(memo, gid);
}

Result<PlanNodePtr> ExtractBestSerialPlan(Memo* memo, int opt_threads) {
  if (memo->root() == kInvalidGroupId) {
    return Status::Internal("memo has no root group");
  }
  const int threads = ResolveOptThreads(opt_threads);
  bool swept = false;
  if (threads != 1) {
    // Level-ordered parallel sweep: groups of one level have all their
    // children finalized by the previous levels' barrier, so their winners
    // compute independently. Falls back to the recursion on level failure
    // (e.g. an imported memo with a cross-group cycle).
    Result<std::vector<std::vector<GroupId>>> levels =
        MemoLevels(*memo, memo->root());
    if (levels.ok()) {
      ThreadPool& pool = ThreadPool::Global();
      for (const std::vector<GroupId>& level : *levels) {
        pool.ParallelFor(
            static_cast<int>(level.size()),
            [&](int i) { ComputeWinnerLocal(memo, level[static_cast<size_t>(i)]); },
            threads);
      }
      swept = true;
    }
  }
  double cost = swept ? memo->group(memo->root()).winner_cost
                      : ComputeWinner(memo, memo->root());
  if (cost >= 1e300 || memo->group(memo->root()).winner_expr < 0) {
    return Status::Internal("no serial plan found in memo");
  }
  return BuildSerialPlan(*memo, memo->root());
}

Result<CompilationResult> CompileSelect(const Catalog& catalog,
                                        const sql::SelectStatement& stmt,
                                        const MemoOptions& memo_options,
                                        const NormalizerOptions& norm_options) {
  auto now = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  CompilationResult out;
  double t0 = now();
  BoundQuery bound;
  {
    obs::TraceSpan span("compile.bind");
    Binder binder(catalog);
    PDW_ASSIGN_OR_RETURN(bound, binder.BindSelect(stmt));
  }
  out.phase_seconds.emplace_back("bind", now() - t0);

  out.output_names = bound.output_names;
  out.visible_columns = bound.visible_columns;
  t0 = now();
  {
    obs::TraceSpan span("compile.normalize");
    PDW_ASSIGN_OR_RETURN(out.normalized,
                         Normalize(std::move(bound.root), norm_options));
  }
  out.phase_seconds.emplace_back("normalize", now() - t0);

  t0 = now();
  obs::TraceSpan span("compile.memo");
  out.stats = std::make_shared<StatsContext>();
  out.stats->RegisterTree(*out.normalized);
  out.estimator = std::make_shared<CardinalityEstimator>(out.stats.get());
  out.memo = std::make_shared<Memo>(out.estimator.get(), memo_options);
  PDW_RETURN_NOT_OK(out.memo->InsertTree(out.normalized).status());
  span.AddAttr("groups", static_cast<double>(out.memo->num_groups()));
  span.End();
  out.phase_seconds.emplace_back("memo", now() - t0);
  return out;
}

Result<CompilationResult> CompileQuery(const Catalog& catalog,
                                       const std::string& sql,
                                       const MemoOptions& memo_options,
                                       const NormalizerOptions& norm_options) {
  PDW_ASSIGN_OR_RETURN(auto stmt, sql::ParseSelect(sql));
  return CompileSelect(catalog, *stmt, memo_options, norm_options);
}

}  // namespace pdw
