#ifndef PDW_OPTIMIZER_CARDINALITY_H_
#define PDW_OPTIMIZER_CARDINALITY_H_

#include <vector>

#include "algebra/scalar_expr.h"
#include "optimizer/stats_context.h"

namespace pdw {

/// Cardinality estimation over bound predicates, using histogram-backed
/// base-table statistics reachable through the StatsContext (paper Fig. 2,
/// step 2c: "estimation of the size of intermediate results ... based on
/// the size of base tables and statistics on the column values").
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const StatsContext* stats) : stats_(stats) {}

  /// Selectivity in [0,1] of one predicate conjunct.
  double ConjunctSelectivity(const ScalarExprPtr& conjunct) const;

  /// Product of conjunct selectivities (independence assumption).
  double Selectivity(const std::vector<ScalarExprPtr>& conjuncts) const;

  /// Selectivity of an equi-join predicate a = b: 1/max(ndv(a), ndv(b)).
  double JoinEqualitySelectivity(ColumnId a, ColumnId b) const;

  /// Output cardinality of GROUP BY `group_cols` over `input_rows` rows:
  /// min(input, product of NDVs).
  double GroupCardinality(const std::vector<ColumnId>& group_cols,
                          double input_rows) const;

  /// Average output row width in bytes for a set of columns.
  double RowWidth(const std::vector<ColumnBinding>& cols) const;

  const StatsContext& stats() const { return *stats_; }

 private:
  const StatsContext* stats_;
};

}  // namespace pdw

#endif  // PDW_OPTIMIZER_CARDINALITY_H_
