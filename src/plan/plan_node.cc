#include "plan/plan_node.h"

#include "common/string_util.h"

namespace pdw {

const char* PhysOpKindToString(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kTableScan: return "TableScan";
    case PhysOpKind::kTempScan: return "TempScan";
    case PhysOpKind::kEmpty: return "Empty";
    case PhysOpKind::kFilter: return "Filter";
    case PhysOpKind::kProject: return "Project";
    case PhysOpKind::kHashJoin: return "HashJoin";
    case PhysOpKind::kNestedLoopJoin: return "NestedLoopJoin";
    case PhysOpKind::kHashAggregate: return "HashAggregate";
    case PhysOpKind::kSort: return "Sort";
    case PhysOpKind::kLimit: return "Limit";
    case PhysOpKind::kUnionAll: return "UnionAll";
    case PhysOpKind::kMove: return "Move";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto out = std::make_unique<PlanNode>();
  *out = PlanNode{};  // reset children
  out->kind = kind;
  out->output = output;
  out->cardinality = cardinality;
  out->row_width = row_width;
  out->distribution = distribution;
  out->table_name = table_name;
  out->table = table;
  out->conjuncts = conjuncts;
  out->join_type = join_type;
  out->equi_keys = equi_keys;
  out->items = items;
  out->group_by = group_by;
  out->aggregates = aggregates;
  out->agg_phase = agg_phase;
  out->sort_items = sort_items;
  out->limit = limit;
  out->union_inputs = union_inputs;
  out->move_kind = move_kind;
  out->shuffle_columns = shuffle_columns;
  out->move_cost = move_cost;
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

std::string PlanNode::ToString() const {
  std::string out = PhysOpKindToString(kind);
  switch (kind) {
    case PhysOpKind::kTableScan:
    case PhysOpKind::kTempScan:
      out += " " + table_name;
      break;
    case PhysOpKind::kFilter: {
      std::vector<std::string> parts;
      for (const auto& c : conjuncts) parts.push_back(c->ToString());
      out += " [" + Join(parts, " AND ") + "]";
      break;
    }
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kNestedLoopJoin: {
      out += std::string(" ") + LogicalJoinTypeToString(join_type);
      std::vector<std::string> parts;
      for (const auto& c : conjuncts) parts.push_back(c->ToString());
      if (!parts.empty()) out += " [" + Join(parts, " AND ") + "]";
      break;
    }
    case PhysOpKind::kHashAggregate: {
      out += agg_phase == AggPhase::kLocal    ? " (local)"
             : agg_phase == AggPhase::kGlobal ? " (global)"
                                              : "";
      std::vector<std::string> groups;
      for (ColumnId id : group_by) groups.push_back("#" + std::to_string(id));
      out += " group=[" + Join(groups, ",") + "] aggs=" +
             std::to_string(aggregates.size());
      break;
    }
    case PhysOpKind::kProject: {
      out += " " + std::to_string(items.size()) + " cols";
      break;
    }
    case PhysOpKind::kSort: {
      std::vector<std::string> parts;
      for (const auto& s : sort_items) {
        parts.push_back("#" + std::to_string(s.column) +
                        (s.ascending ? "" : " DESC"));
      }
      out += " [" + Join(parts, ", ") + "]";
      break;
    }
    case PhysOpKind::kLimit:
      out += " " + std::to_string(limit);
      break;
    case PhysOpKind::kMove: {
      out += std::string(" ") + DmsOpKindToString(move_kind);
      if (!shuffle_columns.empty()) {
        std::vector<std::string> parts;
        for (ColumnId id : shuffle_columns) {
          parts.push_back("#" + std::to_string(id));
        }
        out += "(" + Join(parts, ",") + ")";
      }
      out += StringFormat(" cost=%.3f", move_cost);
      break;
    }
    default:
      break;
  }
  return out;
}

namespace {

void TreeToString(const PlanNode& node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(node.ToString());
  out->append(StringFormat("  {rows=%.0f, width=%.0f, %s}", node.cardinality,
                           node.row_width, node.distribution.ToString().c_str()));
  out->push_back('\n');
  for (const auto& c : node.children) TreeToString(*c, indent + 1, out);
}

}  // namespace

std::string PlanTreeToString(const PlanNode& root) {
  std::string out;
  TreeToString(root, 0, &out);
  return out;
}

double TotalMoveCost(const PlanNode& root) {
  double cost = root.kind == PhysOpKind::kMove ? root.move_cost : 0;
  for (const auto& c : root.children) cost += TotalMoveCost(*c);
  return cost;
}

int CountMoves(const PlanNode& root) {
  int n = root.kind == PhysOpKind::kMove ? 1 : 0;
  for (const auto& c : root.children) n += CountMoves(*c);
  return n;
}

}  // namespace pdw
