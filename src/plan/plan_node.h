#ifndef PDW_PLAN_PLAN_NODE_H_
#define PDW_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/logical_op.h"
#include "plan/distribution.h"

namespace pdw {

/// Physical operator kinds. Serial plans use everything except kMove and
/// kTempScan; parallel (PDW) plans additionally contain kMove boundaries
/// which the DSQL generator turns into DMS steps + temp tables.
enum class PhysOpKind {
  kTableScan,
  kTempScan,   ///< Scan of a DSQL temp table produced by an earlier step.
  kEmpty,
  kFilter,
  kProject,
  kHashJoin,
  kNestedLoopJoin,
  kHashAggregate,
  kSort,
  kLimit,
  kUnionAll,   ///< Bag union; children align positionally via union_inputs.
  kMove,       ///< Data movement (DMS) boundary; child is the source.
};

const char* PhysOpKindToString(PhysOpKind kind);

/// Aggregation phase for distributed local/global splits (paper §4, the
/// Q20 "LocalGB / GlobalGB" pattern).
enum class AggPhase { kFull, kLocal, kGlobal };

/// A physical plan node. One concrete struct (rather than a class
/// hierarchy) keeps the executor, the SQL generator and the plan printers
/// simple; unused fields stay empty for a given kind.
struct PlanNode {
  PhysOpKind kind = PhysOpKind::kTableScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Output columns of this node, in row order.
  std::vector<ColumnBinding> output;

  /// Estimated global row count / average row width (bytes) — the Y and w
  /// of the paper's cost formulas.
  double cardinality = 0;
  double row_width = 0;

  /// Distribution of the node's output across the appliance.
  DistributionProperty distribution;

  // --- kTableScan / kTempScan ---
  std::string table_name;
  const TableDef* table = nullptr;

  // --- kFilter, and residual/ON conditions of joins ---
  std::vector<ScalarExprPtr> conjuncts;

  // --- joins ---
  LogicalJoinType join_type = LogicalJoinType::kInner;
  /// Extracted equi-key pairs (left column, right column).
  std::vector<std::pair<ColumnId, ColumnId>> equi_keys;

  // --- kProject ---
  std::vector<ProjectItem> items;

  // --- kHashAggregate ---
  std::vector<ColumnId> group_by;
  std::vector<AggregateItem> aggregates;
  AggPhase agg_phase = AggPhase::kFull;

  // --- kSort / kLimit ---
  std::vector<SortItem> sort_items;
  int64_t limit = -1;

  // --- kUnionAll ---
  /// Per child: the child column id feeding each output position.
  std::vector<std::vector<ColumnId>> union_inputs;

  // --- kMove ---
  DmsOpKind move_kind = DmsOpKind::kShuffle;
  std::vector<ColumnId> shuffle_columns;  ///< Hash columns for shuffles/trims.
  double move_cost = 0;  ///< Modeled DMS cost of this move alone.

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;

  /// One-line operator description.
  std::string ToString() const;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Indented multi-line EXPLAIN rendering with distributions and estimates.
std::string PlanTreeToString(const PlanNode& root);

/// Sum of `move_cost` over all kMove nodes — the plan's total modeled DMS
/// cost (the PDW optimizer's objective, §3.3).
double TotalMoveCost(const PlanNode& root);

/// Number of kMove nodes (== number of DMS steps the DSQL plan will have).
int CountMoves(const PlanNode& root);

}  // namespace pdw

#endif  // PDW_PLAN_PLAN_NODE_H_
