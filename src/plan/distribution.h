#ifndef PDW_PLAN_DISTRIBUTION_H_
#define PDW_PLAN_DISTRIBUTION_H_

#include <string>
#include <vector>

#include "algebra/column.h"
#include "algebra/equivalence.h"

namespace pdw {

/// How a data stream is laid out across the appliance (paper §2.1, §3.2).
enum class DistributionKind {
  kDistributed,  ///< Hash-partitioned across compute nodes on `columns`
                 ///< (empty columns = partitioned on an unknown/lost key).
  kReplicated,   ///< Full copy on every compute node.
  kControl,      ///< Single copy on the control node (final results).
};

/// The seven physical data movement operations of §3.3.2.
enum class DmsOpKind {
  kShuffle,             ///< 1. many-to-many re-partition on a column.
  kPartitionMove,       ///< 2. many-to-one (gather, typically to control).
  kControlNodeMove,     ///< 3. control node -> replicated on all compute.
  kBroadcastMove,       ///< 4. every compute node -> all compute nodes.
  kTrimMove,            ///< 5. replicated -> distributed, keep own hash slice.
  kReplicatedBroadcast, ///< 6. single compute node -> all compute nodes.
  kRemoteCopyToSingle,  ///< 7. everything -> one designated node.
};

const char* DmsOpKindToString(DmsOpKind kind);

/// A physical distribution property of an operator's output. Used as the
/// pruning key in the PDW optimizer's per-group option table (Fig. 4 step
/// 06.ii: best overall + best per interesting property).
struct DistributionProperty {
  DistributionKind kind = DistributionKind::kDistributed;
  /// Hash columns for kDistributed. Canonicalized through the query's
  /// column-equivalence classes before comparison.
  std::vector<ColumnId> columns;

  static DistributionProperty Distributed(std::vector<ColumnId> cols) {
    return DistributionProperty{DistributionKind::kDistributed, std::move(cols)};
  }
  static DistributionProperty AnyDistributed() {
    return DistributionProperty{DistributionKind::kDistributed, {}};
  }
  static DistributionProperty Replicated() {
    return DistributionProperty{DistributionKind::kReplicated, {}};
  }
  static DistributionProperty Control() {
    return DistributionProperty{DistributionKind::kControl, {}};
  }

  bool is_replicated() const { return kind == DistributionKind::kReplicated; }
  bool is_control() const { return kind == DistributionKind::kControl; }
  bool is_distributed_on_known_columns() const {
    return kind == DistributionKind::kDistributed && !columns.empty();
  }

  /// Canonical form: hash columns replaced by their equivalence-class
  /// representatives and sorted. Two properties compare equal iff their
  /// canonical forms match.
  DistributionProperty Canonical(const ColumnEquivalence& equiv) const;

  /// True if a stream with this (canonical) property satisfies a
  /// requirement of `required` (canonical) under `equiv`:
  ///  * Replicated satisfies any Distributed requirement is FALSE — the
  ///    semantics differ; compatibility decisions are made by the
  ///    enumerator per operator, this is plain equality on canonical form.
  bool Matches(const DistributionProperty& required,
               const ColumnEquivalence& equiv) const;

  std::string ToString() const;

  bool operator==(const DistributionProperty& other) const {
    return kind == other.kind && columns == other.columns;
  }
  bool operator<(const DistributionProperty& other) const {
    if (kind != other.kind) return kind < other.kind;
    return columns < other.columns;
  }
};

}  // namespace pdw

#endif  // PDW_PLAN_DISTRIBUTION_H_
