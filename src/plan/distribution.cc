#include "plan/distribution.h"

#include <algorithm>

#include "common/string_util.h"

namespace pdw {

const char* DmsOpKindToString(DmsOpKind kind) {
  switch (kind) {
    case DmsOpKind::kShuffle: return "SHUFFLE_MOVE";
    case DmsOpKind::kPartitionMove: return "PARTITION_MOVE";
    case DmsOpKind::kControlNodeMove: return "CONTROL_NODE_MOVE";
    case DmsOpKind::kBroadcastMove: return "BROADCAST_MOVE";
    case DmsOpKind::kTrimMove: return "TRIM_MOVE";
    case DmsOpKind::kReplicatedBroadcast: return "REPLICATED_BROADCAST";
    case DmsOpKind::kRemoteCopyToSingle: return "REMOTE_COPY_TO_SINGLE";
  }
  return "?";
}

DistributionProperty DistributionProperty::Canonical(
    const ColumnEquivalence& equiv) const {
  DistributionProperty out = *this;
  for (ColumnId& id : out.columns) id = equiv.Find(id);
  std::sort(out.columns.begin(), out.columns.end());
  out.columns.erase(std::unique(out.columns.begin(), out.columns.end()),
                    out.columns.end());
  return out;
}

bool DistributionProperty::Matches(const DistributionProperty& required,
                                   const ColumnEquivalence& equiv) const {
  return Canonical(equiv) == required.Canonical(equiv);
}

std::string DistributionProperty::ToString() const {
  switch (kind) {
    case DistributionKind::kReplicated:
      return "Replicated";
    case DistributionKind::kControl:
      return "Control";
    case DistributionKind::kDistributed: {
      if (columns.empty()) return "Distributed(?)";
      std::vector<std::string> parts;
      for (ColumnId id : columns) parts.push_back("#" + std::to_string(id));
      return "Distributed(" + Join(parts, ",") + ")";
    }
  }
  return "?";
}

}  // namespace pdw
