#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace pdw {

Histogram Histogram::Build(std::vector<double> values, int num_buckets) {
  Histogram h;
  if (values.empty() || num_buckets <= 0) return h;
  std::sort(values.begin(), values.end());
  h.min_ = values.front();
  h.max_ = values.back();
  h.total_rows_ = static_cast<double>(values.size());

  size_t n = values.size();
  size_t per_bucket = std::max<size_t>(1, n / static_cast<size_t>(num_buckets));
  size_t i = 0;
  while (i < n) {
    size_t end = std::min(n, i + per_bucket);
    // Extend the bucket so equal values never straddle a boundary.
    while (end < n && values[end] == values[end - 1]) ++end;
    HistogramBucket b;
    b.upper_bound = values[end - 1];
    b.row_count = static_cast<double>(end - i);
    double distinct = 1;
    for (size_t k = i + 1; k < end; ++k) {
      if (values[k] != values[k - 1]) ++distinct;
    }
    b.distinct_count = distinct;
    h.buckets_.push_back(b);
    i = end;
  }
  return h;
}

Histogram Histogram::FromParts(double min, std::vector<HistogramBucket> buckets) {
  Histogram h;
  h.min_ = min;
  h.buckets_ = std::move(buckets);
  for (const auto& b : h.buckets_) h.total_rows_ += b.row_count;
  h.max_ = h.buckets_.empty() ? min : h.buckets_.back().upper_bound;
  return h;
}

Histogram Histogram::Merge(const std::vector<Histogram>& parts, bool disjoint) {
  Histogram out;
  // Gather the union of all boundary points.
  std::vector<double> bounds;
  bool any = false;
  double gmin = 0;
  double gmax = 0;
  for (const Histogram& p : parts) {
    if (p.empty()) continue;
    if (!any) {
      gmin = p.min();
      gmax = p.max();
      any = true;
    } else {
      gmin = std::min(gmin, p.min());
      gmax = std::max(gmax, p.max());
    }
    for (const auto& b : p.buckets_) bounds.push_back(b.upper_bound);
  }
  if (!any) return out;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  out.min_ = gmin;
  out.max_ = gmax;

  // For each merged bucket (lo, hi], pro-rate each input histogram's
  // contribution by linear interpolation inside its buckets.
  double lo = gmin;
  for (double hi : bounds) {
    HistogramBucket mb;
    mb.upper_bound = hi;
    double max_distinct = 0;
    for (const Histogram& p : parts) {
      if (p.empty()) continue;
      double rows = p.EstimateLess(hi, /*inclusive=*/true) -
                    p.EstimateLess(lo, /*inclusive=*/true);
      if (hi == gmin && lo == gmin) {
        // Degenerate first point: count values == gmin.
        rows = p.EstimateEquals(gmin);
      }
      if (rows <= 0) continue;
      mb.row_count += rows;
      // Approximate slice distinct as rows * (histogram-wide distinct ratio).
      double ratio = p.total_rows_ > 0 ? p.TotalDistinct() / p.total_rows_ : 1.0;
      double d = rows * ratio;
      if (disjoint) {
        mb.distinct_count += d;
      } else {
        max_distinct = std::max(max_distinct, d);
      }
    }
    if (!disjoint) {
      // Overlapping domains: distinct count is at least the max part and at
      // most the sum; use the max as a conservative (low-variance) estimate.
      mb.distinct_count = max_distinct;
    }
    if (mb.row_count > 0) {
      mb.distinct_count = std::max(1.0, std::min(mb.distinct_count, mb.row_count));
      out.buckets_.push_back(mb);
      out.total_rows_ += mb.row_count;
    }
    lo = hi;
  }
  return out;
}

double Histogram::EstimateLess(double v, bool inclusive) const {
  if (buckets_.empty()) return 0;
  if (v < min_) return 0;
  if (v >= max_) {
    if (v > max_ || inclusive) return total_rows_;
    // v == max_, exclusive: subtract an estimate of rows equal to max.
    return total_rows_ - EstimateEquals(max_);
  }
  double acc = 0;
  double lo = min_;
  for (const auto& b : buckets_) {
    if (v > b.upper_bound) {
      acc += b.row_count;
      lo = b.upper_bound;
      continue;
    }
    // v falls in this bucket: linear interpolation.
    double width = b.upper_bound - lo;
    double frac = width > 0 ? (v - lo) / width : 1.0;
    frac = std::clamp(frac, 0.0, 1.0);
    acc += b.row_count * frac;
    if (inclusive && b.distinct_count > 0) {
      acc += b.row_count / b.distinct_count * 0.5;  // half an equality class
    }
    return std::min(acc, total_rows_);
  }
  return acc;
}

double Histogram::EstimateEquals(double v) const {
  if (buckets_.empty() || v < min_ || v > max_) return 0;
  double lo = min_;
  for (const auto& b : buckets_) {
    if (v <= b.upper_bound) {
      if (v < lo) return 0;
      return b.distinct_count > 0 ? b.row_count / b.distinct_count
                                  : b.row_count;
    }
    lo = b.upper_bound;
  }
  return 0;
}

double Histogram::TotalDistinct() const {
  double d = 0;
  for (const auto& b : buckets_) d += b.distinct_count;
  return d;
}

}  // namespace pdw
