#include "stats/column_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace pdw {

namespace {

// Numeric projection used by histograms; VARCHARs are not projected.
bool NumericValue(const Datum& d, double* out) {
  switch (d.type()) {
    case TypeId::kInt:
      *out = static_cast<double>(d.int_value());
      return true;
    case TypeId::kDouble:
      *out = d.double_value();
      return true;
    case TypeId::kDate:
      *out = static_cast<double>(d.date_value());
      return true;
    case TypeId::kBool:
      *out = d.bool_value() ? 1 : 0;
      return true;
    default:
      return false;
  }
}

}  // namespace

ColumnStats ColumnStats::FromRows(const RowVector& rows, int column,
                                  TypeId type, int histogram_buckets) {
  ColumnStats s;
  s.row_count = static_cast<double>(rows.size());
  std::unordered_set<size_t> distinct_hashes;
  std::vector<double> numeric;
  double width_sum = 0;
  for (const Row& r : rows) {
    const Datum& d = r[static_cast<size_t>(column)];
    if (d.is_null()) {
      s.null_count += 1;
      continue;
    }
    width_sum += d.Width();
    distinct_hashes.insert(d.Hash());
    if (s.min_value.is_null() || d.Compare(s.min_value) < 0) s.min_value = d;
    if (s.max_value.is_null() || d.Compare(s.max_value) > 0) s.max_value = d;
    double v;
    if (NumericValue(d, &v)) numeric.push_back(v);
  }
  double non_null = s.row_count - s.null_count;
  s.distinct_count = static_cast<double>(distinct_hashes.size());
  s.avg_width = non_null > 0 ? width_sum / non_null
                             : DefaultTypeWidth(type);
  if (IsNumericType(type) && !numeric.empty()) {
    s.histogram = Histogram::Build(std::move(numeric), histogram_buckets);
  }
  return s;
}

ColumnStats ColumnStats::Merge(const std::vector<ColumnStats>& parts,
                               bool disjoint_values) {
  ColumnStats out;
  std::vector<Histogram> hists;
  double max_ndv = 0;
  double sum_ndv = 0;
  double width_weighted = 0;
  for (const ColumnStats& p : parts) {
    out.row_count += p.row_count;
    out.null_count += p.null_count;
    sum_ndv += p.distinct_count;
    max_ndv = std::max(max_ndv, p.distinct_count);
    width_weighted += p.avg_width * std::max(0.0, p.row_count - p.null_count);
    if (!p.min_value.is_null() &&
        (out.min_value.is_null() || p.min_value.Compare(out.min_value) < 0)) {
      out.min_value = p.min_value;
    }
    if (!p.max_value.is_null() &&
        (out.max_value.is_null() || p.max_value.Compare(out.max_value) > 0)) {
      out.max_value = p.max_value;
    }
    if (!p.histogram.empty()) hists.push_back(p.histogram);
  }
  double non_null = out.row_count - out.null_count;
  out.avg_width = non_null > 0 ? width_weighted / non_null : 8;
  if (disjoint_values) {
    out.distinct_count = sum_ndv;
  } else {
    // Values may repeat across nodes. True global NDV lies in
    // [max_ndv, sum_ndv]; use the geometric mean as the point estimate,
    // bounded by the non-null row count.
    out.distinct_count = std::sqrt(std::max(1.0, max_ndv) *
                                   std::max(1.0, sum_ndv));
    out.distinct_count = std::min(out.distinct_count, std::max(1.0, non_null));
  }
  if (!hists.empty()) {
    out.histogram = Histogram::Merge(hists, disjoint_values);
  }
  return out;
}

double ColumnStats::EqualsSelectivity(const Datum& value) const {
  if (row_count <= 0) return 0;
  double v;
  if (!histogram.empty() && NumericValue(value, &v)) {
    return std::clamp(histogram.EstimateEquals(v) / row_count, 0.0, 1.0);
  }
  if (distinct_count > 0) {
    return std::clamp(1.0 / distinct_count, 0.0, 1.0);
  }
  return 0.1;
}

double ColumnStats::RangeSelectivity(const Datum& lo, bool lo_inclusive,
                                     const Datum& hi, bool hi_inclusive) const {
  if (row_count <= 0) return 0;
  if (!histogram.empty()) {
    double lo_v, hi_v;
    double below_hi = histogram.total_rows();
    double below_lo = 0;
    if (!hi.is_null() && NumericValue(hi, &hi_v)) {
      below_hi = histogram.EstimateLess(hi_v, hi_inclusive);
    }
    if (!lo.is_null() && NumericValue(lo, &lo_v)) {
      below_lo = histogram.EstimateLess(lo_v, !lo_inclusive);
    }
    double rows = std::max(0.0, below_hi - below_lo);
    return std::clamp(rows / row_count, 0.0, 1.0);
  }
  // No histogram: use the classic 1/3 per open side heuristic.
  double sel = 1.0;
  if (!lo.is_null()) sel *= 1.0 / 3.0;
  if (!hi.is_null()) sel *= 1.0 / 3.0;
  return sel;
}

TableStats TableStats::Merge(const std::vector<TableStats>& parts,
                             const std::string& distribution_column) {
  TableStats out;
  double width_weighted = 0;
  std::unordered_set<std::string> col_names;
  for (const TableStats& p : parts) {
    out.row_count += p.row_count;
    width_weighted += p.avg_row_width * p.row_count;
    for (const auto& [name, cs] : p.columns) col_names.insert(name);
  }
  out.avg_row_width = out.row_count > 0 ? width_weighted / out.row_count : 0;
  for (const std::string& name : col_names) {
    std::vector<ColumnStats> col_parts;
    for (const TableStats& p : parts) {
      auto it = p.columns.find(name);
      if (it != p.columns.end()) col_parts.push_back(it->second);
    }
    out.columns[name] =
        ColumnStats::Merge(col_parts, name == distribution_column);
  }
  return out;
}

}  // namespace pdw
