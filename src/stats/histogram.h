#ifndef PDW_STATS_HISTOGRAM_H_
#define PDW_STATS_HISTOGRAM_H_

#include <vector>

namespace pdw {

/// One bucket of an equi-height histogram over a numeric domain. Buckets
/// cover (previous upper_bound, upper_bound]; the first bucket's lower edge
/// is the histogram's min().
struct HistogramBucket {
  double upper_bound = 0;
  double row_count = 0;       ///< Rows falling in this bucket.
  double distinct_count = 0;  ///< Distinct values in this bucket.
};

/// Equi-height histogram used for range-predicate selectivity. INT, DOUBLE
/// and DATE columns map onto the double domain; VARCHAR columns carry NDV
/// and null counts only (no histogram).
class Histogram {
 public:
  Histogram() = default;

  /// Builds an equi-height histogram with at most `num_buckets` buckets.
  /// `values` need not be sorted; NULLs must be excluded by the caller.
  static Histogram Build(std::vector<double> values, int num_buckets);

  /// Merges per-node histograms into a global one (shell-database global
  /// statistics, paper §2.2). Bucket boundaries are the union of input
  /// boundaries; row counts add; distinct counts add when `disjoint` (the
  /// column is the hash-distribution column, so each value lives on exactly
  /// one node) and otherwise take a max-based overlap estimate.
  static Histogram Merge(const std::vector<Histogram>& parts, bool disjoint);

  bool empty() const { return buckets_.empty(); }
  double total_rows() const { return total_rows_; }
  double min() const { return min_; }
  double max() const { return max_; }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

  /// Reconstructs a histogram from serialized state (XML import).
  static Histogram FromParts(double min, std::vector<HistogramBucket> buckets);

  /// Estimated number of rows with value < v (or <= v).
  double EstimateLess(double v, bool inclusive) const;

  /// Estimated number of rows with value == v.
  double EstimateEquals(double v) const;

  /// Estimated distinct count over the whole histogram.
  double TotalDistinct() const;

 private:
  std::vector<HistogramBucket> buckets_;
  double min_ = 0;
  double max_ = 0;
  double total_rows_ = 0;
};

}  // namespace pdw

#endif  // PDW_STATS_HISTOGRAM_H_
