#ifndef PDW_STATS_COLUMN_STATS_H_
#define PDW_STATS_COLUMN_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/row.h"
#include "stats/histogram.h"

namespace pdw {

/// Statistics for one column: row/NDV/null counts, min/max, average width,
/// and an optional equi-height histogram for numeric domains.
struct ColumnStats {
  double row_count = 0;
  double distinct_count = 0;
  double null_count = 0;
  double avg_width = 8;
  Datum min_value;  ///< NULL when unknown.
  Datum max_value;
  Histogram histogram;  ///< Empty for VARCHAR columns.

  /// Computes stats for `column` over `rows`, with histograms for numeric
  /// types. This is the per-node "standard SQL Server mechanism".
  static ColumnStats FromRows(const RowVector& rows, int column,
                              TypeId type, int histogram_buckets = 32);

  /// Merges per-node local stats into global stats (paper §2.2). When
  /// `disjoint_values` is true (the column is the table's hash-distribution
  /// column), value sets are disjoint across nodes and NDV adds exactly;
  /// otherwise NDV is estimated between max(part) and sum(parts).
  static ColumnStats Merge(const std::vector<ColumnStats>& parts,
                           bool disjoint_values);

  /// Selectivity (0..1) of an equality predicate `col = constant`.
  double EqualsSelectivity(const Datum& value) const;

  /// Selectivity of a range predicate. Either bound may be NULL (open).
  double RangeSelectivity(const Datum& lo, bool lo_inclusive,
                          const Datum& hi, bool hi_inclusive) const;
};

/// Table-level statistics: row count plus a per-column map.
struct TableStats {
  double row_count = 0;
  double avg_row_width = 0;
  std::map<std::string, ColumnStats> columns;

  static TableStats Merge(const std::vector<TableStats>& parts,
                          const std::string& distribution_column);
};

}  // namespace pdw

#endif  // PDW_STATS_COLUMN_STATS_H_
