#ifndef PDW_COMMON_SCHEMA_H_
#define PDW_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace pdw {

/// A named, typed output column of an operator or table.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInvalid;
  bool nullable = true;
};

/// Ordered list of columns describing a row layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef col) { columns_.push_back(std::move(col)); }

  /// Case-insensitive lookup; returns -1 if absent.
  int FindColumn(const std::string& name) const;

  /// "name TYPE, name TYPE, ..." — used in explain output and tests.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace pdw

#endif  // PDW_COMMON_SCHEMA_H_
