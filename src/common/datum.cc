#include "common/datum.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/string_util.h"

namespace pdw {

double Datum::AsDouble() const {
  if (std::holds_alternative<bool>(value_)) return std::get<bool>(value_) ? 1.0 : 0.0;
  if (std::holds_alternative<int64_t>(value_)) {
    return static_cast<double>(std::get<int64_t>(value_));
  }
  if (std::holds_alternative<double>(value_)) return std::get<double>(value_);
  return 0.0;
}

int Datum::Compare(const Datum& other) const {
  // NULLs sort first; two NULLs compare equal (row-set semantics).
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  TypeId a = type();
  TypeId b = other.type();
  if (a == TypeId::kVarchar || b == TypeId::kVarchar) {
    if (a != TypeId::kVarchar || b != TypeId::kVarchar) {
      // Incomparable kinds: order by type id for a deterministic total order.
      return a < b ? -1 : 1;
    }
    int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a == TypeId::kInt && b == TypeId::kInt) {
    int64_t x = int_value();
    int64_t y = other.int_value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  double x = AsDouble();
  double y = other.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

size_t Datum::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case TypeId::kBool:
      return std::hash<bool>()(bool_value());
    case TypeId::kInt:
    case TypeId::kDate:
      return std::hash<int64_t>()(std::get<int64_t>(value_));
    case TypeId::kDouble: {
      double d = double_value();
      // Hash integral doubles like ints so mixed-type equality hashes match.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case TypeId::kVarchar:
      return std::hash<std::string>()(string_value());
    default:
      return 0;
  }
}

std::string Datum::ToString() const {
  switch (type()) {
    case TypeId::kInvalid:
      return "NULL";
    case TypeId::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case TypeId::kInt:
      return std::to_string(int_value());
    case TypeId::kDate:
      return "DATE '" + FormatDate(date_value()) + "'";
    case TypeId::kDouble: {
      double d = double_value();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return StringFormat("%.1f", d);
      }
      return StringFormat("%g", d);
    }
    case TypeId::kVarchar:
      return "'" + string_value() + "'";
  }
  return "NULL";
}

int Datum::Width() const {
  if (is_null()) return 1;
  if (type() == TypeId::kVarchar) return static_cast<int>(string_value().size());
  return DefaultTypeWidth(type());
}

Result<Datum> Datum::CastTo(TypeId target) const {
  if (is_null()) return Datum::Null();
  if (type() == target) return *this;
  switch (target) {
    case TypeId::kInt:
      if (type() == TypeId::kVarchar) {
        errno = 0;
        char* end = nullptr;
        int64_t v = std::strtoll(string_value().c_str(), &end, 10);
        if (end == string_value().c_str()) {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to INT");
        }
        return Datum::Int(v);
      }
      return Datum::Int(static_cast<int64_t>(AsDouble()));
    case TypeId::kDouble:
      if (type() == TypeId::kVarchar) {
        char* end = nullptr;
        double v = std::strtod(string_value().c_str(), &end);
        if (end == string_value().c_str()) {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to DOUBLE");
        }
        return Datum::Double(v);
      }
      return Datum::Double(AsDouble());
    case TypeId::kDate:
      if (type() == TypeId::kVarchar) {
        PDW_ASSIGN_OR_RETURN(int32_t days, ParseDate(string_value()));
        return Datum::Date(days);
      }
      if (type() == TypeId::kInt) return Datum::Date(static_cast<int32_t>(int_value()));
      return Status::InvalidArgument("cannot cast to DATE");
    case TypeId::kVarchar:
      if (type() == TypeId::kDate) return Datum::Varchar(FormatDate(date_value()));
      return Datum::Varchar(ToString());
    case TypeId::kBool:
      if (type() == TypeId::kInt) return Datum::Bool(int_value() != 0);
      return Status::InvalidArgument("cannot cast to BOOL");
    default:
      return Status::InvalidArgument("invalid cast target");
  }
}

namespace {

constexpr int kDaysPerMonthNonLeap[] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};

bool IsLeapYear(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

// Days from 1970-01-01 to Jan 1 of year y (can be negative).
int64_t DaysToYear(int y) {
  int64_t days = 0;
  if (y >= 1970) {
    for (int i = 1970; i < y; ++i) days += IsLeapYear(i) ? 366 : 365;
  } else {
    for (int i = y; i < 1970; ++i) days -= IsLeapYear(i) ? 366 : 365;
  }
  return days;
}

}  // namespace

Result<int32_t> ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  // Accept 'YYYY-MM-DD' optionally followed by a time component.
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("invalid date literal: '" + text + "'");
  }
  int64_t days = DaysToYear(y);
  for (int i = 0; i < m - 1; ++i) {
    days += kDaysPerMonthNonLeap[i];
    if (i == 1 && IsLeapYear(y)) days += 1;
  }
  days += d - 1;
  return static_cast<int32_t>(days);
}

std::string FormatDate(int32_t days_since_epoch) {
  int y = 1970;
  int64_t rem = days_since_epoch;
  while (rem < 0) {
    --y;
    rem += IsLeapYear(y) ? 366 : 365;
  }
  while (true) {
    int in_year = IsLeapYear(y) ? 366 : 365;
    if (rem < in_year) break;
    rem -= in_year;
    ++y;
  }
  int m = 0;
  while (true) {
    int dim = kDaysPerMonthNonLeap[m] + ((m == 1 && IsLeapYear(y)) ? 1 : 0);
    if (rem < dim) break;
    rem -= dim;
    ++m;
  }
  return StringFormat("%04d-%02d-%02d", y, m + 1, static_cast<int>(rem) + 1);
}

int32_t AddYears(int32_t days_since_epoch, int n) {
  std::string s = FormatDate(days_since_epoch);
  int y = 0, m = 0, d = 0;
  std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d);
  y += n;
  // Clamp Feb 29 on non-leap targets.
  if (m == 2 && d == 29 && !IsLeapYear(y)) d = 28;
  auto r = ParseDate(StringFormat("%04d-%02d-%02d", y, m, d));
  return r.ok() ? *r : days_since_epoch;
}

}  // namespace pdw
