#ifndef PDW_COMMON_SEMAPHORE_H_
#define PDW_COMMON_SEMAPHORE_H_

#include <condition_variable>
#include <mutex>

namespace pdw {

/// A counting semaphore used as the workload manager's per-resource-class
/// concurrency budget: each admitted query holds one permit for the length
/// of its execution. Unlike std::counting_semaphore (C++20), permits can be
/// queried for introspection (the sys.dm_pdw_workload "active" column is
/// permits() - available()).
///
/// All methods are thread-safe. Fairness is the *caller's* job: the
/// workload manager serializes TryAcquire through its own admission queue
/// so FIFO-with-priority ordering holds; raw Acquire wakes waiters in an
/// unspecified order.
class CountingSemaphore {
 public:
  explicit CountingSemaphore(int permits)
      : permits_(permits < 0 ? 0 : permits),
        available_(permits < 0 ? 0 : permits) {}

  CountingSemaphore(const CountingSemaphore&) = delete;
  CountingSemaphore& operator=(const CountingSemaphore&) = delete;

  /// Takes one permit without blocking; false when none are available.
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (available_ == 0) return false;
    --available_;
    return true;
  }

  /// Blocks until a permit is available, then takes it.
  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return available_ > 0; });
    --available_;
  }

  /// Returns one permit. Releasing beyond the initial permit count is a
  /// caller bug; the count saturates at permits() instead of growing.
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (available_ < permits_) ++available_;
    }
    cv_.notify_one();
  }

  /// Grows or shrinks the budget. Shrinking below the number of permits
  /// currently held never goes negative: outstanding holders drain the
  /// deficit as they release.
  void SetPermits(int permits) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (permits < 0) permits = 0;
      int delta = permits - permits_;
      permits_ = permits;
      available_ += delta;
      if (available_ < 0) available_ = 0;
      if (available_ > permits_) available_ = permits_;
    }
    cv_.notify_all();
  }

  int permits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return permits_;
  }

  int available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return available_;
  }

  /// Permits currently held (permits - available).
  int in_use() const {
    std::lock_guard<std::mutex> lock(mu_);
    return permits_ - available_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int permits_;
  int available_;
};

}  // namespace pdw

#endif  // PDW_COMMON_SEMAPHORE_H_
