#ifndef PDW_COMMON_TYPES_H_
#define PDW_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace pdw {

/// SQL value types supported by the engine. The set mirrors what the TPC-H
/// subset and the PDW cost model need: fixed-width numerics, dates (stored
/// as days since 1970-01-01) and variable-width strings.
enum class TypeId : uint8_t {
  kInvalid = 0,
  kBool,
  kInt,      ///< 64-bit signed integer (covers INT and BIGINT).
  kDouble,   ///< Double-precision float (covers DECIMAL in this engine).
  kVarchar,  ///< Variable-length string.
  kDate,     ///< Days since epoch, stored as int32.
};

/// Returns the SQL-facing name of a type ("INT", "VARCHAR", ...).
const char* TypeIdToString(TypeId type);

/// Parses a SQL type name (case-insensitive); returns kInvalid on failure.
/// Recognizes common aliases (BIGINT, DECIMAL, CHAR, TEXT, ...).
TypeId TypeIdFromString(const std::string& name);

/// Returns true for INT, DOUBLE and DATE — types with a total order that
/// histograms can bucket numerically.
bool IsNumericType(TypeId type);

/// Average in-memory width in bytes of a value of this type, used by the
/// cost model when column-level width statistics are absent. VARCHAR uses a
/// default assumed width.
int DefaultTypeWidth(TypeId type);

}  // namespace pdw

#endif  // PDW_COMMON_TYPES_H_
