#ifndef PDW_COMMON_RETRY_H_
#define PDW_COMMON_RETRY_H_

#include <functional>

#include "common/status.h"

namespace pdw {

/// Bounded retry with exponential backoff for transient distributed
/// failures. The appliance applies one policy per DSQL step: a transient
/// step or DMS failure is retried at step granularity (after the step's
/// partial temp tables are dropped); everything else is permanent and
/// aborts the whole plan.
///
/// The clock is injectable: `sleep_fn` replaces the real sleep so tests
/// can assert the exact backoff sequence without waiting it out.
struct RetryPolicy {
  /// Total tries of a step, including the first (1 = never retry).
  int max_attempts = 3;
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.050;
  /// Replaces the real sleep when set (fake clock for tests / chaos runs).
  std::function<void(double)> sleep_fn;

  /// Only StatusCode::kTransient is retryable — real executor and DMS
  /// errors are permanent by classification.
  bool IsRetryable(const Status& status) const {
    return status.code() == StatusCode::kTransient;
  }

  /// Backoff before the `retry`-th retry (1-based): initial * mult^(n-1),
  /// capped at max_backoff_seconds.
  double BackoffForAttempt(int retry) const;

  /// Sleeps `seconds` through sleep_fn when set, else for real.
  void Sleep(double seconds) const;
};

/// Runs `body` up to policy.max_attempts times. Before each retry of a
/// transient failure, calls on_retry(retry_index, backoff_seconds) — the
/// caller's cleanup hook — then sleeps the backoff. Returns the first OK
/// status, the first non-retryable status, or the last transient status
/// once attempts are exhausted.
Status RunWithRetries(const RetryPolicy& policy,
                      const std::function<Status()>& body,
                      const std::function<void(int, double)>& on_retry = {});

}  // namespace pdw

#endif  // PDW_COMMON_RETRY_H_
