#include "common/fault.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"

namespace pdw::fault {

namespace {

/// The canonical injection-point list — one name per distributed boundary.
/// Adding a FAULT_POINT site means adding its name here; the chaos
/// coverage test then requires the site to actually be reachable.
const char* const kFaultPointNames[] = {
    "appliance.step.dispatch",  ///< Per-node step SQL dispatch.
    "appliance.temp.create",    ///< Destination temp-table creation.
    "appliance.temp.drop",      ///< End-of-query temp-table drop.
    "dms.pack",                 ///< Reader: pack rows into wire bytes.
    "dms.queue_push",           ///< Push into a destination's inbound queue.
    "dms.network",              ///< Cross-node buffer transfer.
    "dms.unpack",               ///< Writer: decode wire bytes into rows.
    "dms.bulkcopy",             ///< Insert into destination temp storage.
    "plan_cache.fill",          ///< Control-node plan-cache insertion.
    "pool.task_start",          ///< Worker-pool task startup.
    "wlm.admit",                ///< Workload-manager admission decision.
    "wlm.share.join",           ///< Shared-step rendezvous lookup.
    "wlm.share.publish",        ///< Shared-step leader publish.
};

std::vector<std::string> SplitSpecs(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',' || c == ';') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

std::atomic<bool> FaultRegistry::armed_flag_{false};

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientError:
      return "transient";
    case FaultKind::kPermanentError:
      return "permanent";
    case FaultKind::kDelay:
      return "delay";
  }
  return "unknown";
}

std::string FaultSpec::ToString() const {
  std::string out = point + ":";
  out += query == 0 ? "*" : std::to_string(query);
  out += ":";
  out += count < 0 ? "*" : std::to_string(count);
  out += ":";
  out += FaultKindToString(kind);
  if (kind == FaultKind::kDelay) {
    out += "@" + StringFormat("%g", delay_seconds);
  }
  return out;
}

std::string FaultScheduleToString(const FaultSchedule& schedule) {
  std::string out;
  for (const FaultSpec& spec : schedule) {
    if (!out.empty()) out += ",";
    out += spec.ToString();
  }
  return out;
}

Result<FaultSchedule> ParseFaultSchedule(const std::string& text) {
  FaultSchedule schedule;
  for (const std::string& raw : SplitSpecs(text)) {
    std::vector<std::string> fields;
    std::string cur;
    for (char c : raw) {
      if (c == ':') {
        fields.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    fields.push_back(cur);
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          "fault spec must be point:query#:count:kind, got '" + raw + "'");
    }
    FaultSpec spec;
    spec.point = fields[0];
    if (!FaultRegistry::IsKnownPoint(spec.point)) {
      return Status::InvalidArgument("unknown fault point '" + spec.point +
                                     "' in '" + raw + "'");
    }
    if (fields[1] == "*") {
      spec.query = 0;
    } else {
      char* end = nullptr;
      // strtoull silently wraps negative input, so reject any sign here.
      unsigned long long q =
          std::isdigit(static_cast<unsigned char>(fields[1][0]))
              ? std::strtoull(fields[1].c_str(), &end, 10)
              : 0;
      if (end == nullptr || end == fields[1].c_str() || *end != '\0' ||
          q == 0) {
        return Status::InvalidArgument(
            "fault query# must be a positive integer or '*', got '" +
            fields[1] + "'");
      }
      spec.query = static_cast<uint64_t>(q);
    }
    if (fields[2] == "*") {
      spec.count = -1;
    } else {
      char* end = nullptr;
      long c = std::strtol(fields[2].c_str(), &end, 10);
      if (end == fields[2].c_str() || *end != '\0' || c <= 0) {
        return Status::InvalidArgument(
            "fault count must be a positive integer or '*', got '" +
            fields[2] + "'");
      }
      spec.count = static_cast<int>(c);
    }
    const std::string& kind = fields[3];
    if (kind == "transient") {
      spec.kind = FaultKind::kTransientError;
    } else if (kind == "permanent") {
      spec.kind = FaultKind::kPermanentError;
    } else if (kind == "delay" || kind.rfind("delay@", 0) == 0) {
      spec.kind = FaultKind::kDelay;
      if (kind != "delay") {
        char* end = nullptr;
        double seconds = std::strtod(kind.c_str() + 6, &end);
        if (end == kind.c_str() + 6 || *end != '\0' || seconds < 0) {
          return Status::InvalidArgument("bad delay duration in '" + raw +
                                         "'");
        }
        spec.delay_seconds = seconds;
      }
    } else {
      return Status::InvalidArgument(
          "fault kind must be transient|permanent|delay[@seconds], got '" +
          kind + "'");
    }
    schedule.push_back(std::move(spec));
  }
  return schedule;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    auto* reg = new FaultRegistry();
    if (const char* env = std::getenv("PDW_FAULTS")) {
      auto parsed = ParseFaultSchedule(env);
      if (parsed.ok()) {
        reg->Arm(std::move(*parsed));
      } else {
        std::fprintf(stderr, "PDW_FAULTS ignored: %s\n",
                     parsed.status().ToString().c_str());
      }
    }
    return reg;
  }();
  return *registry;
}

const std::vector<std::string>& FaultRegistry::AllPoints() {
  static const auto* points = [] {
    auto* v = new std::vector<std::string>();
    for (const char* name : kFaultPointNames) v->emplace_back(name);
    return v;
  }();
  return *points;
}

bool FaultRegistry::IsKnownPoint(const std::string& point) {
  for (const std::string& name : AllPoints()) {
    if (name == point) return true;
  }
  return false;
}

uint64_t FaultRegistry::Arm(FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedSchedule armed;
  armed.token = next_token_++;
  armed.base_serial = query_serial_.load(std::memory_order_relaxed);
  armed.remaining.reserve(schedule.size());
  for (const FaultSpec& spec : schedule) armed.remaining.push_back(spec.count);
  armed.specs = std::move(schedule);
  armed_.push_back(std::move(armed));
  armed_flag_.store(true, std::memory_order_relaxed);
  return armed_.back().token;
}

void FaultRegistry::Disarm(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].token == token) {
      armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (armed_.empty()) armed_flag_.store(false, std::memory_order_relaxed);
}

uint64_t FaultRegistry::BeginQuery() {
  return query_serial_.fetch_add(1, std::memory_order_relaxed) + 1;
}

Status FaultRegistry::Check(const char* point) {
  FaultSpec fired;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_[point];
    uint64_t serial = query_serial_.load(std::memory_order_relaxed);
    for (ArmedSchedule& schedule : armed_) {
      for (size_t i = 0; i < schedule.specs.size(); ++i) {
        const FaultSpec& spec = schedule.specs[i];
        if (spec.point != point) continue;
        if (spec.query != 0 && schedule.base_serial + spec.query != serial) {
          continue;
        }
        int& remaining = schedule.remaining[i];
        if (remaining == 0) continue;
        if (remaining > 0) --remaining;
        fired = spec;
        found = true;
        ++injected_[point];
        break;
      }
      if (found) break;
    }
  }
  if (!found) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    if (hook_) hook_(fired.point, fired.kind);
  }
  switch (fired.kind) {
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(fired.delay_seconds));
      return Status::OK();
    case FaultKind::kTransientError:
      return Status::Transient(std::string("injected transient fault at ") +
                               point);
    case FaultKind::kPermanentError:
      return Status::ExecutionError(
          std::string("injected permanent fault at ") + point);
  }
  return Status::OK();
}

uint64_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

uint64_t FaultRegistry::InjectedCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = injected_.find(point);
  return it == injected_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> FaultRegistry::HitCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void FaultRegistry::SetMetricsHook(
    std::function<void(const std::string&, FaultKind)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  hook_ = std::move(hook);
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hits_.clear();
  injected_.clear();
  query_serial_.store(0, std::memory_order_relaxed);
  armed_flag_.store(false, std::memory_order_relaxed);
}

}  // namespace pdw::fault
