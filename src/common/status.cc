#include "common/status.h"

namespace pdw {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kExecutionError:
      return "execution error";
    case StatusCode::kTransient:
      return "transient";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace pdw
