#ifndef PDW_COMMON_DATUM_H_
#define PDW_COMMON_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace pdw {

/// A single SQL value: NULL or one of the supported primitive types.
/// Datums are value types — cheap to copy for numerics, and strings use
/// std::string's small-buffer/heap semantics.
class Datum {
 public:
  /// Constructs SQL NULL.
  Datum() = default;

  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) { return Datum(Value(v)); }
  static Datum Int(int64_t v) { return Datum(Value(v)); }
  static Datum Double(double v) { return Datum(Value(v)); }
  static Datum Varchar(std::string v) { return Datum(Value(std::move(v))); }
  /// `days` is days since 1970-01-01.
  static Datum Date(int32_t days) {
    Datum d{Value(static_cast<int64_t>(days))};
    d.is_date_ = true;
    return d;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(value_); }

  /// Runtime type of this value; NULL reports kInvalid. Inline: this is
  /// the per-cell dispatch of the batch engine's row<->column converters.
  TypeId type() const {
    switch (value_.index()) {
      case 0:
        return TypeId::kInvalid;
      case 1:
        return TypeId::kBool;
      case 2:
        return is_date_ ? TypeId::kDate : TypeId::kInt;
      case 3:
        return TypeId::kDouble;
      default:
        return TypeId::kVarchar;
    }
  }

  bool bool_value() const { return std::get<bool>(value_); }
  int64_t int_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const std::string& string_value() const { return std::get<std::string>(value_); }
  int32_t date_value() const { return static_cast<int32_t>(std::get<int64_t>(value_)); }

  /// Numeric view of INT/DOUBLE/DATE/BOOL values for arithmetic and
  /// comparisons across numeric types. Calling on VARCHAR/NULL is invalid.
  double AsDouble() const;

  /// Three-way comparison with SQL semantics *except* NULL handling: the
  /// caller is responsible for NULL checks (comparisons with NULL should
  /// yield SQL NULL, which this value-level function cannot express).
  /// NULLs sort first here, which is what ORDER BY and row-set comparison
  /// utilities need. Mixed numeric types compare by numeric value.
  int Compare(const Datum& other) const;

  bool operator==(const Datum& other) const { return Compare(other) == 0; }

  /// Stable hash consistent with Compare()==0 equality. Used for hash
  /// joins, aggregation, and DMS hash-partition routing.
  size_t Hash() const;

  /// SQL-literal-ish rendering ("NULL", 42, 3.5, 'abc', DATE '1994-01-01').
  std::string ToString() const;

  /// In-memory width in bytes, for row-width statistics.
  int Width() const;

  /// Casts to `target`; numeric widening/narrowing plus string<->numeric.
  Result<Datum> CastTo(TypeId target) const;

 private:
  using Value = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Datum(Value v) : value_(std::move(v)) {}

  Value value_;
  bool is_date_ = false;
};

/// Strict weak order over Datums via Compare(), with NULLs first. Use as
/// the comparator of ordered containers keyed on SQL values (e.g. the
/// DISTINCT-aggregate sets of both execution engines), where value
/// equality — not rendering — must decide collisions: 2 and 2.0 compare
/// equal, while their ToString() forms do not collide.
struct DatumLess {
  bool operator()(const Datum& a, const Datum& b) const {
    return a.Compare(b) < 0;
  }
};

/// Parses 'YYYY-MM-DD' into days since epoch (proleptic Gregorian).
Result<int32_t> ParseDate(const std::string& text);

/// Inverse of ParseDate.
std::string FormatDate(int32_t days_since_epoch);

/// Adds `n` whole years to a date value (DATEADD(year, n, d)).
int32_t AddYears(int32_t days_since_epoch, int n);

}  // namespace pdw

#endif  // PDW_COMMON_DATUM_H_
