#ifndef PDW_COMMON_RESULT_H_
#define PDW_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace pdw {

/// Holds either a value of type T or an error Status. This is the return
/// type of every fallible operation that produces a value (parsing,
/// binding, optimization, execution).
///
/// Usage:
///   Result<Plan> r = Optimize(query);
///   if (!r.ok()) return r.status();
///   Plan plan = std::move(r).ValueOrDie();
/// or, inside a function returning Status/Result:
///   PDW_ASSIGN_OR_RETURN(Plan plan, Optimize(query));
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing from an OK
  /// status is a programming error and is converted to an internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Accessors. Calling these on an error Result is undefined; callers must
  /// check ok() first (the PDW_ASSIGN_OR_RETURN macro does).
  T& ValueOrDie() & { return *value_; }
  const T& ValueOrDie() const& { return *value_; }
  T&& ValueOrDie() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace pdw

#endif  // PDW_COMMON_RESULT_H_
