#include "common/types.h"

#include "common/string_util.h"

namespace pdw {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kInvalid:
      return "INVALID";
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kVarchar:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
  }
  return "INVALID";
}

TypeId TypeIdFromString(const std::string& name) {
  std::string up = ToUpper(name);
  if (up == "BOOL" || up == "BOOLEAN") return TypeId::kBool;
  if (up == "INT" || up == "INTEGER" || up == "BIGINT" || up == "SMALLINT") {
    return TypeId::kInt;
  }
  if (up == "DOUBLE" || up == "FLOAT" || up == "REAL" || up == "DECIMAL" ||
      up == "NUMERIC") {
    return TypeId::kDouble;
  }
  if (up == "VARCHAR" || up == "CHAR" || up == "TEXT" || up == "STRING") {
    return TypeId::kVarchar;
  }
  if (up == "DATE" || up == "DATETIME") return TypeId::kDate;
  return TypeId::kInvalid;
}

bool IsNumericType(TypeId type) {
  return type == TypeId::kInt || type == TypeId::kDouble ||
         type == TypeId::kDate;
}

int DefaultTypeWidth(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt:
      return 8;
    case TypeId::kDouble:
      return 8;
    case TypeId::kVarchar:
      return 24;
    case TypeId::kDate:
      return 4;
    case TypeId::kInvalid:
      return 0;
  }
  return 0;
}

}  // namespace pdw
