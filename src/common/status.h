#ifndef PDW_COMMON_STATUS_H_
#define PDW_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace pdw {

/// Error classification for Status. `kOk` is the success marker; everything
/// else carries a human-readable message describing the failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied a malformed input (bad SQL, etc.).
  kNotFound,          ///< A named object (table, column) does not exist.
  kAlreadyExists,     ///< Attempt to create a duplicate object.
  kNotImplemented,    ///< Feature intentionally unsupported.
  kInternal,          ///< Invariant violation inside the library.
  kExecutionError,    ///< Runtime failure while evaluating a plan.
  kTransient,         ///< Retryable failure (node hiccup, injected fault).
  kOverloaded,        ///< Admission queue full — fast-fail, retry later.
  kCancelled,         ///< Query cancelled by the client session.
};

/// Returns the canonical lowercase name of a status code ("ok", "not found").
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. All fallible operations in this
/// library return Status (or Result<T>, see result.h) instead of throwing;
/// exceptions are never used for control flow on a query path.
///
/// The OK status carries no allocation; error states allocate a small state
/// block holding the code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Transient(std::string msg) {
    return Status(StatusCode::kTransient, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  /// Renders "ok" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status is cheap to copy; error paths are cold.
  std::shared_ptr<const State> state_;
};

}  // namespace pdw

/// Propagates a non-OK Status to the caller.
#define PDW_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::pdw::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define PDW_CONCAT_IMPL(x, y) x##y
#define PDW_CONCAT(x, y) PDW_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error Status to the caller.
#define PDW_ASSIGN_OR_RETURN(lhs, expr)                            \
  PDW_ASSIGN_OR_RETURN_IMPL(PDW_CONCAT(_pdw_res_, __LINE__), lhs, expr)

#define PDW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)                  \
  auto tmp = (expr);                                               \
  if (!tmp.ok()) return tmp.status();                              \
  lhs = std::move(tmp).ValueOrDie()

#endif  // PDW_COMMON_STATUS_H_
