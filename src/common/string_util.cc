#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pdw {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

namespace {

// Recursive matcher over (value[vi:], pattern[pi:]).
bool LikeMatchImpl(const std::string& v, size_t vi, const std::string& p,
                   size_t pi) {
  while (pi < p.size()) {
    char pc = p[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < p.size() && p[pi] == '%') ++pi;
      if (pi == p.size()) return true;
      for (size_t k = vi; k <= v.size(); ++k) {
        if (LikeMatchImpl(v, k, p, pi)) return true;
      }
      return false;
    }
    if (vi >= v.size()) return false;
    if (pc != '_' && pc != v[vi]) return false;
    ++vi;
    ++pi;
  }
  return vi == v.size();
}

}  // namespace

bool LikeMatch(const std::string& value, const std::string& pattern) {
  return LikeMatchImpl(value, 0, pattern, 0);
}

}  // namespace pdw
