#ifndef PDW_COMMON_THREAD_POOL_H_
#define PDW_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdw {

/// A fixed-size worker pool used by the appliance to run one DSQL step's
/// per-node work on every compute node simultaneously (the Fig. 1
/// shared-nothing execution model), instead of visiting nodes in a serial
/// loop.
///
/// The only work-submission primitive is ParallelFor, which is safe to
/// nest: the calling thread participates in its own batch (it claims and
/// runs indices alongside the workers), so a task running *on* the pool
/// can itself call ParallelFor without deadlocking — in the worst case the
/// nested batch degrades to serial execution on the caller.
///
/// All methods are thread-safe. Counters (`queue_depth`, `active_workers`,
/// `tasks_executed`) are sampled by the appliance into the obs metrics
/// registry as `pool.*` gauges; an optional hook receives (queue depth,
/// active workers) on every task start/finish for live gauge updates.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool. Sized from PDW_POOL_THREADS when set, otherwise
  /// max(hardware_concurrency, 16): per-node work is frequently dominated
  /// by the modeled dispatch latency (a blocked thread, not a busy core),
  /// so the pool oversubscribes cores to overlap every node of a typical
  /// appliance.
  static ThreadPool& Global();

  int size() const { return static_cast<int>(workers_.size()); }
  int queue_depth() const { return queue_depth_.load(std::memory_order_relaxed); }
  int active_workers() const { return active_.load(std::memory_order_relaxed); }
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// ParallelFor batches nested deeper than this run inline on the caller
  /// instead of enqueuing helpers: each nesting level multiplies the
  /// enqueued-helper fan-out, and a deep stack of them (optimizer inside
  /// executor inside a concurrent-compile storm) floods the queue with
  /// helpers that find nothing to claim.
  static constexpr int kMaxNestingDepth = 4;

  /// ParallelFor nesting depth of the calling thread (0 = outside any
  /// batch; helpers run at the depth of the ParallelFor that spawned them).
  static int nesting_depth();
  /// Batches that ran inline because kMaxNestingDepth was exceeded.
  uint64_t nested_serial_fallbacks() const {
    return nested_serial_fallbacks_.load(std::memory_order_relaxed);
  }
  /// High-water nesting depth observed across all threads.
  int max_nesting_depth() const {
    return max_nesting_depth_.load(std::memory_order_relaxed);
  }

  /// Installs a metrics hook called as hook(queue_depth, active_workers)
  /// whenever a task starts or finishes. Pass nullptr to clear. The hook
  /// must be thread-safe; installation is not synchronized with running
  /// tasks, so install it before submitting work (the appliance does so
  /// from its constructor).
  void SetMetricsHook(std::function<void(int, int)> hook);

  /// Runs fn(0) .. fn(n-1) and returns when all calls have finished.
  /// Indices are claimed by up to `max_parallelism` threads (0 = no extra
  /// cap beyond pool size); the caller always participates. With
  /// max_parallelism == 1 no helpers are enqueued and the loop runs
  /// serially on the caller — the serial-loop baseline of
  /// bench_serial_vs_parallel.
  void ParallelFor(int n, const std::function<void(int)>& fn,
                   int max_parallelism = 0);

 private:
  struct Batch;

  void WorkerLoop();
  void RunOne(const std::function<void()>& task);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  std::atomic<int> queue_depth_{0};
  std::atomic<int> active_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> nested_serial_fallbacks_{0};
  std::atomic<int> max_nesting_depth_{0};
  std::function<void(int, int)> metrics_hook_;
  std::mutex hook_mu_;
};

}  // namespace pdw

#endif  // PDW_COMMON_THREAD_POOL_H_
