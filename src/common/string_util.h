#ifndef PDW_COMMON_STRING_UTIL_H_
#define PDW_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace pdw {

/// ASCII-only case conversions (SQL identifiers are ASCII).
std::string ToLower(const std::string& s);
std::string ToUpper(const std::string& s);

/// Case-insensitive equality for identifiers and keywords.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Returns true if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// SQL LIKE pattern match ('%' = any run, '_' = any single char).
/// Comparison is case-sensitive, matching the engine's string semantics.
bool LikeMatch(const std::string& value, const std::string& pattern);

}  // namespace pdw

#endif  // PDW_COMMON_STRING_UTIL_H_
