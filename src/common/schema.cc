#include "common/schema.h"

#include "common/string_util.h"

namespace pdw {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeIdToString(columns_[i].type);
  }
  return out;
}

}  // namespace pdw
