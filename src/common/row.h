#ifndef PDW_COMMON_ROW_H_
#define PDW_COMMON_ROW_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/datum.h"

namespace pdw {

/// A tuple of values. The engine is a row-at-a-time interpreter; rows flow
/// between operators, nodes (via the DMS simulator) and the client.
using Row = std::vector<Datum>;

/// A materialized set of rows (a table fragment, an intermediate result, or
/// a final result set).
using RowVector = std::vector<Row>;

/// Total in-memory width of a row in bytes (sum of datum widths). The DMS
/// cost model and byte metering are driven by this.
int RowWidth(const Row& row);

/// Mixes one column's value hash into a running multi-column hash. Both
/// the row-level HashRowColumns and the DMS batch routing kernel go
/// through this single definition, so row and columnar shuffles can never
/// disagree on a row's destination node.
inline size_t MixColumnHash(size_t h, size_t x) {
  return h ^ (x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Seed of the multi-column hash chain (also the hash of SQL NULL).
inline constexpr size_t kRowHashSeed = 0x9e3779b97f4a7c15ULL;

/// Hash of the sub-tuple `row[cols]`; used for DMS hash routing and joins.
size_t HashRowColumns(const Row& row, const std::vector<int>& cols);

/// Lexicographic three-way comparison of full rows (NULLs first).
int CompareRows(const Row& a, const Row& b);

/// Order-insensitive multiset equality of two row collections; used to
/// validate distributed execution against single-node reference execution.
/// Doubles compare with a small relative tolerance to absorb the different
/// accumulation orders of distributed aggregation.
bool RowSetsEqual(RowVector a, RowVector b);

/// Renders a row as "(v1, v2, ...)" for debugging and golden tests.
std::string RowToString(const Row& row);

}  // namespace pdw

#endif  // PDW_COMMON_ROW_H_
