#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/fault.h"

namespace pdw {

namespace {
/// ParallelFor nesting depth of the current thread. Pool workers start at
/// 0 and adopt a batch's depth while draining it, so nesting is tracked
/// across the enqueue boundary, not just down the caller's stack.
thread_local int tls_nesting_depth = 0;
}  // namespace

int ThreadPool::nesting_depth() { return tls_nesting_depth; }

/// Shared state of one ParallelFor call. Indices are claimed from `next`;
/// `done` counts finished calls so the owner can wait for claimed-but-
/// unfinished work even after the index space is exhausted.
struct ThreadPool::Batch {
  int n = 0;
  int depth = 0;  ///< Nesting depth the batch's fn runs at.
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  const std::function<void(int)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;

  /// Claims and runs indices until none remain; returns how many it ran.
  int Drain() {
    int saved_depth = tls_nesting_depth;
    tls_nesting_depth = depth;
    int ran = 0;
    for (;;) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(i);
      ++ran;
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
    tls_nesting_depth = saved_depth;
    return ran;
  }
};

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    int n = 0;
    if (const char* env = std::getenv("PDW_POOL_THREADS")) {
      n = std::atoi(env);
    }
    if (n <= 0) {
      n = std::max(16, static_cast<int>(std::thread::hardware_concurrency()));
    }
    return new ThreadPool(n);
  }();
  return *pool;
}

void ThreadPool::SetMetricsHook(std::function<void(int, int)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  metrics_hook_ = std::move(hook);
}

void ThreadPool::RunOne(const std::function<void()>& task) {
  // A task has no error frame to surface an injected status into: delay
  // faults stall the task before it starts (modeling a slow worker), error
  // kinds are counted by the registry but otherwise dropped here.
  (void)fault::Check("pool.task_start");
  int active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    if (metrics_hook_) metrics_hook_(queue_depth(), active);
  }
  task();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  active = active_.fetch_sub(1, std::memory_order_relaxed) - 1;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    if (metrics_hook_) metrics_hook_(queue_depth(), active);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(static_cast<int>(queue_.size()),
                         std::memory_order_relaxed);
    }
    RunOne(task);
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn,
                             int max_parallelism) {
  if (n <= 0) return;
  const int depth = tls_nesting_depth + 1;
  int prev_max = max_nesting_depth_.load(std::memory_order_relaxed);
  while (prev_max < depth &&
         !max_nesting_depth_.compare_exchange_weak(prev_max, depth,
                                                   std::memory_order_relaxed)) {
  }
  int cap = max_parallelism > 0 ? max_parallelism : size() + 1;
  if (depth > kMaxNestingDepth) {
    nested_serial_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    cap = 1;
  }
  if (n == 1 || cap <= 1) {
    int saved_depth = tls_nesting_depth;
    tls_nesting_depth = depth;
    for (int i = 0; i < n; ++i) fn(i);
    tls_nesting_depth = saved_depth;
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->depth = depth;
  batch->fn = &fn;

  // One helper per index beyond the caller, bounded by the cap and the
  // pool size. Helpers that wake up after the batch is drained exit
  // immediately.
  int helpers = std::min({n, cap, size() + 1}) - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < helpers; ++i) {
      queue_.emplace_back([batch] { batch->Drain(); });
    }
    queue_depth_.store(static_cast<int>(queue_.size()),
                       std::memory_order_relaxed);
  }
  cv_.notify_all();

  // The caller participates, which is what makes nesting deadlock-free:
  // every claimed index is being run by a live thread that never waits on
  // unclaimed pool capacity.
  batch->Drain();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->n;
  });
}

}  // namespace pdw
