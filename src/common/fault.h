#ifndef PDW_COMMON_FAULT_H_
#define PDW_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pdw::fault {

/// What an armed fault does when its injection point is traversed.
enum class FaultKind {
  kTransientError,  ///< Status::Transient — retryable by RetryPolicy.
  kPermanentError,  ///< Status::ExecutionError — aborts the DSQL plan.
  kDelay,           ///< Sleeps delay_seconds, then continues normally.
};

/// Canonical lowercase name ("transient", "permanent", "delay").
const char* FaultKindToString(FaultKind kind);

/// One armed fault: fire up to `count` times at `point`, restricted to one
/// query when `query` is non-zero.
struct FaultSpec {
  std::string point;   ///< Injection-point name (must be registered).
  uint64_t query = 0;  ///< 1-based query serial after arming; 0 = any query.
  int count = 1;       ///< Firings before the spec burns out; -1 = unlimited.
  FaultKind kind = FaultKind::kTransientError;
  double delay_seconds = 0.002;  ///< kDelay only.

  /// Renders the spec back into the PDW_FAULTS text form.
  std::string ToString() const;
};

/// The faults armed together by one PDW_FAULTS value or one QueryOptions.
using FaultSchedule = std::vector<FaultSpec>;

/// Parses "point:query#:count:kind" specs separated by ',' or ';'.
/// query# is a 1-based serial or '*' (any query); count a positive integer
/// or '*' (unlimited); kind one of transient | permanent | delay, where
/// delay takes an optional duration suffix "delay@<seconds>". Unknown
/// point names and malformed fields are InvalidArgument. Example:
///   PDW_FAULTS="dms.pack:*:1:transient,appliance.step.dispatch:2:1:permanent"
Result<FaultSchedule> ParseFaultSchedule(const std::string& text);

std::string FaultScheduleToString(const FaultSchedule& schedule);

/// Process-wide registry of named fault-injection points at the appliance's
/// distributed boundaries (step dispatch, DMS stages, temp-table DDL, plan
/// cache fill, pool task start). Deterministic by construction: a fault
/// fires if and only if an armed FaultSpec matches the point (and query
/// serial), and burns down its count on every firing — no randomness lives
/// here, so a seed that generated a schedule reproduces the exact failure.
///
/// Arming paths: the PDW_FAULTS environment variable (parsed once, armed
/// for the process lifetime) and QueryOptions::faults (armed by
/// Appliance::Run for one query via ScopedFaults).
///
/// Cost when nothing is armed: PDW_FAULT_POINT is one relaxed atomic load
/// and a never-taken branch — cheap enough to sit on DMS per-batch paths.
/// All methods are thread-safe.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Every injection-point name compiled into the binary (the canonical
  /// list in fault.cc). The chaos coverage test asserts each one is
  /// traversed, so a dead site fails CI instead of rotting.
  static const std::vector<std::string>& AllPoints();
  static bool IsKnownPoint(const std::string& point);

  /// True while any schedule is armed — the fast-path gate of
  /// PDW_FAULT_POINT.
  static bool Armed() { return armed_flag_.load(std::memory_order_relaxed); }

  /// Arms a schedule and returns a token for Disarm. Specs with query > 0
  /// fire only during the query-th BeginQuery() after this arming.
  uint64_t Arm(FaultSchedule schedule);
  void Disarm(uint64_t token);

  /// Bumps the process-wide query serial that query-scoped specs match
  /// against (called by Appliance::Run); returns the new serial.
  uint64_t BeginQuery();

  /// The slow path behind PDW_FAULT_POINT: records the traversal and, when
  /// an armed spec matches, fires it — returning the injected error status
  /// or sleeping out the injected delay.
  Status Check(const char* point);

  /// Traversals / firings per point since construction or Reset. Hits are
  /// recorded only while armed (the fast path skips Check entirely).
  uint64_t HitCount(const std::string& point) const;
  uint64_t InjectedCount(const std::string& point) const;
  std::map<std::string, uint64_t> HitCounts() const;

  /// Called as hook(point, kind) on every firing. Installed once by the
  /// appliance to mirror fault.injected.* into the obs metrics registry
  /// (pdw_common cannot depend on pdw_obs). Must be thread-safe.
  void SetMetricsHook(std::function<void(const std::string&, FaultKind)> hook);

  /// Drops every armed schedule and all counters, and rewinds the query
  /// serial. Tests only.
  void Reset();

 private:
  FaultRegistry() = default;

  struct ArmedSchedule {
    uint64_t token = 0;
    uint64_t base_serial = 0;  ///< Query serial when armed.
    FaultSchedule specs;
    std::vector<int> remaining;  ///< Unfired count per spec; -1 = unlimited.
  };

  static std::atomic<bool> armed_flag_;

  mutable std::mutex mu_;
  std::vector<ArmedSchedule> armed_;
  std::atomic<uint64_t> query_serial_{0};
  uint64_t next_token_ = 1;
  std::map<std::string, uint64_t> hits_;
  std::map<std::string, uint64_t> injected_;

  std::mutex hook_mu_;
  std::function<void(const std::string&, FaultKind)> hook_;
};

/// Arms QueryOptions::faults for the lifetime of one Appliance::Run call.
class ScopedFaults {
 public:
  explicit ScopedFaults(const FaultSchedule& schedule)
      : token_(schedule.empty() ? 0 : FaultRegistry::Global().Arm(schedule)) {}
  ~ScopedFaults() {
    if (token_ != 0) FaultRegistry::Global().Disarm(token_);
  }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  uint64_t token_;
};

/// Convenience for call sites that handle the status themselves (per-node
/// lambdas, void pipeline stages): OK when nothing is armed or no spec
/// matches, else the injected error.
inline Status Check(const char* point) {
  return FaultRegistry::Armed() ? FaultRegistry::Global().Check(point)
                                : Status::OK();
}

}  // namespace pdw::fault

/// Marks a distributed boundary as fault-injectable inside a function
/// returning Status or Result<T>: traversal is free when nothing is armed,
/// and an armed matching fault returns its injected error to the caller.
#define PDW_FAULT_POINT(name)                                    \
  do {                                                           \
    if (::pdw::fault::FaultRegistry::Armed()) {                  \
      ::pdw::Status _pdw_fault_status =                          \
          ::pdw::fault::FaultRegistry::Global().Check(name);     \
      if (!_pdw_fault_status.ok()) return _pdw_fault_status;     \
    }                                                            \
  } while (false)

#endif  // PDW_COMMON_FAULT_H_
