#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace pdw {

double RetryPolicy::BackoffForAttempt(int retry) const {
  double backoff = initial_backoff_seconds;
  for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_seconds);
}

void RetryPolicy::Sleep(double seconds) const {
  if (sleep_fn) {
    sleep_fn(seconds);
    return;
  }
  if (seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

Status RunWithRetries(const RetryPolicy& policy,
                      const std::function<Status()>& body,
                      const std::function<void(int, double)>& on_retry) {
  int attempts = std::max(1, policy.max_attempts);
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = body();
    if (status.ok() || !policy.IsRetryable(status) || attempt == attempts) {
      return status;
    }
    double backoff = policy.BackoffForAttempt(attempt);
    if (on_retry) on_retry(attempt, backoff);
    policy.Sleep(backoff);
  }
  return status;
}

}  // namespace pdw
