#include "common/row.h"

#include <algorithm>
#include <cmath>

namespace pdw {

int RowWidth(const Row& row) {
  int w = 0;
  for (const Datum& d : row) w += d.Width();
  return w;
}

size_t HashRowColumns(const Row& row, const std::vector<int>& cols) {
  size_t h = kRowHashSeed;
  for (int c : cols) {
    h = MixColumnHash(h, row[static_cast<size_t>(c)].Hash());
  }
  return h;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

namespace {

bool DatumsApproxEqual(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return a.Compare(b) == 0;
}

bool RowsApproxEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!DatumsApproxEqual(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

bool RowSetsEqual(RowVector a, RowVector b) {
  if (a.size() != b.size()) return false;
  auto less = [](const Row& x, const Row& y) { return CompareRows(x, y) < 0; };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsApproxEqual(a[i], b[i])) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace pdw
