#include "dms/dms_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>

#include "common/fault.h"
#include "common/string_util.h"
#include "dms/bounded_queue.h"
#include "obs/format.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdw {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Folds one run's deltas into the process-wide metrics registry (shared
/// by the row and columnar paths so dashboards see one meter).
void FoldRunIntoRegistry(const DmsRunMetrics& before, const DmsRunMetrics& m,
                         obs::TraceSpan* span) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Count("dms.executions");
  reg.Count("dms.rows_moved", m.rows_moved - before.rows_moved);
  reg.Count("dms.reader.bytes", m.reader.bytes - before.reader.bytes);
  reg.Count("dms.network.bytes", m.network.bytes - before.network.bytes);
  reg.Count("dms.writer.bytes", m.writer.bytes - before.writer.bytes);
  reg.Count("dms.bulkcopy.bytes", m.bulkcopy.bytes - before.bulkcopy.bytes);
  if (span->active()) {
    span->AddAttr("rows", m.rows_moved - before.rows_moved);
    span->AddAttr("network_bytes", m.network.bytes - before.network.bytes);
  }
}

/// One framed unit of the columnar pipeline: the bytes one source sends to
/// one destination, with a per-(src,dst) sequence number so destinations
/// can reassemble a deterministic row order regardless of arrival order.
struct WireMessage {
  int src = 0;
  uint32_t seq = 0;
  size_t rows = 0;
  std::vector<uint8_t> bytes;
};

}  // namespace

void DmsRunMetrics::Accumulate(const DmsRunMetrics& other) {
  reader.bytes += other.reader.bytes;
  reader.seconds += other.reader.seconds;
  network.bytes += other.network.bytes;
  network.seconds += other.network.seconds;
  writer.bytes += other.writer.bytes;
  writer.seconds += other.writer.seconds;
  bulkcopy.bytes += other.bulkcopy.bytes;
  bulkcopy.seconds += other.bulkcopy.seconds;
  rows_moved += other.rows_moved;
  wall_seconds += other.wall_seconds;
  saved_bytes += other.saved_bytes;
}

std::string DmsRunMetrics::ToString() const {
  // All byte/seconds rendering goes through the shared obs helpers so DMS,
  // optimizer, and executor metrics read identically.
  return "rows=" + obs::FormatCount(rows_moved) + " " +
         obs::FormatComponent("reader", reader.bytes, reader.seconds) + " " +
         obs::FormatComponent("network", network.bytes, network.seconds) +
         " " + obs::FormatComponent("writer", writer.bytes, writer.seconds) +
         " " +
         obs::FormatComponent("bulkcopy", bulkcopy.bytes, bulkcopy.seconds) +
         " wall=" + obs::FormatSeconds(wall_seconds);
}

Result<std::vector<RowVector>> DmsService::Execute(
    DmsOpKind kind, std::vector<RowVector> source_rows,
    const std::vector<int>& hash_ordinals, DmsRunMetrics* metrics,
    ThreadPool* pool, const DmsExecOptions& options) {
  if (options.codec == DmsCodec::kRow) {
    return ExecuteRowCodec(kind, std::move(source_rows), hash_ordinals,
                           metrics, pool, options);
  }
  int total_slots = nodes_ + 1;
  if (static_cast<int>(source_rows.size()) != total_slots) {
    return Status::InvalidArgument("source_rows must have one slot per node");
  }
  // Materialized inputs become trivial producers; the pipeline then
  // overlaps packing, transfer and unpacking across nodes.
  std::vector<DmsProducer> producers(static_cast<size_t>(total_slots));
  for (int i = 0; i < total_slots; ++i) {
    RowVector& rows = source_rows[static_cast<size_t>(i)];
    if (rows.empty()) continue;
    producers[static_cast<size_t>(i)] =
        [moved = std::move(rows)]() mutable -> Result<RowVector> {
      return std::move(moved);
    };
  }
  return ExecutePipelined(kind, std::move(producers), hash_ordinals, metrics,
                          pool, options);
}

Result<std::vector<RowVector>> DmsService::ExecuteRowCodec(
    DmsOpKind kind, std::vector<RowVector> source_rows,
    const std::vector<int>& hash_ordinals, DmsRunMetrics* metrics,
    ThreadPool* pool, const DmsExecOptions& options) {
  int n = nodes_;
  int total_slots = n + 1;
  if (static_cast<int>(source_rows.size()) != total_slots) {
    return Status::InvalidArgument("source_rows must have one slot per node");
  }
  DmsRunMetrics local_metrics;
  DmsRunMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  const DmsRunMetrics before = *m;  // callers may pass accumulators
  double wall_start = NowSeconds();
  obs::TraceSpan span("dms.execute");
  span.AddAttr("kind", std::string(DmsOpKindToString(kind)));
  span.AddAttr("codec", std::string("row"));

  bool hashes = kind == DmsOpKind::kShuffle || kind == DmsOpKind::kTrimMove;
  if (hashes && hash_ordinals.empty()) {
    return Status::InvalidArgument("hash move without hash columns");
  }
  // The row path materializes whole phases; cancellation is only observed
  // up front (the streaming path checks every queue push instead).
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled before DMS row move");
  }

  // Runs one phase's per-node body, in parallel when a pool is supplied;
  // each body only touches its own node's slots, so no locking is needed.
  auto each_node = [&](const std::function<void(int)>& body) {
    if (pool != nullptr) {
      pool->ParallelFor(total_slots, body, options.max_workers);
    } else {
      for (int i = 0; i < total_slots; ++i) body(i);
    }
  };

  // Reader phase: each source node packs its rows into per-target buffers.
  // target_buffers[src][dst] holds the bytes src sends to dst. Component
  // seconds are the *sum of per-node durations* — the cost model's B*λ
  // work metric — so serial and pooled runs meter the same quantity.
  std::vector<std::vector<std::vector<uint8_t>>> buffers(
      static_cast<size_t>(total_slots));
  for (auto& per_target : buffers) {
    per_target.resize(static_cast<size_t>(total_slots));
  }

  std::vector<DmsRunMetrics> node_m(static_cast<size_t>(total_slots));
  std::vector<Status> node_status(static_cast<size_t>(total_slots));
  each_node([&](int src) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(src)];
    Status fs = fault::Check("dms.pack");
    if (!fs.ok()) {
      node_status[static_cast<size_t>(src)] = std::move(fs);
      return;
    }
    double t0 = NowSeconds();
    for (const Row& row : source_rows[static_cast<size_t>(src)]) {
      std::vector<int> targets;
      switch (kind) {
        case DmsOpKind::kShuffle:
          targets = {TargetNode(row, hash_ordinals)};
          break;
        case DmsOpKind::kPartitionMove:
        case DmsOpKind::kRemoteCopyToSingle:
          targets = {control_node()};
          break;
        case DmsOpKind::kControlNodeMove:
        case DmsOpKind::kBroadcastMove:
        case DmsOpKind::kReplicatedBroadcast:
          for (int i = 0; i < n; ++i) targets.push_back(i);
          break;
        case DmsOpKind::kTrimMove:
          // Keep only rows this node is responsible for; no network.
          if (TargetNode(row, hash_ordinals) == src) targets = {src};
          break;
      }
      for (int dst : targets) {
        auto bytes = PackRow(
            row, &buffers[static_cast<size_t>(src)][static_cast<size_t>(dst)]);
        if (!bytes.ok()) {
          node_status[static_cast<size_t>(src)] = bytes.status();
          return;
        }
        nm.reader.bytes += static_cast<double>(*bytes);
      }
      nm.rows_moved += 1;
    }
    nm.reader.seconds += NowSeconds() - t0;
  });
  for (const Status& s : node_status) {
    if (!s.ok()) return s;
  }

  // Network phase: move buffers from source to target queues (local
  // deliveries are free — Trim moves never touch the network). Each target
  // drains its own inbound column of the buffer matrix.
  std::vector<std::vector<uint8_t>> inbound(static_cast<size_t>(total_slots));
  each_node([&](int dst) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    Status fs = fault::Check("dms.network");
    if (!fs.ok()) {
      node_status[static_cast<size_t>(dst)] = std::move(fs);
      return;
    }
    double t0 = NowSeconds();
    for (int src = 0; src < total_slots; ++src) {
      std::vector<uint8_t>& buf =
          buffers[static_cast<size_t>(src)][static_cast<size_t>(dst)];
      if (buf.empty()) continue;
      if (src != dst) nm.network.bytes += static_cast<double>(buf.size());
      std::vector<uint8_t>& q = inbound[static_cast<size_t>(dst)];
      q.insert(q.end(), buf.begin(), buf.end());
      buf.clear();
      buf.shrink_to_fit();
    }
    nm.network.seconds += NowSeconds() - t0;
  });
  for (const Status& s : node_status) {
    if (!s.ok()) return s;
  }

  // Writer phase: unpack rows on each target.
  std::vector<RowVector> unpacked(static_cast<size_t>(total_slots));
  each_node([&](int dst) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    Status fs = fault::Check("dms.unpack");
    if (!fs.ok()) {
      node_status[static_cast<size_t>(dst)] = std::move(fs);
      return;
    }
    double t0 = NowSeconds();
    const std::vector<uint8_t>& buf = inbound[static_cast<size_t>(dst)];
    size_t offset = 0;
    while (offset < buf.size()) {
      auto row = UnpackRow(buf, &offset);
      if (!row.ok()) {
        node_status[static_cast<size_t>(dst)] = row.status();
        return;
      }
      unpacked[static_cast<size_t>(dst)].push_back(std::move(*row));
    }
    nm.writer.bytes += static_cast<double>(buf.size());
    nm.writer.seconds += NowSeconds() - t0;
  });
  for (const Status& s : node_status) {
    if (!s.ok()) return s;
  }

  // Bulk-copy phase: insert into the destination table storage (a copy,
  // like SQL Server's bulk insert materializing the temp table).
  std::vector<RowVector> result(static_cast<size_t>(total_slots));
  each_node([&](int dst) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    Status fs = fault::Check("dms.bulkcopy");
    if (!fs.ok()) {
      node_status[static_cast<size_t>(dst)] = std::move(fs);
      return;
    }
    double t0 = NowSeconds();
    RowVector& out = result[static_cast<size_t>(dst)];
    out.reserve(unpacked[static_cast<size_t>(dst)].size());
    double landed_bytes = 0;
    for (const Row& row : unpacked[static_cast<size_t>(dst)]) {
      double width = static_cast<double>(RowWidth(row));
      nm.bulkcopy.bytes += width;
      landed_bytes += width;
      out.push_back(row);
    }
    nm.bulkcopy.seconds += NowSeconds() - t0;
    if (options.progress && !out.empty()) {
      options.progress(static_cast<double>(out.size()), landed_bytes);
    }
  });
  for (const Status& s : node_status) {
    if (!s.ok()) return s;
  }

  for (const DmsRunMetrics& nm : node_m) m->Accumulate(nm);
  m->wall_seconds += NowSeconds() - wall_start;
  FoldRunIntoRegistry(before, *m, &span);
  return result;
}

Result<std::vector<RowVector>> DmsService::ExecutePipelined(
    DmsOpKind kind, std::vector<DmsProducer> producers,
    const std::vector<int>& hash_ordinals, DmsRunMetrics* metrics,
    ThreadPool* pool, const DmsExecOptions& options) {
  int n = nodes_;
  int total_slots = n + 1;
  if (static_cast<int>(producers.size()) != total_slots) {
    return Status::InvalidArgument("producers must have one slot per node");
  }
  bool hashes = kind == DmsOpKind::kShuffle || kind == DmsOpKind::kTrimMove;
  if (hashes && hash_ordinals.empty()) {
    return Status::InvalidArgument("hash move without hash columns");
  }

  DmsRunMetrics local_metrics;
  DmsRunMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  const DmsRunMetrics before = *m;
  double wall_start = NowSeconds();
  obs::TraceSpan span("dms.execute");
  span.AddAttr("kind", std::string(DmsOpKindToString(kind)));
  span.AddAttr("codec", std::string("columnar"));

  const int batch_size =
      options.batch_size > 0 ? options.batch_size : kDmsWireBatchRows;
  const size_t queue_capacity =
      options.queue_capacity > 0 ? static_cast<size_t>(options.queue_capacity)
                                 : 32;

  /// Inbound side of one destination node: the bounded queue producers
  /// push into, plus the consume lock that serializes unpack/bulk-copy
  /// work on this destination (held by its writer task, or briefly by a
  /// backpressured producer helping out).
  struct DestState {
    explicit DestState(size_t cap) : queue(cap) {}
    BoundedQueue<WireMessage> queue;
    std::mutex mu;
    /// chunks[src] = unpacked row chunks of that source in sequence order.
    std::vector<std::vector<RowVector>> chunks;
    Status status;
  };

  std::vector<std::unique_ptr<DestState>> dests;
  dests.reserve(static_cast<size_t>(total_slots));
  for (int i = 0; i < total_slots; ++i) {
    dests.push_back(std::make_unique<DestState>(queue_capacity));
    dests.back()->chunks.resize(static_cast<size_t>(total_slots));
  }

  std::vector<DmsRunMetrics> node_m(static_cast<size_t>(total_slots));
  std::vector<Status> reader_status(static_cast<size_t>(total_slots));
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> backpressure_events{0};

  // Abort signal: the first failure closes and drains every inbound queue,
  // so backpressured producers stop pushing (TryPush on a closed queue
  // never succeeds, and `send` re-checks `failed`) and writer loops run
  // out promptly instead of deadlocking on a full queue whose consumer
  // died.
  auto mark_failed = [&] {
    if (!failed.exchange(true, std::memory_order_acq_rel)) {
      for (auto& d : dests) d->queue.Abort();
    }
  };

  // Unpacks one message into its destination's chunk matrix. Must be
  // called with dests[dst]->mu held; meters writer/bulk-copy work on the
  // destination node. After a failure messages are drained unprocessed so
  // producers never stall on a doomed queue.
  auto process_message = [&](int dst, WireMessage msg) {
    DestState& d = *dests[static_cast<size_t>(dst)];
    if (failed.load(std::memory_order_relaxed)) return;
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    Status fs = fault::Check("dms.unpack");
    if (!fs.ok()) {
      if (d.status.ok()) d.status = std::move(fs);
      mark_failed();
      return;
    }
    double t0 = NowSeconds();
    size_t offset = 0;
    // Decode the wire batch straight into destination row storage — no
    // intermediate ColumnBatch on the receive side.
    RowVector chunk;
    auto unpacked = UnpackBatchToRows(msg.bytes, &offset, &chunk);
    if (!unpacked.ok()) {
      if (d.status.ok()) d.status = unpacked.status();
      mark_failed();
      return;
    }
    nm.writer.bytes += static_cast<double>(msg.bytes.size());
    double t1 = NowSeconds();
    nm.writer.seconds += t1 - t0;
    fs = fault::Check("dms.bulkcopy");
    if (!fs.ok()) {
      if (d.status.ok()) d.status = std::move(fs);
      mark_failed();
      return;
    }
    // Bulk copy: account the materialized rows for the destination
    // temp-table storage, metered in row widths exactly like the legacy
    // path.
    for (const Row& row : chunk) {
      nm.bulkcopy.bytes += static_cast<double>(RowWidth(row));
    }
    if (options.progress && !chunk.empty()) {
      options.progress(static_cast<double>(chunk.size()),
                       static_cast<double>(msg.bytes.size()));
    }
    auto& per_src = d.chunks[static_cast<size_t>(msg.src)];
    if (per_src.size() <= msg.seq) per_src.resize(msg.seq + 1);
    per_src[msg.seq] = std::move(chunk);
    nm.bulkcopy.seconds += NowSeconds() - t1;
  };

  // Backpressure helper: a producer facing a full queue tries to become
  // the destination's consumer for one message. Returns false only when
  // another thread holds the consume lock (and is therefore actively
  // draining) — the caller then waits briefly and retries, so progress
  // never depends on pool capacity being available for writer tasks.
  auto try_consume_one = [&](int dst) -> bool {
    DestState& d = *dests[static_cast<size_t>(dst)];
    std::unique_lock<std::mutex> lock(d.mu, std::try_to_lock);
    if (!lock.owns_lock()) return false;
    auto msg = d.queue.TryPop();
    if (msg.has_value()) process_message(dst, std::move(*msg));
    return true;
  };

  auto send = [&](int src, int dst, WireMessage msg,
                  DmsRunMetrics& nm) -> Status {
    PDW_FAULT_POINT("dms.queue_push");
    // Queue pushes are the pipeline's cancellation points: every produced
    // batch passes through here, so a cancelled query stops moving data
    // within one wire batch instead of draining the whole stream.
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled during DMS queue push");
    }
    bool cross = src != dst;
    double t0 = NowSeconds();
    if (cross) {
      PDW_FAULT_POINT("dms.network");
      nm.network.bytes += static_cast<double>(msg.bytes.size());
    }
    DestState& d = *dests[static_cast<size_t>(dst)];
    while (!d.queue.TryPush(std::move(msg))) {
      // Abort signal: after a failure every queue is closed, so TryPush
      // can never succeed again — drop the message and let the reader
      // loop observe `failed` instead of helping/waiting forever.
      if (failed.load(std::memory_order_relaxed)) return Status::OK();
      // A backpressured producer must also observe cancellation, or a
      // cancelled query with a full queue would block until its writer
      // happened to drain.
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_relaxed)) {
        return Status::Cancelled("query cancelled during DMS queue push");
      }
      backpressure_events.fetch_add(1, std::memory_order_relaxed);
      if (!try_consume_one(dst)) {
        d.queue.WaitNotFullFor(std::chrono::microseconds(200));
      }
    }
    if (cross) nm.network.seconds += NowSeconds() - t0;
    return Status::OK();
  };

  // Reader slots and the close protocol: the last reader to finish closes
  // every inbound queue, releasing the writer loops.
  std::vector<int> reader_slots;
  for (int i = 0; i < total_slots; ++i) {
    if (producers[static_cast<size_t>(i)]) reader_slots.push_back(i);
  }
  std::atomic<int> readers_remaining{static_cast<int>(reader_slots.size())};
  auto close_all = [&] {
    for (auto& d : dests) d->queue.Close();
  };
  if (reader_slots.empty()) close_all();

  auto reader_task = [&](int src) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(src)];
    auto produced = producers[static_cast<size_t>(src)]();
    if (!produced.ok()) {
      reader_status[static_cast<size_t>(src)] = produced.status();
      mark_failed();
    } else {
      RowVector rows = std::move(*produced);
      size_t arity = rows.empty() ? 0 : rows[0].size();
      std::vector<TypeId> types = options.types;
      if (types.size() != arity) types = InferRowTypes(rows);
      std::vector<uint32_t> seqs(static_cast<size_t>(total_slots), 0);
      std::vector<SelVector> parts;

      // Packs a slice of `rows` (contiguous [begin, end), or the selected
      // subset) straight from row storage into a wire message for `dst` and
      // pushes it — no intermediate ColumnBatch on the send side. Pack time
      // is reader work; queue wait is network time (metered inside send).
      auto emit = [&](int dst, size_t begin, size_t end, const SelVector* sel,
                      double* reader_dt) {
        Status fs = fault::Check("dms.pack");
        if (!fs.ok()) {
          reader_status[static_cast<size_t>(src)] = std::move(fs);
          mark_failed();
          return;
        }
        WireMessage msg;
        msg.src = src;
        msg.seq = seqs[static_cast<size_t>(dst)]++;
        msg.rows = sel != nullptr ? sel->size() : end - begin;
        double t0 = NowSeconds();
        auto bytes =
            sel != nullptr
                ? PackRowsColumnarSelected(rows, *sel, types, &msg.bytes)
                : PackRowsColumnar(rows, begin, end, types, &msg.bytes);
        *reader_dt += NowSeconds() - t0;
        if (!bytes.ok()) {
          reader_status[static_cast<size_t>(src)] = bytes.status();
          mark_failed();
          return;
        }
        nm.reader.bytes += static_cast<double>(*bytes);
        Status ss = send(src, dst, std::move(msg), nm);
        if (!ss.ok()) {
          reader_status[static_cast<size_t>(src)] = std::move(ss);
          mark_failed();
        }
      };

      for (size_t begin = 0;
           begin < rows.size() && !failed.load(std::memory_order_relaxed);
           begin += static_cast<size_t>(batch_size)) {
        size_t end =
            std::min(rows.size(), begin + static_cast<size_t>(batch_size));
        double reader_dt = 0;
        double t0 = NowSeconds();
        switch (kind) {
          case DmsOpKind::kShuffle: {
            HashPartitionRows(rows, begin, end, hash_ordinals, n, &parts);
            reader_dt += NowSeconds() - t0;
            for (int dst = 0; dst < n; ++dst) {
              const SelVector& sel = parts[static_cast<size_t>(dst)];
              if (sel.empty()) continue;
              emit(dst, begin, end, sel.size() == end - begin ? nullptr : &sel,
                   &reader_dt);
              if (failed.load(std::memory_order_relaxed)) break;
            }
            break;
          }
          case DmsOpKind::kTrimMove: {
            // Keep only this node's hash slice; purely local delivery.
            HashPartitionRows(rows, begin, end, hash_ordinals, n, &parts);
            reader_dt += NowSeconds() - t0;
            if (src < n) {
              const SelVector& sel = parts[static_cast<size_t>(src)];
              if (!sel.empty()) {
                emit(src, begin, end,
                     sel.size() == end - begin ? nullptr : &sel, &reader_dt);
              }
            }
            break;
          }
          case DmsOpKind::kPartitionMove:
          case DmsOpKind::kRemoteCopyToSingle:
            reader_dt += NowSeconds() - t0;
            emit(control_node(), begin, end, nullptr, &reader_dt);
            break;
          case DmsOpKind::kControlNodeMove:
          case DmsOpKind::kBroadcastMove:
          case DmsOpKind::kReplicatedBroadcast: {
            // Pack the slice once; every target receives a copy of the
            // same bytes (reader reads once, the network fans out — the
            // Fig. 5 broadcast byte structure).
            Status fs = fault::Check("dms.pack");
            if (!fs.ok()) {
              reader_status[static_cast<size_t>(src)] = std::move(fs);
              mark_failed();
              break;
            }
            WireMessage proto;
            proto.src = src;
            proto.rows = end - begin;
            auto bytes = PackRowsColumnar(rows, begin, end, types,
                                          &proto.bytes);
            reader_dt += NowSeconds() - t0;
            if (!bytes.ok()) {
              reader_status[static_cast<size_t>(src)] = bytes.status();
              mark_failed();
              break;
            }
            nm.reader.bytes += static_cast<double>(*bytes);
            for (int dst = 0; dst < n; ++dst) {
              WireMessage msg = proto;  // copy of the packed bytes
              msg.seq = seqs[static_cast<size_t>(dst)]++;
              Status ss = send(src, dst, std::move(msg), nm);
              if (!ss.ok()) {
                reader_status[static_cast<size_t>(src)] = std::move(ss);
                mark_failed();
              }
              if (failed.load(std::memory_order_relaxed)) break;
            }
            break;
          }
        }
        nm.reader.seconds += reader_dt;
        nm.rows_moved += static_cast<double>(end - begin);
      }
    }
    if (readers_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      close_all();
    }
  };

  auto writer_task = [&](int dst) {
    DestState& d = *dests[static_cast<size_t>(dst)];
    // Holding the consume lock across the loop is safe: Pop only blocks
    // while the queue is empty, in which case producers cannot be stuck on
    // a full queue; backpressured producers use try_lock and fall back to
    // a bounded wait.
    std::lock_guard<std::mutex> lock(d.mu);
    for (;;) {
      auto msg = d.queue.Pop();
      if (!msg.has_value()) break;
      process_message(dst, std::move(*msg));
    }
  };

  // One task per source (producer → slice → route → pack → send) plus one
  // per destination (receive → unpack → bulk-copy), all claimed from the
  // shared pool; readers occupy the low indices so they are claimed first.
  int num_readers = static_cast<int>(reader_slots.size());
  int total_tasks = num_readers + total_slots;
  auto run_task = [&](int i) {
    if (i < num_readers) {
      reader_task(reader_slots[static_cast<size_t>(i)]);
    } else {
      writer_task(i - num_readers);
    }
  };
  if (pool != nullptr) {
    // max_workers is the per-query thread budget (WLM resource class);
    // the caller participates, so any cap still makes progress.
    pool->ParallelFor(total_tasks, run_task, options.max_workers);
  } else {
    for (int i = 0; i < total_tasks; ++i) run_task(i);
  }

  for (const Status& s : reader_status) {
    if (!s.ok()) return s;
  }
  for (const auto& d : dests) {
    if (!d->status.ok()) return d->status;
  }

  // Assemble each destination's rows in (source, sequence) order — the
  // same deterministic order the materialized path produces.
  std::vector<RowVector> result(static_cast<size_t>(total_slots));
  for (int dst = 0; dst < total_slots; ++dst) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    double t0 = NowSeconds();
    RowVector& out = result[static_cast<size_t>(dst)];
    size_t total = 0;
    for (const auto& per_src : dests[static_cast<size_t>(dst)]->chunks) {
      for (const RowVector& chunk : per_src) total += chunk.size();
    }
    out.reserve(total);
    for (auto& per_src : dests[static_cast<size_t>(dst)]->chunks) {
      for (RowVector& chunk : per_src) {
        out.insert(out.end(), std::make_move_iterator(chunk.begin()),
                   std::make_move_iterator(chunk.end()));
      }
    }
    nm.bulkcopy.seconds += NowSeconds() - t0;
  }

  for (const DmsRunMetrics& nm : node_m) m->Accumulate(nm);
  m->wall_seconds += NowSeconds() - wall_start;
  FoldRunIntoRegistry(before, *m, &span);
  obs::MetricsRegistry::Global().Count(
      "dms.pipeline.backpressure_waits",
      static_cast<double>(backpressure_events.load()));
  return result;
}

DmsCostParameters CalibrateCostModel(int rows_per_probe, DmsCodec codec) {
  // Synthetic rows resembling a shuffled intermediate result.
  RowVector rows;
  rows.reserve(static_cast<size_t>(rows_per_probe));
  for (int i = 0; i < rows_per_probe; ++i) {
    rows.push_back(Row{Datum::Int(i), Datum::Double(i * 0.5),
                       Datum::Varchar("payload-" + std::to_string(i % 97)),
                       Datum::Date(9000 + (i % 1000))});
  }

  auto measure = [&](auto&& body) {
    double t0 = NowSeconds();
    double bytes = body();
    double dt = NowSeconds() - t0;
    return bytes > 0 ? dt / bytes : 0.0;
  };

  DmsCostParameters p;
  std::vector<int> hash_cols = {0};

  if (codec == DmsCodec::kColumnar) {
    // Columnar probes: the same component work the pipelined path does,
    // batch-at-a-time.
    const std::vector<TypeId> types = {TypeId::kInt, TypeId::kDouble,
                                       TypeId::kVarchar, TypeId::kDate};
    const int bs = kDmsWireBatchRows;
    auto for_each_slice = [&](auto&& fn) {
      for (size_t begin = 0; begin < rows.size();
           begin += static_cast<size_t>(bs)) {
        size_t end = std::min(rows.size(), begin + static_cast<size_t>(bs));
        fn(begin, end);
      }
    };
    // Reader (direct): pack straight from row storage, as the pipeline does.
    p.lambda_reader_direct = measure([&]() {
      std::vector<uint8_t> buf;
      double bytes = 0;
      for_each_slice([&](size_t begin, size_t end) {
        auto r = PackRowsColumnar(rows, begin, end, types, &buf);
        if (r.ok()) bytes += static_cast<double>(*r);
      });
      return bytes;
    });
    // Reader (hash): route + pack each destination's selection.
    p.lambda_reader_hash = measure([&]() {
      std::vector<uint8_t> buf;
      std::vector<SelVector> parts;
      double bytes = 0;
      for_each_slice([&](size_t begin, size_t end) {
        HashPartitionRows(rows, begin, end, hash_cols, 8, &parts);
        for (const SelVector& sel : parts) {
          if (sel.empty()) continue;
          auto r = PackRowsColumnarSelected(rows, sel, types, &buf);
          if (r.ok()) bytes += static_cast<double>(*r);
        }
      });
      return bytes;
    });
    // The wire batches the remaining component probes consume.
    std::vector<ColumnBatch> batches;
    for_each_slice([&](size_t begin, size_t end) {
      ColumnBatch b(types);
      AppendRowsToBatch(rows, begin, end, {0, 1, 2, 3}, &b);
      batches.push_back(std::move(b));
    });
    // Network: byte transfer between queues.
    {
      std::vector<uint8_t> buf;
      for (const ColumnBatch& b : batches) (void)PackBatch(b, &buf).ok();
      p.lambda_network = measure([&]() {
        std::vector<uint8_t> inbound;
        inbound.insert(inbound.end(), buf.begin(), buf.end());
        return static_cast<double>(inbound.size());
      });
      // A queue append under-represents a real network; scale to keep the
      // relative component ordering of the paper (network slower than
      // packing). The scale factor is part of the simulator's definition.
      p.lambda_network *= 8;
    }
    // Writer: decode wire batches straight into row storage, exactly the
    // pipeline's receive path.
    {
      std::vector<uint8_t> buf;
      for (const ColumnBatch& b : batches) (void)PackBatch(b, &buf).ok();
      p.lambda_writer = measure([&]() {
        size_t offset = 0;
        RowVector dest;
        dest.reserve(rows.size());
        while (offset < buf.size()) {
          auto n = UnpackBatchToRows(buf, &offset, &dest);
          if (!n.ok()) break;
        }
        return static_cast<double>(buf.size());
      });
    }
    // Bulk copy: width metering + chunk assembly into destination storage.
    RowVector chunk = rows;  // copied outside the probe's clock
    p.lambda_bulkcopy = measure([&]() {
      RowVector dest;
      dest.reserve(chunk.size());
      double bytes = 0;
      for (const Row& r : chunk) bytes += static_cast<double>(RowWidth(r));
      std::move(chunk.begin(), chunk.end(), std::back_inserter(dest));
      return bytes;
    });
    p.lambda_bulkcopy *= 6;  // temp-table materialization penalty
  } else {
    // Reader (direct): pack only.
    p.lambda_reader_direct = measure([&]() {
      std::vector<uint8_t> buf;
      double bytes = 0;
      for (const Row& r : rows) {
        auto n = PackRow(r, &buf);
        if (n.ok()) bytes += static_cast<double>(*n);
      }
      return bytes;
    });
    // Reader (hash): pack + route hash.
    p.lambda_reader_hash = measure([&]() {
      std::vector<uint8_t> buf;
      double bytes = 0;
      size_t sink = 0;
      for (const Row& r : rows) {
        sink += HashRowColumns(r, hash_cols) % 8;
        auto n = PackRow(r, &buf);
        if (n.ok()) bytes += static_cast<double>(*n);
      }
      // Keep `sink` alive.
      if (sink == static_cast<size_t>(-1)) bytes += 1;
      return bytes;
    });
    // Network: byte transfer between queues.
    {
      std::vector<uint8_t> buf;
      for (const Row& r : rows) (void)PackRow(r, &buf).ok();
      p.lambda_network = measure([&]() {
        std::vector<uint8_t> inbound;
        inbound.insert(inbound.end(), buf.begin(), buf.end());
        return static_cast<double>(inbound.size());
      });
      p.lambda_network *= 8;
    }
    // Writer: unpack.
    {
      std::vector<uint8_t> buf;
      for (const Row& r : rows) (void)PackRow(r, &buf).ok();
      p.lambda_writer = measure([&]() {
        size_t offset = 0;
        int count = 0;
        while (offset < buf.size()) {
          auto r = UnpackRow(buf, &offset);
          if (!r.ok()) break;
          ++count;
        }
        return static_cast<double>(buf.size());
      });
    }
    // Bulk copy: row copy into destination storage, with the temp-table
    // materialization penalty that makes it the dominant component.
    p.lambda_bulkcopy = measure([&]() {
      RowVector dest;
      dest.reserve(rows.size());
      double bytes = 0;
      for (const Row& r : rows) {
        bytes += static_cast<double>(RowWidth(r));
        dest.push_back(r);
      }
      return bytes;
    });
    p.lambda_bulkcopy *= 6;  // temp-table materialization penalty
  }

  // Calibration post-processing: hashing can never be cheaper than a
  // direct read; measurement noise at small probe sizes is clamped away.
  p.lambda_reader_hash =
      std::max(p.lambda_reader_hash, p.lambda_reader_direct * 1.05);
  return p;
}

}  // namespace pdw
