#include "dms/dms_service.h"

#include <chrono>
#include <algorithm>
#include <cstring>

#include "common/string_util.h"
#include "obs/format.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdw {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendBytes(const void* data, size_t n, std::vector<uint8_t>* buffer) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer->insert(buffer->end(), p, p + n);
}

}  // namespace

void DmsRunMetrics::Accumulate(const DmsRunMetrics& other) {
  reader.bytes += other.reader.bytes;
  reader.seconds += other.reader.seconds;
  network.bytes += other.network.bytes;
  network.seconds += other.network.seconds;
  writer.bytes += other.writer.bytes;
  writer.seconds += other.writer.seconds;
  bulkcopy.bytes += other.bulkcopy.bytes;
  bulkcopy.seconds += other.bulkcopy.seconds;
  rows_moved += other.rows_moved;
  wall_seconds += other.wall_seconds;
}

std::string DmsRunMetrics::ToString() const {
  // All byte/seconds rendering goes through the shared obs helpers so DMS,
  // optimizer, and executor metrics read identically.
  return "rows=" + obs::FormatCount(rows_moved) + " " +
         obs::FormatComponent("reader", reader.bytes, reader.seconds) + " " +
         obs::FormatComponent("network", network.bytes, network.seconds) +
         " " + obs::FormatComponent("writer", writer.bytes, writer.seconds) +
         " " +
         obs::FormatComponent("bulkcopy", bulkcopy.bytes, bulkcopy.seconds) +
         " wall=" + obs::FormatSeconds(wall_seconds);
}

size_t PackRow(const Row& row, std::vector<uint8_t>* buffer) {
  size_t start = buffer->size();
  uint16_t arity = static_cast<uint16_t>(row.size());
  AppendBytes(&arity, sizeof(arity), buffer);
  for (const Datum& d : row) {
    uint8_t tag = static_cast<uint8_t>(d.type());
    AppendBytes(&tag, 1, buffer);
    switch (d.type()) {
      case TypeId::kInvalid:
        break;  // NULL: tag only
      case TypeId::kBool: {
        uint8_t v = d.bool_value() ? 1 : 0;
        AppendBytes(&v, 1, buffer);
        break;
      }
      case TypeId::kInt: {
        int64_t v = d.int_value();
        AppendBytes(&v, sizeof(v), buffer);
        break;
      }
      case TypeId::kDate: {
        int32_t v = d.date_value();
        AppendBytes(&v, sizeof(v), buffer);
        break;
      }
      case TypeId::kDouble: {
        double v = d.double_value();
        AppendBytes(&v, sizeof(v), buffer);
        break;
      }
      case TypeId::kVarchar: {
        const std::string& s = d.string_value();
        uint32_t len = static_cast<uint32_t>(s.size());
        AppendBytes(&len, sizeof(len), buffer);
        AppendBytes(s.data(), s.size(), buffer);
        break;
      }
    }
  }
  return buffer->size() - start;
}

Result<Row> UnpackRow(const std::vector<uint8_t>& buffer, size_t* offset) {
  auto read = [&](void* out, size_t n) -> Status {
    if (*offset + n > buffer.size()) {
      return Status::Internal("DMS buffer underrun");
    }
    std::memcpy(out, buffer.data() + *offset, n);
    *offset += n;
    return Status::OK();
  };
  uint16_t arity = 0;
  PDW_RETURN_NOT_OK(read(&arity, sizeof(arity)));
  Row row;
  row.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    uint8_t tag = 0;
    PDW_RETURN_NOT_OK(read(&tag, 1));
    switch (static_cast<TypeId>(tag)) {
      case TypeId::kInvalid:
        row.push_back(Datum::Null());
        break;
      case TypeId::kBool: {
        uint8_t v = 0;
        PDW_RETURN_NOT_OK(read(&v, 1));
        row.push_back(Datum::Bool(v != 0));
        break;
      }
      case TypeId::kInt: {
        int64_t v = 0;
        PDW_RETURN_NOT_OK(read(&v, sizeof(v)));
        row.push_back(Datum::Int(v));
        break;
      }
      case TypeId::kDate: {
        int32_t v = 0;
        PDW_RETURN_NOT_OK(read(&v, sizeof(v)));
        row.push_back(Datum::Date(v));
        break;
      }
      case TypeId::kDouble: {
        double v = 0;
        PDW_RETURN_NOT_OK(read(&v, sizeof(v)));
        row.push_back(Datum::Double(v));
        break;
      }
      case TypeId::kVarchar: {
        uint32_t len = 0;
        PDW_RETURN_NOT_OK(read(&len, sizeof(len)));
        if (*offset + len > buffer.size()) {
          return Status::Internal("DMS buffer underrun (string)");
        }
        row.push_back(Datum::Varchar(std::string(
            reinterpret_cast<const char*>(buffer.data() + *offset), len)));
        *offset += len;
        break;
      }
      default:
        return Status::Internal("DMS buffer: bad type tag");
    }
  }
  return row;
}

Result<std::vector<RowVector>> DmsService::Execute(
    DmsOpKind kind, std::vector<RowVector> source_rows,
    const std::vector<int>& hash_ordinals, DmsRunMetrics* metrics,
    ThreadPool* pool) {
  int n = nodes_;
  int total_slots = n + 1;
  if (static_cast<int>(source_rows.size()) != total_slots) {
    return Status::InvalidArgument("source_rows must have one slot per node");
  }
  DmsRunMetrics local_metrics;
  DmsRunMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  const DmsRunMetrics before = *m;  // callers may pass accumulators
  double wall_start = NowSeconds();
  obs::TraceSpan span("dms.execute");
  span.AddAttr("kind", std::string(DmsOpKindToString(kind)));

  bool hashes = kind == DmsOpKind::kShuffle || kind == DmsOpKind::kTrimMove;
  if (hashes && hash_ordinals.empty()) {
    return Status::InvalidArgument("hash move without hash columns");
  }

  // Runs one phase's per-node body, in parallel when a pool is supplied;
  // each body only touches its own node's slots, so no locking is needed.
  auto each_node = [&](const std::function<void(int)>& body) {
    if (pool != nullptr) {
      pool->ParallelFor(total_slots, body);
    } else {
      for (int i = 0; i < total_slots; ++i) body(i);
    }
  };

  // Reader phase: each source node packs its rows into per-target buffers.
  // target_buffers[src][dst] holds the bytes src sends to dst. Component
  // seconds are the *sum of per-node durations* — the cost model's B*λ
  // work metric — so serial and pooled runs meter the same quantity.
  std::vector<std::vector<std::vector<uint8_t>>> buffers(
      static_cast<size_t>(total_slots));
  for (auto& per_target : buffers) {
    per_target.resize(static_cast<size_t>(total_slots));
  }

  std::vector<DmsRunMetrics> node_m(static_cast<size_t>(total_slots));
  each_node([&](int src) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(src)];
    double t0 = NowSeconds();
    for (const Row& row : source_rows[static_cast<size_t>(src)]) {
      std::vector<int> targets;
      switch (kind) {
        case DmsOpKind::kShuffle:
          targets = {TargetNode(row, hash_ordinals)};
          break;
        case DmsOpKind::kPartitionMove:
        case DmsOpKind::kRemoteCopyToSingle:
          targets = {control_node()};
          break;
        case DmsOpKind::kControlNodeMove:
        case DmsOpKind::kBroadcastMove:
        case DmsOpKind::kReplicatedBroadcast:
          for (int i = 0; i < n; ++i) targets.push_back(i);
          break;
        case DmsOpKind::kTrimMove:
          // Keep only rows this node is responsible for; no network.
          if (TargetNode(row, hash_ordinals) == src) targets = {src};
          break;
      }
      for (int dst : targets) {
        size_t bytes = PackRow(
            row, &buffers[static_cast<size_t>(src)][static_cast<size_t>(dst)]);
        nm.reader.bytes += static_cast<double>(bytes);
      }
      nm.rows_moved += 1;
    }
    nm.reader.seconds += NowSeconds() - t0;
  });

  // Network phase: move buffers from source to target queues (local
  // deliveries are free — Trim moves never touch the network). Each target
  // drains its own inbound column of the buffer matrix.
  std::vector<std::vector<uint8_t>> inbound(static_cast<size_t>(total_slots));
  each_node([&](int dst) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    double t0 = NowSeconds();
    for (int src = 0; src < total_slots; ++src) {
      std::vector<uint8_t>& buf =
          buffers[static_cast<size_t>(src)][static_cast<size_t>(dst)];
      if (buf.empty()) continue;
      if (src != dst) nm.network.bytes += static_cast<double>(buf.size());
      std::vector<uint8_t>& q = inbound[static_cast<size_t>(dst)];
      q.insert(q.end(), buf.begin(), buf.end());
      buf.clear();
      buf.shrink_to_fit();
    }
    nm.network.seconds += NowSeconds() - t0;
  });

  // Writer phase: unpack rows on each target.
  std::vector<RowVector> unpacked(static_cast<size_t>(total_slots));
  std::vector<Status> node_status(static_cast<size_t>(total_slots));
  each_node([&](int dst) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    double t0 = NowSeconds();
    const std::vector<uint8_t>& buf = inbound[static_cast<size_t>(dst)];
    size_t offset = 0;
    while (offset < buf.size()) {
      auto row = UnpackRow(buf, &offset);
      if (!row.ok()) {
        node_status[static_cast<size_t>(dst)] = row.status();
        return;
      }
      unpacked[static_cast<size_t>(dst)].push_back(std::move(*row));
    }
    nm.writer.bytes += static_cast<double>(buf.size());
    nm.writer.seconds += NowSeconds() - t0;
  });
  for (const Status& s : node_status) {
    if (!s.ok()) return s;
  }

  // Bulk-copy phase: insert into the destination table storage (a copy,
  // like SQL Server's bulk insert materializing the temp table).
  std::vector<RowVector> result(static_cast<size_t>(total_slots));
  each_node([&](int dst) {
    DmsRunMetrics& nm = node_m[static_cast<size_t>(dst)];
    double t0 = NowSeconds();
    RowVector& out = result[static_cast<size_t>(dst)];
    out.reserve(unpacked[static_cast<size_t>(dst)].size());
    for (const Row& row : unpacked[static_cast<size_t>(dst)]) {
      nm.bulkcopy.bytes += static_cast<double>(RowWidth(row));
      out.push_back(row);
    }
    nm.bulkcopy.seconds += NowSeconds() - t0;
  });

  for (const DmsRunMetrics& nm : node_m) m->Accumulate(nm);
  m->wall_seconds += NowSeconds() - wall_start;

  // Fold this run's component meters into the process-wide registry.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Count("dms.executions");
  reg.Count("dms.rows_moved", m->rows_moved - before.rows_moved);
  reg.Count("dms.reader.bytes", m->reader.bytes - before.reader.bytes);
  reg.Count("dms.network.bytes", m->network.bytes - before.network.bytes);
  reg.Count("dms.writer.bytes", m->writer.bytes - before.writer.bytes);
  reg.Count("dms.bulkcopy.bytes", m->bulkcopy.bytes - before.bulkcopy.bytes);
  if (span.active()) {
    span.AddAttr("rows", m->rows_moved - before.rows_moved);
    span.AddAttr("network_bytes", m->network.bytes - before.network.bytes);
  }
  return result;
}

DmsCostParameters CalibrateCostModel(int rows_per_probe) {
  // Synthetic rows resembling a shuffled intermediate result.
  RowVector rows;
  rows.reserve(static_cast<size_t>(rows_per_probe));
  for (int i = 0; i < rows_per_probe; ++i) {
    rows.push_back(Row{Datum::Int(i), Datum::Double(i * 0.5),
                       Datum::Varchar("payload-" + std::to_string(i % 97)),
                       Datum::Date(9000 + (i % 1000))});
  }

  auto measure = [&](auto&& body) {
    double t0 = NowSeconds();
    double bytes = body();
    double dt = NowSeconds() - t0;
    return bytes > 0 ? dt / bytes : 0.0;
  };

  DmsCostParameters p;
  std::vector<int> hash_cols = {0};

  // Reader (direct): pack only.
  p.lambda_reader_direct = measure([&]() {
    std::vector<uint8_t> buf;
    double bytes = 0;
    for (const Row& r : rows) bytes += static_cast<double>(PackRow(r, &buf));
    return bytes;
  });
  // Reader (hash): pack + route hash.
  p.lambda_reader_hash = measure([&]() {
    std::vector<uint8_t> buf;
    double bytes = 0;
    size_t sink = 0;
    for (const Row& r : rows) {
      sink += HashRowColumns(r, hash_cols) % 8;
      bytes += static_cast<double>(PackRow(r, &buf));
    }
    // Keep `sink` alive.
    if (sink == static_cast<size_t>(-1)) bytes += 1;
    return bytes;
  });
  // Network: byte transfer between queues.
  {
    std::vector<uint8_t> buf;
    for (const Row& r : rows) PackRow(r, &buf);
    p.lambda_network = measure([&]() {
      std::vector<uint8_t> inbound;
      inbound.insert(inbound.end(), buf.begin(), buf.end());
      return static_cast<double>(inbound.size());
    });
    // A queue append under-represents a real network; scale to keep the
    // relative component ordering of the paper (network slower than
    // packing). The scale factor is part of the simulator's definition.
    p.lambda_network *= 8;
  }
  // Writer: unpack.
  {
    std::vector<uint8_t> buf;
    for (const Row& r : rows) PackRow(r, &buf);
    p.lambda_writer = measure([&]() {
      size_t offset = 0;
      int count = 0;
      while (offset < buf.size()) {
        auto r = UnpackRow(buf, &offset);
        if (!r.ok()) break;
        ++count;
      }
      return static_cast<double>(buf.size());
    });
  }
  // Bulk copy: row copy into destination storage, with the temp-table
  // materialization penalty that makes it the dominant component.
  p.lambda_bulkcopy = measure([&]() {
    RowVector dest;
    dest.reserve(rows.size());
    double bytes = 0;
    for (const Row& r : rows) {
      bytes += static_cast<double>(RowWidth(r));
      dest.push_back(r);
    }
    return bytes;
  });
  p.lambda_bulkcopy *= 6;  // temp-table materialization penalty

  // Calibration post-processing: hashing can never be cheaper than a
  // direct read; measurement noise at small probe sizes is clamped away.
  p.lambda_reader_hash =
      std::max(p.lambda_reader_hash, p.lambda_reader_direct * 1.05);
  return p;
}

}  // namespace pdw
