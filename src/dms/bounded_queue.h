#ifndef PDW_DMS_BOUNDED_QUEUE_H_
#define PDW_DMS_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace pdw {

/// A bounded FIFO connecting DMS pipeline stages. Producers feel
/// backpressure through TryPush/WaitNotFullFor (the pipeline's
/// push-with-help protocol never blocks a producer indefinitely);
/// consumers block in Pop until an item arrives or the queue is closed
/// and drained. All methods are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  /// Appends when there is room; returns false when full or closed
  /// (the backpressure signal — callers drain or wait, never spin).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until the queue has room, is closed, or `timeout` elapses.
  template <typename Rep, typename Period>
  void WaitNotFullFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait_for(lock, timeout, [this] {
      return closed_ || items_.size() < capacity_;
    });
  }

  /// Pops the oldest item; blocks until one arrives. Returns nullopt only
  /// when the queue is closed and fully drained.
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking Pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Marks the producer side done; pending items stay poppable, blocked
  /// producers and consumers wake.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// The abort path of a failed pipeline: closes the queue AND discards
  /// everything pending, so backpressured producers stop immediately
  /// (TryPush fails) and consumers drain to nullopt without processing
  /// doomed messages.
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      items_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace pdw

#endif  // PDW_DMS_BOUNDED_QUEUE_H_
