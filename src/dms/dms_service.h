#ifndef PDW_DMS_DMS_SERVICE_H_
#define PDW_DMS_DMS_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/thread_pool.h"
#include "dms/wire_format.h"
#include "pdw/cost_model.h"
#include "plan/distribution.h"

namespace pdw {

/// Observed bytes and wall time of one DMS component across a data
/// movement operation. The λ calibration divides seconds by bytes.
struct DmsComponentMetrics {
  double bytes = 0;
  double seconds = 0;
};

/// Metrics of a full DMS operation (per-component, summed over nodes).
struct DmsRunMetrics {
  DmsComponentMetrics reader;
  DmsComponentMetrics network;
  DmsComponentMetrics writer;
  DmsComponentMetrics bulkcopy;
  double rows_moved = 0;
  double wall_seconds = 0;
  /// Network bytes this query did NOT move because a step was adopted from
  /// another query's shared execution (sub-plan sharing): the leader's
  /// metered movement, credited here by the appliance's follower path so
  /// query-level accounting shows what isolation would have cost.
  double saved_bytes = 0;

  /// Folds another run's per-component meters (and wall time) into this.
  void Accumulate(const DmsRunMetrics& other);

  std::string ToString() const;
};

/// Default rows per columnar wire batch (see DmsExecOptions::batch_size).
/// Sized so that even an 8-way shuffle split leaves ~thousand-row
/// messages — per-message framing, queue handoff, and assembly overhead is
/// what erodes the columnar win as fan-out grows.
inline constexpr int kDmsWireBatchRows = 8192;

/// Knobs of one DMS execution.
struct DmsExecOptions {
  /// Wire encoding: the streaming columnar pipeline (default) or the
  /// legacy materialize-then-move row codec kept as the reference oracle.
  DmsCodec codec = DefaultDmsCodec();
  /// Rows per wire batch on the columnar path; 0 = kDmsWireBatchRows.
  /// Wire batches are deliberately larger than the engine's execution
  /// batches: movement cost is framing + memcpy, so bigger slices amortize
  /// per-message headers, queue handoffs, and assembly bookkeeping.
  int batch_size = 0;
  /// Bounded depth (in messages) of each destination's inbound queue —
  /// the pipeline's backpressure window. Deep enough that a full shuffle
  /// fan-in (every source sending this destination a slice of the same
  /// wire batch) fits without stalling readers; shallow enough to bound
  /// buffered bytes per destination.
  int queue_capacity = 32;
  /// Declared column types of the moved stream (the DMS step's destination
  /// temp-table schema). Empty = infer per source from the produced rows.
  std::vector<TypeId> types;
  /// Optional live progress feed: invoked as row chunks land on their
  /// destination with (rows, wire bytes) of that chunk — on the columnar
  /// path from concurrent pipeline workers mid-flight, on the legacy row
  /// path per destination during bulk copy. Must be thread-safe and cheap;
  /// feeds sys.dm_pdw_exec_requests' rows/bytes-moved-so-far columns. When
  /// the step is a *shared* leader execution, the appliance's callback also
  /// fans the same deltas out to every follower blocked on the step, so
  /// their DMV rows advance with the one physical move.
  std::function<void(double rows_delta, double bytes_delta)> progress;
  /// Cooperative cancellation token (owned by the session that issued the
  /// query). Checked at every queue push — including inside the
  /// backpressure wait, so a blocked producer unblocks — and per packed
  /// batch; when it flips, the movement aborts with StatusCode::kCancelled
  /// and the pipeline's normal failure path drains every queue.
  const std::atomic<bool>* cancel = nullptr;
  /// Cap on how many pipeline tasks (readers + writers) this movement may
  /// run concurrently on the shared pool — the workload manager's
  /// per-query thread budget. 0 = no cap beyond pool size. The calling
  /// thread still participates, so 1 degrades to the serial schedule
  /// rather than deadlocking.
  int max_workers = 0;
};

/// Produces one source node's rows for a pipelined movement — typically by
/// running the DSQL step's SQL on that node. Called exactly once, on a
/// pipeline worker, so production overlaps packing/transfer of nodes that
/// finished earlier.
using DmsProducer = std::function<Result<RowVector>()>;

/// The Data Movement Service simulator (Fig. 5). It reproduces the DMS
/// operator's source/target structure with real work per component:
///  * reader  — serialize rows into byte buffers (hashing for Shuffle/Trim);
///  * network — transfer buffers between per-node queues;
///  * writer  — deserialize buffers back into rows;
///  * bulkcopy— insert rows into the destination temp-table storage.
/// Per-component byte counts and timings are metered so the cost model's
/// λ constants can be calibrated against this substrate exactly as the
/// paper calibrates against hardware.
///
/// Two execution paths share those component semantics:
///  * the legacy row path materializes every phase before the next starts
///    and encodes one type tag per value (the paper's no-pipelining DMS);
///  * the columnar path streams ColumnBatch-sized wire messages through
///    bounded, backpressured per-destination queues, so reader/pack,
///    network and writer/unpack run concurrently on the shared pool and
///    movement overlaps production.
///
/// Thread safety: DmsService holds no mutable state, so concurrent
/// Execute calls (one per in-flight query) are safe as long as each call
/// gets its own `metrics` accumulator. Within one call, passing a
/// ThreadPool fans the per-node work out across nodes — the instances
/// really do run simultaneously, as in Fig. 5.
class DmsService {
 public:
  /// `num_compute_nodes` compute nodes; node index `num_compute_nodes`
  /// denotes the control node.
  explicit DmsService(int num_compute_nodes)
      : nodes_(num_compute_nodes) {}

  int num_compute_nodes() const { return nodes_; }
  int control_node() const { return nodes_; }

  /// Executes a data movement: `source_rows[i]` holds the rows produced by
  /// the step's SQL on node i (size num_compute_nodes + 1; the last slot
  /// is the control node). Returns the rows landing on each node (same
  /// indexing). `hash_ordinals` drive Shuffle/Trim routing. A non-null
  /// `pool` runs the per-node work in parallel across nodes (component
  /// seconds then sum per-node durations, as in the serial loop); null
  /// keeps the deterministic serial schedule. `options.codec` picks the
  /// wire path; the columnar default routes through ExecutePipelined.
  Result<std::vector<RowVector>> Execute(DmsOpKind kind,
                                         std::vector<RowVector> source_rows,
                                         const std::vector<int>& hash_ordinals,
                                         DmsRunMetrics* metrics = nullptr,
                                         ThreadPool* pool = nullptr,
                                         const DmsExecOptions& options = {});

  /// The streaming columnar pipeline. `producers[i]` (size
  /// num_compute_nodes + 1, null entries = no source on that node) runs on
  /// a pipeline worker and feeds its rows straight into the reader stage:
  /// rows are sliced into ColumnBatches, hash-routed column-at-a-time
  /// (Shuffle/Trim), packed with the columnar wire codec, and pushed into
  /// the destination's bounded inbound queue; destination workers unpack
  /// and bulk-copy concurrently. Backpressure: a producer that finds a
  /// queue full first tries to drain that destination itself (so progress
  /// never depends on free pool capacity — no deadlock under any pool
  /// size), else waits briefly. Per-slot result rows are assembled in
  /// deterministic (source, sequence) order.
  Result<std::vector<RowVector>> ExecutePipelined(
      DmsOpKind kind, std::vector<DmsProducer> producers,
      const std::vector<int>& hash_ordinals, DmsRunMetrics* metrics = nullptr,
      ThreadPool* pool = nullptr, const DmsExecOptions& options = {});

  /// Hash routing used for both table loads and shuffles, so collocated
  /// joins really are collocated. HashPartitionBatch is the vectorized
  /// equivalent; both chain per-column value hashes through MixColumnHash.
  int TargetNode(const Row& row, const std::vector<int>& hash_ordinals) const {
    return static_cast<int>(HashRowColumns(row, hash_ordinals) %
                            static_cast<size_t>(nodes_));
  }

 private:
  Result<std::vector<RowVector>> ExecuteRowCodec(
      DmsOpKind kind, std::vector<RowVector> source_rows,
      const std::vector<int>& hash_ordinals, DmsRunMetrics* metrics,
      ThreadPool* pool, const DmsExecOptions& options);

  int nodes_;
};

/// Runs targeted micro-measurements against the simulator's component
/// implementations and fits the per-byte λ constants (§3.3.3 "cost
/// calibration"). `rows_per_probe` controls measurement size; `codec`
/// selects which wire path's work is measured (default: the process-wide
/// codec, so costing matches what execution actually does).
DmsCostParameters CalibrateCostModel(int rows_per_probe = 20000,
                                     DmsCodec codec = DefaultDmsCodec());

}  // namespace pdw

#endif  // PDW_DMS_DMS_SERVICE_H_
