#ifndef PDW_DMS_DMS_SERVICE_H_
#define PDW_DMS_DMS_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/thread_pool.h"
#include "pdw/cost_model.h"
#include "plan/distribution.h"

namespace pdw {

/// Observed bytes and wall time of one DMS component across a data
/// movement operation. The λ calibration divides seconds by bytes.
struct DmsComponentMetrics {
  double bytes = 0;
  double seconds = 0;
};

/// Metrics of a full DMS operation (per-component, summed over nodes).
struct DmsRunMetrics {
  DmsComponentMetrics reader;
  DmsComponentMetrics network;
  DmsComponentMetrics writer;
  DmsComponentMetrics bulkcopy;
  double rows_moved = 0;
  double wall_seconds = 0;

  /// Folds another run's per-component meters (and wall time) into this.
  void Accumulate(const DmsRunMetrics& other);

  std::string ToString() const;
};

/// The Data Movement Service simulator (Fig. 5). It reproduces the DMS
/// operator's source/target structure with real work per component:
///  * reader  — serialize rows into byte buffers (hashing for Shuffle/Trim);
///  * network — transfer buffers between per-node queues;
///  * writer  — deserialize buffers back into rows;
///  * bulkcopy— insert rows into the destination temp-table storage.
/// Per-component byte counts and timings are metered so the cost model's
/// λ constants can be calibrated against this substrate exactly as the
/// paper calibrates against hardware.
///
/// Thread safety: DmsService holds no mutable state, so concurrent
/// Execute calls (one per in-flight query) are safe as long as each call
/// gets its own `metrics` accumulator. Within one call, passing a
/// ThreadPool fans the per-node reader/writer/bulk-copy work out across
/// nodes — the instances really do run simultaneously, as in Fig. 5.
class DmsService {
 public:
  /// `num_compute_nodes` compute nodes; node index `num_compute_nodes`
  /// denotes the control node.
  explicit DmsService(int num_compute_nodes)
      : nodes_(num_compute_nodes) {}

  int num_compute_nodes() const { return nodes_; }
  int control_node() const { return nodes_; }

  /// Executes a data movement: `source_rows[i]` holds the rows produced by
  /// the step's SQL on node i (size num_compute_nodes + 1; the last slot
  /// is the control node). Returns the rows landing on each node (same
  /// indexing). `hash_ordinals` drive Shuffle/Trim routing. A non-null
  /// `pool` runs each phase's per-node work in parallel across nodes
  /// (component seconds then sum per-node durations, as in the serial
  /// loop); null keeps the deterministic serial schedule.
  Result<std::vector<RowVector>> Execute(DmsOpKind kind,
                                         std::vector<RowVector> source_rows,
                                         const std::vector<int>& hash_ordinals,
                                         DmsRunMetrics* metrics = nullptr,
                                         ThreadPool* pool = nullptr);

  /// Hash routing used for both table loads and shuffles, so collocated
  /// joins really are collocated.
  int TargetNode(const Row& row, const std::vector<int>& hash_ordinals) const {
    return static_cast<int>(HashRowColumns(row, hash_ordinals) %
                            static_cast<size_t>(nodes_));
  }

 private:
  int nodes_;
};

/// Serializes a row into `buffer` (the reader's packing work); returns the
/// encoded size in bytes.
size_t PackRow(const Row& row, std::vector<uint8_t>* buffer);

/// Inverse of PackRow; reads one row starting at `offset`, advancing it.
Result<Row> UnpackRow(const std::vector<uint8_t>& buffer, size_t* offset);

/// Runs targeted micro-measurements against the simulator's component
/// implementations and fits the per-byte λ constants (§3.3.3 "cost
/// calibration"). `rows_per_probe` controls measurement size.
DmsCostParameters CalibrateCostModel(int rows_per_probe = 20000);

}  // namespace pdw

#endif  // PDW_DMS_DMS_SERVICE_H_
