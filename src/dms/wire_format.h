#ifndef PDW_DMS_WIRE_FORMAT_H_
#define PDW_DMS_WIRE_FORMAT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "engine/batch.h"

namespace pdw {

/// Encoding DMS puts on the wire between nodes.
///  * kRow      — the legacy per-Datum tagged encoding (one type tag per
///                value, one arity prefix per row). Kept as the reference
///                oracle for the columnar codec.
///  * kColumnar — one type tag + null bitmap per column per batch;
///                fixed-width columns travel as contiguous value planes,
///                varchars as a length array + blob. Cuts per-value framing
///                overhead and turns pack/unpack into bulk memcpy work.
enum class DmsCodec : uint8_t { kRow, kColumnar };

const char* DmsCodecToString(DmsCodec codec);

/// Process default, read once from PDW_DMS_CODEC ("row" or "columnar");
/// unset/unrecognized means kColumnar.
DmsCodec DefaultDmsCodec();

/// Largest varchar either codec can carry: length fields on the wire are
/// 32-bit. PackRow/PackBatch reject longer strings instead of silently
/// truncating the length and corrupting the stream.
inline constexpr size_t kDmsMaxVarcharBytes = UINT32_MAX;

/// Shared varchar guard of both codecs' writers; kept separately callable
/// so the boundary is testable without allocating a 4 GiB string.
Status ValidateWireString(size_t length);

// --- legacy row codec (the reference oracle) ---

/// Serializes one Datum as [u8 type tag][payload]; NULL is tag-only.
Result<size_t> PackDatum(const Datum& d, std::vector<uint8_t>* buffer);

/// Inverse of PackDatum; reads one value starting at `offset`, advancing
/// it. Fails cleanly on truncated input or an unknown type tag.
Result<Datum> UnpackDatum(const std::vector<uint8_t>& buffer, size_t* offset);

/// Serializes a row into `buffer` (u16 arity + per-Datum tagged cells);
/// returns the encoded size in bytes.
Result<size_t> PackRow(const Row& row, std::vector<uint8_t>* buffer);

/// Inverse of PackRow; reads one row starting at `offset`, advancing it.
Result<Row> UnpackRow(const std::vector<uint8_t>& buffer, size_t* offset);

// --- columnar batch codec ---

/// Serializes a ColumnBatch column-at-a-time:
///   [u32 rows][u16 cols] then per column
///   [u8 declared TypeId][u8 flags][bit-packed null bitmap when flagged]
///   [value plane: bytes/int32s/int64s/doubles memcpy'd, or u32 length
///    array + string blob, or per-Datum tagged cells for variant columns].
/// Returns the encoded size appended to `buffer`.
Result<size_t> PackBatch(const ColumnBatch& batch,
                         std::vector<uint8_t>* buffer);

/// PackBatch of only the selected rows, in selection order — the shuffle
/// hot path packs each destination's slice straight from the shared source
/// batch, with no per-destination gather materialization. The wire bytes
/// are exactly those of packing GatherBatch(batch, sel).
Result<size_t> PackBatchSelected(const ColumnBatch& batch, const SelVector& sel,
                                 std::vector<uint8_t>* buffer);

/// Packs rows[begin, end) straight from row storage into the columnar wire
/// format — the DMS send-side fast path, one column-at-a-time pass with no
/// intermediate ColumnBatch materialization. `types` declares one TypeId
/// per column (kInvalid = all-NULL); a column whose non-NULL cells diverge
/// from the declared type travels as a variant column. The wire bytes are
/// identical to building a ColumnBatch of those rows and PackBatch-ing it.
Result<size_t> PackRowsColumnar(const RowVector& rows, size_t begin, size_t end,
                                const std::vector<TypeId>& types,
                                std::vector<uint8_t>* buffer);

/// PackRowsColumnar of the selected rows (absolute indices into `rows`),
/// in selection order.
Result<size_t> PackRowsColumnarSelected(const RowVector& rows,
                                        const SelVector& sel,
                                        const std::vector<TypeId>& types,
                                        std::vector<uint8_t>* buffer);

/// HashPartitionBatch's row-storage twin: hashes key columns of
/// rows[begin, end) column-at-a-time and scatters *absolute* row indices
/// into one selection vector per destination. Same MixColumnHash chain —
/// agrees with TargetNode for every type and NULL.
void HashPartitionRows(const RowVector& rows, size_t begin, size_t end,
                       const std::vector<int>& hash_ordinals, int num_nodes,
                       std::vector<SelVector>* out);

/// Inverse of PackBatch; reads one batch starting at `offset`, advancing
/// it. Fails cleanly on truncation or malformed headers.
Result<ColumnBatch> UnpackBatch(const std::vector<uint8_t>& buffer,
                                size_t* offset);

/// UnpackBatch straight into row storage — the DMS receive-side fast path,
/// appending the decoded rows to `out` with no intermediate ColumnBatch.
/// Returns the number of rows appended; identical decode semantics and
/// error cases as UnpackBatch + MoveBatchToRows.
Result<size_t> UnpackBatchToRows(const std::vector<uint8_t>& buffer,
                                 size_t* offset, RowVector* out);

/// Vectorized shuffle routing: hashes the key columns `hash_ordinals` of
/// every row of `batch` column-at-a-time (ColumnVector::HashAt chained
/// through MixColumnHash, exactly the HashRowColumns recipe) and scatters
/// row indices into one selection vector per destination node. Guaranteed
/// to agree with DmsService::TargetNode for every type and NULL.
void HashPartitionBatch(const ColumnBatch& batch,
                        const std::vector<int>& hash_ordinals, int num_nodes,
                        std::vector<SelVector>* out);

/// Declared type of each column, inferred from the first non-NULL cell of
/// each column across `rows` (kInvalid for all-NULL columns). The DMS
/// pipeline uses this when the caller has no destination schema.
std::vector<TypeId> InferRowTypes(const RowVector& rows);

}  // namespace pdw

#endif  // PDW_DMS_WIRE_FORMAT_H_
