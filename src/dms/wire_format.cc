#include "dms/wire_format.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>

namespace pdw {

namespace {

void AppendBytes(const void* data, size_t n, std::vector<uint8_t>* buffer) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer->insert(buffer->end(), p, p + n);
}

Status ReadBytes(const std::vector<uint8_t>& buffer, size_t* offset, void* out,
                 size_t n) {
  if (*offset + n > buffer.size()) {
    return Status::Internal("DMS buffer underrun");
  }
  std::memcpy(out, buffer.data() + *offset, n);
  *offset += n;
  return Status::OK();
}

// Column flags of the batch codec.
constexpr uint8_t kFlagHasNulls = 1;
constexpr uint8_t kFlagVariant = 2;

}  // namespace

const char* DmsCodecToString(DmsCodec codec) {
  return codec == DmsCodec::kRow ? "row" : "columnar";
}

DmsCodec DefaultDmsCodec() {
  static const DmsCodec kCodec = [] {
    const char* env = std::getenv("PDW_DMS_CODEC");
    if (env != nullptr && std::strcmp(env, "row") == 0) return DmsCodec::kRow;
    return DmsCodec::kColumnar;
  }();
  return kCodec;
}

Status ValidateWireString(size_t length) {
  if (length > kDmsMaxVarcharBytes) {
    return Status::InvalidArgument(
        "DMS wire format: varchar exceeds 32-bit length limit");
  }
  return Status::OK();
}

Result<size_t> PackDatum(const Datum& d, std::vector<uint8_t>* buffer) {
  size_t start = buffer->size();
  uint8_t tag = static_cast<uint8_t>(d.type());
  AppendBytes(&tag, 1, buffer);
  switch (d.type()) {
    case TypeId::kInvalid:
      break;  // NULL: tag only
    case TypeId::kBool: {
      uint8_t v = d.bool_value() ? 1 : 0;
      AppendBytes(&v, 1, buffer);
      break;
    }
    case TypeId::kInt: {
      int64_t v = d.int_value();
      AppendBytes(&v, sizeof(v), buffer);
      break;
    }
    case TypeId::kDate: {
      int32_t v = d.date_value();
      AppendBytes(&v, sizeof(v), buffer);
      break;
    }
    case TypeId::kDouble: {
      double v = d.double_value();
      AppendBytes(&v, sizeof(v), buffer);
      break;
    }
    case TypeId::kVarchar: {
      const std::string& s = d.string_value();
      PDW_RETURN_NOT_OK(ValidateWireString(s.size()));
      uint32_t len = static_cast<uint32_t>(s.size());
      AppendBytes(&len, sizeof(len), buffer);
      AppendBytes(s.data(), s.size(), buffer);
      break;
    }
  }
  return buffer->size() - start;
}

Result<Datum> UnpackDatum(const std::vector<uint8_t>& buffer, size_t* offset) {
  uint8_t tag = 0;
  PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &tag, 1));
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kInvalid:
      return Datum::Null();
    case TypeId::kBool: {
      uint8_t v = 0;
      PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &v, 1));
      return Datum::Bool(v != 0);
    }
    case TypeId::kInt: {
      int64_t v = 0;
      PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &v, sizeof(v)));
      return Datum::Int(v);
    }
    case TypeId::kDate: {
      int32_t v = 0;
      PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &v, sizeof(v)));
      return Datum::Date(v);
    }
    case TypeId::kDouble: {
      double v = 0;
      PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &v, sizeof(v)));
      return Datum::Double(v);
    }
    case TypeId::kVarchar: {
      uint32_t len = 0;
      PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &len, sizeof(len)));
      if (*offset + len > buffer.size()) {
        return Status::Internal("DMS buffer underrun (string)");
      }
      Datum d = Datum::Varchar(std::string(
          reinterpret_cast<const char*>(buffer.data() + *offset), len));
      *offset += len;
      return d;
    }
    default:
      return Status::Internal("DMS buffer: bad type tag");
  }
}

Result<size_t> PackRow(const Row& row, std::vector<uint8_t>* buffer) {
  size_t start = buffer->size();
  uint16_t arity = static_cast<uint16_t>(row.size());
  AppendBytes(&arity, sizeof(arity), buffer);
  for (const Datum& d : row) {
    PDW_RETURN_NOT_OK(PackDatum(d, buffer).status());
  }
  return buffer->size() - start;
}

Result<Row> UnpackRow(const std::vector<uint8_t>& buffer, size_t* offset) {
  uint16_t arity = 0;
  PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &arity, sizeof(arity)));
  Row row;
  row.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    PDW_ASSIGN_OR_RETURN(Datum d, UnpackDatum(buffer, offset));
    row.push_back(std::move(d));
  }
  return row;
}

namespace {

/// Shared core of PackBatch / PackBatchSelected: packs `n` rows of `batch`,
/// row i being sel[i] (or i itself when sel is null). The wire bytes are
/// identical to packing a dense copy of those rows.
Result<size_t> PackBatchCore(const ColumnBatch& batch, const int32_t* sel,
                             size_t n, std::vector<uint8_t>* buffer) {
  size_t start = buffer->size();
  uint32_t rows = static_cast<uint32_t>(n);
  uint16_t cols = static_cast<uint16_t>(batch.columns.size());
  AppendBytes(&rows, sizeof(rows), buffer);
  AppendBytes(&cols, sizeof(cols), buffer);
  auto row_at = [&](size_t i) {
    return sel != nullptr ? static_cast<size_t>(sel[i]) : i;
  };
  for (const ColumnVector& col : batch.columns) {
    uint8_t tag = static_cast<uint8_t>(col.declared_type());
    uint8_t flags = 0;
    const std::vector<uint8_t>& nulls = col.nulls();
    bool has_nulls = false;
    for (size_t i = 0; i < n; ++i) {
      if (nulls[row_at(i)] != 0) {
        has_nulls = true;
        break;
      }
    }
    bool variant = col.tag() == VecTag::kVariant;
    if (has_nulls && !variant) flags |= kFlagHasNulls;
    if (variant) flags |= kFlagVariant;
    AppendBytes(&tag, 1, buffer);
    AppendBytes(&flags, 1, buffer);
    if (variant) {
      // Exact-value escape hatch: per-Datum tagged cells (NULL rows travel
      // as the kInvalid tag, so no separate bitmap is needed).
      for (size_t i = 0; i < n; ++i) {
        PDW_RETURN_NOT_OK(PackDatum(col.GetDatum(row_at(i)), buffer).status());
      }
      continue;
    }
    if (has_nulls) {
      size_t bitmap_bytes = (n + 7) / 8;
      size_t at = buffer->size();
      buffer->resize(at + bitmap_bytes, 0);
      for (size_t i = 0; i < n; ++i) {
        if (nulls[row_at(i)] != 0) {
          (*buffer)[at + i / 8] |= uint8_t(1u << (i % 8));
        }
      }
    }
    switch (col.tag()) {
      case VecTag::kInt64:
        if (col.declared_type() == TypeId::kBool) {
          const int64_t* v = col.i64_data();
          size_t at = buffer->size();
          buffer->resize(at + n);
          for (size_t i = 0; i < n; ++i) {
            (*buffer)[at + i] = v[row_at(i)] != 0 ? 1 : 0;
          }
        } else if (col.declared_type() == TypeId::kDate) {
          const int64_t* v = col.i64_data();
          size_t at = buffer->size();
          buffer->resize(at + n * sizeof(int32_t));
          auto* out = reinterpret_cast<int32_t*>(buffer->data() + at);
          for (size_t i = 0; i < n; ++i) {
            out[i] = static_cast<int32_t>(v[row_at(i)]);
          }
        } else if (sel == nullptr) {
          AppendBytes(col.i64_data(), n * sizeof(int64_t), buffer);
        } else {
          const int64_t* v = col.i64_data();
          size_t at = buffer->size();
          buffer->resize(at + n * sizeof(int64_t));
          auto* out = reinterpret_cast<int64_t*>(buffer->data() + at);
          for (size_t i = 0; i < n; ++i) out[i] = v[static_cast<size_t>(sel[i])];
        }
        break;
      case VecTag::kDouble:
        if (sel == nullptr) {
          AppendBytes(col.f64_data(), n * sizeof(double), buffer);
        } else {
          const double* v = col.f64_data();
          size_t at = buffer->size();
          buffer->resize(at + n * sizeof(double));
          auto* out = reinterpret_cast<double*>(buffer->data() + at);
          for (size_t i = 0; i < n; ++i) out[i] = v[static_cast<size_t>(sel[i])];
        }
        break;
      case VecTag::kString: {
        size_t at = buffer->size();
        buffer->resize(at + n * sizeof(uint32_t));
        size_t blob = 0;
        {
          auto* lens = reinterpret_cast<uint32_t*>(buffer->data() + at);
          for (size_t i = 0; i < n; ++i) {
            const std::string& s = col.str(row_at(i));
            PDW_RETURN_NOT_OK(ValidateWireString(s.size()));
            lens[i] = static_cast<uint32_t>(s.size());
            blob += s.size();
          }
        }
        size_t blob_at = buffer->size();
        buffer->resize(blob_at + blob);
        for (size_t i = 0; i < n; ++i) {
          const std::string& s = col.str(row_at(i));
          std::memcpy(buffer->data() + blob_at, s.data(), s.size());
          blob_at += s.size();
        }
        break;
      }
      case VecTag::kVariant:
        break;  // handled above
    }
  }
  return buffer->size() - start;
}

}  // namespace

Result<size_t> PackBatch(const ColumnBatch& batch,
                         std::vector<uint8_t>* buffer) {
  return PackBatchCore(batch, nullptr, batch.rows, buffer);
}

Result<size_t> PackBatchSelected(const ColumnBatch& batch, const SelVector& sel,
                                 std::vector<uint8_t>* buffer) {
  return PackBatchCore(batch, sel.data(), sel.size(), buffer);
}

namespace {

/// Shared core of PackRowsColumnar / ...Selected: packs `n` rows, the i-th
/// being rows[row_at(i)], column-at-a-time. Produces exactly the bytes
/// PackBatch would for a ColumnBatch built from those rows.
template <typename RowAt>
Result<size_t> PackRowsCore(const RowVector& rows, size_t n, RowAt row_at,
                            const std::vector<TypeId>& types,
                            std::vector<uint8_t>* buffer) {
  size_t start = buffer->size();
  // Reserve the fixed-width footprint up front (header + per-column tag,
  // bitmap, and value plane; varchar blobs grow beyond this) so the pack
  // loops don't pay incremental realloc copies.
  size_t estimate = start + sizeof(uint32_t) + sizeof(uint16_t);
  for (TypeId t : types) {
    size_t width = t == TypeId::kBool     ? 1
                   : t == TypeId::kDate   ? sizeof(int32_t)
                   : t == TypeId::kInvalid ? 0
                                           : sizeof(int64_t);
    estimate += 2 + (n + 7) / 8 + n * width;
  }
  buffer->reserve(estimate);
  uint32_t rows32 = static_cast<uint32_t>(n);
  uint16_t cols = static_cast<uint16_t>(types.size());
  AppendBytes(&rows32, sizeof(rows32), buffer);
  AppendBytes(&cols, sizeof(cols), buffer);
  for (size_t c = 0; c < types.size(); ++c) {
    TypeId declared = types[c];
    // Pre-scan: nullability and whether every non-NULL cell matches the
    // declared type (a CASE mixing INT/DOUBLE branches degrades the column
    // to the variant encoding — correctness never depends on the schema).
    bool has_nulls = false;
    bool variant = false;
    for (size_t i = 0; i < n; ++i) {
      const Datum& d = rows[row_at(i)][c];
      if (d.is_null()) {
        has_nulls = true;
      } else if (d.type() != declared) {
        variant = true;
        break;
      }
    }
    uint8_t tag = static_cast<uint8_t>(declared);
    uint8_t flags = 0;
    if (variant) {
      flags |= kFlagVariant;
    } else if (has_nulls) {
      flags |= kFlagHasNulls;
    }
    AppendBytes(&tag, 1, buffer);
    AppendBytes(&flags, 1, buffer);
    if (variant) {
      for (size_t i = 0; i < n; ++i) {
        PDW_RETURN_NOT_OK(PackDatum(rows[row_at(i)][c], buffer).status());
      }
      continue;
    }
    if (has_nulls) {
      size_t bitmap_bytes = (n + 7) / 8;
      size_t at = buffer->size();
      buffer->resize(at + bitmap_bytes, 0);
      for (size_t i = 0; i < n; ++i) {
        if (rows[row_at(i)][c].is_null()) {
          (*buffer)[at + i / 8] |= uint8_t(1u << (i % 8));
        }
      }
    }
    switch (declared) {
      case TypeId::kBool: {
        size_t at = buffer->size();
        buffer->resize(at + n);
        for (size_t i = 0; i < n; ++i) {
          const Datum& d = rows[row_at(i)][c];
          (*buffer)[at + i] = !d.is_null() && d.bool_value() ? 1 : 0;
        }
        break;
      }
      case TypeId::kDate: {
        size_t at = buffer->size();
        buffer->resize(at + n * sizeof(int32_t));
        auto* out = reinterpret_cast<int32_t*>(buffer->data() + at);
        for (size_t i = 0; i < n; ++i) {
          const Datum& d = rows[row_at(i)][c];
          out[i] = d.is_null() ? 0 : d.date_value();
        }
        break;
      }
      case TypeId::kInt: {
        size_t at = buffer->size();
        buffer->resize(at + n * sizeof(int64_t));
        auto* out = reinterpret_cast<int64_t*>(buffer->data() + at);
        for (size_t i = 0; i < n; ++i) {
          const Datum& d = rows[row_at(i)][c];
          out[i] = d.is_null() ? 0 : d.int_value();
        }
        break;
      }
      case TypeId::kDouble: {
        size_t at = buffer->size();
        buffer->resize(at + n * sizeof(double));
        auto* out = reinterpret_cast<double*>(buffer->data() + at);
        for (size_t i = 0; i < n; ++i) {
          const Datum& d = rows[row_at(i)][c];
          out[i] = d.is_null() ? 0 : d.double_value();
        }
        break;
      }
      case TypeId::kVarchar: {
        size_t at = buffer->size();
        buffer->resize(at + n * sizeof(uint32_t));
        size_t blob = 0;
        {
          auto* lens = reinterpret_cast<uint32_t*>(buffer->data() + at);
          for (size_t i = 0; i < n; ++i) {
            const Datum& d = rows[row_at(i)][c];
            size_t len = d.is_null() ? 0 : d.string_value().size();
            PDW_RETURN_NOT_OK(ValidateWireString(len));
            lens[i] = static_cast<uint32_t>(len);
            blob += len;
          }
        }
        size_t blob_at = buffer->size();
        buffer->resize(blob_at + blob);
        for (size_t i = 0; i < n; ++i) {
          const Datum& d = rows[row_at(i)][c];
          if (d.is_null()) continue;
          const std::string& s = d.string_value();
          std::memcpy(buffer->data() + blob_at, s.data(), s.size());
          blob_at += s.size();
        }
        break;
      }
      case TypeId::kInvalid:
        break;  // all-NULL column: the bitmap alone carries it
    }
  }
  return buffer->size() - start;
}

}  // namespace

Result<size_t> PackRowsColumnar(const RowVector& rows, size_t begin,
                                size_t end, const std::vector<TypeId>& types,
                                std::vector<uint8_t>* buffer) {
  return PackRowsCore(
      rows, end - begin, [begin](size_t i) { return begin + i; }, types,
      buffer);
}

Result<size_t> PackRowsColumnarSelected(const RowVector& rows,
                                        const SelVector& sel,
                                        const std::vector<TypeId>& types,
                                        std::vector<uint8_t>* buffer) {
  const int32_t* s = sel.data();
  return PackRowsCore(
      rows, sel.size(), [s](size_t i) { return static_cast<size_t>(s[i]); },
      types, buffer);
}

void HashPartitionRows(const RowVector& rows, size_t begin, size_t end,
                       const std::vector<int>& hash_ordinals, int num_nodes,
                       std::vector<SelVector>* out) {
  out->assign(static_cast<size_t>(num_nodes), SelVector{});
  if (end <= begin || num_nodes <= 0) return;
  size_t n = end - begin;
  if (num_nodes == 1) {
    SelVector& all = (*out)[0];
    all.resize(n);
    for (size_t i = 0; i < n; ++i) all[i] = static_cast<int32_t>(begin + i);
    return;
  }
  // Column-at-a-time over the flat hash array — the HashRowColumns recipe
  // with the column loop hoisted outside the row loop.
  std::vector<size_t> hashes(n, kRowHashSeed);
  for (int ord : hash_ordinals) {
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = MixColumnHash(
          hashes[i], rows[begin + i][static_cast<size_t>(ord)].Hash());
    }
  }
  // Count-then-scatter: sized destinations avoid push_back regrowth.
  std::vector<size_t> counts(static_cast<size_t>(num_nodes), 0);
  for (size_t i = 0; i < n; ++i) {
    hashes[i] %= static_cast<size_t>(num_nodes);
    ++counts[hashes[i]];
  }
  for (int d = 0; d < num_nodes; ++d) {
    (*out)[static_cast<size_t>(d)].reserve(counts[static_cast<size_t>(d)]);
  }
  for (size_t i = 0; i < n; ++i) {
    (*out)[hashes[i]].push_back(static_cast<int32_t>(begin + i));
  }
}

Result<ColumnBatch> UnpackBatch(const std::vector<uint8_t>& buffer,
                                size_t* offset) {
  uint32_t rows = 0;
  uint16_t cols = 0;
  PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &rows, sizeof(rows)));
  PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &cols, sizeof(cols)));
  ColumnBatch batch;
  batch.rows = rows;
  batch.columns.reserve(cols);
  std::vector<uint8_t> null_bytes;  // byte-per-row scratch, reused per column
  for (uint16_t c = 0; c < cols; ++c) {
    uint8_t tag = 0;
    uint8_t flags = 0;
    PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &tag, 1));
    PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &flags, 1));
    if (tag > static_cast<uint8_t>(TypeId::kDate)) {
      return Status::Internal("DMS batch: bad column type tag");
    }
    TypeId declared = static_cast<TypeId>(tag);
    ColumnVector col(declared);
    col.Reserve(rows);
    if ((flags & kFlagVariant) != 0) {
      for (uint32_t r = 0; r < rows; ++r) {
        PDW_ASSIGN_OR_RETURN(Datum d, UnpackDatum(buffer, offset));
        col.Append(d);
      }
      batch.columns.push_back(std::move(col));
      continue;
    }
    bool has_nulls = (flags & kFlagHasNulls) != 0;
    null_bytes.assign(rows, 0);
    if (has_nulls) {
      size_t bitmap_bytes = (static_cast<size_t>(rows) + 7) / 8;
      if (*offset + bitmap_bytes > buffer.size()) {
        return Status::Internal("DMS buffer underrun (null bitmap)");
      }
      const uint8_t* bitmap = buffer.data() + *offset;
      *offset += bitmap_bytes;
      for (uint32_t r = 0; r < rows; ++r) {
        null_bytes[r] = (bitmap[r / 8] >> (r % 8)) & 1;
      }
    }
    const uint8_t* null_ptr = has_nulls ? null_bytes.data() : nullptr;
    switch (VecTagForType(declared)) {
      case VecTag::kInt64:
        if (declared == TypeId::kBool) {
          if (*offset + rows > buffer.size()) {
            return Status::Internal("DMS buffer underrun (bool plane)");
          }
          const uint8_t* v = buffer.data() + *offset;
          *offset += rows;
          for (uint32_t r = 0; r < rows; ++r) {
            if (null_ptr != nullptr && null_ptr[r] != 0) {
              col.AppendNull();
            } else {
              col.AppendI64(v[r] != 0 ? 1 : 0);
            }
          }
        } else if (declared == TypeId::kDate) {
          size_t plane = static_cast<size_t>(rows) * sizeof(int32_t);
          if (*offset + plane > buffer.size()) {
            return Status::Internal("DMS buffer underrun (date plane)");
          }
          const auto* v =
              reinterpret_cast<const int32_t*>(buffer.data() + *offset);
          *offset += plane;
          for (uint32_t r = 0; r < rows; ++r) {
            if (null_ptr != nullptr && null_ptr[r] != 0) {
              col.AppendNull();
            } else {
              col.AppendI64(v[r]);
            }
          }
        } else {
          size_t plane = static_cast<size_t>(rows) * sizeof(int64_t);
          if (*offset + plane > buffer.size()) {
            return Status::Internal("DMS buffer underrun (int plane)");
          }
          col.AppendI64Bulk(
              reinterpret_cast<const int64_t*>(buffer.data() + *offset),
              null_ptr, rows);
          *offset += plane;
        }
        break;
      case VecTag::kDouble: {
        size_t plane = static_cast<size_t>(rows) * sizeof(double);
        if (*offset + plane > buffer.size()) {
          return Status::Internal("DMS buffer underrun (double plane)");
        }
        col.AppendF64Bulk(
            reinterpret_cast<const double*>(buffer.data() + *offset), null_ptr,
            rows);
        *offset += plane;
        break;
      }
      case VecTag::kString: {
        size_t lens_bytes = static_cast<size_t>(rows) * sizeof(uint32_t);
        if (*offset + lens_bytes > buffer.size()) {
          return Status::Internal("DMS buffer underrun (varchar lengths)");
        }
        const auto* lens =
            reinterpret_cast<const uint32_t*>(buffer.data() + *offset);
        *offset += lens_bytes;
        for (uint32_t r = 0; r < rows; ++r) {
          if (*offset + lens[r] > buffer.size()) {
            return Status::Internal("DMS buffer underrun (varchar blob)");
          }
          if (null_ptr != nullptr && null_ptr[r] != 0) {
            if (lens[r] != 0) {
              return Status::Internal("DMS batch: NULL varchar with payload");
            }
            col.AppendNull();
          } else {
            col.AppendString(std::string(
                reinterpret_cast<const char*>(buffer.data() + *offset),
                lens[r]));
          }
          *offset += lens[r];
        }
        break;
      }
      case VecTag::kVariant:
        // Non-variant flag with a variant-only declared type (kInvalid):
        // an all-NULL column; materialize from the bitmap alone.
        for (uint32_t r = 0; r < rows; ++r) {
          if (null_ptr != nullptr && null_ptr[r] != 0) {
            col.AppendNull();
          } else {
            return Status::Internal("DMS batch: typeless non-NULL column");
          }
        }
        break;
    }
    batch.columns.push_back(std::move(col));
  }
  return batch;
}

Result<size_t> UnpackBatchToRows(const std::vector<uint8_t>& buffer,
                                 size_t* offset, RowVector* out) {
  uint32_t rows = 0;
  uint16_t cols = 0;
  PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &rows, sizeof(rows)));
  PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &cols, sizeof(cols)));
  size_t base = out->size();
  out->resize(base + rows, Row(cols));  // cells start NULL
  Row* dest = out->data() + base;
  std::vector<uint8_t> null_bytes;  // byte-per-row scratch, reused per column
  for (uint16_t c = 0; c < cols; ++c) {
    uint8_t tag = 0;
    uint8_t flags = 0;
    PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &tag, 1));
    PDW_RETURN_NOT_OK(ReadBytes(buffer, offset, &flags, 1));
    if (tag > static_cast<uint8_t>(TypeId::kDate)) {
      return Status::Internal("DMS batch: bad column type tag");
    }
    TypeId declared = static_cast<TypeId>(tag);
    if ((flags & kFlagVariant) != 0) {
      for (uint32_t r = 0; r < rows; ++r) {
        PDW_ASSIGN_OR_RETURN(Datum d, UnpackDatum(buffer, offset));
        dest[r][c] = std::move(d);
      }
      continue;
    }
    bool has_nulls = (flags & kFlagHasNulls) != 0;
    const uint8_t* null_ptr = nullptr;
    if (has_nulls) {
      size_t bitmap_bytes = (static_cast<size_t>(rows) + 7) / 8;
      if (*offset + bitmap_bytes > buffer.size()) {
        return Status::Internal("DMS buffer underrun (null bitmap)");
      }
      const uint8_t* bitmap = buffer.data() + *offset;
      *offset += bitmap_bytes;
      null_bytes.assign(rows, 0);
      for (uint32_t r = 0; r < rows; ++r) {
        null_bytes[r] = (bitmap[r / 8] >> (r % 8)) & 1;
      }
      null_ptr = null_bytes.data();
    }
    switch (declared) {
      case TypeId::kBool: {
        if (*offset + rows > buffer.size()) {
          return Status::Internal("DMS buffer underrun (bool plane)");
        }
        const uint8_t* v = buffer.data() + *offset;
        *offset += rows;
        for (uint32_t r = 0; r < rows; ++r) {
          if (null_ptr != nullptr && null_ptr[r] != 0) continue;
          dest[r][c] = Datum::Bool(v[r] != 0);
        }
        break;
      }
      case TypeId::kDate: {
        size_t plane = static_cast<size_t>(rows) * sizeof(int32_t);
        if (*offset + plane > buffer.size()) {
          return Status::Internal("DMS buffer underrun (date plane)");
        }
        const auto* v =
            reinterpret_cast<const int32_t*>(buffer.data() + *offset);
        *offset += plane;
        for (uint32_t r = 0; r < rows; ++r) {
          if (null_ptr != nullptr && null_ptr[r] != 0) continue;
          dest[r][c] = Datum::Date(v[r]);
        }
        break;
      }
      case TypeId::kInt: {
        size_t plane = static_cast<size_t>(rows) * sizeof(int64_t);
        if (*offset + plane > buffer.size()) {
          return Status::Internal("DMS buffer underrun (int plane)");
        }
        const auto* v =
            reinterpret_cast<const int64_t*>(buffer.data() + *offset);
        *offset += plane;
        for (uint32_t r = 0; r < rows; ++r) {
          if (null_ptr != nullptr && null_ptr[r] != 0) continue;
          dest[r][c] = Datum::Int(v[r]);
        }
        break;
      }
      case TypeId::kDouble: {
        size_t plane = static_cast<size_t>(rows) * sizeof(double);
        if (*offset + plane > buffer.size()) {
          return Status::Internal("DMS buffer underrun (double plane)");
        }
        const auto* v =
            reinterpret_cast<const double*>(buffer.data() + *offset);
        *offset += plane;
        for (uint32_t r = 0; r < rows; ++r) {
          if (null_ptr != nullptr && null_ptr[r] != 0) continue;
          dest[r][c] = Datum::Double(v[r]);
        }
        break;
      }
      case TypeId::kVarchar: {
        size_t lens_bytes = static_cast<size_t>(rows) * sizeof(uint32_t);
        if (*offset + lens_bytes > buffer.size()) {
          return Status::Internal("DMS buffer underrun (varchar lengths)");
        }
        const auto* lens =
            reinterpret_cast<const uint32_t*>(buffer.data() + *offset);
        *offset += lens_bytes;
        for (uint32_t r = 0; r < rows; ++r) {
          if (*offset + lens[r] > buffer.size()) {
            return Status::Internal("DMS buffer underrun (varchar blob)");
          }
          if (null_ptr != nullptr && null_ptr[r] != 0) {
            if (lens[r] != 0) {
              return Status::Internal("DMS batch: NULL varchar with payload");
            }
          } else {
            dest[r][c] = Datum::Varchar(std::string(
                reinterpret_cast<const char*>(buffer.data() + *offset),
                lens[r]));
          }
          *offset += lens[r];
        }
        break;
      }
      case TypeId::kInvalid:
        // All-NULL column: the bitmap alone carries it; cells stay NULL.
        for (uint32_t r = 0; r < rows; ++r) {
          if (null_ptr == nullptr || null_ptr[r] == 0) {
            return Status::Internal("DMS batch: typeless non-NULL column");
          }
        }
        break;
    }
  }
  return static_cast<size_t>(rows);
}

void HashPartitionBatch(const ColumnBatch& batch,
                        const std::vector<int>& hash_ordinals, int num_nodes,
                        std::vector<SelVector>* out) {
  out->assign(static_cast<size_t>(num_nodes), SelVector{});
  if (batch.rows == 0 || num_nodes <= 0) return;
  if (num_nodes == 1) {
    SelVector& all = (*out)[0];
    all.resize(batch.rows);
    for (size_t r = 0; r < batch.rows; ++r) all[r] = static_cast<int32_t>(r);
    return;
  }
  // Column-at-a-time hash chain: one typed pass per key column over a flat
  // hash array — the tag dispatch is hoisted out of the row loop, and each
  // kernel mirrors ColumnVector::HashAt (and therefore Datum::Hash) bit for
  // bit, NULLs and integral doubles included.
  constexpr size_t kNullHash = 0x9e3779b97f4a7c15ULL;
  std::vector<size_t> hashes(batch.rows, kRowHashSeed);
  size_t* h = hashes.data();
  for (int ord : hash_ordinals) {
    const ColumnVector& col = batch.columns[static_cast<size_t>(ord)];
    const uint8_t* nulls = col.nulls().data();
    size_t n = batch.rows;
    switch (col.tag()) {
      case VecTag::kInt64: {
        const int64_t* v = col.i64_data();
        if (col.declared_type() == TypeId::kBool) {
          for (size_t r = 0; r < n; ++r) {
            h[r] = MixColumnHash(
                h[r], nulls[r] ? kNullHash : std::hash<bool>()(v[r] != 0));
          }
        } else {
          for (size_t r = 0; r < n; ++r) {
            h[r] = MixColumnHash(
                h[r], nulls[r] ? kNullHash : std::hash<int64_t>()(v[r]));
          }
        }
        break;
      }
      case VecTag::kDouble: {
        const double* v = col.f64_data();
        for (size_t r = 0; r < n; ++r) {
          size_t cell;
          if (nulls[r]) {
            cell = kNullHash;
          } else {
            double d = v[r];
            cell = (d == std::floor(d) && std::abs(d) < 9.2e18)
                       ? std::hash<int64_t>()(static_cast<int64_t>(d))
                       : std::hash<double>()(d);
          }
          h[r] = MixColumnHash(h[r], cell);
        }
        break;
      }
      case VecTag::kString:
        for (size_t r = 0; r < n; ++r) {
          h[r] = MixColumnHash(
              h[r], nulls[r] ? kNullHash : std::hash<std::string>()(col.str(r)));
        }
        break;
      case VecTag::kVariant:
        for (size_t r = 0; r < n; ++r) {
          h[r] = MixColumnHash(h[r],
                               nulls[r] ? kNullHash : col.variant(r).Hash());
        }
        break;
    }
  }
  for (size_t r = 0; r < batch.rows; ++r) {
    (*out)[h[r] % static_cast<size_t>(num_nodes)].push_back(
        static_cast<int32_t>(r));
  }
}

std::vector<TypeId> InferRowTypes(const RowVector& rows) {
  std::vector<TypeId> types;
  if (rows.empty()) return types;
  types.assign(rows[0].size(), TypeId::kInvalid);
  size_t unresolved = types.size();
  for (const Row& row : rows) {
    for (size_t c = 0; c < types.size() && c < row.size(); ++c) {
      if (types[c] == TypeId::kInvalid && !row[c].is_null()) {
        types[c] = row[c].type();
        if (--unresolved == 0) return types;
      }
    }
  }
  return types;
}

}  // namespace pdw
