#ifndef PDW_SQL_AST_H_
#define PDW_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/datum.h"

namespace pdw::sql {

// ---------------------------------------------------------------------------
// Scalar expressions (unresolved; the binder in src/algebra resolves names).
// ---------------------------------------------------------------------------

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kStar,
  kBinary,
  kUnary,
  kFunction,
  kBetween,
  kInList,
  kInSubquery,
  kExistsSubquery,
  kScalarSubquery,
  kIsNull,
  kCase,
  kCast,
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike, kNotLike,
};

enum class UnaryOp { kNot, kNegate };

const char* BinaryOpToString(BinaryOp op);

struct SelectStatement;  // forward; sub-queries embed SELECTs.

/// Base class for parsed scalar expressions. The tree is immutable after
/// parsing; ToString() reconstructs SQL-ish text for diagnostics.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  virtual std::string ToString() const = 0;

  ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string t, std::string c)
      : Expr(ExprKind::kColumnRef), table(std::move(t)), column(std::move(c)) {}
  std::string ToString() const override;

  std::string table;  ///< Qualifier; empty when unqualified.
  std::string column;
};

struct LiteralExpr : Expr {
  explicit LiteralExpr(Datum v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::string ToString() const override { return value.ToString(); }

  Datum value;
};

/// `*` or `t.*` in a SELECT list.
struct StarExpr : Expr {
  explicit StarExpr(std::string t) : Expr(ExprKind::kStar), table(std::move(t)) {}
  std::string ToString() const override {
    return table.empty() ? "*" : table + ".*";
  }

  std::string table;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  std::string ToString() const override;

  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  std::string ToString() const override;

  UnaryOp op;
  ExprPtr operand;
};

/// Function call: aggregates (COUNT/SUM/AVG/MIN/MAX) and scalar functions
/// (DATEADD, ...). COUNT(*) is represented with `star_arg = true`.
struct FunctionExpr : Expr {
  FunctionExpr(std::string n, std::vector<ExprPtr> a)
      : Expr(ExprKind::kFunction), name(std::move(n)), args(std::move(a)) {}
  std::string ToString() const override;

  std::string name;  ///< Uppercased.
  std::vector<ExprPtr> args;
  bool distinct = false;
  bool star_arg = false;
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr v, ExprPtr l, ExprPtr h, bool neg)
      : Expr(ExprKind::kBetween), value(std::move(v)), low(std::move(l)),
        high(std::move(h)), negated(neg) {}
  std::string ToString() const override;

  ExprPtr value;
  ExprPtr low;
  ExprPtr high;
  bool negated;
};

struct InListExpr : Expr {
  InListExpr(ExprPtr v, std::vector<ExprPtr> i, bool neg)
      : Expr(ExprKind::kInList), value(std::move(v)), items(std::move(i)),
        negated(neg) {}
  std::string ToString() const override;

  ExprPtr value;
  std::vector<ExprPtr> items;
  bool negated;
};

/// IN (SELECT ...), EXISTS (SELECT ...), and scalar sub-queries. The kind
/// discriminates; `value` is only set for IN.
struct SubqueryExpr : Expr {
  SubqueryExpr(ExprKind k, ExprPtr v, std::unique_ptr<SelectStatement> s,
               bool neg)
      : Expr(k), value(std::move(v)), subquery(std::move(s)), negated(neg) {}
  std::string ToString() const override;

  ExprPtr value;
  std::unique_ptr<SelectStatement> subquery;
  bool negated;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr e, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(e)), negated(neg) {}
  std::string ToString() const override;

  ExprPtr operand;
  bool negated;
};

struct CaseExpr : Expr {
  CaseExpr() : Expr(ExprKind::kCase) {}
  std::string ToString() const override;

  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  ExprPtr else_expr;  ///< May be null (implicit ELSE NULL).
};

struct CastExpr : Expr {
  CastExpr(ExprPtr e, TypeId t)
      : Expr(ExprKind::kCast), operand(std::move(e)), target(t) {}
  std::string ToString() const override;

  ExprPtr operand;
  TypeId target;
};

// ---------------------------------------------------------------------------
// Table references and statements.
// ---------------------------------------------------------------------------

enum class JoinType { kInner, kLeft, kCross };

enum class TableRefKind { kBase, kJoin, kDerived };

struct TableRef {
  explicit TableRef(TableRefKind k) : kind(k) {}
  virtual ~TableRef() = default;
  virtual std::string ToString() const = 0;

  TableRefKind kind;
};

using TableRefPtr = std::unique_ptr<TableRef>;

struct BaseTableRef : TableRef {
  BaseTableRef(std::string t, std::string a)
      : TableRef(TableRefKind::kBase), table(std::move(t)), alias(std::move(a)) {}
  std::string ToString() const override {
    return alias.empty() ? table : table + " AS " + alias;
  }

  std::string table;
  std::string alias;  ///< Empty when unaliased.
};

struct JoinTableRef : TableRef {
  JoinTableRef(JoinType t, TableRefPtr l, TableRefPtr r, ExprPtr cond)
      : TableRef(TableRefKind::kJoin), join_type(t), left(std::move(l)),
        right(std::move(r)), condition(std::move(cond)) {}
  std::string ToString() const override;

  JoinType join_type;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr condition;  ///< Null for CROSS JOIN.
};

struct DerivedTableRef : TableRef {
  DerivedTableRef(std::unique_ptr<SelectStatement> s, std::string a)
      : TableRef(TableRefKind::kDerived), subquery(std::move(s)),
        alias(std::move(a)) {}
  std::string ToString() const override;

  std::unique_ptr<SelectStatement> subquery;
  std::string alias;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< Empty when unaliased.
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

/// Distributed-execution strategy hints (paper §3.1: the PDW query
/// surface adds "a handful of query hints for specific distributed
/// execution strategies"). Parsed from a trailing OPTION (<hint>) clause.
enum class DistributionHint {
  kNone,           ///< Cost-based choice (default).
  kForceBroadcast, ///< Resolve join incompatibilities by broadcasting.
  kForceShuffle,   ///< Resolve join incompatibilities by shuffling.
};

struct SelectStatement {
  /// Trailing OPTION(...) hint; applies to the whole statement.
  DistributionHint hint = DistributionHint::kNone;
  /// Non-null when this SELECT is the left operand of UNION [ALL]; the
  /// chain is right-leaning. ORDER BY/LIMIT on the head apply to the
  /// whole union.
  std::unique_ptr<SelectStatement> union_next;
  bool union_distinct = false;  ///< true for plain UNION (dedup).
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRefPtr> from;  ///< Comma-separated FROM entries.
  ExprPtr where;                  ///< Null when absent.
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  ///< -1 = no LIMIT/TOP.

  std::string ToString() const;
};

/// CREATE TABLE name (col type, ...) WITH (DISTRIBUTION = HASH(col)) /
/// WITH (DISTRIBUTION = REPLICATE).
struct CreateTableStatement {
  std::string name;
  Schema schema;
  DistributionSpec distribution;
};

struct DropTableStatement {
  std::string name;
};

/// INSERT INTO name VALUES (...), (...), ... — used by tests and loaders.
struct InsertStatement {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;
};

enum class StatementKind { kSelect, kCreateTable, kDropTable, kInsert };

/// A parsed SQL statement (tagged union of the statement structs).
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<DropTableStatement> drop_table;
  std::unique_ptr<InsertStatement> insert;
};

}  // namespace pdw::sql

#endif  // PDW_SQL_AST_H_
