#include "sql/ast.h"

#include "common/string_util.h"

namespace pdw::sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kNotLike: return "NOT LIKE";
  }
  return "?";
}

std::string ColumnRefExpr::ToString() const {
  return table.empty() ? column : table + "." + column;
}

std::string BinaryExpr::ToString() const {
  return "(" + left->ToString() + " " + BinaryOpToString(op) + " " +
         right->ToString() + ")";
}

std::string UnaryExpr::ToString() const {
  return op == UnaryOp::kNot ? "(NOT " + operand->ToString() + ")"
                             : "(-" + operand->ToString() + ")";
}

std::string FunctionExpr::ToString() const {
  std::string out = name + "(";
  if (distinct) out += "DISTINCT ";
  if (star_arg) {
    out += "*";
  } else {
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += args[i]->ToString();
    }
  }
  return out + ")";
}

std::string BetweenExpr::ToString() const {
  return "(" + value->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
         low->ToString() + " AND " + high->ToString() + ")";
}

std::string InListExpr::ToString() const {
  std::string out = "(" + value->ToString() + (negated ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i]->ToString();
  }
  return out + "))";
}

std::string SubqueryExpr::ToString() const {
  std::string out = "(";
  if (kind == ExprKind::kInSubquery) {
    out += value->ToString();
    out += negated ? " NOT IN " : " IN ";
  } else if (kind == ExprKind::kExistsSubquery) {
    out += negated ? "NOT EXISTS " : "EXISTS ";
  }
  out += "(" + subquery->ToString() + "))";
  return out;
}

std::string IsNullExpr::ToString() const {
  return "(" + operand->ToString() + (negated ? " IS NOT NULL)" : " IS NULL)");
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const auto& [w, t] : whens) {
    out += " WHEN " + w->ToString() + " THEN " + t->ToString();
  }
  if (else_expr) out += " ELSE " + else_expr->ToString();
  return out + " END";
}

std::string CastExpr::ToString() const {
  return std::string("CAST(") + operand->ToString() + " AS " +
         TypeIdToString(target) + ")";
}

std::string JoinTableRef::ToString() const {
  std::string out = "(" + left->ToString();
  switch (join_type) {
    case JoinType::kInner: out += " INNER JOIN "; break;
    case JoinType::kLeft: out += " LEFT JOIN "; break;
    case JoinType::kCross: out += " CROSS JOIN "; break;
  }
  out += right->ToString();
  if (condition) out += " ON " + condition->ToString();
  return out + ")";
}

std::string DerivedTableRef::ToString() const {
  return "(" + subquery->ToString() + ") AS " + alias;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i]->ToString();
    }
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  if (union_next) {
    out += union_distinct ? " UNION " : " UNION ALL ";
    out += union_next->ToString();
  }
  return out;
}

}  // namespace pdw::sql
