#ifndef PDW_SQL_PARSER_H_
#define PDW_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace pdw::sql {

/// Parses one SQL statement (SELECT, CREATE TABLE, DROP TABLE or INSERT).
/// This is the "PDW Parser" of Fig. 2 (component 1): it validates syntax and
/// produces the AST handed to the compilation stack.
Result<Statement> ParseStatement(const std::string& input);

/// Convenience wrapper for SELECT-only inputs.
Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& input);

}  // namespace pdw::sql

#endif  // PDW_SQL_PARSER_H_
