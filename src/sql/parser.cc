#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace pdw::sql {

namespace {

/// Recursive-descent parser over the token stream. Standard precedence
/// climbing: OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < +- < */% <
/// unary < primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (Peek().IsKeyword("SELECT")) {
      auto sel = ParseSelectStatement();
      if (!sel.ok()) return sel.status();
      stmt.kind = StatementKind::kSelect;
      stmt.select = std::move(sel).ValueOrDie();
    } else if (Peek().IsKeyword("CREATE")) {
      auto ct = ParseCreateTable();
      if (!ct.ok()) return ct.status();
      stmt.kind = StatementKind::kCreateTable;
      stmt.create_table = std::move(ct).ValueOrDie();
    } else if (Peek().IsKeyword("DROP")) {
      Advance();
      PDW_RETURN_NOT_OK(Expect("TABLE"));
      PDW_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      stmt.kind = StatementKind::kDropTable;
      stmt.drop_table = std::make_unique<DropTableStatement>();
      stmt.drop_table->name = name;
    } else if (Peek().IsKeyword("INSERT")) {
      auto ins = ParseInsert();
      if (!ins.ok()) return ins.status();
      stmt.kind = StatementKind::kInsert;
      stmt.insert = std::move(ins).ValueOrDie();
    } else {
      return Error("expected SELECT, CREATE, DROP or INSERT");
    }
    if (Peek().IsOperator(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelectStatement() {
    PDW_RETURN_NOT_OK(Expect("SELECT"));
    auto sel = std::make_unique<SelectStatement>();
    if (Peek().IsKeyword("DISTINCT")) {
      sel->distinct = true;
      Advance();
    } else if (Peek().IsKeyword("ALL")) {
      Advance();
    }
    if (Peek().IsKeyword("TOP")) {
      Advance();
      PDW_ASSIGN_OR_RETURN(int64_t n, ExpectInteger());
      sel->limit = n;
    }
    // Select list.
    while (true) {
      SelectItem item;
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(e).ValueOrDie();
      if (Peek().IsKeyword("AS")) {
        Advance();
        PDW_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Peek().text;
        Advance();
      }
      sel->items.push_back(std::move(item));
      if (!Peek().IsOperator(",")) break;
      Advance();
    }
    if (Peek().IsKeyword("FROM")) {
      Advance();
      while (true) {
        auto tr = ParseTableRef();
        if (!tr.ok()) return tr.status();
        sel->from.push_back(std::move(tr).ValueOrDie());
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      sel->where = std::move(e).ValueOrDie();
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      PDW_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        sel->group_by.push_back(std::move(e).ValueOrDie());
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("HAVING")) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      sel->having = std::move(e).ValueOrDie();
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      PDW_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        OrderByItem item;
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(e).ValueOrDie();
        if (Peek().IsKeyword("ASC")) {
          Advance();
        } else if (Peek().IsKeyword("DESC")) {
          item.ascending = false;
          Advance();
        }
        sel->order_by.push_back(std::move(item));
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      PDW_ASSIGN_OR_RETURN(int64_t n, ExpectInteger());
      sel->limit = n;
    }
    // PDW-style distributed-strategy hint: OPTION (FORCE_BROADCAST) or
    // OPTION (FORCE_SHUFFLE).
    if (Peek().IsKeyword("OPTION")) {
      Advance();
      PDW_RETURN_NOT_OK(ExpectOp("("));
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected hint name");
      }
      std::string hint = ToUpper(Peek().text);
      Advance();
      if (hint == "FORCE_BROADCAST") {
        sel->hint = DistributionHint::kForceBroadcast;
      } else if (hint == "FORCE_SHUFFLE") {
        sel->hint = DistributionHint::kForceShuffle;
      } else {
        return Error("unknown hint '" + hint + "'");
      }
      PDW_RETURN_NOT_OK(ExpectOp(")"));
    }
    // UNION [ALL] chains right-recursively; ORDER BY / LIMIT may only
    // appear after the last operand (they apply to the whole union).
    if (Peek().IsKeyword("UNION")) {
      if (!sel->order_by.empty() || sel->limit >= 0) {
        return Error(
            "ORDER BY/LIMIT must follow the last UNION operand");
      }
      Advance();
      sel->union_distinct = true;
      if (Peek().IsKeyword("ALL")) {
        sel->union_distinct = false;
        Advance();
      }
      auto rest = ParseSelectStatement();
      if (!rest.ok()) return rest;
      sel->union_next = std::move(rest).ValueOrDie();
    }
    return sel;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StringFormat("parse error near offset %zu ('%s'): %s",
                     Peek().offset, Peek().text.c_str(), msg.c_str()));
  }

  Status Expect(const char* keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error(std::string("expected ") + keyword);
    }
    Advance();
    return Status::OK();
  }

  Status ExpectOp(const char* op) {
    if (!Peek().IsOperator(op)) {
      return Error(std::string("expected '") + op + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<int64_t> ExpectInteger() {
    if (Peek().type != TokenType::kNumber) return Error("expected number");
    int64_t v = std::strtoll(Peek().text.c_str(), nullptr, 10);
    Advance();
    return v;
  }

  /// Dotted name, possibly multi-part ([db].[schema].[table]); only the
  /// last one or two parts are meaningful to this engine.
  Result<std::vector<std::string>> ParseDottedName() {
    std::vector<std::string> parts;
    PDW_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    parts.push_back(std::move(first));
    while (Peek().IsOperator(".")) {
      Advance();
      PDW_ASSIGN_OR_RETURN(std::string next, ExpectIdentifier());
      parts.push_back(std::move(next));
    }
    return parts;
  }

  // --- table references ---

  Result<TableRefPtr> ParseTableRef() {
    auto left = ParseTablePrimary();
    if (!left.ok()) return left.status();
    TableRefPtr node = std::move(left).ValueOrDie();
    while (true) {
      JoinType jt;
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
        if (Peek().IsKeyword("INNER")) Advance();
        jt = JoinType::kInner;
      } else if (Peek().IsKeyword("LEFT")) {
        Advance();
        if (Peek().IsKeyword("OUTER")) Advance();
        jt = JoinType::kLeft;
      } else if (Peek().IsKeyword("CROSS")) {
        Advance();
        jt = JoinType::kCross;
      } else {
        break;
      }
      PDW_RETURN_NOT_OK(Expect("JOIN"));
      auto right = ParseTablePrimary();
      if (!right.ok()) return right.status();
      ExprPtr cond;
      if (jt != JoinType::kCross) {
        PDW_RETURN_NOT_OK(Expect("ON"));
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        cond = std::move(e).ValueOrDie();
      }
      node = std::make_unique<JoinTableRef>(jt, std::move(node),
                                            std::move(right).ValueOrDie(),
                                            std::move(cond));
    }
    return node;
  }

  Result<TableRefPtr> ParseTablePrimary() {
    if (Peek().IsOperator("(")) {
      // Derived table or parenthesized join.
      if (Peek(1).IsKeyword("SELECT")) {
        Advance();
        auto sub = ParseSelectStatement();
        if (!sub.ok()) return sub.status();
        PDW_RETURN_NOT_OK(ExpectOp(")"));
        std::string alias;
        if (Peek().IsKeyword("AS")) {
          Advance();
          PDW_ASSIGN_OR_RETURN(alias, ExpectIdentifier());
        } else if (Peek().type == TokenType::kIdentifier) {
          alias = Peek().text;
          Advance();
        } else {
          return Error("derived table requires an alias");
        }
        return TableRefPtr(std::make_unique<DerivedTableRef>(
            std::move(sub).ValueOrDie(), alias));
      }
      Advance();
      auto inner = ParseTableRef();
      if (!inner.ok()) return inner.status();
      PDW_RETURN_NOT_OK(ExpectOp(")"));
      return inner;
    }
    auto name = ParseDottedName();
    if (!name.ok()) return name.status();
    const std::vector<std::string>& parts = name.ValueOrDie();
    std::string table = parts.back();
    // The `sys` schema is a real namespace (the PDW DMVs live there), so
    // its qualifier is part of the table name; any other qualifier is
    // ignored as before.
    if (parts.size() >= 2 && ToLower(parts[parts.size() - 2]) == "sys") {
      table = "sys." + table;
    }
    std::string alias;
    if (Peek().IsKeyword("AS")) {
      Advance();
      PDW_ASSIGN_OR_RETURN(alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      alias = Peek().text;
      Advance();
    }
    return TableRefPtr(std::make_unique<BaseTableRef>(table, alias));
  }

  // --- expressions ---

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).ValueOrDie();
    while (Peek().IsKeyword("OR")) {
      Advance();
      auto right = ParseAnd();
      if (!right.ok()) return right;
      node = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(node),
                                          std::move(right).ValueOrDie());
    }
    return node;
  }

  Result<ExprPtr> ParseAnd() {
    auto left = ParseNot();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).ValueOrDie();
    while (Peek().IsKeyword("AND")) {
      Advance();
      auto right = ParseNot();
      if (!right.ok()) return right;
      node = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(node),
                                          std::move(right).ValueOrDie());
    }
    return node;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      auto inner = ParseNot();
      if (!inner.ok()) return inner;
      return ExprPtr(std::make_unique<UnaryExpr>(
          UnaryOp::kNot, std::move(inner).ValueOrDie()));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto left = ParseAddSub();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).ValueOrDie();

    // Optional NOT before IN / BETWEEN / LIKE.
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
         Peek(1).IsKeyword("LIKE"))) {
      negated = true;
      Advance();
    }

    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      auto lo = ParseAddSub();
      if (!lo.ok()) return lo;
      PDW_RETURN_NOT_OK(Expect("AND"));
      auto hi = ParseAddSub();
      if (!hi.ok()) return hi;
      return ExprPtr(std::make_unique<BetweenExpr>(
          std::move(node), std::move(lo).ValueOrDie(),
          std::move(hi).ValueOrDie(), negated));
    }
    if (Peek().IsKeyword("LIKE")) {
      Advance();
      auto pat = ParseAddSub();
      if (!pat.ok()) return pat;
      return ExprPtr(std::make_unique<BinaryExpr>(
          negated ? BinaryOp::kNotLike : BinaryOp::kLike, std::move(node),
          std::move(pat).ValueOrDie()));
    }
    if (Peek().IsKeyword("IN")) {
      Advance();
      PDW_RETURN_NOT_OK(ExpectOp("("));
      if (Peek().IsKeyword("SELECT")) {
        auto sub = ParseSelectStatement();
        if (!sub.ok()) return sub.status();
        PDW_RETURN_NOT_OK(ExpectOp(")"));
        return ExprPtr(std::make_unique<SubqueryExpr>(
            ExprKind::kInSubquery, std::move(node),
            std::move(sub).ValueOrDie(), negated));
      }
      std::vector<ExprPtr> items;
      while (true) {
        auto e = ParseExpr();
        if (!e.ok()) return e;
        items.push_back(std::move(e).ValueOrDie());
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
      PDW_RETURN_NOT_OK(ExpectOp(")"));
      return ExprPtr(std::make_unique<InListExpr>(std::move(node),
                                                  std::move(items), negated));
    }
    if (Peek().IsKeyword("IS")) {
      Advance();
      bool is_not = false;
      if (Peek().IsKeyword("NOT")) {
        is_not = true;
        Advance();
      }
      PDW_RETURN_NOT_OK(Expect("NULL"));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(node), is_not));
    }

    static const std::pair<const char*, BinaryOp> kOps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (Peek().IsOperator(text)) {
        Advance();
        auto right = ParseAddSub();
        if (!right.ok()) return right;
        return ExprPtr(std::make_unique<BinaryExpr>(
            op, std::move(node), std::move(right).ValueOrDie()));
      }
    }
    return node;
  }

  Result<ExprPtr> ParseAddSub() {
    auto left = ParseMulDiv();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).ValueOrDie();
    while (Peek().IsOperator("+") || Peek().IsOperator("-")) {
      BinaryOp op = Peek().IsOperator("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      auto right = ParseMulDiv();
      if (!right.ok()) return right;
      node = std::make_unique<BinaryExpr>(op, std::move(node),
                                          std::move(right).ValueOrDie());
    }
    return node;
  }

  Result<ExprPtr> ParseMulDiv() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).ValueOrDie();
    while (Peek().IsOperator("*") || Peek().IsOperator("/") ||
           Peek().IsOperator("%")) {
      BinaryOp op = Peek().IsOperator("*")   ? BinaryOp::kMul
                    : Peek().IsOperator("/") ? BinaryOp::kDiv
                                             : BinaryOp::kMod;
      Advance();
      auto right = ParseUnary();
      if (!right.ok()) return right;
      node = std::make_unique<BinaryExpr>(op, std::move(node),
                                          std::move(right).ValueOrDie());
    }
    return node;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsOperator("-")) {
      Advance();
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      return ExprPtr(std::make_unique<UnaryExpr>(
          UnaryOp::kNegate, std::move(inner).ValueOrDie()));
    }
    if (Peek().IsOperator("+")) {
      Advance();
      return ParseUnary();
    }
    return ParsePrimary();
  }

  bool IsAggregateKeyword(const Token& t) const {
    return t.IsKeyword("COUNT") || t.IsKeyword("SUM") || t.IsKeyword("AVG") ||
           t.IsKeyword("MIN") || t.IsKeyword("MAX");
  }

  Result<ExprPtr> ParseFunctionCall(const std::string& name) {
    PDW_RETURN_NOT_OK(ExpectOp("("));
    auto fn = std::make_unique<FunctionExpr>(ToUpper(name),
                                             std::vector<ExprPtr>());
    if (Peek().IsKeyword("DISTINCT")) {
      fn->distinct = true;
      Advance();
    }
    if (Peek().IsOperator("*")) {
      fn->star_arg = true;
      Advance();
      PDW_RETURN_NOT_OK(ExpectOp(")"));
      return ExprPtr(std::move(fn));
    }
    if (!Peek().IsOperator(")")) {
      while (true) {
        // DATEADD's first argument is a date-part name (year, month, ...).
        if (fn->name == "DATEADD" && fn->args.empty() &&
            (Peek().type == TokenType::kIdentifier ||
             Peek().type == TokenType::kKeyword) &&
            Peek(1).IsOperator(",")) {
          fn->args.push_back(
              std::make_unique<LiteralExpr>(Datum::Varchar(ToLower(Peek().text))));
          Advance();
        } else {
          auto e = ParseExpr();
          if (!e.ok()) return e;
          fn->args.push_back(std::move(e).ValueOrDie());
        }
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
    }
    PDW_RETURN_NOT_OK(ExpectOp(")"));
    return ExprPtr(std::move(fn));
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    // Literals.
    if (t.type == TokenType::kNumber) {
      std::string text = t.text;
      Advance();
      if (text.find('.') != std::string::npos ||
          text.find('e') != std::string::npos ||
          text.find('E') != std::string::npos) {
        return ExprPtr(std::make_unique<LiteralExpr>(
            Datum::Double(std::strtod(text.c_str(), nullptr))));
      }
      return ExprPtr(std::make_unique<LiteralExpr>(
          Datum::Int(std::strtoll(text.c_str(), nullptr, 10))));
    }
    if (t.type == TokenType::kString) {
      std::string text = t.text;
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Datum::Varchar(text)));
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Datum::Null()));
    }
    if (t.IsKeyword("TRUE") || t.IsKeyword("FALSE")) {
      bool v = t.IsKeyword("TRUE");
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Datum::Bool(v)));
    }
    if (t.IsKeyword("DATE") && Peek(1).type == TokenType::kString) {
      Advance();
      PDW_ASSIGN_OR_RETURN(int32_t days, ParseDate(Peek().text));
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Datum::Date(days)));
    }
    if (t.IsKeyword("CASE")) {
      Advance();
      auto ce = std::make_unique<CaseExpr>();
      while (Peek().IsKeyword("WHEN")) {
        Advance();
        auto w = ParseExpr();
        if (!w.ok()) return w;
        PDW_RETURN_NOT_OK(Expect("THEN"));
        auto th = ParseExpr();
        if (!th.ok()) return th;
        ce->whens.emplace_back(std::move(w).ValueOrDie(),
                               std::move(th).ValueOrDie());
      }
      if (Peek().IsKeyword("ELSE")) {
        Advance();
        auto e = ParseExpr();
        if (!e.ok()) return e;
        ce->else_expr = std::move(e).ValueOrDie();
      }
      PDW_RETURN_NOT_OK(Expect("END"));
      return ExprPtr(std::move(ce));
    }
    if (t.IsKeyword("CAST")) {
      Advance();
      PDW_RETURN_NOT_OK(ExpectOp("("));
      auto e = ParseExpr();
      if (!e.ok()) return e;
      PDW_RETURN_NOT_OK(Expect("AS"));
      // Type name is an identifier or keyword (DATE).
      if (Peek().type != TokenType::kIdentifier &&
          Peek().type != TokenType::kKeyword) {
        return Error("expected type name in CAST");
      }
      TypeId target = TypeIdFromString(Peek().text);
      if (target == TypeId::kInvalid) {
        return Error("unknown type '" + Peek().text + "' in CAST");
      }
      Advance();
      // Optional (precision[, scale]).
      if (Peek().IsOperator("(")) {
        PDW_RETURN_NOT_OK(SkipParenGroup());
      }
      PDW_RETURN_NOT_OK(ExpectOp(")"));
      return ExprPtr(std::make_unique<CastExpr>(std::move(e).ValueOrDie(),
                                                target));
    }
    if (t.IsKeyword("EXISTS")) {
      Advance();
      PDW_RETURN_NOT_OK(ExpectOp("("));
      auto sub = ParseSelectStatement();
      if (!sub.ok()) return sub.status();
      PDW_RETURN_NOT_OK(ExpectOp(")"));
      return ExprPtr(std::make_unique<SubqueryExpr>(
          ExprKind::kExistsSubquery, nullptr, std::move(sub).ValueOrDie(),
          false));
    }
    if (IsAggregateKeyword(t)) {
      std::string name = t.text;
      Advance();
      return ParseFunctionCall(name);
    }
    if (t.IsOperator("(")) {
      if (Peek(1).IsKeyword("SELECT")) {
        Advance();
        auto sub = ParseSelectStatement();
        if (!sub.ok()) return sub.status();
        PDW_RETURN_NOT_OK(ExpectOp(")"));
        return ExprPtr(std::make_unique<SubqueryExpr>(
            ExprKind::kScalarSubquery, nullptr, std::move(sub).ValueOrDie(),
            false));
      }
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e;
      PDW_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    if (t.IsOperator("*")) {
      Advance();
      return ExprPtr(std::make_unique<StarExpr>(""));
    }
    if (t.type == TokenType::kIdentifier) {
      // Function call, qualified column, t.*, or bare column.
      if (Peek(1).IsOperator("(")) {
        std::string name = t.text;
        Advance();
        return ParseFunctionCall(name);
      }
      std::string first = t.text;
      Advance();
      if (Peek().IsOperator(".")) {
        Advance();
        if (Peek().IsOperator("*")) {
          Advance();
          return ExprPtr(std::make_unique<StarExpr>(first));
        }
        PDW_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier());
        return ExprPtr(std::make_unique<ColumnRefExpr>(first, second));
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>("", first));
    }
    return Error("expected expression");
  }

  /// Skips a balanced ( ... ) group (used for type precision args).
  Status SkipParenGroup() {
    PDW_RETURN_NOT_OK(ExpectOp("("));
    int depth = 1;
    while (depth > 0) {
      if (Peek().type == TokenType::kEnd) return Error("unbalanced parens");
      if (Peek().IsOperator("(")) ++depth;
      if (Peek().IsOperator(")")) --depth;
      Advance();
    }
    return Status::OK();
  }

  // --- DDL / DML ---

  Result<std::unique_ptr<CreateTableStatement>> ParseCreateTable() {
    PDW_RETURN_NOT_OK(Expect("CREATE"));
    PDW_RETURN_NOT_OK(Expect("TABLE"));
    auto ct = std::make_unique<CreateTableStatement>();
    PDW_ASSIGN_OR_RETURN(std::vector<std::string> name, ParseDottedName());
    ct->name = name.back();
    PDW_RETURN_NOT_OK(ExpectOp("("));
    while (true) {
      ColumnDef col;
      PDW_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      if (Peek().type != TokenType::kIdentifier &&
          Peek().type != TokenType::kKeyword) {
        return Error("expected column type");
      }
      col.type = TypeIdFromString(Peek().text);
      if (col.type == TypeId::kInvalid) {
        return Error("unknown type '" + Peek().text + "'");
      }
      Advance();
      if (Peek().IsOperator("(")) PDW_RETURN_NOT_OK(SkipParenGroup());
      if (Peek().IsKeyword("NOT")) {
        Advance();
        PDW_RETURN_NOT_OK(Expect("NULL"));
        col.nullable = false;
      }
      ct->schema.AddColumn(std::move(col));
      if (!Peek().IsOperator(",")) break;
      Advance();
    }
    PDW_RETURN_NOT_OK(ExpectOp(")"));
    // WITH (DISTRIBUTION = HASH(col)) or WITH (DISTRIBUTION = REPLICATE).
    ct->distribution = DistributionSpec::Replicated();
    if (Peek().IsKeyword("WITH")) {
      Advance();
      PDW_RETURN_NOT_OK(ExpectOp("("));
      PDW_RETURN_NOT_OK(Expect("DISTRIBUTION"));
      PDW_RETURN_NOT_OK(ExpectOp("="));
      if (Peek().IsKeyword("HASH")) {
        Advance();
        PDW_RETURN_NOT_OK(ExpectOp("("));
        DistributionSpec spec;
        spec.layout = TableLayout::kHashDistributed;
        while (true) {
          PDW_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          spec.columns.push_back(col);
          if (!Peek().IsOperator(",")) break;
          Advance();
        }
        PDW_RETURN_NOT_OK(ExpectOp(")"));
        ct->distribution = spec;
      } else if (Peek().IsKeyword("REPLICATE")) {
        Advance();
      } else {
        return Error("expected HASH or REPLICATE");
      }
      PDW_RETURN_NOT_OK(ExpectOp(")"));
    }
    return ct;
  }

  Result<std::unique_ptr<InsertStatement>> ParseInsert() {
    PDW_RETURN_NOT_OK(Expect("INSERT"));
    PDW_RETURN_NOT_OK(Expect("INTO"));
    auto ins = std::make_unique<InsertStatement>();
    PDW_ASSIGN_OR_RETURN(std::vector<std::string> name, ParseDottedName());
    ins->table = name.back();
    PDW_RETURN_NOT_OK(Expect("VALUES"));
    while (true) {
      PDW_RETURN_NOT_OK(ExpectOp("("));
      std::vector<ExprPtr> row;
      while (true) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        row.push_back(std::move(e).ValueOrDie());
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
      PDW_RETURN_NOT_OK(ExpectOp(")"));
      ins->rows.push_back(std::move(row));
      if (!Peek().IsOperator(",")) break;
      Advance();
    }
    return ins;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  PDW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& input) {
  PDW_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(input));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

}  // namespace pdw::sql
