#ifndef PDW_SQL_LEXER_H_
#define PDW_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace pdw::sql {

enum class TokenType {
  kIdentifier,   ///< Bare or [bracketed]/"quoted" identifier.
  kKeyword,      ///< Reserved word, normalized to uppercase in `text`.
  kString,       ///< 'string literal' with '' escapes resolved.
  kNumber,       ///< Integer or decimal literal.
  kOperator,     ///< One of = <> != < <= > >= + - * / % ( ) , . ;
  kEnd,          ///< End of input sentinel.
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< Keyword text is uppercased; identifiers keep case.
  size_t offset = 0;  ///< Byte offset in the source, for error messages.

  bool IsKeyword(const char* kw) const;
  bool IsOperator(const char* op) const;
};

/// True if `word` (any case) is a reserved keyword of this dialect and so
/// cannot be used as a bare identifier. SQL generation consults this when
/// choosing column aliases.
bool IsReservedKeyword(const std::string& word);

/// Tokenizes a SQL string. Handles -- and /* */ comments, bracketed
/// identifiers, string literals and numeric literals. Keywords are the SQL
/// subset the parser understands; everything else lexes as an identifier.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace pdw::sql

#endif  // PDW_SQL_LEXER_H_
