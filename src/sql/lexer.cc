#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace pdw::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>({
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
      "DESC", "LIMIT", "TOP", "DISTINCT", "ALL", "AS", "AND", "OR", "NOT",
      "IN", "EXISTS", "BETWEEN", "LIKE", "IS", "NULL", "TRUE", "FALSE",
      "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "ON",
      "UNION", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "CREATE",
      "TABLE", "DROP", "INSERT", "INTO", "VALUES", "WITH", "DISTRIBUTION",
      "HASH", "REPLICATE", "DATE", "COUNT", "SUM", "AVG", "MIN", "MAX",
      "OPTION",
  });
  return *kKeywords;
}

}  // namespace

bool IsReservedKeyword(const std::string& word) {
  return Keywords().count(ToUpper(word)) > 0;
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsOperator(const char* op) const {
  return type == TokenType::kOperator && text == op;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      size_t end = input.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated block comment");
      }
      i = end + 2;
      continue;
    }
    Token tok;
    tok.offset = i;
    // String literal.
    if (c == '\'') {
      std::string text;
      ++i;
      while (true) {
        if (i >= n) return Status::InvalidArgument("unterminated string literal");
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        text += input[i++];
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }
    // Bracketed / quoted identifier.
    if (c == '[' || c == '"') {
      char close = (c == '[') ? ']' : '"';
      size_t end = input.find(close, i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated quoted identifier");
      }
      tok.type = TokenType::kIdentifier;
      tok.text = input.substr(i + 1, end - i - 1);
      i = end + 1;
      out.push_back(std::move(tok));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (input[i] == '.' && !seen_dot))) {
        if (input[i] == '.') seen_dot = true;
        ++i;
      }
      // Exponent part.
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
        }
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }
    // Identifier or keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
      out.push_back(std::move(tok));
      continue;
    }
    // Operators, longest-match first.
    tok.type = TokenType::kOperator;
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
        tok.text = two == "!=" ? "<>" : two;
        i += 2;
        out.push_back(std::move(tok));
        continue;
      }
    }
    if (std::string("=<>+-*/%(),.;").find(c) != std::string::npos) {
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument(
        StringFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token end_tok;
  end_tok.type = TokenType::kEnd;
  end_tok.offset = n;
  out.push_back(end_tok);
  return out;
}

}  // namespace pdw::sql
