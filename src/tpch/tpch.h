#ifndef PDW_TPCH_TPCH_H_
#define PDW_TPCH_TPCH_H_

#include <string>
#include <vector>

#include "appliance/appliance.h"
#include "common/result.h"

namespace pdw::tpch {

/// Generator configuration. scale = 1.0 produces a miniature database
/// (lineitem ~ 60k rows) suitable for in-process benchmarking; row counts
/// scale linearly. The generator is deterministic for a given seed.
struct TpchConfig {
  double scale = 0.1;
  uint32_t seed = 20120520;  // SIGMOD'12 :-)
  /// 0 = uniform foreign keys; >0 skews orders toward low customer keys
  /// (each unit halves the hot range), stressing the uniformity assumption.
  double skew = 0;
};

/// Creates the eight TPC-H tables with the paper's distribution layout:
/// customer HASH(c_custkey), orders HASH(o_orderkey), lineitem
/// HASH(l_orderkey), part HASH(p_partkey), partsupp HASH(ps_partkey);
/// supplier, nation and region replicated. Primary keys are declared so
/// redundant-join elimination applies.
Status CreateTpchTables(Appliance* appliance);

/// Generates and loads all tables (also refreshing merged global stats).
Status LoadTpch(Appliance* appliance, const TpchConfig& config = {});

/// Standalone row generation (tests and custom loads).
RowVector GenerateRegion(const TpchConfig& config);
RowVector GenerateNation(const TpchConfig& config);
RowVector GenerateSupplier(const TpchConfig& config);
RowVector GenerateCustomer(const TpchConfig& config);
RowVector GenerateOrders(const TpchConfig& config);
RowVector GenerateLineitem(const TpchConfig& config);
RowVector GeneratePart(const TpchConfig& config);
RowVector GeneratePartsupp(const TpchConfig& config);

/// A named TPC-H(-subset) query in this library's SQL dialect.
struct TpchQuery {
  std::string name;   ///< "Q1", "Q3", ...
  std::string sql;
  std::string notes;  ///< Adaptations vs. the official text.
};

/// The query suite used by the benches: Q1, Q2, Q3, Q4, Q5, Q6, Q10,
/// Q12, Q14, Q17, Q18 and the paper's Q20.
const std::vector<TpchQuery>& Queries();

/// Looks up a query by name ("Q20"); nullptr when absent.
const TpchQuery* FindQuery(const std::string& name);

}  // namespace pdw::tpch

#endif  // PDW_TPCH_TPCH_H_
