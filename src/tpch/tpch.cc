#include "tpch/tpch.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/string_util.h"

namespace pdw::tpch {

namespace {

// Miniature base row counts at scale 1.0.
constexpr int kCustomers = 1500;
constexpr int kOrders = 15000;
constexpr int kParts = 2000;
constexpr int kSuppliers = 100;
constexpr int kSuppsPerPart = 4;

int Count(double scale, int base) {
  return std::max(1, static_cast<int>(base * scale));
}

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipmodes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                            "TRUCK"};
const char* kPartAdjectives[] = {"forest", "ghost", "misty", "frosted",
                                 "antique", "burnished", "dim", "lemon",
                                 "pale", "royal"};
const char* kPartNouns[] = {"green", "steel", "linen", "copper", "olive",
                            "tomato", "almond", "navy", "rose", "khaki"};
const char* kTypes[] = {"PROMO BRUSHED", "STANDARD POLISHED", "SMALL PLATED",
                        "MEDIUM BURNISHED", "ECONOMY ANODIZED",
                        "LARGE BRUSHED", "PROMO PLATED"};

int32_t Date(int y, int m, int d) {
  auto r = ParseDate(StringFormat("%04d-%02d-%02d", y, m, d));
  return r.ok() ? *r : 0;
}

/// Deterministic per-table RNG so generation order doesn't couple tables.
std::mt19937 Rng(const TpchConfig& cfg, uint32_t salt) {
  return std::mt19937(cfg.seed ^ (salt * 0x9e3779b9u));
}

/// Foreign-key pick with optional skew toward low keys.
int PickKey(std::mt19937* rng, int max_key, double skew) {
  std::uniform_int_distribution<int> uniform(1, max_key);
  if (skew <= 0) return uniform(*rng);
  // With probability 1 - 2^-skew the key comes from the hot low range.
  std::uniform_real_distribution<double> coin(0, 1);
  double hot_fraction = std::pow(0.5, skew);
  if (coin(*rng) > hot_fraction) {
    int hot = std::max(1, static_cast<int>(max_key * hot_fraction));
    std::uniform_int_distribution<int> hot_dist(1, hot);
    return hot_dist(*rng);
  }
  return uniform(*rng);
}

}  // namespace

Status CreateTpchTables(Appliance* a) {
  auto make = [&](const char* ddl) { return a->CreateTableSql(ddl); };
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE region (r_regionkey INT NOT NULL, r_name VARCHAR(25)) "
      "WITH (DISTRIBUTION = REPLICATE)"));
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE nation (n_nationkey INT NOT NULL, n_name VARCHAR(25), "
      "n_regionkey INT) WITH (DISTRIBUTION = REPLICATE)"));
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE supplier (s_suppkey INT NOT NULL, s_name VARCHAR(25), "
      "s_address VARCHAR(40), s_nationkey INT, s_acctbal DECIMAL(15,2)) "
      "WITH (DISTRIBUTION = REPLICATE)"));
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE customer (c_custkey INT NOT NULL, c_name VARCHAR(25), "
      "c_address VARCHAR(40), c_nationkey INT, c_acctbal DECIMAL(15,2), "
      "c_mktsegment VARCHAR(10)) WITH (DISTRIBUTION = HASH(c_custkey))"));
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE orders (o_orderkey INT NOT NULL, o_custkey INT, "
      "o_totalprice DECIMAL(15,2), o_orderdate DATE, "
      "o_orderpriority VARCHAR(15), o_shippriority INT) "
      "WITH (DISTRIBUTION = HASH(o_orderkey))"));
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE lineitem (l_orderkey INT NOT NULL, l_partkey INT, "
      "l_suppkey INT, l_linenumber INT, l_quantity DECIMAL(15,2), "
      "l_extendedprice DECIMAL(15,2), l_discount DECIMAL(15,2), "
      "l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE, "
      "l_commitdate DATE, l_receiptdate DATE, l_shipmode VARCHAR(10)) "
      "WITH (DISTRIBUTION = HASH(l_orderkey))"));
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE part (p_partkey INT NOT NULL, p_name VARCHAR(55), "
      "p_type VARCHAR(25), p_size INT, p_retailprice DECIMAL(15,2)) "
      "WITH (DISTRIBUTION = HASH(p_partkey))"));
  PDW_RETURN_NOT_OK(make(
      "CREATE TABLE partsupp (ps_partkey INT NOT NULL, ps_suppkey INT NOT "
      "NULL, ps_availqty INT, ps_supplycost DECIMAL(15,2)) "
      "WITH (DISTRIBUTION = HASH(ps_partkey))"));

  // Primary keys (for redundant-join elimination).
  auto set_pk = [&](const char* table,
                    std::vector<std::string> pk) -> Status {
    PDW_ASSIGN_OR_RETURN(TableDef * def,
                         a->mutable_shell()->GetMutableTable(table));
    def->primary_key = std::move(pk);
    return Status::OK();
  };
  PDW_RETURN_NOT_OK(set_pk("region", {"r_regionkey"}));
  PDW_RETURN_NOT_OK(set_pk("nation", {"n_nationkey"}));
  PDW_RETURN_NOT_OK(set_pk("supplier", {"s_suppkey"}));
  PDW_RETURN_NOT_OK(set_pk("customer", {"c_custkey"}));
  PDW_RETURN_NOT_OK(set_pk("orders", {"o_orderkey"}));
  PDW_RETURN_NOT_OK(set_pk("part", {"p_partkey"}));
  PDW_RETURN_NOT_OK(set_pk("partsupp", {"ps_partkey", "ps_suppkey"}));
  return Status::OK();
}

RowVector GenerateRegion(const TpchConfig&) {
  RowVector rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back({Datum::Int(i), Datum::Varchar(kRegions[i])});
  }
  return rows;
}

RowVector GenerateNation(const TpchConfig&) {
  RowVector rows;
  for (int i = 0; i < 25; ++i) {
    rows.push_back(
        {Datum::Int(i), Datum::Varchar(kNations[i]), Datum::Int(i % 5)});
  }
  return rows;
}

RowVector GenerateSupplier(const TpchConfig& cfg) {
  auto rng = Rng(cfg, 3);
  std::uniform_int_distribution<int> nation(0, 24);
  std::uniform_real_distribution<double> bal(-999, 9999);
  int n = Count(cfg.scale, kSuppliers);
  RowVector rows;
  for (int i = 1; i <= n; ++i) {
    rows.push_back({Datum::Int(i),
                    Datum::Varchar(StringFormat("Supplier#%09d", i)),
                    Datum::Varchar(StringFormat("addr sup %d", i)),
                    Datum::Int(nation(rng)),
                    Datum::Double(std::round(bal(rng) * 100) / 100)});
  }
  return rows;
}

RowVector GenerateCustomer(const TpchConfig& cfg) {
  auto rng = Rng(cfg, 4);
  std::uniform_int_distribution<int> nation(0, 24);
  std::uniform_int_distribution<int> segment(0, 4);
  std::uniform_real_distribution<double> bal(-999, 9999);
  int n = Count(cfg.scale, kCustomers);
  RowVector rows;
  for (int i = 1; i <= n; ++i) {
    rows.push_back({Datum::Int(i),
                    Datum::Varchar(StringFormat("Customer#%09d", i)),
                    Datum::Varchar(StringFormat("addr cust %d", i)),
                    Datum::Int(nation(rng)),
                    Datum::Double(std::round(bal(rng) * 100) / 100),
                    Datum::Varchar(kSegments[segment(rng)])});
  }
  return rows;
}

RowVector GenerateOrders(const TpchConfig& cfg) {
  auto rng = Rng(cfg, 5);
  int customers = Count(cfg.scale, kCustomers);
  int orders = Count(cfg.scale, kOrders);
  int32_t lo = Date(1992, 1, 1);
  int32_t hi = Date(1998, 8, 2);
  std::uniform_int_distribution<int32_t> date(lo, hi);
  std::uniform_int_distribution<int> priority(0, 4);
  std::uniform_real_distribution<double> price(900, 450000);
  RowVector rows;
  for (int i = 1; i <= orders; ++i) {
    rows.push_back({Datum::Int(i),
                    Datum::Int(PickKey(&rng, customers, cfg.skew)),
                    Datum::Double(std::round(price(rng) * 100) / 100),
                    Datum::Date(date(rng)),
                    Datum::Varchar(kPriorities[priority(rng)]),
                    Datum::Int(0)});
  }
  return rows;
}

RowVector GenerateLineitem(const TpchConfig& cfg) {
  auto rng = Rng(cfg, 6);
  int orders = Count(cfg.scale, kOrders);
  int parts = Count(cfg.scale, kParts);
  int suppliers = Count(cfg.scale, kSuppliers);
  int32_t lo = Date(1992, 1, 1);
  int32_t hi = Date(1998, 8, 2);
  std::uniform_int_distribution<int32_t> ship(lo, hi);
  std::uniform_int_distribution<int> lines(1, 7);
  std::uniform_int_distribution<int> qty(1, 50);
  std::uniform_int_distribution<int> lag(1, 60);
  std::uniform_real_distribution<double> discount(0.0, 0.10);
  std::uniform_real_distribution<double> price(900, 10000);
  std::uniform_int_distribution<int> flag(0, 2);
  std::uniform_int_distribution<int> mode(0, 6);
  RowVector rows;
  for (int o = 1; o <= orders; ++o) {
    int n = lines(rng);
    for (int l = 1; l <= n; ++l) {
      int32_t shipdate = ship(rng);
      int32_t commitdate = shipdate + lag(rng) - 30;
      int32_t receiptdate = shipdate + lag(rng) / 2;
      const char* rf = flag(rng) == 0 ? "R" : (flag(rng) == 1 ? "A" : "N");
      rows.push_back({Datum::Int(o),
                      Datum::Int(PickKey(&rng, parts, cfg.skew)),
                      Datum::Int(PickKey(&rng, suppliers, 0)),
                      Datum::Int(l),
                      Datum::Double(qty(rng)),
                      Datum::Double(std::round(price(rng) * 100) / 100),
                      Datum::Double(std::round(discount(rng) * 100) / 100),
                      Datum::Varchar(rf),
                      Datum::Varchar(shipdate > Date(1995, 6, 17) ? "O" : "F"),
                      Datum::Date(shipdate),
                      Datum::Date(commitdate),
                      Datum::Date(receiptdate),
                      Datum::Varchar(kShipmodes[mode(rng)])});
    }
  }
  return rows;
}

RowVector GeneratePart(const TpchConfig& cfg) {
  auto rng = Rng(cfg, 7);
  int n = Count(cfg.scale, kParts);
  std::uniform_int_distribution<int> adj(0, 9);
  std::uniform_int_distribution<int> noun(0, 9);
  std::uniform_int_distribution<int> type(0, 6);
  std::uniform_int_distribution<int> size(1, 50);
  RowVector rows;
  for (int i = 1; i <= n; ++i) {
    std::string name = std::string(kPartAdjectives[adj(rng)]) + " " +
                       kPartNouns[noun(rng)];
    rows.push_back({Datum::Int(i), Datum::Varchar(name),
                    Datum::Varchar(kTypes[type(rng)]),
                    Datum::Int(size(rng)),
                    Datum::Double(900 + (i % 1000) + i / 10.0)});
  }
  return rows;
}

RowVector GeneratePartsupp(const TpchConfig& cfg) {
  auto rng = Rng(cfg, 8);
  int parts = Count(cfg.scale, kParts);
  int suppliers = Count(cfg.scale, kSuppliers);
  std::uniform_int_distribution<int> qty(1, 9999);
  std::uniform_real_distribution<double> cost(1, 1000);
  RowVector rows;
  for (int p = 1; p <= parts; ++p) {
    for (int s = 0; s < kSuppsPerPart; ++s) {
      int suppkey = 1 + (p + s * (parts / kSuppsPerPart + 1)) % suppliers;
      rows.push_back({Datum::Int(p), Datum::Int(suppkey),
                      Datum::Int(qty(rng)),
                      Datum::Double(std::round(cost(rng) * 100) / 100)});
    }
  }
  return rows;
}

Status LoadTpch(Appliance* a, const TpchConfig& cfg) {
  PDW_RETURN_NOT_OK(a->LoadRows("region", GenerateRegion(cfg)));
  PDW_RETURN_NOT_OK(a->LoadRows("nation", GenerateNation(cfg)));
  PDW_RETURN_NOT_OK(a->LoadRows("supplier", GenerateSupplier(cfg)));
  PDW_RETURN_NOT_OK(a->LoadRows("customer", GenerateCustomer(cfg)));
  PDW_RETURN_NOT_OK(a->LoadRows("orders", GenerateOrders(cfg)));
  PDW_RETURN_NOT_OK(a->LoadRows("lineitem", GenerateLineitem(cfg)));
  PDW_RETURN_NOT_OK(a->LoadRows("part", GeneratePart(cfg)));
  PDW_RETURN_NOT_OK(a->LoadRows("partsupp", GeneratePartsupp(cfg)));
  return Status::OK();
}

const std::vector<TpchQuery>& Queries() {
  static const auto* kQueries = new std::vector<TpchQuery>{
      {"Q1",
       "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
       "SUM(l_extendedprice) AS sum_base_price, "
       "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
       "AVG(l_quantity) AS avg_qty, AVG(l_discount) AS avg_disc, "
       "COUNT(*) AS count_order "
       "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
       "GROUP BY l_returnflag, l_linestatus "
       "ORDER BY l_returnflag, l_linestatus",
       "full Q1 minus charge column"},
      {"Q2",
       "SELECT s_name, p_partkey, ps_supplycost FROM part, supplier, "
       "partsupp WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey "
       "AND p_size = 10 "
       "AND ps_supplycost = (SELECT MIN(ps2.ps_supplycost) FROM partsupp "
       "ps2 WHERE ps2.ps_partkey = p_partkey) "
       "ORDER BY s_name, p_partkey",
       "Q2 core: min-cost supplier per part (region/nation legs dropped)"},
      {"Q3",
       "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS "
       "revenue, o_orderdate, o_shippriority "
       "FROM customer, orders, lineitem "
       "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
       "AND l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15' "
       "AND l_shipdate > DATE '1995-03-15' "
       "GROUP BY l_orderkey, o_orderdate, o_shippriority "
       "ORDER BY revenue DESC, o_orderdate LIMIT 10",
       ""},
      {"Q4",
       "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders "
       "WHERE o_orderdate >= DATE '1993-07-01' "
       "AND o_orderdate < DATE '1993-10-01' "
       "AND EXISTS (SELECT l_orderkey FROM lineitem "
       "  WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) "
       "GROUP BY o_orderpriority ORDER BY o_orderpriority",
       "DATEADD(month,...) replaced by the literal end date"},
      {"Q5",
       "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM customer, orders, lineitem, supplier, nation, region "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
       "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
       "AND r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' "
       "AND o_orderdate < DATE '1995-01-01' "
       "GROUP BY n_name ORDER BY revenue DESC",
       ""},
      {"Q6",
       "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
       "WHERE l_shipdate >= DATE '1994-01-01' "
       "AND l_shipdate < DATE '1995-01-01' "
       "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
       ""},
      {"Q10",
       "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) "
       "AS revenue, c_acctbal, n_name, c_address "
       "FROM customer, orders, lineitem, nation "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND o_orderdate >= DATE '1993-10-01' "
       "AND o_orderdate < DATE '1994-01-01' AND l_returnflag = 'R' "
       "AND c_nationkey = n_nationkey "
       "GROUP BY c_custkey, c_name, c_acctbal, n_name, c_address "
       "ORDER BY revenue DESC LIMIT 20",
       "c_phone/c_comment omitted (not in schema)"},
      {"Q12",
       "SELECT l_shipmode, "
       "SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = "
       "'2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, "
       "SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> "
       "'2-HIGH' THEN 1 ELSE 0 END) AS low_line_count "
       "FROM orders, lineitem WHERE o_orderkey = l_orderkey "
       "AND l_shipmode IN ('MAIL', 'SHIP') "
       "AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate "
       "AND l_receiptdate >= DATE '1994-01-01' "
       "AND l_receiptdate < DATE '1995-01-01' "
       "GROUP BY l_shipmode ORDER BY l_shipmode",
       ""},
      {"Q14",
       "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN "
       "l_extendedprice * (1 - l_discount) ELSE 0 END) / "
       "SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue "
       "FROM lineitem, part WHERE l_partkey = p_partkey "
       "AND l_shipdate >= DATE '1995-09-01' "
       "AND l_shipdate < DATE '1995-10-01'",
       ""},
      {"Q17",
       "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly "
       "FROM lineitem, part WHERE p_partkey = l_partkey "
       "AND p_name LIKE 'ghost%' "
       "AND l_quantity < (SELECT 0.2 * AVG(l2.l_quantity) FROM lineitem l2 "
       "  WHERE l2.l_partkey = p_partkey)",
       "brand/container filter replaced by a p_name prefix"},
      {"Q18",
       "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, "
       "SUM(l_quantity) AS total_qty "
       "FROM customer, orders, lineitem "
       "WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem "
       "  GROUP BY l_orderkey HAVING SUM(l_quantity) > 150) "
       "AND c_custkey = o_custkey AND o_orderkey = l_orderkey "
       "GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
       "ORDER BY o_totalprice DESC, o_orderdate LIMIT 100",
       "threshold 150 (miniature scale)"},
      {"Q20",
       "SELECT s_name, s_address FROM supplier, nation "
       "WHERE s_suppkey IN ("
       "  SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN ("
       "    SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') "
       "  AND ps_availqty > ("
       "    SELECT 0.5 * SUM(l_quantity) FROM lineitem "
       "    WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey "
       "    AND l_shipdate >= DATE '1994-01-01' "
       "    AND l_shipdate < DATEADD(year, 1, '1994-01-01'))) "
       "AND s_nationkey = n_nationkey AND n_name = 'CANADA' "
       "ORDER BY s_name",
       "the paper's Fig. 7 query, verbatim"},
  };
  return *kQueries;
}

const TpchQuery* FindQuery(const std::string& name) {
  for (const auto& q : Queries()) {
    if (EqualsIgnoreCase(q.name, name)) return &q;
  }
  return nullptr;
}

}  // namespace pdw::tpch
